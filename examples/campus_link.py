#!/usr/bin/env python3
"""The Sec. 8.2 campus deployment: microsecond timestamps at 1.07 km.

An end device on a rooftop, the SoftLoRa gateway in an open staircase
1.07 km away (the paper's two NTU sites, surveyed in heavy rain).  The
one-way propagation time is 3.57 µs -- already negligible against the
millisecond targets, and the AIC timestamps resolve the onset to a few
microseconds anyway, guaranteeing correctly-sliced chirps for FB
estimation at range.

Run:  python examples/campus_link.py
"""

from repro.experiments.campus import PAPER_CAMPUS_ERRORS_US, run_campus


def main() -> None:
    result = run_campus(sample_rate_hz=2.4e6)
    print(result.format())
    print()
    print(f"paper's four trials : {', '.join(f'{e:.2f}' for e in PAPER_CAMPUS_ERRORS_US)} µs")
    print(f"our four trials     : {', '.join(f'{e:.2f}' for e in result.trial_errors_us)} µs")
    print(f"\npropagation ({result.propagation_delay_us:.2f} µs one-way) and timestamping "
          f"(<= {result.max_error_us():.2f} µs) both sit 3+ orders of magnitude below the "
          "millisecond accuracy the monitoring applications need.")


if __name__ == "__main__":
    main()
