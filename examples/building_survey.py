#!/usr/bin/env python3
"""The Fig. 15 building survey: SNR heat map + timing-error heat map.

Re-creates the paper's multistory-building deployment: a fixed node in
Section A on the 3rd floor, a mobile SoftLoRa receiver carried through
all 51 accessible survey positions of the 190 m, six-floor concrete
building.  At each position the receiver (a) measures SNR by profiling
the noise power first, and (b) timestamps the frame onset with the AIC
detector.  Prints both heat maps in the paper's lateral-view layout.

Run:  python examples/building_survey.py
"""

from repro.experiments.fig15_building import run_fig15
from repro.sim.scenarios import build_building_scenario


def heat_map(cells, value, title, fmt="{:6.1f}"):
    columns = ["A1", "A2", "A3", "B1", "B2", "B3", "C1", "C2", "C3"]
    by_cell = {(c.column, c.floor): value(c) for c in cells}
    print(title)
    print("      " + " ".join(f"{c:>6}" for c in columns))
    for floor in range(6, 0, -1):
        row = []
        for column in columns:
            v = by_cell.get((column, floor))
            row.append(fmt.format(v) if v is not None else "     .")
        print(f"  F{floor}  " + " ".join(row))
    print()


def main() -> None:
    scenario = build_building_scenario()
    print(f"fixed node at {scenario.tx_column}, floor {scenario.tx_floor} "
          "(its own cell is not surveyed)\n")
    result = run_fig15(
        scenario=scenario, sample_rate_hz=1e6, frames_per_cell=3
    )
    heat_map(
        result.cells,
        lambda c: c.link_snr_db,
        "SNR survey (dB) -- paper range: -1 .. 13 dB",
    )
    heat_map(
        result.cells,
        lambda c: c.timing_error_us,
        "signal timestamping error upper bound (µs) -- paper: < 10 µs everywhere",
        fmt="{:6.2f}",
    )
    lo, hi = result.snr_range_db()
    print(f"SNR range: {lo:.1f} .. {hi:.1f} dB | "
          f"worst timing error: {result.max_timing_error_us():.2f} µs")


if __name__ == "__main__":
    main()
