#!/usr/bin/env python3
"""The network-server daemon end to end: UDP uplinks in, alerts out.

Boots a :class:`~repro.service.NetworkServerDaemon` on loopback, then
plays both sides of a small deployment against it:

* a recorded fleet stream (clean traffic, then a frame-delay attack on
  three devices) is shipped through the Semtech UDP packet-forwarder
  protocol by the load generator -- the same wire format a real gateway
  would speak;
* an operator's view is polled over the REST control plane:
  ``/healthz`` for liveness, ``/devices/{addr}`` for one device's FB
  profile, ``/metrics`` for the Prometheus counters -- while an
  ``/alerts`` subscriber receives one server-sent event per detected
  replay, live.

The punchline is the golden property the service layer is built
around: the daemon's verdict stream is *bit-identical* to what the
in-process :class:`~repro.server.NetworkServer` said about the same
forwards.

Run:  python examples/network_daemon.py
"""

import asyncio
import json

from repro.service import NetworkServerDaemon, ServiceConfig, build_plan, new_server, replay


async def http_get(port: int, path: str) -> bytes:
    """One GET against the daemon's control plane; returns the body."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return raw.partition(b"\r\n\r\n")[2]


async def demo() -> None:
    plan = build_plan(n_devices=12, n_gateways=2, clean_s=120.0, attack_s=120.0)
    print(f"recorded stream  : {plan.n_forwards} forwards in {len(plan.batches)} "
          f"delivery windows from gateways {', '.join(plan.gateway_ids)}")

    server = new_server()
    plan.provision(server)
    daemon = NetworkServerDaemon(
        server=server,
        config=ServiceConfig(
            udp_host="127.0.0.1", udp_port=0, http_host="127.0.0.1", http_port=0
        ),
    )
    await daemon.start()
    print(f"daemon up        : Semtech UDP :{daemon.udp_port}, "
          f"control plane http://127.0.0.1:{daemon.http_port}")

    # An operator tails /alerts before traffic flows.
    alerts_reader, alerts_writer = await asyncio.open_connection(
        "127.0.0.1", daemon.http_port
    )
    alerts_writer.write(b"GET /alerts HTTP/1.1\r\nHost: demo\r\n\r\n")
    await alerts_writer.drain()
    await alerts_reader.readuntil(b"\r\n\r\n")

    stats = await replay(plan, "127.0.0.1", daemon.udp_port)
    await daemon.drain()
    print(f"replayed         : {stats.datagrams_sent} datagrams, "
          f"{stats.forwards_sent} forwards, every PUSH_DATA acked")

    health = json.loads(await http_get(daemon.http_port, "/healthz"))
    print(f"/healthz         : {health['status']}, "
          f"{health['uplinks_total']} uplinks -> {health['verdicts_total']} verdicts, "
          f"queue depth {health['queue_depth']}")

    addr = f"{plan.registrations[0][0]:08x}"
    device = json.loads(await http_get(daemon.http_port, f"/devices/{addr}"))
    profile = device["fb_profile"]
    print(f"/devices/{addr} : {profile['sample_count']} FB samples, interval "
          f"[{profile['interval']['low_hz']:+.0f}, {profile['interval']['high_hz']:+.0f}] Hz "
          f"(guard {profile['guard_hz']:.0f} Hz)")

    metrics = (await http_get(daemon.http_port, "/metrics")).decode()
    wanted = ("repro_service_verdicts_total", "repro_service_dedup_copies_per_uplink")
    for line in metrics.splitlines():
        if line.startswith(wanted):
            print(f"/metrics         : {line}")

    n_replays = sum(
        1 for v in plan.oracle_verdicts if v["status"] == "replay_detected"
    )
    alerts = []
    for _ in range(n_replays):
        while True:
            block = (await asyncio.wait_for(alerts_reader.readuntil(b"\n\n"), 5.0)).decode()
            if block.startswith("event: attack_detected"):
                data = next(s for s in block.splitlines() if s.startswith("data: "))
                alerts.append(json.loads(data[len("data: "):]))
                break
    first = alerts[0]
    print(f"/alerts          : {len(alerts)} attack_detected events streamed; first: "
          f"node {first['node_id']} fcnt {first['fcnt']} "
          f"({first['detection']['reason']})")
    alerts_writer.close()

    got = [v.as_dict() for v in daemon.server.verdicts]
    identical = got == list(plan.oracle_verdicts)
    print(f"golden check     : daemon verdicts bit-identical to in-process: "
          f"{identical} ({len(got)} verdicts)")

    await daemon.stop()
    print("daemon stopped cleanly")


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
