#!/usr/bin/env python3
"""Closed-loop ADR over a multi-SF fleet: watch SF12 converge to SF7.

A 120-device fleet cold-starts at SF12 (the LoRaWAN factory default for
maximum range) under two gateways.  The network server's
:class:`~repro.server.AdrController` tracks each device's SNR margin
across deduplicated uplinks and pushes ``LinkADRReq`` MAC commands
through the gateways' class-A downlink chain; each device applies the
commanded data rate mid-run and answers ``LinkADRAns`` on its next
uplink's FOpts.  As spreading factors drop, airtime shrinks ~32x and
the collision rate collapses -- after convergence, a frame-delay
attacker is unleashed to confirm the FB defense still catches every
replay on the retuned fleet.

Prints the per-round SF histogram, the LinkADRReq budget (sent /
duty-cycle-dropped), the goodput before vs after convergence, and the
replay-detection TPR on the converged multi-SF fleet.

Run:  python examples/adr_fleet.py
"""

from collections import Counter

from repro.attack import FrameDelayAttack, Replayer, StealthyJammer
from repro.core.softlora import SoftLoRaGateway
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import AdrController, NetworkServer
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime, replay_detected
from repro.sim.scenarios import build_fleet
from repro.sim.traffic import PeriodicTrafficModel

N_DEVICES = 120
N_GATEWAYS = 2
PERIOD_S = 300.0
JITTER_S = 45.0
ADR_ROUNDS = 8
N_ATTACKED = 6
ATTACK_DELAY_S = 60.0


def sf_histogram(devices) -> str:
    """Compact ``SFx:n`` histogram of the fleet's current data rates."""
    counts = Counter(d.spreading_factor for d in devices)
    return " ".join(f"SF{sf}:{n}" for sf, n in sorted(counts.items()))


def main() -> None:
    streams = RngStreams(868)
    devices = build_fleet(n_devices=N_DEVICES, streams=streams, ring_radius_m=300.0)
    for device in devices:
        device.spreading_factor = 12  # factory default: maximum range
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(
            config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
            commodity=CommodityGateway(),
        ),
        gateway_position=Position(250.0, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.8)),
        rng=streams.stream("world"),
    )
    world.add_gateway(Position(-250.0, 0.0, 15.0))
    for device in devices:
        world.add_device(device)
    server = world.attach_server(NetworkServer(adr=AdrController()))

    runtime = FleetRuntime(
        world,
        PeriodicTrafficModel(period_s=PERIOD_S, jitter_s=JITTER_S, rng=streams.stream("traffic")),
        window_s=10.0,
    )

    print(f"fleet            : {N_DEVICES} devices, {N_GATEWAYS} gateways, all SF12, "
          f"period {PERIOD_S:.0f} s")
    print(f"round  0         : {sf_histogram(devices)}")

    baseline = runtime.run(2 * PERIOD_S)
    print(f"SF12 baseline    : goodput {baseline.goodput_fps:.3f} frames/s, "
          f"collision rate {baseline.contention.collision_rate:.2f}")

    sent = dropped = 0
    for round_index in range(1, ADR_ROUNDS + 1):
        report = runtime.run(PERIOD_S)
        sent += report.adr_commands_sent
        dropped += report.adr_commands_dropped
        print(f"round {round_index:2d}         : {sf_histogram(devices)}  "
              f"(+{report.adr_commands_sent} LinkADRReq, "
              f"{report.adr_commands_dropped} dropped)")
        if sent and not report.adr_commands_sent and not report.adr_commands_dropped:
            break

    converged = runtime.run(2 * PERIOD_S)
    print(f"\nLinkADRReq total : {sent} delivered into RX windows, {dropped} lost to "
          f"the gateways' duty cycle")
    print(f"converged fleet  : goodput {converged.goodput_fps:.3f} frames/s "
          f"({converged.goodput_fps / max(baseline.goodput_fps, 1e-9):.1f}x the SF12 "
          f"baseline), collision rate {converged.contention.collision_rate:.2f}")

    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.single_usrp(streams.stream("replayer")),
    )
    heard = {v.node_id for v in server.verdicts}
    targets = [d.name for d in devices if f"{d.dev_addr:08x}" in heard][:N_ATTACKED]
    world.arm_attack(attack, targets, delay_s=ATTACK_DELAY_S)
    attacked = runtime.run(2 * PERIOD_S)
    replays = attacked.contention.replays_delivered
    hits = sum(
        1 for e in attacked.events
        if e.kind is EventKind.REPLAY_DELIVERED and replay_detected(e)
    )
    print(f"\nattack on converged fleet: {len(targets)} devices targeted, "
          f"TPR {hits / replays if replays else float('nan'):.2f} "
          f"({hits}/{replays} replays flagged)")


if __name__ == "__main__":
    main()
