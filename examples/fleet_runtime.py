#!/usr/bin/env python3
"""A 500-device fleet on the event-driven runtime: contention + attack.

Scales the fleet-monitoring story to a load where the ALOHA channel
matters: 500 devices report every minute at SF7, so the channel carries
a substantial offered load and concurrent transmissions collide at the
gateway (capture effect deciding the survivors).  The runtime schedules
every uplink on the discrete-event simulator, resolves each event
window's contention, and batches the survivors through the SoftLoRa
gateway.  After a clean phase, a frame delay attacker targets ten
devices; the FB check must still catch the replays.

Prints goodput, the measured collision rate against the pure-ALOHA
prediction, and the replay-detection TPR under attack.

Run:  python examples/fleet_runtime.py
"""

from repro.attack import FrameDelayAttack, Replayer, StealthyJammer
from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime, replay_detected
from repro.sim.scenarios import build_fleet
from repro.sim.traffic import (
    PeriodicTrafficModel,
    offered_load_erlangs,
    pure_aloha_success_probability,
)

N_DEVICES = 500
PERIOD_S = 60.0
JITTER_S = 20.0
PHASE_S = 120.0  # two reporting periods per phase
N_ATTACKED = 10
ATTACK_DELAY_S = 30.0


def main() -> None:
    streams = RngStreams(500)
    devices = build_fleet(n_devices=N_DEVICES, streams=streams, ring_radius_m=400.0)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
    gateway = SoftLoRaGateway(
        config=config,
        commodity=CommodityGateway(),
        replay_detector=ReplayDetector(database=FbDatabase()),
    )
    world = LoRaWanWorld(
        gateway=gateway,
        gateway_position=Position(0.0, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    profile_rng = streams.stream("profiles")
    for device in devices:
        world.add_device(device)
        gateway.bootstrap_fb_profile(
            device.dev_addr,
            [device.fb_hz + float(e) for e in profile_rng.normal(0.0, 15.0, 5)],
        )

    runtime = FleetRuntime(
        world,
        PeriodicTrafficModel(period_s=PERIOD_S, jitter_s=JITTER_S, rng=streams.stream("traffic")),
        window_s=2.0,
    )

    print(f"fleet           : {N_DEVICES} devices, 1 gateway, SF7, "
          f"period {PERIOD_S:.0f} s (jitter {JITTER_S:.0f} s)")

    clean = runtime.run(PHASE_S)
    stats = clean.contention
    frame_airtime_s = clean.events[0].transmission.airtime_s
    load = offered_load_erlangs(N_DEVICES, PERIOD_S, frame_airtime_s)
    print(f"offered load    : G = {load:.2f} Erlang "
          f"(pure-ALOHA bound exp(-2G) = {pure_aloha_success_probability(load):.2f})")
    print(f"clean phase     : {stats.attempts} frames, "
          f"goodput {clean.goodput_fps:.2f} frames/s, "
          f"collision rate {stats.collision_rate:.2f}, "
          f"delivery {stats.delivery_rate:.2f}")

    attacked = [d.name for d in devices[:N_ATTACKED]]
    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.single_usrp(streams.stream("replayer")),
    )
    world.arm_attack(attack, attacked, delay_s=ATTACK_DELAY_S)
    print(f"\nattack armed against {N_ATTACKED} devices "
          f"(chain FB offset {attack.replayer.chain_fb_offset_hz:+.0f} Hz, "
          f"τ = {ATTACK_DELAY_S:.0f} s)")

    attacked_phase = runtime.run(PHASE_S)
    astats = attacked_phase.contention
    replays = astats.replays_delivered
    hits = sum(
        1
        for e in attacked_phase.events
        if e.kind is EventKind.REPLAY_DELIVERED and replay_detected(e)
    )
    tpr = hits / replays if replays else float("nan")
    print(f"attack phase    : {astats.attempts} frames, "
          f"goodput {attacked_phase.goodput_fps:.2f} frames/s, "
          f"collision rate {astats.collision_rate:.2f}")
    print(f"replay-detection TPR : {tpr:.2f} ({hits}/{replays} replays flagged, "
          f"{astats.suppressed} originals suppressed)")


if __name__ == "__main__":
    main()
