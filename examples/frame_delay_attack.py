#!/usr/bin/env python3
"""The frame delay attack, end to end -- and its detection.

Reproduces the paper's core narrative (Secs. 4, 7, 8.1.1):

1. a victim device transmits; the replayer jams the gateway *inside the
   stealthy window* (the RN2483 silently drops the frame, no OS alert);
2. the eavesdropper records the waveform and hands it to the replayer;
3. after τ = 120 s the replayer re-transmits it -- bits untouched, MIC
   valid, frame counter fresh;
4. a commodity gateway accepts the replay and mis-timestamps every
   reading by τ;
5. the SoftLoRa gateway estimates the replay's frequency bias, sees it
   deviate from the device's profile by the replay chain's offset, and
   drops the frame.

Run:  python examples/frame_delay_attack.py
"""

import numpy as np

from repro import (
    ChirpConfig,
    CommodityGateway,
    DriftingClock,
    EndDevice,
    Oscillator,
    SessionKeys,
    SoftLoRaGateway,
)
from repro.attack import Eavesdropper, FrameDelayAttack, Replayer, StealthyJammer
from repro.sdr.receiver import SdrReceiver


def main() -> None:
    rng = np.random.default_rng(7)
    config = ChirpConfig(spreading_factor=8, sample_rate_hz=0.5e6)

    dev_addr = 0x26012002
    keys = SessionKeys.derive_for_test(dev_addr)
    device = EndDevice(
        name="victim",
        dev_addr=dev_addr,
        keys=keys,
        radio_oscillator=Oscillator.lora_end_device(rng),
        clock=DriftingClock(drift_ppm=40.0),
        spreading_factor=8,
        rng=rng,
    )

    # Two gateways watch the same channel: a commodity one and SoftLoRa.
    naive = CommodityGateway(name="commodity")
    naive.register_device(dev_addr, keys)
    softlora_commodity = CommodityGateway(name="softlora-side")
    softlora_commodity.register_device(dev_addr, keys)
    softlora = SoftLoRaGateway(config=config, commodity=softlora_commodity)
    softlora.bootstrap_fb_profile(dev_addr, [device.fb_hz + e for e in (-20.0, 5.0, 30.0)])

    # The adversary: jammer + eavesdropper + single-USRP replayer.
    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.single_usrp(rng),
        eavesdropper=Eavesdropper(receiver=SdrReceiver(sample_rate_hz=config.sample_rate_hz)),
        rng=rng,
    )
    print(f"replay chain adds {attack.replayer.chain_fb_offset_hz:+.0f} Hz of frequency bias")

    # The attacked uplink.
    t_event = 5000.0
    device.take_reading(333.0, t_event)
    uplink = device.transmit(t_event + 5.0)
    waveform = device.modulate(uplink, config)
    tau = 120.0
    outcome = attack.execute(uplink, delay_s=tau, waveform=waveform)

    windows = attack.jammer.windows_for(uplink.spreading_factor, len(uplink.mac_bytes))
    print(f"\njamming onset {1e3 * (outcome.jam_onset_s - uplink.emission_time_s):.1f} ms "
          f"after frame start -- inside the stealthy window "
          f"[{windows.w1_s * 1e3:.0f}, {windows.w2_s * 1e3:.0f}] ms")
    print(f"gateway-side outcome of the original frame: {outcome.jam_outcome.value} "
          "(no alert raised)")

    # The commodity gateway sees only the replay -- and trusts it.
    naive_view = naive.receive_frame(outcome.replayed.mac_bytes, outcome.replayed.arrival_time_s)
    spoofed = naive_view.readings[0]
    print(f"\ncommodity gateway: {naive_view.status.value}")
    print("  MIC valid, frame counter fresh -- crypto does not help")
    print(f"  reading timestamped at t={spoofed.global_time_s:.1f} s "
          f"(true event: t={t_event:.1f} s  ->  "
          f"spoofed by {spoofed.global_time_s - t_event:+.1f} s)")

    # SoftLoRa checks the frequency bias first.
    softlora_view = softlora.process_frame(
        outcome.replayed.mac_bytes, outcome.replayed.arrival_time_s, outcome.replayed.fb_hz
    )
    print(f"\nSoftLoRa gateway: {softlora_view.status.value}")
    print(f"  {softlora_view.detail}")
    print("  replayed frame dropped; no spoofed timestamp enters the database")


if __name__ == "__main__":
    main()
