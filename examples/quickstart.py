#!/usr/bin/env python3
"""Quickstart: one device, one SoftLoRa gateway, one timestamped uplink.

Walks the full pipeline of the paper on a synthetic capture:

1. an end device (drifting clock, biased radio crystal) buffers two
   sensor readings and transmits them with compact elapsed-time fields;
2. the SDR front end captures the frame at complex baseband with noise;
3. SoftLoRa timestamps the PHY onset (AIC), estimates the transmitter's
   frequency bias (least squares), demodulates and MIC-checks the frame,
   verifies the FB against the device's profile, and reconstructs global
   timestamps for both readings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ChirpConfig,
    CommodityGateway,
    DriftingClock,
    EndDevice,
    IQTrace,
    Oscillator,
    SessionKeys,
    SoftLoRaGateway,
)
from repro.sdr.noise import complex_awgn, noise_power_for_snr


def main() -> None:
    rng = np.random.default_rng(2026)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=1e6)

    # --- the end device -----------------------------------------------------
    dev_addr = 0x26011001
    keys = SessionKeys.derive_for_test(dev_addr)
    device = EndDevice(
        name="water-meter-7",
        dev_addr=dev_addr,
        keys=keys,
        radio_oscillator=Oscillator.lora_end_device(rng),
        clock=DriftingClock(drift_ppm=40.0),  # never synchronized
        spreading_factor=7,
        rng=rng,
    )
    print(f"device radio frequency bias: {device.fb_hz / 1e3:+.2f} kHz "
          f"({device.fb_hz / 869.75e6 * 1e6:+.1f} ppm of the carrier)")

    # --- the SoftLoRa gateway -------------------------------------------------
    commodity = CommodityGateway()
    commodity.register_device(dev_addr, keys)
    gateway = SoftLoRaGateway(config=config, commodity=commodity)
    # Offline FB profile (could equally be learned from clean traffic).
    gateway.bootstrap_fb_profile(dev_addr, [device.fb_hz + e for e in (-25.0, 0.0, 25.0)])

    # --- sensing and transmission ----------------------------------------------
    t_reading_1, t_reading_2 = 1000.0, 1030.0
    device.take_reading(215.0, t_reading_1)  # e.g. 21.5 C in deci-degrees
    device.take_reading(218.0, t_reading_2)
    uplink = device.transmit(1060.0)
    print(f"uplink: {len(uplink.mac_bytes)} MAC bytes, "
          f"airtime {uplink.airtime_s * 1e3:.1f} ms, "
          f"emitted at t={uplink.emission_time_s:.6f} s")

    # --- SDR capture ---------------------------------------------------------
    waveform = device.modulate(uplink, config)
    snr_db = 12.0
    noise_power = noise_power_for_snr(1.0, snr_db)
    pad = 1500
    samples = np.concatenate(
        [np.zeros(pad, dtype=complex), waveform, np.zeros(1024, dtype=complex)]
    )
    samples = samples + complex_awgn(len(samples), noise_power, rng)
    trace = IQTrace(
        samples,
        config.sample_rate_hz,
        start_time_s=uplink.emission_time_s - pad / config.sample_rate_hz,
    )
    print(f"capture: {len(trace)} samples at {snr_db:.0f} dB SNR")

    # --- the SoftLoRa pipeline ---------------------------------------------------
    reception = gateway.process_capture(trace, noise_power=noise_power)
    print(f"\nreception status : {reception.status.value}")
    print(f"PHY timestamp    : {reception.phy_timestamp_s:.9f} s "
          f"(error {(reception.phy_timestamp_s - uplink.emission_time_s) * 1e6:+.2f} µs)")
    print(f"estimated FB     : {reception.fb_hz / 1e3:+.3f} kHz "
          f"(true {device.fb_hz / 1e3:+.3f} kHz)")
    print(f"replay check     : {reception.replay_check.reason}")
    print("\nreconstructed timestamps (sync-free):")
    for reading, truth in zip(reception.readings, (t_reading_1, t_reading_2)):
        print(f"  value {reading.value:6.1f}  at t={reading.global_time_s:10.3f} s "
              f"(true {truth:10.3f} s, error {(reading.global_time_s - truth) * 1e3:+.2f} ms)")
    print("\nno clock synchronization ran on the device; the gateway alone "
          "anchored every reading to global time.")


if __name__ == "__main__":
    main()
