#!/usr/bin/env python3
"""Multi-gateway operation: N gateways, one network server, one verdict.

Architecture::

    device --++--> gateway gw-0 --+
             ++--> gateway gw-1 --+--> NetworkServer --> dedup --> MAC
             ++--> gateway gw-2 --+        |                        |
             ++--> gateway gw-3 --+        +--> FB fusion --> ReplayDetector
                                                (sharded FbDatabase)

A 16-node fleet reports through four gateways placed around the cell.
Every uplink is heard (and FB-estimated) by each in-range gateway; the
network server deduplicates the copies by (DevAddr, FCnt), verifies the
MAC once, fuses the per-gateway FB estimates by inverse-variance
weighting, and issues a single replay verdict from cross-gateway
evidence.  A frame delay attacker then targets four nodes.

Run:  python examples/multi_gateway.py
"""

import numpy as np

from repro.attack import FrameDelayAttack, Replayer, StealthyJammer
from repro.core.softlora import SoftLoRaGateway
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import FusionPolicy, NetworkServer
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.scenarios import build_fleet


def main() -> None:
    streams = RngStreams(42)
    devices = build_fleet(n_devices=16, streams=streams, ring_radius_m=120.0)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(config=config, commodity=CommodityGateway()),
        gateway_position=Position(200.0, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.8)),
        rng=streams.stream("world"),
    )
    for index in range(1, 4):
        angle = 2 * np.pi * index / 4
        world.add_gateway(
            Position(200.0 * float(np.cos(angle)), 200.0 * float(np.sin(angle)), 15.0)
        )
    for device in devices:
        world.add_device(device)
    server = world.attach_server(NetworkServer(fusion=FusionPolicy.INVERSE_VARIANCE))
    print(f"topology: {len(devices)} devices -> {len(world.sites)} gateways -> "
          f"network server ({server.fusion.value} fusion)")

    # Phase 1: clean traffic -- the server learns fused FB profiles.
    period = 60.0
    for round_index in range(4):
        for device in devices:
            device.take_reading(100.0 + round_index, 5.0 + round_index * period)
        world.uplink_batch(request_time_s=6.0 + round_index * period)

    print(f"\nafter 4 clean rounds: {len(server.verdicts)} fused verdicts, "
          f"dedup rate {server.dedup_rate:.2f} copies/uplink, "
          f"{server.malformed} malformed forwards")
    db = server.detector.database
    print(f"sharded FB database: {db.node_count()} nodes over {db.n_shards} shards "
          f"(occupancy {sorted(db.shard_sizes(), reverse=True)[:4]}... )")
    sample = server.verdicts[-1]
    print(f"sample verdict: node {sample.node_id} heard by {sample.n_gateways} gateways, "
          f"fused FB {sample.fused.fb_hz / 1e3:+.2f} kHz "
          f"(sigma {sample.fused.sigma_hz:.1f} Hz, best link {sample.fused.best_gateway_id})")

    # Phase 2: frame delay attack against four nodes.
    attacked = [d.name for d in devices[:4]]
    attack = FrameDelayAttack(
        jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("replayer"))
    )
    world.arm_attack(attack, attacked, delay_s=90.0)
    print(f"\nattack armed against {attacked} "
          f"(chain FB offset {attack.replayer.chain_fb_offset_hz:+.0f} Hz, tau = 90 s)")

    detected, missed, false_alarms, legit = 0, 0, 0, 0
    for round_index in range(4, 10):
        for device in devices:
            device.take_reading(100.0 + round_index, 5.0 + round_index * period)
        events = world.uplink_batch(request_time_s=6.0 + round_index * period)
        for event in events:
            verdict = event.verdict
            if verdict is None:
                continue
            if event.kind is EventKind.REPLAY_DELIVERED:
                detected += verdict.attack_detected
                missed += not verdict.attack_detected
            else:
                legit += 1
                false_alarms += verdict.attack_detected

    print(f"\nattacked frames : {detected + missed} ({detected} detected, {missed} missed)")
    print(f"false alarms    : {false_alarms} on {legit} legitimate fused verdicts")
    print("\nper-node fused verdicts in the last round:")
    for event in events:
        if event.verdict is not None:
            print(f"  {event.device_name:8s} -> {event.verdict.status.value:16s} "
                  f"({event.verdict.n_gateways} gateways)")


if __name__ == "__main__":
    main()
