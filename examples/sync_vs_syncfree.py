#!/usr/bin/env python3
"""Sync-based vs synchronization-free timestamping: the Sec. 3.2 ledger.

Quantifies why the paper rejects clock synchronization for LoRaWAN data
timestamping: sync sessions and in-frame timestamps consume a scarce
duty-cycle and payload budget, while the sync-free scheme costs 18 bits
per reading and nothing on the air.  Then simulates both schemes for an
hour and compares the accuracy they actually deliver.

Run:  python examples/sync_vs_syncfree.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.clock.clocks import DriftingClock
from repro.clock.sync import (
    SyncBasedTimestamping,
    duty_cycle_frame_budget,
    required_sync_interval_s,
    sync_sessions_per_hour,
    timestamp_payload_overhead,
)
from repro.core.timestamping import DeviceRecordBuffer, SyncFreeTimestamper
from repro.phy.airtime import airtime_s


def simulate_sync_free(drift_ppm: float, n_readings: int = 60) -> float:
    """Worst sync-free timestamp error over an hour of readings."""
    clock = DriftingClock(drift_ppm=drift_ppm)
    buffer = DeviceRecordBuffer()
    timestamper = SyncFreeTimestamper(tx_latency_s=3e-3)
    worst = 0.0
    for index in range(n_readings):
        t_event = 60.0 * index
        t_send = t_event + 45.0  # readings buffered for 45 s
        buffer.add(float(index), clock.read(t_event))
        values, ticks = buffer.flush(clock.read(t_send))
        arrival = t_send + 3e-3  # radio latency; propagation is µs
        reading = timestamper.reconstruct(arrival, ticks, values)[0]
        worst = max(worst, abs(reading.global_time_s - t_event))
    return worst


def simulate_sync_based(drift_ppm: float, interval_s: float) -> float:
    clock = DriftingClock(drift_ppm=drift_ppm)
    baseline = SyncBasedTimestamping(
        clock=clock,
        sync_interval_s=interval_s,
        sync_accuracy_s=1e-3,
        rng=np.random.default_rng(3),
    )
    for t in np.arange(0.0, 3600.0, 60.0):
        baseline.timestamp(float(t))
    return baseline.max_abs_error_s()


def main() -> None:
    drift_ppm = 40.0
    bound_s = 10e-3
    airtime = airtime_s(30, 12, ldro=False)
    interval = required_sync_interval_s(bound_s, drift_ppm)

    print(format_table(
        ["cost item", "sync-based", "sync-free"],
        [
            ["clock sync sessions / hour",
             f"{sync_sessions_per_hour(bound_s, drift_ppm):.1f}", "0"],
            ["airtime budget (SF12, 1% duty)",
             f"{duty_cycle_frame_budget(airtime)} frames/h shared with sync", "all for data"],
            ["per-reading time field",
             "8-byte timestamp", "18-bit elapsed time"],
            ["payload overhead (30 B frame)",
             f"{timestamp_payload_overhead(8, 30):.0%}",
             f"{18 / 8 / 30:.1%}"],
            ["device code",
             "sync protocol + timestamping", "subtraction at send time"],
        ],
        title=f"Sec. 3.2 ledger (drift {drift_ppm:.0f} ppm, target < {bound_s * 1e3:.0f} ms)",
    ))

    sync_error = simulate_sync_based(drift_ppm, interval)
    free_error = simulate_sync_free(drift_ppm)
    print()
    print(format_table(
        ["scheme", "worst timestamp error over 1 h"],
        [
            ["sync-based (ideal 250 s resync)", f"{sync_error * 1e3:.2f} ms"],
            ["sync-free (45 s buffering)", f"{free_error * 1e3:.2f} ms"],
        ],
        title="simulated accuracy",
    ))
    print("\nboth meet the paper's 10 ms class of accuracy -- but only one "
          "of them is free on the air. (Security of the free one is the "
          "paper's subject; see examples/frame_delay_attack.py.)")


if __name__ == "__main__":
    main()
