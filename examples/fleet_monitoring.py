#!/usr/bin/env python3
"""A 16-node fleet under attack: run-time FB learning and detection.

Simulates a monitoring deployment like the paper's Fig. 13 fleet: 16
devices report every minute; the SoftLoRa gateway learns each node's
frequency-bias profile from clean traffic, then a frame delay attacker
starts targeting four of the nodes.  Prints the learned FB database and
the per-node detection outcome.

Run:  python examples/fleet_monitoring.py
"""

from repro.attack import FrameDelayAttack, Replayer, StealthyJammer
from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.scenarios import build_fleet


def main() -> None:
    streams = RngStreams(16)
    devices = build_fleet(n_devices=16, streams=streams)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
    commodity = CommodityGateway()
    gateway = SoftLoRaGateway(
        config=config,
        commodity=commodity,
        replay_detector=ReplayDetector(database=FbDatabase()),
    )
    world = LoRaWanWorld(
        gateway=gateway,
        gateway_position=Position(0.0, 0.0, 1.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    for device in devices:
        world.add_device(device)

    # Phase 1: four rounds of clean traffic -- the gateway learns profiles.
    period = 60.0
    for round_index in range(4):
        for device in devices:
            device.take_reading(100.0 + round_index, 5.0 + round_index * period)
            world.uplink(device.name, 6.0 + round_index * period)

    print("learned FB profiles after 4 clean rounds:")
    db = gateway.replay_detector.database
    for node_id in db.known_nodes():
        estimates = db.estimates(node_id)
        print(f"  {node_id}: mean {sum(estimates) / len(estimates) / 1e3:+.2f} kHz "
              f"over {len(estimates)} frames")

    # Phase 2: the attacker targets four nodes.
    attacked = [d.name for d in devices[:4]]
    attack = FrameDelayAttack(
        jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("replayer"))
    )
    world.arm_attack(attack, attacked, delay_s=90.0)
    print(f"\nattack armed against {attacked} "
          f"(chain FB offset {attack.replayer.chain_fb_offset_hz:+.0f} Hz, τ = 90 s)\n")

    detected, missed, false_alarms = 0, 0, 0
    for round_index in range(4, 10):
        for device in devices:
            device.take_reading(100.0 + round_index, 5.0 + round_index * period)
            event = world.uplink(device.name, 6.0 + round_index * period)
            if event.reception is None:
                continue
            flagged = event.reception.status is SoftLoRaStatus.REPLAY_DETECTED
            if event.kind is EventKind.REPLAY_DELIVERED:
                detected += flagged
                missed += not flagged
            else:
                false_alarms += flagged

    total_attacks = detected + missed
    print(f"attacked frames : {total_attacks} ({detected} detected, {missed} missed)")
    print(f"false alarms    : {false_alarms} on "
          f"{sum(1 for e in world.events if e.kind is EventKind.DELIVERED)} legitimate frames")
    print("\nper-node verdicts in the last round:")
    for event in world.events[-16:]:
        if event.reception is not None:
            print(f"  {event.device_name:8s} -> {event.reception.status.value}")


if __name__ == "__main__":
    main()
