"""Packaging for the SoftLoRa reproduction (Gu/Tan/Huang, ICDCS 2020)."""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).with_name("README.md")

setup(
    name="repro-softlora",
    version="1.2.0",
    description=(
        "Reproduction of 'Attack-Aware Data Timestamping in Low-Power "
        "Synchronization-Free LoRaWAN' with a batched capture-processing engine "
        "and a multi-gateway network-server layer"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "hypothesis>=6",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Networking",
    ],
)
