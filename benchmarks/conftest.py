"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper via its
experiment driver, prints the paper-vs-measured rows, and asserts the
paper's qualitative shape.  ``benchmark.pedantic(..., rounds=1)`` is used
throughout: the drivers are full experiments, not micro-kernels.

Sample-rate notes: experiments run at the paper's 2.4 Msps where that is
affordable; the SF12 sweeps use an integral divisor rate (0.5-1 Msps)
which preserves the chirp duration (and therefore estimation resolution)
while keeping regeneration quick -- EXPERIMENTS.md records the setting
used for every number.
"""
