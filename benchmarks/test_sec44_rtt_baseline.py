"""Bench Sec. 4.4: round-trip-timing baseline -- works, but at what cost."""

from repro.experiments.rtt_baseline import run_rtt_baseline


def test_sec44_rtt_baseline(benchmark):
    result = benchmark.pedantic(run_rtt_baseline, rounds=1, iterations=1)
    print()
    print(result.format())

    # The strawman does detect both attack variants...
    assert result.detects_delay
    assert result.detects_loss
    # ...but pays a continuous airtime tax on every single datum,
    assert result.airtime_overhead_ratio > 0.4
    # saturates the gateway's single downlink chain for large fleets,
    assert result.ack_service_fraction[10] == 1.0
    assert result.ack_service_fraction[200] < 0.9
    # while SoftLoRa's FB monitoring costs nothing on the air.
    assert result.softlora_airtime_overhead == 0.0
