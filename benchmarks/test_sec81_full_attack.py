"""Bench Sec. 8.1.1: the full frame delay attack in the building."""

import pytest

from repro.attack.jammer import JammingOutcome
from repro.core.softlora import SoftLoRaStatus
from repro.experiments.attack_e2e import run_attack_e2e


def test_sec81_full_attack(benchmark):
    result = benchmark.pedantic(run_attack_e2e, rounds=1, iterations=1)
    print()
    print(result.format())

    # The cross-building link needs SF >= 8 (SF7 is below its floor).
    assert result.min_viable_sf == 8
    # The jamming lands in the stealthy window: silent drop, no alert.
    assert result.jam_outcome is JammingOutcome.SILENT_DROP
    # Crypto does not help: the commodity gateway accepts the replay...
    assert result.commodity_accepted_replay
    # ...and every reconstructed timestamp is shifted by exactly τ.
    assert result.timestamp_shift_s == pytest.approx(
        result.injected_delay_s, abs=0.05
    )
    # Power control keeps the replay decodable at the gateway yet
    # inaudible beyond the building.
    assert result.replay_within_linear_range
    assert not result.monitor_can_hear_replay
    # SoftLoRa's FB check flags the replay.
    assert result.softlora_status is SoftLoRaStatus.REPLAY_DETECTED
