"""Ablation: the four onset-detection candidates of paper Sec. 6.1.2.

Sweeps all four methods across SNR to justify the paper's design choice
(AIC) quantitatively: the rejected methods fail for structural reasons
(template shape dependence, STFT hop), not tuning.
"""

import numpy as np

from repro.analysis.metrics import timing_error_s
from repro.analysis.report import format_table
from repro.core.onset import (
    AicDetector,
    EnvelopeDetector,
    MatchedFilterDetector,
    SpectrogramOnsetDetector,
)
from repro.experiments.common import synthesize_capture
from repro.phy.chirp import ChirpConfig


def run_ablation(snrs_db=(0.0, 10.0, 20.0, 30.0), n_trials=5, seed=61):
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=2.4e6)
    rng = np.random.default_rng(seed)
    detectors = {
        "aic": AicDetector(),
        "envelope": EnvelopeDetector(),
        "matched_filter": MatchedFilterDetector(config),
        "spectrogram": SpectrogramOnsetDetector(config),
    }
    table = {name: [] for name in detectors}
    for snr in snrs_db:
        errors = {name: [] for name in detectors}
        for _ in range(n_trials):
            capture = synthesize_capture(
                config, rng, snr_db=snr, fb_hz=float(rng.uniform(-25e3, -17e3))
            )
            for name, detector in detectors.items():
                onset = detector.detect(capture.trace, component="i")
                errors[name].append(
                    timing_error_s(onset.time_s, capture.true_onset_time_s) * 1e6
                )
        for name in detectors:
            table[name].append(float(np.mean(errors[name])))
    return list(snrs_db), table


def test_ablation_onset_methods(benchmark):
    snrs, table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    rows = [[name] + [round(v, 1) for v in values] for name, values in sorted(table.items())]
    print(
        format_table(
            ["method"] + [f"{snr:g} dB" for snr in snrs],
            rows,
            title="Ablation -- mean onset error (µs) by method and SNR",
        )
    )

    for i, snr in enumerate(snrs):
        # AIC is the best or tied-best everywhere the paper operates.
        assert table["aic"][i] <= table["envelope"][i] + 0.5
        assert table["aic"][i] < table["spectrogram"][i]
        assert table["aic"][i] < table["matched_filter"][i]
    # The spectrogram's error is bounded below by its ~47 µs hop.
    assert min(table["spectrogram"]) > 10.0
    # The matched filter fails badly even at high SNR (phase/FB shape
    # dependence, Figs. 7-8) -- its flaw is structural.
    assert table["matched_filter"][-1] > 50.0
