"""Bench F10: Fig. 10 -- AIC timestamping error vs received SNR."""

from repro.experiments.fig10_onset_snr import run_fig10


def test_fig10_onset_vs_snr(benchmark):
    result = benchmark.pedantic(
        run_fig10, kwargs={"n_trials": 10}, rounds=1, iterations=1
    )
    print()
    print(result.format())

    # Within the building survey's SNR range (-1..13 dB) the paper
    # expects errors within ~20 µs; ours hold that with margin.
    for snr in (0.0, 5.0, 10.0):
        assert result.error_at(snr) < 20.0
    # Down to -10 dB the pipeline stays within ~35 µs.
    assert result.error_at(-10.0) < 35.0
    # Error grows monotonically-ish as SNR falls (shape of Fig. 10).
    assert result.error_at(-10.0) > result.error_at(10.0)
    assert result.error_at(-20.0) > result.error_at(0.0)
    # High-SNR regime: microsecond-level timestamps.
    assert result.error_at(30.0) < 5.0
