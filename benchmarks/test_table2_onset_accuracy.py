"""Bench T2: Table 2 -- onset error upper bounds, ENV vs AIC, 10 runs."""

from repro.experiments.table2_onset import run_table2


def test_table2_onset_accuracy(benchmark):
    result = benchmark.pedantic(
        run_table2, kwargs={"n_runs": 10}, rounds=1, iterations=1
    )
    print()
    print(result.format())

    # Paper Table 2: AIC errors below 2 µs; envelope errors ~2-10 µs.
    assert result.max_aic_error_us() < 2.0
    assert result.max_env_error_us() < 10.0
    # AIC is the more accurate detector on every run/component.
    for aic, env in zip(
        result.aic_i_errors_us + result.aic_q_errors_us,
        result.env_i_errors_us + result.env_q_errors_us,
    ):
        assert aic < env
