"""Bench F13: Fig. 13 -- 16 nodes' FBs, original vs single-USRP replay."""

from repro.experiments.fig13_fleet_fb import run_fig13


def test_fig13_fleet_fb(benchmark):
    result = benchmark.pedantic(
        run_fig13,
        kwargs={"n_nodes": 16, "frames_per_node": 20},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    assert len(result.original) == 16
    # Original FBs sit in the paper's measured band: -25..-17 kHz.
    for summary in result.original:
        assert -25.5e3 <= summary.mean_hz <= -16.5e3
    # Per-node estimates are stable across 20 frames (tight error bars).
    for summary in result.original:
        assert summary.max_hz - summary.min_hz < 500.0
    # Replayed FBs are consistently LOWER (the USRP's negative offset)...
    for original, replayed in zip(result.original, result.replayed):
        assert replayed.mean_hz < original.mean_hz
    # ...by an amount in the paper's -543..-743 Hz range, well above the
    # 120 Hz estimation resolution.
    for added in result.mean_additional_fb_hz:
        assert -800.0 <= added <= -500.0
        assert abs(added) > 120.0
