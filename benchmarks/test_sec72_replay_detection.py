"""Bench Sec. 7.2: fleet-scale replay detection quality."""

from repro.experiments.detection import run_detection


def test_sec72_replay_detection(benchmark):
    result = benchmark.pedantic(
        run_detection,
        kwargs={"n_devices": 16, "rounds": 16, "attacked": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    # With 120 Hz resolution against >= 543 Hz replay offsets, detection
    # is perfect and benign drift raises no false alarms.
    assert result.stats.detection_rate == 1.0
    assert result.stats.false_alarm_rate == 0.0
    assert result.stats.true_positives >= 40  # 4 devices x 12 attack rounds
    assert result.stats.true_negatives > 100
