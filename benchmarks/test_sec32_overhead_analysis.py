"""Bench Sec. 3.2: sync-based vs sync-free overhead arithmetic."""

import pytest

from repro.experiments.overhead import run_overhead


def test_sec32_overhead_analysis(benchmark):
    result = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    print()
    print(result.format())

    # Every number of the paper's cost example.
    assert result.sync_sessions_per_hour == pytest.approx(14.4)
    assert result.sf12_airtime_s == pytest.approx(1.483, abs=0.01)
    assert result.frames_per_hour == 24
    assert result.timestamp_overhead == pytest.approx(8 / 30)
    assert result.buffer_time_s == pytest.approx(250.0)
    assert result.elapsed_bits == 18
    # The simulated baseline behaves exactly as the arithmetic promises.
    assert result.simulated_max_sync_error_s <= 10e-3 + 1e-9
    assert 13 <= result.simulated_sync_count <= 16
