"""Bench F8: Fig. 8 -- frequency bias shifts the I-trace dip center."""

from repro.experiments.waveforms import run_fig8


def test_fig08_fb_dip_shift(benchmark):
    result = benchmark.pedantic(
        run_fig8, kwargs={"fb_hz": -22.8e3}, rounds=1, iterations=1
    )
    print()
    print(result.format())

    # A negative δ delays the dip (paper Fig. 8); the magnitude tracks
    # the analytic prediction −δ·2^S/W² up to stationary-phase ambiguity.
    assert result.measured_shift_s > 0
    assert abs(result.measured_shift_s - result.predicted_shift_s) < 0.1e-3
