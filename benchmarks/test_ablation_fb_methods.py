"""Ablation: linear-regression vs least-squares FB estimation vs SNR.

Quantifies the paper's Sec. 7.1 trade-off: the O(1) phase regression is
exact at bench SNRs but collapses once unwrap errors set in, while the
least-squares fit holds to -25 dB; the dechirp reduction and the paper's
differential evolution agree wherever both run.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.freq_bias import LeastSquaresFbEstimator, LinearRegressionFbEstimator
from repro.phy.chirp import ChirpConfig, upchirp
from repro.sdr.noise import complex_awgn, noise_power_for_snr

TRUE_FB_HZ = -21.5e3


def run_ablation(snrs_db=(-25.0, -15.0, -5.0, 5.0, 15.0), n_trials=6, seed=62):
    config = ChirpConfig(spreading_factor=12, sample_rate_hz=0.5e6)
    rng = np.random.default_rng(seed)
    chirp = upchirp(config, fb_hz=TRUE_FB_HZ, phase=1.1)
    lr = LinearRegressionFbEstimator(config)
    ls = LeastSquaresFbEstimator(config)
    errors = {"linear_regression": [], "least_squares": []}
    for snr in snrs_db:
        noise_power = noise_power_for_snr(1.0, snr)
        lr_errs, ls_errs = [], []
        for _ in range(n_trials):
            noisy = chirp + complex_awgn(len(chirp), noise_power, rng)
            lr_errs.append(abs(lr.estimate(noisy).fb_hz - TRUE_FB_HZ))
            ls_errs.append(abs(ls.estimate(noisy).fb_hz - TRUE_FB_HZ))
        errors["linear_regression"].append(float(np.mean(lr_errs)))
        errors["least_squares"].append(float(np.mean(ls_errs)))
    return list(snrs_db), errors


def test_ablation_fb_methods(benchmark):
    snrs, errors = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    rows = [
        [name] + [round(v, 1) for v in values] for name, values in sorted(errors.items())
    ]
    print(
        format_table(
            ["estimator"] + [f"{snr:g} dB" for snr in snrs],
            rows,
            title="Ablation -- mean |FB error| (Hz) by estimator and SNR (SF12)",
        )
    )

    # Least squares holds the paper's 120 Hz resolution across the sweep.
    assert max(errors["least_squares"]) < 120.0
    # Both agree at bench SNRs...
    assert errors["linear_regression"][-1] < 120.0
    # ...but the regression collapses at the low end by orders of
    # magnitude (unwrap failure), motivating the least-squares design.
    assert errors["linear_regression"][0] > 20 * errors["least_squares"][0]
