"""Bench P1: batched vs per-capture gateway throughput on a fleet step.

A 64-capture fleet workload (SF7 preambles, 8 chirps + noise pad) runs
through the SoftLoRa DSP chain twice: once capture by capture with the
single-capture APIs (`AicDetector.detect` + `LeastSquaresFbEstimator
.estimate`), once through :class:`repro.pipeline.BatchPipeline`'s
vectorized stages.  Results must agree bitwise; the batched path must
clear 3x the per-capture throughput.  Captures/sec for both paths land
in ``benchmarks/BENCH_pipeline.json`` for trend tracking.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.freq_bias import LeastSquaresFbEstimator
from repro.core.onset import AicDetector
from repro.experiments.common import ScenarioSpec
from repro.phy.chirp import ChirpConfig
from repro.pipeline import BatchPipeline

#: The fleet-step workload: one uplink burst from a 64-node fleet.
N_CAPTURES = 64
SPREADING_FACTOR = 7
SAMPLE_RATE_HZ = 0.25e6
N_CHIRPS = 8
SNR_DB = 20.0
TIMING_ROUNDS = 5
ARTIFACT = Path(__file__).resolve().parent / "BENCH_pipeline.json"


def _build_workload():
    config = ChirpConfig(
        spreading_factor=SPREADING_FACTOR, sample_rate_hz=SAMPLE_RATE_HZ
    )
    rng = np.random.default_rng(64)
    spec = ScenarioSpec(
        config,
        snr_db=SNR_DB,
        fb_hz=lambda r: float(r.uniform(-25e3, -17e3)),
        n_chirps=N_CHIRPS,
    )
    batch, captures = spec.synthesize_batch(rng, N_CAPTURES)
    return config, batch, captures


def _best_of(fn, rounds=TIMING_ROUNDS):
    fn()  # warm caches (chirp references, FFT plans, numpy buffers)
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_pipeline_throughput():
    config, batch, captures = _build_workload()
    detector = AicDetector()
    estimator = LeastSquaresFbEstimator(config)
    engine = BatchPipeline(
        config=config, onset_detector=detector, fb_estimator=estimator
    )
    spc = config.samples_per_chirp

    def per_capture_path():
        out = []
        for capture in captures:
            onset = detector.detect(capture.trace, component="i")
            estimate = estimator.estimate(
                capture.trace.samples[onset.index + spc : onset.index + 2 * spc]
            )
            out.append((onset.time_s, estimate.fb_hz))
        return out

    def batched_path():
        return engine.run(batch)

    loop_s, loop_results = _best_of(per_capture_path)
    batch_s, batch_results = _best_of(batched_path)

    # Correctness first: the batched engine must reproduce the
    # per-capture chain bitwise before its speed means anything.
    for (time_s, fb_hz), outcome in zip(loop_results, batch_results.outcomes):
        assert outcome.phy_timestamp_s == time_s
        assert outcome.fb_estimate.fb_hz == fb_hz

    loop_cps = N_CAPTURES / loop_s
    batch_cps = N_CAPTURES / batch_s
    speedup = batch_cps / loop_cps
    report = {
        "workload": {
            "n_captures": N_CAPTURES,
            "spreading_factor": SPREADING_FACTOR,
            "sample_rate_hz": SAMPLE_RATE_HZ,
            "n_chirps": N_CHIRPS,
            "snr_db": SNR_DB,
            "samples_per_capture": int(batch.n_samples),
        },
        "per_capture_path": {
            "seconds": loop_s,
            "captures_per_second": loop_cps,
        },
        "batched_path": {
            "seconds": batch_s,
            "captures_per_second": batch_cps,
        },
        "speedup": speedup,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"P1 pipeline throughput: per-capture {loop_cps:.0f} cap/s, "
        f"batched {batch_cps:.0f} cap/s, speedup {speedup:.2f}x "
        f"-> {ARTIFACT.name}"
    )
    assert speedup >= 3.0, (
        f"batched path only {speedup:.2f}x the per-capture loop "
        f"({batch_cps:.0f} vs {loop_cps:.0f} captures/sec)"
    )
