"""Bench: runtime throughput (legacy vs columnar) + parallel sweep speedup.

Three measurements land in ``benchmarks/BENCH_runtime.json``:

* **legacy runtime throughput** -- a 500-device single-gateway fleet
  runs five minutes of periodic traffic through
  :class:`repro.sim.FleetRuntime` (scheduling, duty-cycle backoff,
  per-gateway collision resolution, windowed batched delivery);
  reported as simulator events per wall second.
* **columnar runtime throughput** -- the scale cell: a full-mode
  **million-device** fleet is materialized straight from a
  :class:`repro.sim.FleetSpec` (batched column draws, chunked power
  matrix, no per-device objects; ``build_s`` must stay under 10 s) and
  runs one simulated hour through :class:`repro.sim.ColumnarRuntime` in
  counters mode (time-wheel scheduling, struct-of-arrays MAC,
  vectorized collision sweep, no per-frame event objects; the run must
  clear 200k ``events_per_s``).  Peak RSS is recorded alongside so the
  bounded-memory claim is visible in the artifact.
  ``speedup_vs_legacy`` is the same-run events-per-wall-second ratio
  between the two engines; full-scale runs must clear 100x, the tier-1
  smoke cell (200k devices x 10 minutes) 10x.
* **parallel sweep speedup** -- four independent replicates of one
  fleet_scale cell run through :class:`SweepExecutor` serially, twice
  on the process backend (cold spawn, then the same warm persistent
  pool), and once on the thread backend.  All four runs must produce
  identical measurements before any wall-clock number counts; the
  recorded section carries ``n_cpus``, cold-vs-warm pool timings, and
  the sweep's shm-vs-pickle transport bytes alongside the gated
  ``speedup`` (serial over warm-pool).  On a runner with >= 4 cores the
  warm speedup must reach 2x -- on smaller runners the gate is
  *skipped* (recording ``n_cpus``), not silently passed.

The default sizes are smoke sizes (written to the gitignored
``BENCH_runtime_smoke.json``) so tier-1 stays fast; CI's bench job sets
``BENCH_RUNTIME_FULL=1`` to run the paper-scale cells and refresh the
committed ``BENCH_runtime.json``.
"""

import json
import multiprocessing
import os
import resource
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.softlora import SoftLoRaGateway
from repro.experiments.fleet_scale import run_fleet_scale
from repro.parallel import (
    DEFAULT_MIN_SHM_BYTES,
    PayloadPublisher,
    pickled_nbytes,
    shutdown_default_pools,
)
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.sim.columnar import ColumnarRuntime, FleetState
from repro.sim.network import LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import build_fleet, build_fleet_spec
from repro.sim.traffic import PeriodicTrafficModel

FULL = os.environ.get("BENCH_RUNTIME_FULL") == "1"
#: Full-scale runs refresh the committed record; the tier-1 smoke run
#: writes a gitignored sibling so it never churns the committed numbers.
ARTIFACT = Path(__file__).resolve().parent / (
    "BENCH_runtime.json" if FULL else "BENCH_runtime_smoke.json"
)
#: The fleet_scale cell fanned out across workers: the paper-scale
#: 8 x 2000 cell in full mode, a fast miniature for the tier-1 smoke run.
SWEEP_CELL = (8, 2000) if FULL else (2, 100)
N_REPLICATES = 4
SWEEP_ROUNDS = {"clean_rounds": 2, "attack_rounds": 1}
N_DEVICES = 500
TRAFFIC_DURATION_S = 300.0
#: The columnar scale cell: one million spec-built devices x 1 simulated
#: hour in full mode, a 200k-device x 10-minute variant for the smoke
#: run.  Each device reports roughly once per run, so the full cell
#: sweeps ~1M frames through ~3600 one-second collision windows.
COLUMNAR_N_DEVICES = 1_000_000 if FULL else 200_000
COLUMNAR_DURATION_S = 3600.0 if FULL else 600.0
COLUMNAR_PERIOD_S = 3600.0 if FULL else 600.0
COLUMNAR_JITTER_S = 60.0 if FULL else 30.0
COLUMNAR_WINDOW_S = 1.0
#: Gated ceilings/floors for the full-scale cell: the spec construction
#: must build the million-row world in bounded time, and the counters
#: sweep must sustain paper-scale throughput.
BUILD_S_CEILING = 10.0
EVENTS_PER_S_FLOOR = 200_000.0
#: Events-per-wall-second ratio the columnar engine must clear over the
#: legacy runtime measured in the same process.  The ratio is
#: machine-relative, so the gate holds on slow runners too.
SPEEDUP_FLOOR = 100.0 if FULL else 10.0

_COMPARED_FIELDS = (
    "uplink_attempts",
    "resolved_uplinks",
    "delivery_rate",
    "dedup_rate",
    "collision_rate",
    "goodput_fps",
    "fused_fb_mae_hz",
    "best_single_fb_mae_hz",
    "detection_tpr",
    "detection_fpr",
    "detection_latency_s",
)


def _build_bench_world(n_devices: int, seed: int) -> tuple[LoRaWanWorld, RngStreams]:
    streams = RngStreams(seed)
    devices = build_fleet(n_devices=n_devices, streams=streams, ring_radius_m=400.0)
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(
            config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
            commodity=CommodityGateway(),
        ),
        gateway_position=Position(0.0, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    for device in devices:
        world.add_device(device)
    return world, streams


def _measure_runtime_throughput() -> dict:
    world, streams = _build_bench_world(N_DEVICES, seed=1234)
    runtime = FleetRuntime(
        world,
        PeriodicTrafficModel(period_s=120.0, jitter_s=30.0, rng=streams.stream("traffic")),
        window_s=2.0,
    )
    report = runtime.run(TRAFFIC_DURATION_S)
    stats = report.contention
    return {
        "n_devices": N_DEVICES,
        "sim_duration_s": TRAFFIC_DURATION_S,
        "frames_transmitted": stats.attempts,
        "sim_events": report.sim_events,
        "wall_s": report.wall_s,
        "events_per_s": report.events_per_s,
        "frames_per_wall_s": stats.attempts / report.wall_s,
        "collision_rate": stats.collision_rate,
        "goodput_fps": report.goodput_fps,
    }


def _measure_columnar_throughput() -> dict:
    streams = RngStreams(1234)
    # The build timer covers the whole world materialization: the spec,
    # the device-less world, and the columnar state (batched column
    # draws + chunked power matrix) -- no per-device objects anywhere.
    build0 = time.perf_counter()
    spec = build_fleet_spec(n_devices=COLUMNAR_N_DEVICES, seed=1234, ring_radius_m=400.0)
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(
            config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
            commodity=CommodityGateway(),
        ),
        gateway_position=Position(0.0, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    state = FleetState.from_spec(spec, world)
    build_s = time.perf_counter() - build0
    runtime = ColumnarRuntime(
        world,
        PeriodicTrafficModel(
            period_s=COLUMNAR_PERIOD_S,
            jitter_s=COLUMNAR_JITTER_S,
            rng=streams.stream("traffic"),
        ),
        window_s=COLUMNAR_WINDOW_S,
        mode="counters",
        state=state,
    )
    report = runtime.run(COLUMNAR_DURATION_S)
    stats = report.contention
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "n_devices": COLUMNAR_N_DEVICES,
        "sim_duration_s": COLUMNAR_DURATION_S,
        "period_s": COLUMNAR_PERIOD_S,
        "window_s": COLUMNAR_WINDOW_S,
        "build_s": build_s,
        "peak_rss_mb": peak_rss_mb,
        "frames_transmitted": stats.attempts,
        "sim_events": report.sim_events,
        "wall_s": report.wall_s,
        "events_per_s": report.events_per_s,
        "frames_per_wall_s": stats.attempts / report.wall_s,
        "collision_rate": stats.collision_rate,
        "goodput_fps": report.goodput_fps,
    }


def _run_replicated_sweep(n_workers: int, backend: str = "process"):
    n_gateways, n_devices = SWEEP_CELL
    start = time.perf_counter()
    result = run_fleet_scale(
        gateway_counts=(n_gateways,),
        device_counts=(n_devices,),
        replicates=N_REPLICATES,
        n_workers=n_workers,
        backend=backend,
        **SWEEP_ROUNDS,
    )
    return time.perf_counter() - start, result


def _measure_shm_transport() -> dict:
    """Pickled task bytes for a power-matrix payload, with and without shm.

    The replicated fleet cells ship only small parameter payloads, so
    this measures the transport on the payload shape shared memory
    exists for: a ``(50k, 8)`` float64 power matrix (a mid-size
    fleet_scale cell's dominant array).
    """
    matrix = np.arange(50_000 * 8, dtype=np.float64).reshape(50_000, 8)
    payload = {"powers": matrix, "threshold_db": 6.0}
    without_shm = pickled_nbytes(payload)
    publisher = PayloadPublisher(DEFAULT_MIN_SHM_BYTES)
    skeleton = publisher.strip(payload)
    pack = publisher.seal()
    try:
        with_shm = pickled_nbytes(publisher.fill(skeleton))
        shm_bytes = pack.nbytes if pack is not None else 0
    finally:
        if pack is not None:
            pack.close()
            pack.unlink()
    return {
        "array_bytes": int(matrix.nbytes),
        "pickled_without_shm": int(without_shm),
        "pickled_with_shm": int(with_shm),
        "shm_block_bytes": int(shm_bytes),
    }


def _merge_artifact(section: str, payload: dict) -> dict:
    """Fold one section into the artifact, keeping the others."""
    report = {}
    if ARTIFACT.exists():
        report = json.loads(ARTIFACT.read_text())
    report[section] = payload
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_runtime_vs_columnar_throughput():
    legacy = _measure_runtime_throughput()
    columnar = _measure_columnar_throughput()
    speedup = columnar["events_per_s"] / legacy["events_per_s"]
    columnar["speedup_vs_legacy"] = speedup
    columnar["full_scale"] = FULL

    _merge_artifact("runtime", legacy)
    _merge_artifact("columnar", columnar)

    print()
    print(
        f"legacy runtime: {legacy['events_per_s']:.0f} events/s "
        f"({legacy['n_devices']} devices, collision rate "
        f"{legacy['collision_rate']:.2f})"
    )
    print(
        f"columnar runtime: {columnar['events_per_s']:.0f} events/s "
        f"({columnar['n_devices']} devices x {columnar['sim_duration_s']:.0f}s, "
        f"{columnar['frames_transmitted']} frames, build {columnar['build_s']:.1f}s, "
        f"run {columnar['wall_s']:.1f}s, peak rss {columnar['peak_rss_mb']:.0f} MB) "
        f"-> {speedup:.0f}x legacy -> {ARTIFACT.name}"
    )

    assert legacy["events_per_s"] > 0
    assert columnar["frames_transmitted"] > 0
    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar engine only {speedup:.1f}x the legacy runtime "
        f"(floor {SPEEDUP_FLOOR:.0f}x at {'full' if FULL else 'smoke'} scale)"
    )
    if FULL:
        assert columnar["build_s"] <= BUILD_S_CEILING, (
            f"spec build took {columnar['build_s']:.1f}s "
            f"(ceiling {BUILD_S_CEILING:.0f}s at 1M devices)"
        )
        assert columnar["events_per_s"] >= EVENTS_PER_S_FLOOR, (
            f"counters sweep only {columnar['events_per_s']:.0f} events/s "
            f"(floor {EVENTS_PER_S_FLOOR:.0f} at 1M devices x 1h)"
        )


def test_parallel_sweep_speedup():
    n_cpus = multiprocessing.cpu_count()
    # Fan out across every available core; at least two workers so the
    # spawn pool is genuinely exercised even on a single-core runner
    # (where the speedup gate does not apply).
    n_workers = max(2, n_cpus)
    serial_s, serial = _run_replicated_sweep(n_workers=1)
    # Cold first: tear down any warm default pool so the recorded
    # cold_pool_s honestly includes the spawn + warm-import cost, then
    # run again on the surviving pool for the warm number.
    shutdown_default_pools()
    cold_s, cold = _run_replicated_sweep(n_workers=n_workers)
    warm_s, warm = _run_replicated_sweep(n_workers=n_workers)
    thread_s, threaded = _run_replicated_sweep(n_workers=n_workers, backend="thread")

    # Correctness first: neither backend, worker count, nor pool warmth
    # may change a single measurement before the wall-clock means
    # anything.
    for variant in (cold, warm, threaded):
        for cell_a, cell_b in zip(serial.cells, variant.cells):
            for field_name in _COMPARED_FIELDS:
                assert getattr(cell_a, field_name) == getattr(cell_b, field_name), field_name

    speedup = serial_s / warm_s
    _merge_artifact(
        "parallel_sweep",
        {
            "cell": {"n_gateways": SWEEP_CELL[0], "n_devices": SWEEP_CELL[1]},
            "replicates": N_REPLICATES,
            "full_scale": FULL,
            "n_cpus": n_cpus,
            "n_workers": n_workers,
            "serial_s": serial_s,
            "cold_pool_s": cold_s,
            "warm_pool_s": warm_s,
            "thread_s": thread_s,
            "parallel_s": warm_s,
            "speedup": speedup,
            "shm_transport": _measure_shm_transport(),
        },
    )

    print()
    print(
        f"parallel sweep ({SWEEP_CELL[0]}x{SWEEP_CELL[1]} cell x{N_REPLICATES}): "
        f"serial {serial_s:.1f}s, {n_workers} workers cold {cold_s:.1f}s / "
        f"warm {warm_s:.1f}s / threads {thread_s:.1f}s, "
        f"speedup {speedup:.2f}x on {n_cpus} cpus -> {ARTIFACT.name}"
    )

    if n_cpus < 4:
        pytest.skip(f"parallel speedup gate needs >= 4 cpus, have {n_cpus}")
    assert speedup >= 2.0, (
        f"parallel sweep only {speedup:.2f}x with {n_workers} workers on {n_cpus} cpus"
    )
