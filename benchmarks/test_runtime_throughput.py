"""Bench: event-driven runtime throughput + parallel sweep speedup.

Two measurements land in ``benchmarks/BENCH_runtime.json``:

* **runtime throughput** -- a 500-device single-gateway fleet runs five
  minutes of periodic traffic through :class:`repro.sim.FleetRuntime`
  (scheduling, duty-cycle backoff, per-gateway collision resolution,
  windowed batched delivery); reported as simulator events per wall
  second and frames per wall second.
* **parallel sweep speedup** -- four independent replicates of one
  fleet_scale cell run through :class:`SweepExecutor` serially and with
  spawn workers.  Results must be identical at both worker counts
  (pinned here); wall-clock speedup is recorded and, on a runner with
  >= 4 cores, must reach 2x.  The default cell is a smoke size (written
  to the gitignored ``BENCH_runtime_smoke.json``) so tier-1 stays fast;
  CI's bench job sets ``BENCH_RUNTIME_FULL=1`` to run the paper-scale
  8-gateway x 2000-device cell and refresh ``BENCH_runtime.json``.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

from repro.core.softlora import SoftLoRaGateway
from repro.experiments.fleet_scale import run_fleet_scale
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.sim.network import LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import build_fleet
from repro.sim.traffic import PeriodicTrafficModel

FULL = os.environ.get("BENCH_RUNTIME_FULL") == "1"
#: Full-scale runs refresh the committed record; the tier-1 smoke run
#: writes a gitignored sibling so it never churns the committed numbers.
ARTIFACT = Path(__file__).resolve().parent / (
    "BENCH_runtime.json" if FULL else "BENCH_runtime_smoke.json"
)
#: The fleet_scale cell fanned out across workers: the paper-scale
#: 8 x 2000 cell in full mode, a fast miniature for the tier-1 smoke run.
SWEEP_CELL = (8, 2000) if FULL else (2, 100)
N_REPLICATES = 4
SWEEP_ROUNDS = {"clean_rounds": 2, "attack_rounds": 1}
N_DEVICES = 500
TRAFFIC_DURATION_S = 300.0

_COMPARED_FIELDS = (
    "uplink_attempts",
    "resolved_uplinks",
    "delivery_rate",
    "dedup_rate",
    "collision_rate",
    "goodput_fps",
    "fused_fb_mae_hz",
    "best_single_fb_mae_hz",
    "detection_tpr",
    "detection_fpr",
    "detection_latency_s",
)


def _measure_runtime_throughput() -> dict:
    streams = RngStreams(1234)
    devices = build_fleet(n_devices=N_DEVICES, streams=streams, ring_radius_m=400.0)
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(
            config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
            commodity=CommodityGateway(),
        ),
        gateway_position=Position(0.0, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    for device in devices:
        world.add_device(device)
    runtime = FleetRuntime(
        world,
        PeriodicTrafficModel(period_s=120.0, jitter_s=30.0, rng=streams.stream("traffic")),
        window_s=2.0,
    )
    report = runtime.run(TRAFFIC_DURATION_S)
    stats = report.contention
    return {
        "n_devices": N_DEVICES,
        "sim_duration_s": TRAFFIC_DURATION_S,
        "frames_transmitted": stats.attempts,
        "sim_events": report.sim_events,
        "wall_s": report.wall_s,
        "events_per_s": report.events_per_s,
        "frames_per_wall_s": stats.attempts / report.wall_s,
        "collision_rate": stats.collision_rate,
        "goodput_fps": report.goodput_fps,
    }


def _run_replicated_sweep(n_workers: int):
    n_gateways, n_devices = SWEEP_CELL
    start = time.perf_counter()
    result = run_fleet_scale(
        gateway_counts=(n_gateways,),
        device_counts=(n_devices,),
        replicates=N_REPLICATES,
        n_workers=n_workers,
        **SWEEP_ROUNDS,
    )
    return time.perf_counter() - start, result


def test_runtime_throughput_and_parallel_speedup():
    throughput = _measure_runtime_throughput()

    n_cpus = multiprocessing.cpu_count()
    # At least two workers so the spawn pool is genuinely exercised even
    # on a single-core runner (where the speedup gate does not apply).
    n_workers = max(2, min(4, n_cpus))
    serial_s, serial = _run_replicated_sweep(n_workers=1)
    parallel_s, parallel = _run_replicated_sweep(n_workers=n_workers)

    # Correctness first: the worker fan-out must not change a single
    # measurement before its wall-clock means anything.
    for cell_a, cell_b in zip(serial.cells, parallel.cells):
        for field_name in _COMPARED_FIELDS:
            assert getattr(cell_a, field_name) == getattr(cell_b, field_name), field_name

    speedup = serial_s / parallel_s
    report = {
        "runtime": throughput,
        "parallel_sweep": {
            "cell": {"n_gateways": SWEEP_CELL[0], "n_devices": SWEEP_CELL[1]},
            "replicates": N_REPLICATES,
            "full_scale": FULL,
            "n_cpus": n_cpus,
            "n_workers": n_workers,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
        },
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"runtime throughput: {throughput['events_per_s']:.0f} events/s "
        f"({throughput['frames_per_wall_s']:.0f} frames/s wall, "
        f"collision rate {throughput['collision_rate']:.2f})"
    )
    print(
        f"parallel sweep ({SWEEP_CELL[0]}x{SWEEP_CELL[1]} cell x{N_REPLICATES}): "
        f"serial {serial_s:.1f}s, {n_workers} workers {parallel_s:.1f}s, "
        f"speedup {speedup:.2f}x on {n_cpus} cpus -> {ARTIFACT.name}"
    )

    assert throughput["events_per_s"] > 0
    if n_cpus >= 4:
        assert speedup >= 2.0, (
            f"parallel sweep only {speedup:.2f}x with {n_workers} workers "
            f"on {n_cpus} cpus"
        )
