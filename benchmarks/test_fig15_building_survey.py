"""Bench F15: Fig. 15 -- building SNR survey + timing-error heat map.

All 51 accessible survey positions at the paper's SF12 (1 Msps capture
rate: integral samples per chirp, ~1 µs grid -- comfortably inside the
sub-10 µs claim being verified).
"""

from repro.experiments.fig15_building import run_fig15


def test_fig15_building_survey(benchmark):
    result = benchmark.pedantic(
        run_fig15, kwargs={"sample_rate_hz": 1e6}, rounds=1, iterations=1
    )
    print()
    print(result.format())

    assert len(result.cells) == 51
    # Surveyed SNR spans the paper's -1..13 dB.
    lo, hi = result.snr_range_db()
    assert lo >= -1.5 and hi <= 13.5
    # The receiver's own SNR measurement (noise profile + total power)
    # agrees with the link budget.
    for cell in result.cells:
        assert abs(cell.measured_snr_db - cell.link_snr_db) < 2.0
    # Sub-10 µs signal timestamping everywhere in the building.
    assert result.max_timing_error_us() < 10.0
    # SNR decays along the building's long axis on the fixed node's floor.
    floor3 = {c.column: c.link_snr_db for c in result.cells if c.floor == 3}
    assert floor3["A2"] > floor3["B2"] > floor3["C2"]
