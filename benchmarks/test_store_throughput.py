"""Bench: durable FB store throughput and lookup latency at scale.

Three measurements over one generated node population, all against the
daemon's ``--store sqlite:PATH?cache=N`` stack (an
:class:`~repro.server.store.cache.LruCachedStore` over a WAL-mode
:class:`~repro.server.store.sqlite.SqliteFbStore`):

* **load** -- bulk-record the whole population (full scale: 20k nodes
  x 50 estimates = 1M device records) in dedup-window-sized batches,
  reporting sustained records/s;
* **lookup** -- per-call ``interval()`` latency on the *bare* SQLite
  store (cold path, no LRU in front) across a node sample, reporting
  p50/p99 microseconds with the full record population on disk;
* **verdicts** -- the same check stream judged by a
  :class:`~repro.core.detector.ReplayDetector` over the in-memory
  :class:`~repro.core.detector.FbDatabase` and over the durable stack,
  asserting the verdict streams are bit-identical and reporting the
  machine-relative ``verdicts.ratio_vs_memory``.

The report lands in ``benchmarks/BENCH_store.json`` (tier-1 smoke: a
10k-record miniature into the gitignored ``BENCH_store_smoke.json``).
CI gates ``verdicts.ratio_vs_memory`` (higher is better) and
``lookup.p99_us`` (lower is better) via ``check_bench_regression.py``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.detector import FbDatabase, ReplayDetector
from repro.server.store import LruCachedStore, SqliteFbStore

FULL = os.environ.get("BENCH_RUNTIME_FULL") == "1"
ARTIFACT = Path(__file__).resolve().parent / (
    "BENCH_store.json" if FULL else "BENCH_store_smoke.json"
)
#: (n_nodes, history_len, lookup_samples, n_checks, cache_nodes) per mode.
SCALE = (20_000, 50, 4_000, 60_000, 4_096) if FULL else (2_000, 5, 500, 5_000, 512)
#: Records per load transaction -- the dedup-window analogue.
BATCH_NODES = 500


def test_store_throughput(tmp_path):
    n_nodes, history_len, lookup_samples, n_checks, cache_nodes = SCALE
    n_records = n_nodes * history_len
    rng = np.random.default_rng(7)
    node_ids = [f"{0x2600_0000 + i:08x}" for i in range(n_nodes)]
    # Per-node FB centers ~ U(-150, 150) kHz, estimates jittered +-40 Hz.
    centers = rng.uniform(-150e3, 150e3, n_nodes)
    jitter = rng.normal(0.0, 15.0, (n_nodes, history_len))

    store = LruCachedStore(
        SqliteFbStore(tmp_path / "bench.sqlite", history_len=history_len),
        max_nodes=cache_nodes,
    )

    # -- load: 1M records in window-sized transactions ----------------------
    start = time.perf_counter()
    for chunk in range(0, n_nodes, BATCH_NODES):
        with store.batch():
            for i in range(chunk, min(chunk + BATCH_NODES, n_nodes)):
                node, center = node_ids[i], centers[i]
                for k in range(history_len):
                    store.record(node, center + jitter[i, k], float(k))
    load_wall_s = time.perf_counter() - start
    store.flush()
    assert store.node_count() == n_nodes

    # -- lookup: per-call interval latency on the bare SQLite file ----------
    bare = store.backing
    sample = rng.choice(n_nodes, size=lookup_samples, replace=True)
    latencies_us = np.empty(lookup_samples)
    for j, i in enumerate(sample):
        node = node_ids[i]
        t0 = time.perf_counter()
        interval = bare.interval(node, 30.0)
        latencies_us[j] = (time.perf_counter() - t0) * 1e6
        assert interval is not None
    p50_us = float(np.percentile(latencies_us, 50))
    p99_us = float(np.percentile(latencies_us, 99))

    # -- verdicts: durable stack vs in-memory reference, bit for bit --------
    check_nodes = rng.choice(n_nodes, size=n_checks, replace=True)
    check_fb = centers[check_nodes] + rng.normal(0.0, 60.0, n_checks)

    def judge(database, preload):
        detector = ReplayDetector(database=database)
        if preload:  # mirror the persistent store's on-disk population
            for i in range(n_nodes):
                for k in range(history_len):
                    database.record(node_ids[i], centers[i] + jitter[i, k], float(k))
        start = time.perf_counter()
        verdicts = [
            detector.check(node_ids[i], fb, time_s=float(j)).is_replay
            for j, (i, fb) in enumerate(zip(check_nodes, check_fb))
        ]
        return verdicts, time.perf_counter() - start

    memory_verdicts, memory_wall_s = judge(FbDatabase(history_len=history_len), True)
    store_verdicts, store_wall_s = judge(store, False)
    bit_identical = store_verdicts == memory_verdicts
    memory_rate = n_checks / memory_wall_s
    store_rate = n_checks / store_wall_s
    ratio = store_rate / memory_rate

    cache = store.stats()
    report = {
        "scale": {
            "n_nodes": n_nodes,
            "history_len": history_len,
            "n_records": n_records,
            "cache_nodes": cache_nodes,
        },
        "full_scale": FULL,
        "load": {
            "wall_s": load_wall_s,
            "records_per_s": n_records / load_wall_s,
        },
        "lookup": {
            "samples": lookup_samples,
            "p50_us": p50_us,
            "p99_us": p99_us,
        },
        "verdicts": {
            "checks": n_checks,
            "memory_per_s": memory_rate,
            "store_per_s": store_rate,
            # The regression-gated ratio: durable-stack verdict
            # throughput as a fraction of the in-memory ceiling
            # (machine-relative, so differing CI runners compare fairly).
            "ratio_vs_memory": ratio,
        },
        "cache": cache.as_dict(),
        "bit_identical": bit_identical,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    store.close()

    print()
    print(
        f"store bench ({n_nodes} nodes x {history_len} = {n_records} records): "
        f"load {report['load']['records_per_s']:.0f} rec/s, "
        f"lookup p99 {p99_us:.0f}us, "
        f"verdicts {store_rate:.0f}/s vs memory {memory_rate:.0f}/s "
        f"(ratio {ratio:.3f}) -> {ARTIFACT.name}"
    )

    assert bit_identical, "durable-stack verdicts diverged from in-memory"
    assert report["load"]["records_per_s"] > 1_000.0
    assert p99_us < 100_000.0, f"p99 lookup {p99_us:.0f}us is pathological"
