"""Bench F11: Fig. 11 -- I(t) for δ = ±25 kHz."""

from repro.experiments.waveforms import run_fig11


def test_fig11_fb_waveforms(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    print()
    print(result.format())

    # Opposite biases shift the dip (axis of symmetry) in opposite
    # directions -- the Fig. 11 visual the estimators exploit.
    assert result.negative.measured_shift_s > 0.1e-3
    assert result.positive.measured_shift_s < -0.1e-3
