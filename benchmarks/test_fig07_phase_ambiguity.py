"""Bench F7: Fig. 7 -- the I waveform depends on the unknown phase θ."""

import numpy as np

from repro.experiments.waveforms import run_fig7


def test_fig07_phase_ambiguity(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    print()
    print(result.format())

    # θ=π exactly negates the θ=0 trace: no fixed real template exists.
    np.testing.assert_allclose(result.i_theta_zero, -result.i_theta_pi, atol=1e-9)
    assert result.max_abs_difference > 1.9
    assert result.rms_difference > 1.0
