"""Bench F14: Fig. 14 -- least-squares FB error vs SNR, two noise types.

Runs at the paper's SF12 with a 0.5 Msps capture rate (integral samples
per chirp; the chirp duration -- which sets the estimation resolution --
is unchanged; see conftest note).
"""

from repro.experiments.fig14_ls_snr import run_fig14


def test_fig14_ls_fb_vs_snr(benchmark):
    result = benchmark.pedantic(
        run_fig14,
        kwargs={"n_trials": 8, "sample_rate_hz": 0.5e6},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    # The paper's headline: errors below 120 Hz (0.14 ppm) down to -25 dB
    # for both Gaussian and real-environment noise.
    assert result.max_error_hz() < 120.0
    # Both noise conditions covered across the full sweep.
    assert result.snrs_db[0] == -25.0
    assert len(result.gaussian_errors_hz) == len(result.snrs_db)
    assert len(result.real_errors_hz) == len(result.snrs_db)
