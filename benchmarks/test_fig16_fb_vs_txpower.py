"""Bench F16: Fig. 16 -- estimated FB vs end-device transmission power."""

from repro.experiments.fig16_txpower import run_fig16


def test_fig16_fb_vs_txpower(benchmark):
    result = benchmark.pedantic(
        run_fig16, kwargs={"frames_per_point": 6}, rounds=1, iterations=1
    )
    print()
    print(result.format())

    assert len(result.tx_powers_dbm) == 7  # the paper's 3.6..10.4 dBm sweep
    # TX power has little impact on any observer's FB estimate.
    assert result.power_sensitivity_hz("gateway_direct") < 200.0
    assert result.power_sensitivity_hz("eavesdropper") < 200.0
    assert result.power_sensitivity_hz("gateway_replayed") < 200.0
    # Eavesdropper and gateway read different FBs (different δRx).
    gap = result.eavesdropper[0].median - result.gateway_direct[0].median
    assert abs(gap) > 200.0
    # The dual-USRP replay sits ~2 kHz from the direct row (Sec. 8.1.4).
    separation = result.replay_separation_hz()
    assert -2600.0 < separation < -1400.0
    assert abs(separation) > 10 * 120.0  # far beyond estimation resolution
