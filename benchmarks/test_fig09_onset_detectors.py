"""Bench F9: Fig. 9 -- envelope-ratio and AIC onset picks in action."""

from repro.experiments.fig09_detectors import run_fig9


def test_fig09_onset_detectors(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    print()
    print(result.format())

    # The two adopted detectors land close to the truth...
    assert result.errors_us["aic"] < 2.0
    assert result.errors_us["envelope"] < 10.0
    # ...and outperform both rejected candidates on the same capture.
    assert result.errors_us["spectrogram"] > result.errors_us["aic"]
    assert result.errors_us["matched_filter"] > result.errors_us["aic"]
    # The ratio curve peaks hard at the onset (Fig. 9a's visual).
    assert max(result.ratio_curve) > 2.0
