"""Bench: closed-loop ADR convergence at deployment scale.

One ``adr_convergence`` cell -- all devices cold-started at SF12 under
the :class:`~repro.server.AdrController` loop -- runs end to end
(baseline fleet, convergence rounds, post-convergence measurement,
frame-delay attack) and lands in ``benchmarks/BENCH_adr.json``:

* **goodput gain** (``speedup``) -- converged-fleet goodput over the
  ADR-disabled all-SF12 baseline; this is the regression-gated ratio
  (machine-relative, like the pipeline bench's batched-over-loop
  speedup), wired into ``check_bench_regression.py --bench-dir``;
* **convergence** -- median final SF, converged fraction, the
  LinkADRReq budget, and median convergence time;
* **detection** -- replay TPR/FPR on the converged multi-SF fleet.

The tier-1 smoke run measures a small cell into the gitignored
``BENCH_adr_smoke.json``; CI's bench job sets ``BENCH_RUNTIME_FULL=1``
to run the paper-scale 8-gateway x 2000-device cell and refresh the
committed ``BENCH_adr.json``.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments.adr_convergence import run_adr_convergence

FULL = os.environ.get("BENCH_RUNTIME_FULL") == "1"
ARTIFACT = Path(__file__).resolve().parent / (
    "BENCH_adr.json" if FULL else "BENCH_adr_smoke.json"
)
#: The paper-scale cell in full mode, a fast miniature for tier-1.
CELL = (8, 2000) if FULL else (2, 100)
MAX_ADR_ROUNDS = 18 if FULL else 8


def test_adr_convergence_throughput():
    n_gateways, n_devices = CELL
    start = time.perf_counter()
    result = run_adr_convergence(
        gateway_counts=(n_gateways,),
        fleet_sizes=(n_devices,),
        sf_mixes=("sf12",),
        max_adr_rounds=MAX_ADR_ROUNDS,
    )
    wall_s = time.perf_counter() - start
    cell = result.cells[0]

    report = {
        "cell": {"n_gateways": n_gateways, "n_devices": n_devices, "sf_mix": "sf12"},
        "full_scale": FULL,
        "wall_s": wall_s,
        "median_final_sf": cell.median_final_sf,
        "converged_fraction": cell.converged_fraction,
        "median_convergence_s": cell.median_convergence_s,
        "commands_sent": cell.commands_sent,
        "commands_dropped": cell.commands_dropped,
        "baseline_goodput_fps": cell.baseline_goodput_fps,
        "converged_goodput_fps": cell.converged_goodput_fps,
        "converged_collision_rate": cell.converged_collision_rate,
        "tpr_after": cell.tpr_after,
        "fpr_after": cell.fpr_after,
        # The regression-gated ratio: converged over baseline goodput.
        "speedup": cell.goodput_gain,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"adr bench ({n_gateways}x{n_devices} sf12 cell): "
        f"goodput {cell.baseline_goodput_fps:.3f} -> {cell.converged_goodput_fps:.3f} f/s "
        f"(gain {cell.goodput_gain:.2f}x), median SF {cell.median_final_sf:.0f}, "
        f"TPR {cell.tpr_after:.2f}, wall {wall_s:.1f}s -> {ARTIFACT.name}"
    )

    # The loop must actually retune the fleet and keep the defense intact.
    assert cell.median_final_sf < 12
    assert cell.commands_sent > 0
    assert cell.goodput_gain > 1.0
    assert cell.tpr_after >= 0.85
    assert cell.fpr_after <= 0.01
    if FULL:
        # The acceptance bar for the paper-scale cell: the converged
        # fleet at least doubles the all-SF12 baseline's goodput.
        assert cell.goodput_gain >= 2.0
