#!/usr/bin/env python3
"""Benchmark regression gate over a recorded speedup ratio.

Compares a freshly generated bench artifact (e.g. ``BENCH_pipeline.json``
written by ``benchmarks/test_pipeline_throughput.py``) against a baseline
copy of the committed one and fails when the gated *speedup* ratio
regresses by more than the tolerance.  ``--metric`` selects the ratio by
dot-path (default the top-level ``speedup``; the runtime bench gates
``columnar.speedup_vs_legacy``).  Speedup ratios are machine-relative,
so the gate is meaningful on CI runners whose absolute throughput
differs from the committed numbers.

``--direction`` picks the improvement sense: ``max`` (default) gates a
higher-is-better ratio and fails when the fresh value drops below
``baseline * (1 - tolerance)``; ``min`` gates a lower-is-better cost
(e.g. ``--metric columnar.build_s --direction min``) and fails when the
fresh value climbs above ``baseline * (1 + tolerance)``.

``--match`` names a dot-path that must hold the *same* value in both
reports for the comparison to mean anything (e.g. ``--match
parallel_sweep.n_cpus``: a parallel speedup measured on a 4-core runner
is incomparable to a baseline recorded on 1 core).  On a mismatch the
gate prints ``SKIPPED`` and exits 0 -- an honest skip, not a silent
pass of a meaningless comparison.

All bench artifacts live under ``benchmarks/`` (``--bench-dir``);
relative ``--baseline`` / ``--fresh`` paths resolve against it.

Usage::

    cp benchmarks/BENCH_pipeline.json /tmp/bench_baseline.json  # before the run
    pytest benchmarks/test_pipeline_throughput.py    # rewrites the artifact
    python benchmarks/check_bench_regression.py \
        --baseline /tmp/bench_baseline.json --fresh BENCH_pipeline.json

Exit status 0 when the fresh speedup is within tolerance, 1 on
regression (or unusable inputs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_report(path: Path, label: str) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"bench gate: {label} report {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"bench gate: {label} report {path} is not valid JSON: {exc}")


def dot_get(report: dict, dotted: str):
    value = report
    for part in dotted.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    return value


def load_speedup(path: Path, label: str, metric: str = "speedup") -> float:
    value = dot_get(load_report(path, label), metric)
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        sys.exit(f"bench gate: {label} report {path} has no usable {metric!r} field")
    return float(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=Path(__file__).resolve().parent,
        help="directory holding the bench artifacts; relative --baseline/"
        "--fresh paths resolve against it (default: benchmarks/)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="copy of the committed BENCH_pipeline.json, taken before the run",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=Path("BENCH_pipeline.json"),
        help="artifact written by the just-finished benchmark run",
    )
    parser.add_argument(
        "--metric",
        default="speedup",
        help="dot-path of the gated ratio inside the report JSON "
        "(default 'speedup'; e.g. 'columnar.speedup_vs_legacy')",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional speedup regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--direction",
        choices=("max", "min"),
        default="max",
        help="'max' gates a higher-is-better ratio (default); 'min' gates a "
        "lower-is-better cost such as a build time",
    )
    parser.add_argument(
        "--match",
        default=None,
        help="dot-path that must hold the same value in both reports for the "
        "metric to be comparable (e.g. 'parallel_sweep.n_cpus'); on a "
        "mismatch the gate is SKIPPED with exit status 0",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        sys.exit(f"bench gate: tolerance must be in [0, 1), got {args.tolerance}")
    if not args.bench_dir.is_dir():
        sys.exit(f"bench gate: --bench-dir {args.bench_dir} is not a directory")

    if args.match is not None:
        baseline_key = dot_get(load_report(args.bench_dir / args.baseline, "baseline"), args.match)
        fresh_key = dot_get(load_report(args.bench_dir / args.fresh, "fresh"), args.match)
        if baseline_key != fresh_key:
            print(
                f"bench gate: {args.metric} SKIPPED -- {args.match} differs "
                f"(baseline {baseline_key!r}, fresh {fresh_key!r}); the recorded "
                "values are not comparable on this runner"
            )
            return 0

    baseline = load_speedup(args.bench_dir / args.baseline, "baseline", args.metric)
    fresh = load_speedup(args.bench_dir / args.fresh, "fresh", args.metric)
    if args.direction == "max":
        bound = baseline * (1.0 - args.tolerance)
        regressed = fresh < bound
        bound_name = "floor"
    else:
        bound = baseline * (1.0 + args.tolerance)
        regressed = fresh > bound
        bound_name = "ceiling"
    verdict = "REGRESSION" if regressed else "OK"
    print(
        f"bench gate: baseline {args.metric} {baseline:.2f}x, fresh {fresh:.2f}x, "
        f"{bound_name} {bound:.2f}x ({args.tolerance:.0%} tolerance) -> {verdict}"
    )
    if regressed:
        worse = "lost more than" if args.direction == "max" else "grew more than"
        print(
            f"bench gate: {args.metric} {worse} "
            f"{args.tolerance:.0%} of its committed value; see the "
            "benchmark that writes this artifact under benchmarks/"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
