"""Bench: the network-server daemon's end-to-end verdict throughput.

One recorded fleet stream (:func:`repro.service.build_plan`) is judged
twice on the same machine:

* **in-process** -- the recorded batches looped straight through
  :meth:`NetworkServer.process_step`, the library's ceiling;
* **daemon** -- the same batches shipped through the Semtech UDP codec
  to a live :class:`NetworkServerDaemon` on loopback (ack-paced, batch
  ticks, control plane up), measuring sustained end-to-end verdicts/s.

Both verdict streams must be bit-identical -- the bench doubles as the
golden check at scale.  The report lands in
``benchmarks/BENCH_service.json`` with the regression-gated ``speedup``
field = daemon verdicts/s over in-process verdicts/s: a machine-relative
service-overhead ratio, wired into ``check_bench_regression.py`` by the
CI bench job.  The tier-1 smoke run measures a miniature into the
gitignored ``BENCH_service_smoke.json``.
"""

import asyncio
import json
import os
import time
from pathlib import Path

from repro.service import NetworkServerDaemon, ServiceConfig, build_plan, new_server, replay

FULL = os.environ.get("BENCH_RUNTIME_FULL") == "1"
ARTIFACT = Path(__file__).resolve().parent / (
    "BENCH_service.json" if FULL else "BENCH_service_smoke.json"
)
#: (n_devices, n_gateways, clean_s, attack_s) per mode.
SCALE = (60, 3, 600.0, 300.0) if FULL else (10, 2, 90.0, 90.0)


def test_service_throughput():
    n_devices, n_gateways, clean_s, attack_s = SCALE
    plan = build_plan(
        n_devices=n_devices,
        n_gateways=n_gateways,
        clean_s=clean_s,
        attack_s=attack_s,
        n_attacked=max(2, n_devices // 10),
    )

    # In-process ceiling: the recorded batches straight through the core.
    inproc = new_server()
    plan.provision(inproc)
    start = time.perf_counter()
    for batch in plan.batches:
        inproc.process_step(list(batch))
    inproc_wall_s = time.perf_counter() - start
    inproc_rate = len(inproc.verdicts) / inproc_wall_s

    # Daemon end to end: UDP codec, ack-paced replay, worker batching.
    async def run_daemon():
        server = new_server()
        plan.provision(server)
        daemon = NetworkServerDaemon(
            server=server,
            config=ServiceConfig(
                udp_host="127.0.0.1", udp_port=0, http_host="127.0.0.1", http_port=0
            ),
        )
        await daemon.start()
        start = time.perf_counter()
        stats = await replay(plan, "127.0.0.1", daemon.udp_port)
        await daemon.drain()
        wall_s = time.perf_counter() - start
        verdicts = [v.as_dict() for v in daemon.server.verdicts]
        await daemon.stop()
        return stats, wall_s, verdicts

    stats, daemon_wall_s, daemon_verdicts = asyncio.run(run_daemon())
    daemon_rate = len(daemon_verdicts) / daemon_wall_s
    overhead_ratio = daemon_rate / inproc_rate

    report = {
        "scale": {
            "n_devices": n_devices,
            "n_gateways": n_gateways,
            "clean_s": clean_s,
            "attack_s": attack_s,
        },
        "full_scale": FULL,
        "n_forwards": plan.n_forwards,
        "n_batches": len(plan.batches),
        "n_verdicts": len(plan.oracle_verdicts),
        "datagrams_sent": stats.datagrams_sent,
        "inproc_wall_s": inproc_wall_s,
        "inproc_verdicts_per_s": inproc_rate,
        "daemon_wall_s": daemon_wall_s,
        "daemon_verdicts_per_s": daemon_rate,
        "bit_identical": daemon_verdicts == list(plan.oracle_verdicts),
        # The regression-gated ratio: daemon end-to-end throughput as a
        # fraction of the in-process ceiling (service overhead, machine-
        # relative so CI hosts of different speeds compare fairly).
        "speedup": overhead_ratio,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"service bench ({n_devices}dev x {n_gateways}gw, "
        f"{plan.n_forwards} forwards / {len(plan.batches)} batches): "
        f"daemon {daemon_rate:.0f} verdicts/s vs in-process {inproc_rate:.0f}/s "
        f"(ratio {overhead_ratio:.3f}), wall {daemon_wall_s:.2f}s -> {ARTIFACT.name}"
    )

    # The daemon must judge exactly like the library, and sustain real load.
    assert report["bit_identical"], "daemon verdicts diverged from in-process oracle"
    assert len(daemon_verdicts) == len(plan.oracle_verdicts)
    assert daemon_rate > 50.0, f"daemon sustained only {daemon_rate:.0f} verdicts/s"
