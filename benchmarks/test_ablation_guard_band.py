"""Ablation: replay-detector guard band vs detection / false-alarm rates.

The guard band trades false alarms (too tight: estimation noise trips
the detector) against misses (too loose: small replay offsets fit inside
the interval).  The sweep also exposes a second-order effect: once a
replay is *missed*, its FB updates the node's history
(``learn_on_accept``), widening the interval toward the attacker --
missed detections cascade into full database poisoning.  The sweet spot
therefore sits a few estimation sigmas above the noise and well below
the weakest expected chain offset (543 Hz), which is exactly the
operating point the paper's 120 Hz resolution affords.
"""

import numpy as np

from repro.analysis.metrics import detection_stats
from repro.analysis.report import format_table
from repro.core.detector import FbDatabase, ReplayDetector

TRUE_FB_HZ = -20500.0
ESTIMATION_SIGMA_HZ = 40.0
REPLAY_OFFSET_HZ = -543.0  # the weakest measured attack


def run_ablation(guards_hz=(20.0, 120.0, 240.0, 480.0, 1000.0), n_frames=120, seed=63):
    rng = np.random.default_rng(seed)
    rows = []
    for guard in guards_hz:
        detector = ReplayDetector(database=FbDatabase(), guard_hz=guard, min_history=5)
        labels, predictions = [], []
        fb = TRUE_FB_HZ
        for frame in range(n_frames):
            fb += 2.0  # slow benign thermal drift
            attacked = frame >= 20 and frame % 4 == 0
            measured = fb + float(rng.normal(0.0, ESTIMATION_SIGMA_HZ))
            if attacked:
                measured += REPLAY_OFFSET_HZ
            result = detector.check("node", measured)
            if frame >= 20:
                labels.append(attacked)
                predictions.append(result.is_replay)
        stats = detection_stats(labels, predictions)
        rows.append((guard, stats.detection_rate, stats.false_alarm_rate))
    return rows


def test_ablation_guard_band(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["guard (Hz)", "detection rate", "false alarm rate"],
            [[g, round(d, 3), round(f, 3)] for g, d, f in rows],
            title="Ablation -- guard band vs detection quality "
            f"(replay offset {REPLAY_OFFSET_HZ:+.0f} Hz, est. σ {ESTIMATION_SIGMA_HZ:.0f} Hz)",
        )
    )

    by_guard = {g: (d, f) for g, d, f in rows}
    # Too tight (half the estimation σ): false alarms from noise alone.
    assert by_guard[20.0][1] > 0.05
    # The sweet spot (a few σ): perfect detection, zero false alarms.
    assert by_guard[120.0] == (1.0, 0.0)
    # Too loose: the weakest replay offset fits inside the interval, and
    # each miss poisons the learned history -- detection collapses.
    assert by_guard[480.0][0] < 0.5
    assert by_guard[1000.0][0] < 0.1
    # Detection degrades monotonically as the guard widens past the
    # sweet spot (the poisoning cascade).
    detections = [d for _, d, _ in rows]
    assert all(a >= b for a, b in zip(detections[1:], detections[2:]))
