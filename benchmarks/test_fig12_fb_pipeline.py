"""Bench F12: Fig. 12 -- phase-regression FB extraction, stage by stage."""

import numpy as np

from repro.experiments.fig12_fb_pipeline import run_fig12


def test_fig12_fb_pipeline(benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    print()
    print(result.format())

    # The paper's worked example: δ ~ -22.8 kHz, ~26 ppm of 869.75 MHz.
    assert np.isfinite(result.estimated_fb_hz)
    assert abs(result.estimated_fb_hz - (-22.8e3)) < 100.0
    assert abs(abs(result.estimated_ppm) - 26.2) < 0.5
    # Panel (d): the de-swept phase is a straight line.
    assert result.residual_linearity_rmse < 0.5
    # Panel (c) is monotone decreasing for a negative-bias up chirp start.
    assert result.rectified_phase[-1] < result.rectified_phase[0]
