"""Bench Sec. 8.2: the 1.07 km campus link -- µs timestamps at range."""

from repro.experiments.campus import run_campus


def test_campus_long_distance(benchmark):
    result = benchmark.pedantic(
        run_campus, kwargs={"sample_rate_hz": 2.4e6}, rounds=1, iterations=1
    )
    print()
    print(result.format())

    # Geometry: 1.07 km -> one-way propagation 3.57 µs.
    assert result.distance_m == 1070.0
    assert abs(result.propagation_delay_us - 3.57) < 0.05
    # Four trials, all with microsecond-level error upper bounds (the
    # paper measured 0.23..6.43 µs in heavy rain).
    assert len(result.trial_errors_us) == 4
    assert result.max_error_us() < 10.0
