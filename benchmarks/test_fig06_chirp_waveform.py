"""Bench F6: Fig. 6 -- I trace and spectrogram of an ideal up chirp."""

from repro.experiments.waveforms import run_fig6


def test_fig06_chirp_waveform(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    print()
    print(result.format())

    # SF7 at 125 kHz: 1.024 ms chirp (paper Sec. 6.1.1).
    assert result.chirp_time_s == 1.024e-3
    # ~20 PSDs from the 2^S-point Kaiser window with 16-point overlap.
    assert 19 <= result.n_psd_frames <= 22
    # The ~50 µs STFT hop is the paper's reason to reject spectrogram
    # timestamping.
    assert 40e-6 < result.time_resolution_s < 60e-6
