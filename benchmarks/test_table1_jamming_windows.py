"""Bench T1: Table 1 -- jamming attack time windows for RN2483."""

from repro.experiments.table1_jamming import run_table1


def test_table1_jamming_windows(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(result.format())

    # Shape assertions mirroring the paper's Sec. 4.3 observations.
    for row in result.rows:
        # w1 sits at ~5 chirps: the preamble lock point.
        assert 4.0 <= row.w1_in_chirps_measured <= 6.5
        # Modelled windows are ordered like the measured ones.
        assert row.modelled.w1_s < row.modelled.w2_s < row.modelled.w3_s
    # w2 roughly doubles per SF step at fixed payload.
    by_sf = {r.spreading_factor: r for r in result.rows if r.payload_bytes == 30}
    assert by_sf[8].measured.w2_s / by_sf[7].measured.w2_s > 1.5
    assert by_sf[9].measured.w2_s / by_sf[8].measured.w2_s > 1.5
    # The model stays within the documented tolerances.
    assert result.max_relative_error("w1") < 0.35
    assert result.max_relative_error("w2") < 0.25
    assert result.max_relative_error("w3") < 0.15
    # An effective (stealthy) attack window exists in every configuration
    # and is tens of milliseconds wide -- the paper's headline claim.
    for row in result.rows:
        assert row.measured.effective_width_s > 20e-3
