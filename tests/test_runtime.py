"""Tests for the event-driven fleet runtime (repro.sim.runtime)."""

import numpy as np
import pytest

from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway
from repro.errors import ConfigurationError
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import NetworkServer
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import CollisionChannel, FleetRuntime, replay_detected
from repro.sim.scenarios import build_fleet
from repro.sim.traffic import PeriodicTrafficModel


def build_world(seed=0, n_devices=4, exponent=2.0):
    streams = RngStreams(seed)
    devices = build_fleet(n_devices=n_devices, streams=streams)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
    gateway = SoftLoRaGateway(
        config=config,
        commodity=CommodityGateway(),
        replay_detector=ReplayDetector(database=FbDatabase()),
    )
    world = LoRaWanWorld(
        gateway=gateway,
        gateway_position=Position(0.0, 0.0, 1.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=exponent)),
        rng=streams.stream("world"),
    )
    for device in devices:
        world.add_device(device)
    return world, devices, streams


def make_runtime(world, seed=11, period_s=60.0, jitter_s=5.0, **kwargs):
    traffic = PeriodicTrafficModel(
        period_s=period_s, jitter_s=jitter_s, rng=np.random.default_rng(seed)
    )
    return FleetRuntime(world, traffic, **kwargs)


class TestGoldenDegenerate:
    """The no-contention 1-device schedule matches the classic path bit for bit."""

    def _event_signature(self, event):
        return (
            event.kind,
            event.time_s,
            event.device_name,
            event.snr_db,
            None if event.reception is None else event.reception.fb_hz,
            None if event.reception is None else event.reception.status,
            None if event.transmission is None else event.transmission.fcnt,
        )

    def test_matches_caller_stepped_uplink(self):
        classic_world, classic_devices, _ = build_world(seed=9, n_devices=1)
        runtime_world, _, _ = build_world(seed=9, n_devices=1)
        schedule = PeriodicTrafficModel(
            60.0, 5.0, rng=np.random.default_rng(11)
        ).schedule([classic_devices[0].name], 600.0)
        for uplink in schedule:
            classic_world.uplink(uplink.device_name, uplink.request_time_s)

        report = make_runtime(runtime_world, seed=11).run(600.0)

        assert report.attempts == len(schedule)
        assert len(runtime_world.events) == len(classic_world.events)
        for classic, runtime in zip(classic_world.events, runtime_world.events):
            assert self._event_signature(classic) == self._event_signature(runtime)
        assert not [e for e in runtime_world.events if e.kind is EventKind.LOST_COLLISION]

    def test_matches_caller_stepped_uplink_batch(self):
        classic_world, classic_devices, _ = build_world(seed=3, n_devices=1)
        runtime_world, _, _ = build_world(seed=3, n_devices=1)
        schedule = PeriodicTrafficModel(
            120.0, 0.0, rng=np.random.default_rng(5)
        ).schedule([classic_devices[0].name], 600.0)
        for uplink in schedule:
            classic_world.uplink_batch([uplink.device_name], uplink.request_time_s)

        make_runtime(runtime_world, seed=5, period_s=120.0, jitter_s=0.0).run(600.0)

        for classic, runtime in zip(classic_world.events, runtime_world.events):
            assert self._event_signature(classic) == self._event_signature(runtime)


class TestCollisionChannel:
    def test_equal_power_overlap_lost_at_single_gateway(self):
        world, devices, _ = build_world(n_devices=2)
        # The fleet ring is symmetric: both devices sit 5 m from the
        # gateway, so neither clears the 6 dB capture margin.
        devices[1].position = Position(-devices[0].position.x, -devices[0].position.y, 1.0)
        staged = world.stage_uplinks([devices[0].name, devices[1].name], 10.0)
        mask = CollisionChannel().surviving_sites(world, staged)
        assert mask[0] == set() and mask[1] == set()
        events = world.deliver_staged(staged, site_mask=mask)
        assert [e.kind for e in events] == [EventKind.LOST_COLLISION] * 2

    def test_capture_saves_the_stronger(self):
        world, devices, _ = build_world(n_devices=2)
        devices[0].position = Position(5.0, 0.0, 1.0)
        devices[1].position = Position(500.0, 0.0, 1.0)
        staged = world.stage_uplinks([devices[0].name, devices[1].name], 10.0)
        mask = CollisionChannel().surviving_sites(world, staged)
        assert mask[0] == {0} and mask[1] == set()
        events = world.deliver_staged(staged, site_mask=mask)
        assert events[0].kind is EventKind.DELIVERED
        assert events[1].kind is EventKind.LOST_COLLISION

    def test_non_overlapping_frames_unaffected(self):
        world, devices, _ = build_world(n_devices=2)
        staged = world.stage_uplinks([devices[0].name], 10.0)
        staged += world.stage_uplinks([devices[1].name], 20.0)
        mask = CollisionChannel().surviving_sites(world, staged)
        assert all(0 in sites for sites in mask.values())

    def test_second_gateway_rescues_captured_frame(self):
        world, devices, _ = build_world(n_devices=2)
        near, far = devices[0], devices[1]
        near.position = Position(100.0, 0.0, 1.0)
        far.position = Position(-100.0, 0.0, 1.0)
        # Equidistant from gw-0 at the origin-side placement: collide
        # there.  gw-1 sits next to `near`, which captures its copy.
        world.gateway_position = Position(0.0, 0.0, 1.0)
        world.add_gateway(Position(110.0, 0.0, 1.0))
        world.attach_server(NetworkServer())
        staged = world.stage_uplinks([near.name, far.name], 10.0)
        mask = CollisionChannel().surviving_sites(world, staged)
        assert mask[0] == {1}
        assert mask[1] == set()
        events = world.deliver_staged(staged, site_mask=mask)
        assert events[0].kind is EventKind.DELIVERED
        assert events[0].verdict is not None
        assert events[0].metadata["gateway_ids"] == ("gw-1",)
        assert events[1].kind is EventKind.LOST_COLLISION

    def test_attacked_device_bypasses_collision_mask(self):
        world, devices, streams = build_world(n_devices=2)
        devices[1].position = Position(-devices[0].position.x, -devices[0].position.y, 1.0)
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        world.arm_attack(attack, [devices[0].name], delay_s=30.0)
        staged = world.stage_uplinks([devices[0].name, devices[1].name], 10.0)
        mask = CollisionChannel().surviving_sites(world, staged)
        events = world.deliver_staged(staged, site_mask=mask)
        assert events[0].kind is EventKind.REPLAY_DELIVERED
        assert events[1].kind is EventKind.LOST_COLLISION


class TestFleetRuntime:
    def test_contention_partitions_attempts(self):
        world, _, _ = build_world(seed=4, n_devices=30)
        report = make_runtime(world, seed=2, period_s=5.0, jitter_s=4.0).run(60.0)
        stats = report.contention
        assert stats.collided > 0
        assert stats.attempts == (
            stats.delivered
            + stats.collided
            + stats.lost_low_snr
            + stats.replays_delivered
        )
        assert 0 < stats.collision_rate < 1
        assert report.goodput_fps == pytest.approx(stats.delivered / 60.0)

    def test_runtime_is_deterministic(self):
        reports = []
        for _ in range(2):
            world, _, _ = build_world(seed=4, n_devices=10)
            reports.append(make_runtime(world, seed=2, period_s=10.0, jitter_s=8.0).run(100.0))
        a, b = reports
        assert [e.time_s for e in a.events] == [e.time_s for e in b.events]
        assert [e.kind for e in a.events] == [e.kind for e in b.events]

    def test_duty_cycle_backoff_defers_not_errors(self):
        world, devices, _ = build_world(seed=1, n_devices=2)
        # Period far below the ETSI off-time: every cycle after the first
        # must defer, never raise DutyCycleError.
        report = make_runtime(world, seed=7, period_s=1.0, jitter_s=0.5).run(30.0)
        assert report.deferrals > 0
        for device in devices:
            emissions = sorted(
                e.transmission.emission_time_s
                for e in report.events
                if e.device_name == device.name and e.transmission is not None
            )
            airtime = report.events[0].transmission.airtime_s
            min_gap = airtime / device.duty_cycle.duty_cycle
            for earlier, later in zip(emissions, emissions[1:]):
                assert later - earlier >= min_gap * 0.99

    def test_phases_extend_one_timeline(self):
        world, devices, streams = build_world(seed=5, n_devices=8)
        for device in devices:
            world.gateway.bootstrap_fb_profile(
                device.dev_addr,
                [device.fb_hz + float(e) for e in streams.stream("p").normal(0, 15, 5)],
            )
        runtime = make_runtime(world, seed=3, period_s=30.0, jitter_s=10.0)
        clean = runtime.run(60.0)
        assert clean.contention.replays_delivered == 0
        armed_at = world.simulator.now_s
        assert armed_at >= 60.0
        attack = FrameDelayAttack(
            jammer=StealthyJammer(),
            replayer=Replayer.single_usrp(streams.stream("r")),
            rng=streams.stream("a"),
        )
        world.arm_attack(attack, [devices[0].name], delay_s=20.0)
        attacked = runtime.run(60.0)
        assert attacked.contention.replays_delivered >= 1
        assert attacked.contention.suppressed == attacked.contention.replays_delivered
        detections = attacked.replay_detection_times_s
        assert detections and min(detections) >= armed_at
        assert all(replay_detected(e) is False for e in clean.events)

    def test_multi_gateway_runtime_emits_verdicts(self):
        world, devices, streams = build_world(seed=6, n_devices=6)
        world.add_gateway(Position(50.0, 50.0, 1.0))
        world.attach_server(NetworkServer())
        report = make_runtime(world, seed=9, period_s=30.0, jitter_s=10.0).run(90.0)
        delivered = [e for e in report.events if e.kind is EventKind.DELIVERED]
        assert delivered
        assert all(e.verdict is not None for e in delivered)

    def test_invalid_parameters_rejected(self):
        world, _, _ = build_world(n_devices=1)
        with pytest.raises(ConfigurationError):
            make_runtime(world, window_s=0.0)
        with pytest.raises(ConfigurationError):
            make_runtime(world).run(0.0)
        with pytest.raises(ConfigurationError):
            make_runtime(world).run(10.0, device_names=["ghost"])
