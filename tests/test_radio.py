"""Tests for the propagation substrate (repro.radio)."""

import pytest

from repro.errors import ConfigurationError
from repro.radio.channel import (
    LinkBudget,
    Transmission,
    amplitude_for_snr,
    noise_floor_dbm,
    propagation_delay_s,
    resolve_collisions,
)
from repro.radio.geometry import BUILDING_COLUMNS, Building, CampusLink, Position
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    IndoorMultiWallPathLoss,
    LogDistancePathLoss,
)


class TestGeometry:
    def test_distance(self):
        assert Position(0, 0, 0).distance_to(Position(3, 4, 0)) == 5.0

    def test_building_positions_within_envelope(self):
        building = Building()
        for column, floor in building.survey_points():
            p = building.position(column, floor)
            assert 0 <= p.x <= building.length_m
            assert 0 < p.z <= building.n_floors * building.floor_height_m

    def test_building_column_order(self):
        building = Building()
        xs = [building.position(c, 1).x for c in BUILDING_COLUMNS]
        assert xs == sorted(xs)

    def test_floors_between(self):
        building = Building()
        a = building.position("A1", 1)
        b = building.position("A1", 6)
        assert building.floors_between(a, b) == 5

    def test_junctions_between(self):
        building = Building()
        assert building.junctions_between("A1", "A3") == 0
        assert building.junctions_between("A1", "B1") == 1
        assert building.junctions_between("A1", "C3") == 2
        assert building.junctions_between("C3", "A1") == 2

    def test_survey_excludes_inaccessible_cells(self):
        points = Building().survey_points()
        assert ("C3", 1) not in points
        assert ("C3", 2) not in points
        assert ("C3", 3) in points
        # 9 columns x 6 floors - 2 inaccessible = 52.
        assert len(points) == 52

    def test_unknown_column_rejected(self):
        with pytest.raises(ConfigurationError):
            Building().position("D1", 1)

    def test_bad_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            Building().position("A1", 7)

    def test_campus_distance(self):
        link = CampusLink()
        assert link.site_a.distance_to(link.site_b) == pytest.approx(1070.0)


class TestPathLoss:
    def test_free_space_known_value(self):
        # FSPL at 1 km, 869.75 MHz: 92.45 + 20·log10(0.86975) ~ 91.24 dB.
        loss = FreeSpacePathLoss().loss_db(Position(0), Position(1000.0))
        assert loss == pytest.approx(91.24, abs=0.1)

    def test_free_space_6db_per_doubling(self):
        model = FreeSpacePathLoss()
        l1 = model.loss_db(Position(0), Position(100.0))
        l2 = model.loss_db(Position(0), Position(200.0))
        assert l2 - l1 == pytest.approx(6.02, abs=0.05)

    def test_log_distance_exponent(self):
        model = LogDistancePathLoss(exponent=3.0)
        l1 = model.loss_db(Position(0), Position(10.0))
        l2 = model.loss_db(Position(0), Position(100.0))
        assert l2 - l1 == pytest.approx(30.0)

    def test_log_distance_shadowing_deterministic_per_link(self):
        model = LogDistancePathLoss(exponent=2.0, shadowing_sigma_db=4.0)
        a, b = Position(0), Position(50.0)
        assert model.loss_db(a, b) == model.loss_db(a, b)

    def test_log_distance_shadowing_varies_across_links(self):
        model = LogDistancePathLoss(exponent=2.0, shadowing_sigma_db=4.0)
        losses = {model.loss_db(Position(0), Position(50.0 + i)) for i in range(8)}
        assert len(losses) > 1

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(exponent=0.0)

    def test_multiwall_charges_floors_and_junctions(self):
        building = Building()
        model = IndoorMultiWallPathLoss(
            building=building,
            base=LogDistancePathLoss(exponent=2.0),
            floor_loss_db=5.0,
            junction_loss_db=3.0,
        )
        tx = building.position("A1", 3)
        same_floor = building.position("A3", 3)
        other_floor = building.position("A3", 5)
        base_loss = model.loss_db(tx, same_floor, tx_column="A1", rx_column="A3")
        floor_loss = model.loss_db(tx, other_floor, tx_column="A1", rx_column="A3")
        assert floor_loss - base_loss > 2 * 5.0 - 3.0  # two slabs minus distance delta

    def test_multiwall_junction_component(self):
        building = Building()
        model = IndoorMultiWallPathLoss(building=building, junction_loss_db=7.0)
        tx = building.position("A3", 3)
        rx = building.position("B1", 3)
        with_junction = model.loss_db(tx, rx, tx_column="A3", rx_column="B1")
        without = model.loss_db(tx, rx)
        assert with_junction - without == pytest.approx(7.0)


class TestLinkBudget:
    def test_noise_floor_value(self):
        # -174 + 10log10(125e3) + 6 = -117.0 dBm.
        assert noise_floor_dbm() == pytest.approx(-117.0, abs=0.1)

    def test_rx_power_and_snr(self):
        budget = LinkBudget(pathloss=FreeSpacePathLoss())
        tx, rx = Position(0), Position(1000.0)
        power = budget.rx_power_dbm(14.0, tx, rx)
        assert power == pytest.approx(14.0 - 91.24, abs=0.1)
        assert budget.snr_db(14.0, tx, rx) == pytest.approx(power - noise_floor_dbm())

    def test_antenna_gains_add(self):
        base = LinkBudget(pathloss=FreeSpacePathLoss())
        gained = LinkBudget(
            pathloss=FreeSpacePathLoss(), tx_antenna_gain_db=3.0, rx_antenna_gain_db=2.0
        )
        tx, rx = Position(0), Position(500.0)
        gain = gained.rx_power_dbm(10.0, tx, rx) - base.rx_power_dbm(10.0, tx, rx)
        assert gain == pytest.approx(5.0)

    def test_propagation_delay(self):
        # 1.07 km -> 3.57 µs (paper Sec. 8.2).
        delay = propagation_delay_s(Position(0), Position(1070.0))
        assert delay == pytest.approx(3.57e-6, abs=0.02e-6)

    def test_amplitude_for_snr(self):
        amp = amplitude_for_snr(20.0, noise_power=1.0)
        assert amp == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            amplitude_for_snr(0.0, noise_power=0.0)


class TestCollisions:
    @staticmethod
    def _tx(name, start, duration, power, sf=7):
        return Transmission(
            sender=name,
            start_time_s=start,
            airtime_s=duration,
            rx_power_dbm=power,
            spreading_factor=sf,
        )

    def test_clear_channel(self):
        outcomes = resolve_collisions([self._tx("a", 0.0, 1.0, -80)])
        assert outcomes[0].delivered
        assert outcomes[0].reason == "clear channel"

    def test_non_overlapping_frames_both_delivered(self):
        outcomes = resolve_collisions(
            [self._tx("a", 0.0, 1.0, -80), self._tx("b", 2.0, 1.0, -80)]
        )
        assert all(o.delivered for o in outcomes)

    def test_capture_effect(self):
        outcomes = resolve_collisions(
            [self._tx("strong", 0.0, 1.0, -70), self._tx("weak", 0.5, 1.0, -90)]
        )
        by_name = {o.transmission.sender: o for o in outcomes}
        assert by_name["strong"].delivered
        assert not by_name["weak"].delivered

    def test_near_equal_power_destroys_both(self):
        outcomes = resolve_collisions(
            [self._tx("a", 0.0, 1.0, -80), self._tx("b", 0.5, 1.0, -81)]
        )
        assert not any(o.delivered for o in outcomes)

    def test_different_sf_orthogonal(self):
        outcomes = resolve_collisions(
            [self._tx("a", 0.0, 1.0, -80, sf=7), self._tx("b", 0.0, 1.0, -80, sf=9)]
        )
        assert all(o.delivered for o in outcomes)

    def test_snr_floor_enforcement(self):
        floor = noise_floor_dbm()
        outcomes = resolve_collisions(
            [self._tx("faint", 0.0, 1.0, floor - 15.0, sf=7)],
            min_snr_db={7: -7.5},
        )
        assert not outcomes[0].delivered
        assert "floor" in outcomes[0].reason

    def test_overlap_predicate(self):
        a = self._tx("a", 0.0, 1.0, -80)
        b = self._tx("b", 0.999, 1.0, -80)
        c = self._tx("c", 1.001, 1.0, -80)
        assert a.overlaps(b)
        assert not a.overlaps(c)
