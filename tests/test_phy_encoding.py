"""Tests for the LoRa coding chain (repro.phy.encoding)."""

import pytest

from repro.errors import ConfigurationError, DecodeError
from repro.phy.encoding import (
    DecodedPayload,
    PayloadCodec,
    deinterleave_block,
    gray_decode,
    gray_encode,
    hamming_decode,
    hamming_encode,
    interleave_block,
    whiten,
)


class TestGray:
    def test_roundtrip_all_12bit_values(self):
        for value in range(4096):
            assert gray_decode(gray_encode(value)) == value

    def test_adjacent_values_differ_in_one_bit(self):
        for value in range(1, 1024):
            diff = gray_encode(value) ^ gray_encode(value - 1)
            assert bin(diff).count("1") == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            gray_encode(-1)
        with pytest.raises(ConfigurationError):
            gray_decode(-1)


class TestWhitening:
    def test_involution(self):
        data = bytes(range(64))
        assert whiten(whiten(data)) == data

    def test_changes_data(self):
        data = b"\x00" * 32
        assert whiten(data) != data

    def test_empty(self):
        assert whiten(b"") == b""

    def test_balances_zero_runs(self):
        whitened = whiten(b"\x00" * 256)
        ones = sum(bin(b).count("1") for b in whitened)
        assert 0.35 < ones / (256 * 8) < 0.65


class TestHamming:
    @pytest.mark.parametrize("cr", [1, 2, 3, 4])
    def test_clean_roundtrip(self, cr):
        for nibble in range(16):
            codeword = hamming_encode(nibble, cr)
            decoded, flagged = hamming_decode(codeword, cr)
            assert decoded == nibble
            assert not flagged

    @pytest.mark.parametrize("cr", [3, 4])
    def test_single_bit_error_corrected(self, cr):
        width = 4 + cr
        for nibble in range(16):
            codeword = hamming_encode(nibble, cr)
            for bit in range(min(width, 7 if cr == 3 else 8)):
                corrupted = codeword ^ (1 << bit)
                decoded, changed = hamming_decode(corrupted, cr)
                assert decoded == nibble, f"nibble {nibble} bit {bit}"
                assert changed

    def test_cr1_detects_single_error(self):
        codeword = hamming_encode(0xA, 1)
        _, flagged = hamming_decode(codeword ^ 0x1, 1)
        assert flagged

    def test_cr4_detects_double_error(self):
        codeword = hamming_encode(0x5, 4)
        corrupted = codeword ^ 0b11  # two data bits flipped
        with pytest.raises(DecodeError):
            hamming_decode(corrupted, 4)

    def test_invalid_nibble_rejected(self):
        with pytest.raises(ConfigurationError):
            hamming_encode(16, 1)

    def test_invalid_cr_rejected(self):
        with pytest.raises(ConfigurationError):
            hamming_encode(1, 0)
        with pytest.raises(ConfigurationError):
            hamming_decode(0, 5)


class TestInterleaver:
    @pytest.mark.parametrize("sf,cr", [(7, 1), (7, 4), (9, 2), (12, 4)])
    def test_roundtrip(self, sf, cr):
        codewords = [(i * 37 + 5) % (1 << (4 + cr)) for i in range(sf)]
        symbols = interleave_block(codewords, sf, cr)
        assert len(symbols) == 4 + cr
        assert deinterleave_block(symbols, sf, cr) == codewords

    def test_symbol_values_fit_spreading_factor(self):
        sf, cr = 7, 4
        codewords = [0xFF] * sf
        for symbol in interleave_block(codewords, sf, cr):
            assert 0 <= symbol < (1 << sf)

    def test_single_symbol_corruption_touches_one_bit_per_codeword(self):
        sf, cr = 8, 4
        codewords = [(i * 11) % 256 for i in range(sf)]
        symbols = interleave_block(codewords, sf, cr)
        symbols[3] ^= (1 << sf) - 1  # clobber one whole symbol
        damaged = deinterleave_block(symbols, sf, cr)
        for original, got in zip(codewords, damaged):
            assert bin(original ^ got).count("1") <= 1

    def test_wrong_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            interleave_block([0, 1], 7, 1)
        with pytest.raises(ConfigurationError):
            deinterleave_block([0, 1], 7, 1)


class TestPayloadCodec:
    @pytest.mark.parametrize("sf,cr", [(7, 1), (7, 4), (8, 2), (10, 3), (12, 4)])
    def test_roundtrip(self, sf, cr):
        codec = PayloadCodec(sf, cr)
        data = bytes((i * 13 + 7) % 256 for i in range(23))
        symbols = codec.encode(data)
        decoded = codec.decode(symbols, len(data))
        assert decoded.data == data
        assert decoded.corrected_codewords == 0

    def test_empty_payload(self):
        codec = PayloadCodec(7, 1)
        assert codec.encode(b"") == []
        assert codec.decode([], 0).data == b""

    def test_symbol_count_prediction(self):
        codec = PayloadCodec(7, 4)
        data = bytes(10)
        assert len(codec.encode(data)) == codec.n_symbols(10)

    def test_burst_symbol_error_corrected_at_cr4(self):
        codec = PayloadCodec(7, 4)
        data = bytes(range(14))
        symbols = codec.encode(data)
        symbols[0] ^= 0x55  # burst damage to one symbol
        decoded = codec.decode(symbols, len(data))
        assert decoded.data == data
        assert decoded.corrected_codewords > 0

    def test_cr1_flags_but_cannot_correct(self):
        codec = PayloadCodec(7, 1)
        data = bytes(range(14))
        symbols = codec.encode(data)
        symbols[1] ^= 0x01
        decoded = codec.decode(symbols, len(data))
        assert decoded.flagged_codewords > 0 or decoded.data != data

    def test_too_few_symbols_raises(self):
        codec = PayloadCodec(7, 1)
        with pytest.raises(DecodeError):
            codec.decode([0, 1, 2], 20)

    def test_whitening_disabled_roundtrip(self):
        codec = PayloadCodec(8, 2, whitening=False)
        data = b"hello world bytes"
        assert codec.decode(codec.encode(data), len(data)).data == data

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            PayloadCodec(7, 0)
        with pytest.raises(ConfigurationError):
            PayloadCodec(13, 1)

    def test_decode_returns_dataclass(self):
        codec = PayloadCodec(7, 1)
        result = codec.decode(codec.encode(b"ab"), 2)
        assert isinstance(result, DecodedPayload)
