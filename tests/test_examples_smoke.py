"""Smoke tests: every example script runs and prints its story."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "reception status : accepted" in out
        assert "reconstructed timestamps" in out

    def test_frame_delay_attack(self, capsys):
        load_example("frame_delay_attack").main()
        out = capsys.readouterr().out
        assert "silent_drop" in out
        assert "spoofed by +120.0 s" in out
        assert "replay_detected" in out

    def test_sync_vs_syncfree(self, capsys):
        load_example("sync_vs_syncfree").main()
        out = capsys.readouterr().out
        assert "18-bit elapsed time" in out
        assert "simulated accuracy" in out

    def test_fleet_monitoring(self, capsys):
        load_example("fleet_monitoring").main()
        out = capsys.readouterr().out
        assert "learned FB profiles" in out
        assert "0 missed" in out
        assert "false alarms    : 0" in out

    def test_fleet_runtime(self, capsys):
        load_example("fleet_runtime").main()
        out = capsys.readouterr().out
        assert "offered load" in out
        assert "goodput" in out
        assert "collision rate" in out
        assert "replay-detection TPR : 1.00" in out

    def test_multi_gateway(self, capsys):
        load_example("multi_gateway").main()
        out = capsys.readouterr().out
        assert "4 gateways -> network server" in out
        assert "dedup rate 4.00 copies/uplink" in out
        assert "24 detected, 0 missed" in out
        assert "false alarms    : 0" in out

    @pytest.mark.slow
    def test_network_daemon(self, capsys):
        load_example("network_daemon").main()
        out = capsys.readouterr().out
        assert "daemon up" in out
        assert "/healthz         : ok" in out
        assert "attack_detected events streamed" in out
        assert "bit-identical to in-process: True" in out
        assert "daemon stopped cleanly" in out

    @pytest.mark.slow
    def test_adr_fleet(self, capsys):
        load_example("adr_fleet").main()
        out = capsys.readouterr().out
        assert "all SF12" in out
        assert "SF7:120" in out
        assert "LinkADRReq total" in out
        assert "TPR 1.00" in out

    @pytest.mark.slow
    def test_campus_link(self, capsys):
        load_example("campus_link").main()
        out = capsys.readouterr().out
        assert "3.57" in out

    @pytest.mark.slow
    def test_building_survey(self, capsys):
        load_example("building_survey").main()
        out = capsys.readouterr().out
        assert "SNR survey" in out
        assert "worst timing error" in out
