"""Property tests: the network server is invariant to delivery order.

Gateways race to deliver their forwards; backhaul reorders and
occasionally duplicates them.  Whatever the interleaving, the server
must resolve exactly one uplink per (DevAddr, FCnt) and issue the same
fused verdict.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lorawan.mac import build_uplink
from repro.lorawan.security import SessionKeys
from repro.server import FusionPolicy, GatewayForward, NetworkServer, ShardedFbDatabase
from repro.core.detector import ReplayDetector

N_DEVICES = 3
DEV_ADDRS = [0x26000000 + i for i in range(N_DEVICES)]
KEYS = {addr: SessionKeys.derive_for_test(addr) for addr in DEV_ADDRS}
#: Pre-built frames: device index x fcnt, so hypothesis never pays AES costs.
FRAMES = {
    (addr, fcnt): build_uplink(KEYS[addr], addr, fcnt, b"\x01")
    for addr in DEV_ADDRS
    for fcnt in (0, 1)
}


@st.composite
def delivery_schedules(draw):
    """A set of uplinks, each heard by 1..4 gateways, plus a delivery order."""
    forwards = []
    n_uplinks = draw(st.integers(min_value=1, max_value=4))
    used = draw(
        st.lists(
            st.sampled_from(sorted(FRAMES)), min_size=n_uplinks, max_size=n_uplinks, unique=True
        )
    )
    for uplink_index, (addr, fcnt) in enumerate(used):
        base_arrival = 100.0 + 40.0 * uplink_index
        n_gateways = draw(st.integers(min_value=1, max_value=4))
        for gw in range(n_gateways):
            forwards.append(
                GatewayForward(
                    gateway_id=f"gw-{gw}",
                    mac_bytes=FRAMES[(addr, fcnt)],
                    arrival_time_s=base_arrival
                    + draw(st.floats(min_value=0.0, max_value=0.05)),
                    fb_hz=-20e3 + draw(st.floats(min_value=-200.0, max_value=200.0)),
                    snr_db=draw(st.floats(min_value=-20.0, max_value=30.0)),
                )
            )
    order = draw(st.permutations(range(len(forwards))))
    # Duplicate a slice of the schedule (backhaul retransmissions).
    n_dupes = draw(st.integers(min_value=0, max_value=len(forwards)))
    dupes = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(forwards) - 1),
            min_size=n_dupes,
            max_size=n_dupes,
        )
    )
    return forwards, [forwards[i] for i in order] + [forwards[i] for i in dupes]


def fresh_server(policy: FusionPolicy) -> NetworkServer:
    server = NetworkServer(
        fusion=policy,
        detector=ReplayDetector(database=ShardedFbDatabase(n_shards=4)),
    )
    for addr, keys in KEYS.items():
        server.register_device(addr, keys)
    return server


def verdict_fingerprint(verdict):
    """Everything order-independence promises about one verdict."""
    return (
        verdict.status,
        verdict.dev_addr,
        verdict.fcnt,
        verdict.timestamp_s,
        None if verdict.fused is None else verdict.fused.fb_hz,
        None if verdict.fused is None else verdict.fused.sigma_hz,
        None if verdict.fused is None else verdict.fused.best_gateway_id,
        tuple(sorted(verdict.gateway_ids)),
    )


@settings(max_examples=60, deadline=None)
@given(schedule=delivery_schedules(), policy=st.sampled_from(list(FusionPolicy)))
def test_any_delivery_order_same_verdicts(schedule, policy):
    canonical_forwards, shuffled = schedule
    reference = fresh_server(policy).process_step(canonical_forwards)
    shuffled_verdicts = fresh_server(policy).process_step(shuffled)

    # Exactly one uplink per (DevAddr, FCnt), however deliveries raced.
    keys = [(v.dev_addr, v.fcnt) for v in shuffled_verdicts]
    assert len(keys) == len(set(keys))
    assert sorted(keys) == sorted((v.dev_addr, v.fcnt) for v in reference)

    # And the fused verdicts are identical, uplink for uplink.
    assert [verdict_fingerprint(v) for v in shuffled_verdicts] == [
        verdict_fingerprint(v) for v in reference
    ]


@settings(max_examples=40, deadline=None)
@given(
    fbs=st.lists(
        st.floats(min_value=-25e3, max_value=-17e3), min_size=1, max_size=6
    ),
    snrs=st.data(),
)
def test_inverse_variance_sigma_never_worse_than_best_link(fbs, snrs):
    from repro.server import fuse_fb
    from repro.sim.network import FbMeasurementModel

    model = FbMeasurementModel()
    contribs = [
        GatewayForward(
            gateway_id=f"gw-{i}",
            mac_bytes=FRAMES[(DEV_ADDRS[0], 0)],
            arrival_time_s=100.0,
            fb_hz=fb,
            snr_db=snrs.draw(st.floats(min_value=-25.0, max_value=30.0)),
        )
        for i, fb in enumerate(fbs)
    ]
    fused = fuse_fb(contribs, FusionPolicy.INVERSE_VARIANCE, model)
    best_sigma = min(model.sigma_hz(c.snr_db) for c in contribs)
    assert fused.sigma_hz <= best_sigma * (1.0 + 1e-12)
    lo = min(c.fb_hz for c in contribs)
    hi = max(c.fb_hz for c in contribs)
    assert lo - 1e-9 <= fused.fb_hz <= hi + 1e-9
