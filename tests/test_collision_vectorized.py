"""Property test: vectorized collision sweep == per-site AlohaChannel loop.

:meth:`CollisionChannel.surviving_sites` resolves a window's contention
as one sorted-interval sweep plus a broadcast capture-matrix pass;
:meth:`CollisionChannel.surviving_sites_reference` keeps the original
object-per-frame loop as the oracle.  Hypothesis drives both over
SF-heterogeneous clusters, capture-edge power ties (discrete power and
position grids, mirrored geometry), 1..3 gateway sites, and path-loss
models with and without a vectorized distance-only form (the latter
exercising the scalar fallback inside ``site_power_columns``).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lorawan.device import UplinkTransmission
from repro.phy.airtime import airtime_s
from repro.radio.geometry import Position
from repro.radio.pathloss import FixedPathLoss, LogDistancePathLoss
from repro.radio.channel import LinkBudget
from repro.sim.network import GatewaySite, StagedTransmission
from repro.sim.runtime import CollisionChannel


class OpaquePathLoss:
    """A path-loss model without ``loss_db_from_distance``.

    Forces ``site_power_columns`` onto its scalar per-device fallback,
    the branch real models with shadowing (or no closed distance-only
    form) take.
    """

    def __init__(self, inner):
        self._inner = inner

    def loss_db(self, tx: Position, rx: Position) -> float:
        return self._inner.loss_db(tx, rx)


class _StubDevice:
    def __init__(self, name: str, position: Position):
        self.name = name
        self.position = position


class _StubWorld:
    """The slice of LoRaWanWorld the collision sweep reads."""

    def __init__(self, sites: list[GatewaySite], devices: dict):
        self.sites = sites
        self.devices = devices

    def site_columns(self):
        xyz = np.array(
            [[s.position.x, s.position.y, s.position.z] for s in self.sites], dtype=float
        )
        return self.sites, xyz


def _transmission(name, emission_s, sf, tx_power_dbm):
    air = airtime_s(14, sf)
    return UplinkTransmission(
        device_name=name,
        dev_addr=0,
        mac_bytes=b"",
        phy_frame=None,
        request_time_s=emission_s,
        emission_time_s=emission_s,
        fb_hz=0.0,
        tx_power_dbm=tx_power_dbm,
        spreading_factor=sf,
        airtime_s=air,
    )


# Discrete grids manufacture exact ties: mirrored positions give two
# devices identical distances (identical received powers) at a site, and
# the coarse power ladder lands rivals exactly on the capture threshold.
_POSITION_GRID = st.tuples(
    st.sampled_from([-200.0, -50.0, 0.0, 50.0, 200.0]),
    st.sampled_from([-200.0, 0.0, 200.0]),
)
_FRAME = st.tuples(
    _POSITION_GRID,
    st.sampled_from([7, 8, 9, 10, 11, 12]),
    st.sampled_from([8.0, 14.0, 14.0, 20.0]),
    # Emission offsets quantized to ~one SF7 airtime so frames tie,
    # overlap partially, or just miss each other's intervals.
    st.integers(min_value=0, max_value=8),
)
_PATHLOSS = st.sampled_from(["fixed", "logdistance", "opaque"])


def _build_case(site_specs, frames, pathloss_kind):
    if pathloss_kind == "fixed":
        model = FixedPathLoss(value_db=80.0)
    elif pathloss_kind == "logdistance":
        model = LogDistancePathLoss(exponent=2.5)
    else:
        model = OpaquePathLoss(LogDistancePathLoss(exponent=2.5))
    link = LinkBudget(pathloss=model)
    sites = [
        GatewaySite(gateway_id=f"gw{i}", position=Position(x, y, 15.0), link=link)
        for i, (x, y) in enumerate(site_specs)
    ]
    devices = {}
    staged = []
    for i, ((x, y), sf, power, slot) in enumerate(frames):
        name = f"dev{i}"
        devices[name] = _StubDevice(name, Position(x, y, 1.0))
        emission = slot * airtime_s(14, 7) / 2.0
        staged.append(StagedTransmission(name, _transmission(name, emission, sf, power)))
    return _StubWorld(sites, devices), staged


@settings(max_examples=120, deadline=None)
@given(
    site_specs=st.lists(_POSITION_GRID, min_size=1, max_size=3),
    frames=st.lists(_FRAME, min_size=1, max_size=7),
    pathloss_kind=_PATHLOSS,
    threshold=st.sampled_from([0.0, 6.0]),
)
def test_vectorized_sweep_matches_reference(site_specs, frames, pathloss_kind, threshold):
    world, staged = _build_case(site_specs, frames, pathloss_kind)
    channel = CollisionChannel(capture_threshold_db=threshold)
    fast = channel.surviving_sites(world, staged)
    slow = channel.surviving_sites_reference(world, staged)
    assert fast == slow


@settings(max_examples=40, deadline=None)
@given(
    sf_pair=st.tuples(
        st.sampled_from([7, 8, 9, 10, 11, 12]), st.sampled_from([7, 8, 9, 10, 11, 12])
    ),
    overlap_half_slots=st.integers(min_value=0, max_value=3),
)
def test_mirrored_tie_matches_reference(sf_pair, overlap_half_slots):
    """Two mirrored devices, equal powers, (partially) overlapping frames.

    The geometry pins both received powers exactly equal at the central
    site, so survival rides entirely on the threshold comparison's
    boundary -- the case a vectorized reimplementation most easily gets
    wrong by one ulp or one strictness flip.
    """
    site_specs = [(0.0, 0.0)]
    frames = [
        ((200.0, 0.0), sf_pair[0], 14.0, 0),
        ((-200.0, 0.0), sf_pair[1], 14.0, overlap_half_slots),
    ]
    world, staged = _build_case(site_specs, frames, "logdistance")
    channel = CollisionChannel(capture_threshold_db=6.0)
    assert channel.surviving_sites(world, staged) == channel.surviving_sites_reference(
        world, staged
    )
