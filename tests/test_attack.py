"""Tests for the frame delay attack substrate (repro.attack)."""

import numpy as np
import pytest

from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.eavesdropper import Eavesdropper
from repro.attack.jammer import (
    JammingOutcome,
    JammingWindowModel,
    JammingWindows,
    RN2483_MEASURED_WINDOWS,
    StealthyJammer,
)
from repro.attack.replayer import Replayer
from repro.clock.clocks import DriftingClock
from repro.clock.oscillator import Oscillator
from repro.constants import SINGLE_USRP_REPLAY_FB_RANGE_HZ
from repro.errors import ConfigurationError
from repro.lorawan.device import EndDevice
from repro.lorawan.security import SessionKeys
from repro.phy.airtime import symbol_time_s
from repro.sdr.iq import IQTrace
from repro.sdr.receiver import SdrReceiver


def make_uplink(sf=7, seed=5):
    rng = np.random.default_rng(seed)
    device = EndDevice(
        name="victim",
        dev_addr=0x26010001,
        keys=SessionKeys.derive_for_test(0x26010001),
        radio_oscillator=Oscillator.lora_end_device(rng),
        clock=DriftingClock(drift_ppm=40.0),
        spreading_factor=sf,
        rng=rng,
    )
    device.take_reading(20.0, 50.0)
    return device, device.transmit(60.0)


class TestJammingWindows:
    def test_classification_regions(self):
        windows = JammingWindows(w1_s=5e-3, w2_s=28e-3, w3_s=141e-3)
        assert windows.classify(2e-3) is JammingOutcome.JAMMER_ONLY
        assert windows.classify(10e-3) is JammingOutcome.SILENT_DROP
        assert windows.classify(100e-3) is JammingOutcome.CRC_ALERT
        assert windows.classify(200e-3) is JammingOutcome.BOTH_DECODED

    def test_boundaries_inclusive(self):
        windows = JammingWindows(w1_s=5e-3, w2_s=28e-3, w3_s=141e-3)
        assert windows.classify(5e-3) is JammingOutcome.JAMMER_ONLY
        assert windows.classify(28e-3) is JammingOutcome.SILENT_DROP
        assert windows.classify(141e-3) is JammingOutcome.CRC_ALERT

    def test_effective_window(self):
        windows = JammingWindows(w1_s=5e-3, w2_s=28e-3, w3_s=141e-3)
        assert windows.effective_window_s == (5e-3, 28e-3)
        assert windows.effective_width_s == pytest.approx(23e-3)

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError):
            JammingWindows(w1_s=10e-3, w2_s=5e-3, w3_s=20e-3)

    def test_negative_onset_rejected(self):
        windows = JammingWindows(w1_s=1e-3, w2_s=2e-3, w3_s=3e-3)
        with pytest.raises(ConfigurationError):
            windows.classify(-1e-3)


class TestMeasuredTable:
    def test_all_six_rows_present(self):
        assert len(RN2483_MEASURED_WINDOWS) == 6

    def test_w1_is_about_five_chirps_everywhere(self):
        # Paper Sec. 4.3: jamming must start after the 5th chirp.
        for (sf, _), windows in RN2483_MEASURED_WINDOWS.items():
            chirps = windows.w1_s / symbol_time_s(sf)
            assert 4.0 <= chirps <= 6.5

    def test_w2_grows_with_spreading_factor(self):
        w2 = {sf: RN2483_MEASURED_WINDOWS[(sf, 30)].w2_s for sf in (7, 8, 9)}
        assert w2[7] < w2[8] < w2[9]
        # "increases exponentially": roughly doubling per SF step.
        assert 1.5 < w2[8] / w2[7] < 2.5
        assert 1.5 < w2[9] / w2[8] < 2.5

    def test_w2_grows_with_payload(self):
        values = [RN2483_MEASURED_WINDOWS[(7, p)].w2_s for p in (10, 20, 30, 40)]
        assert values == sorted(values)

    def test_w3_minus_w2_roughly_constant(self):
        gaps = [w.w3_s - w.w2_s for w in RN2483_MEASURED_WINDOWS.values()]
        assert max(gaps) - min(gaps) < 0.02  # within 20 ms of each other


class TestJammingWindowModel:
    def test_tracks_measured_w1(self):
        model = JammingWindowModel()
        for (sf, payload), measured in RN2483_MEASURED_WINDOWS.items():
            predicted = model.windows(sf, payload)
            assert predicted.w1_s == pytest.approx(measured.w1_s, rel=0.35)

    def test_tracks_measured_w2_within_25_percent(self):
        model = JammingWindowModel()
        for (sf, payload), measured in RN2483_MEASURED_WINDOWS.items():
            predicted = model.windows(sf, payload)
            assert predicted.w2_s == pytest.approx(measured.w2_s, rel=0.25)

    def test_tracks_measured_w3_within_15_percent(self):
        model = JammingWindowModel()
        for (sf, payload), measured in RN2483_MEASURED_WINDOWS.items():
            predicted = model.windows(sf, payload)
            assert predicted.w3_s == pytest.approx(measured.w3_s, rel=0.15)

    def test_measured_or_modelled_prefers_table(self):
        model = JammingWindowModel()
        assert model.measured_or_modelled(7, 10) == RN2483_MEASURED_WINDOWS[(7, 10)]
        # A row outside the table falls back to the model.
        fallback = model.measured_or_modelled(10, 25)
        assert fallback.w1_s > 0


class TestStealthyJammer:
    def test_onset_inside_effective_window(self):
        jammer = StealthyJammer()
        for payload in (10, 20, 30, 40):
            offset = jammer.choose_onset_offset_s(7, payload)
            windows = jammer.windows_for(7, payload)
            assert windows.w1_s < offset < windows.w2_s

    def test_outcome_is_silent_drop(self):
        jammer = StealthyJammer()
        onset, outcome = jammer.jam(7, 30, frame_start_s=100.0)
        assert outcome is JammingOutcome.SILENT_DROP
        assert onset > 100.0

    def test_randomized_aim(self):
        jammer = StealthyJammer(rng=np.random.default_rng(4))
        offsets = {jammer.choose_onset_offset_s(7, 30) for _ in range(10)}
        assert len(offsets) > 1

    def test_too_early_aim_would_relock(self):
        # Aiming before w1 gives the gateway the jammer's own frame.
        windows = StealthyJammer().windows_for(7, 30)
        assert windows.classify(windows.w1_s / 2) is JammingOutcome.JAMMER_ONLY

    def test_invalid_aim(self):
        with pytest.raises(ConfigurationError):
            StealthyJammer(aim=1.5)


class TestReplayer:
    def test_single_usrp_offset_in_paper_range(self, rng):
        lo, hi = SINGLE_USRP_REPLAY_FB_RANGE_HZ
        for _ in range(20):
            replayer = Replayer.single_usrp(rng)
            assert lo <= replayer.chain_fb_offset_hz <= hi

    def test_dual_usrp_offset_near_2khz(self, rng):
        offsets = [Replayer.dual_usrp(rng).chain_fb_offset_hz for _ in range(50)]
        assert -2400.0 <= np.mean(offsets) <= -1600.0

    def test_replay_shifts_frequency(self, fast_config, rng):
        from repro.core.freq_bias import LeastSquaresFbEstimator
        from repro.phy.chirp import upchirp

        fb = -20e3
        chirp = upchirp(fast_config, fb_hz=fb)
        trace = IQTrace(chirp, fast_config.sample_rate_hz)
        replayer = Replayer(chain_fb_offset_hz=-600.0)
        replayed = replayer.replay(trace, delay_s=10.0)
        estimate = LeastSquaresFbEstimator(fast_config).estimate(replayed.samples)
        assert estimate.fb_hz == pytest.approx(fb - 600.0, abs=5.0)

    def test_replay_applies_gain(self, fast_config):
        trace = IQTrace(np.ones(64, dtype=complex), fast_config.sample_rate_hz)
        replayed = Replayer(chain_fb_offset_hz=0.0, gain_db=6.0).replay(trace, 1.0)
        assert np.abs(replayed.samples[0]) == pytest.approx(10 ** (6 / 20))

    def test_replay_timing_and_metadata(self, fast_config):
        trace = IQTrace(np.ones(8, dtype=complex), fast_config.sample_rate_hz, start_time_s=50.0)
        replayed = Replayer().replay(trace, delay_s=30.0)
        assert replayed.start_time_s == 80.0
        assert replayed.metadata["replayed"] is True

    def test_non_positive_delay_rejected(self, fast_config):
        trace = IQTrace(np.ones(8, dtype=complex), fast_config.sample_rate_hz)
        with pytest.raises(ConfigurationError):
            Replayer().replay(trace, delay_s=0.0)


class TestEavesdropper:
    def test_records_waveform(self, fast_config, rng):
        eave = Eavesdropper(receiver=SdrReceiver(sample_rate_hz=fast_config.sample_rate_hz))
        wave = np.ones(128, dtype=complex)
        trace = eave.record(wave, start_time_s=5.0, rng=rng)
        assert len(trace) == 128
        assert trace.start_time_s == 5.0
        assert eave.last_recording is trace

    def test_jamming_residue_added(self, fast_config, rng):
        eave = Eavesdropper(receiver=SdrReceiver(sample_rate_hz=fast_config.sample_rate_hz))
        wave = np.zeros(50_000, dtype=complex)
        trace = eave.record(wave, 0.0, rng, jamming_power=0.25)
        assert trace.power() == pytest.approx(0.25, rel=0.1)

    def test_no_recording_yet(self, fast_config):
        eave = Eavesdropper(receiver=SdrReceiver(sample_rate_hz=1e6))
        with pytest.raises(ConfigurationError):
            _ = eave.last_recording

    def test_negative_jamming_power_rejected(self, rng):
        eave = Eavesdropper(receiver=SdrReceiver(sample_rate_hz=1e6))
        with pytest.raises(ConfigurationError):
            eave.record(np.zeros(8, dtype=complex), 0.0, rng, jamming_power=-1.0)


class TestFrameDelayAttack:
    def test_frame_level_execution(self, rng):
        _, uplink = make_uplink()
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(rng)
        )
        outcome = attack.execute(uplink, delay_s=30.0)
        assert outcome.stealthy
        assert outcome.replayed.arrival_time_s == pytest.approx(
            uplink.emission_time_s + 30.0
        )
        assert outcome.replayed.mac_bytes == uplink.mac_bytes
        assert outcome.replayed.fb_hz == pytest.approx(
            uplink.fb_hz + attack.replayer.chain_fb_offset_hz
        )

    def test_waveform_level_execution(self, fast_config, rng):
        device, uplink = make_uplink(sf=7)
        wave = device.modulate(uplink, fast_config)
        attack = FrameDelayAttack(
            jammer=StealthyJammer(),
            replayer=Replayer.single_usrp(rng),
            eavesdropper=Eavesdropper(
                receiver=SdrReceiver(sample_rate_hz=fast_config.sample_rate_hz)
            ),
        )
        outcome = attack.execute(uplink, delay_s=12.0, waveform=wave)
        assert outcome.recording is not None
        assert outcome.replayed_trace is not None
        assert outcome.replayed_trace.start_time_s == pytest.approx(
            uplink.emission_time_s + 12.0
        )

    def test_waveform_without_eavesdropper_rejected(self, rng):
        _, uplink = make_uplink()
        attack = FrameDelayAttack(jammer=StealthyJammer(), replayer=Replayer())
        with pytest.raises(ConfigurationError):
            attack.execute(uplink, delay_s=5.0, waveform=np.zeros(8, dtype=complex))

    def test_non_positive_delay_rejected(self, rng):
        _, uplink = make_uplink()
        attack = FrameDelayAttack(jammer=StealthyJammer(), replayer=Replayer())
        with pytest.raises(ConfigurationError):
            attack.execute(uplink, delay_s=-1.0)

    def test_jam_onset_in_effective_window(self, rng):
        _, uplink = make_uplink()
        attack = FrameDelayAttack(jammer=StealthyJammer(), replayer=Replayer())
        outcome = attack.execute(uplink, delay_s=5.0)
        offset = outcome.jam_onset_s - uplink.emission_time_s
        windows = attack.jammer.windows_for(
            uplink.spreading_factor, len(uplink.mac_bytes)
        )
        assert windows.w1_s < offset < windows.w2_s
