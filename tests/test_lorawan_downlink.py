"""Tests for downlinks, Class A windows, and the downlink scheduler."""

import pytest

from repro.errors import ConfigurationError, DecodeError, MicError
from repro.lorawan.downlink import (
    RX1_DELAY_S,
    RX2_DELAY_S,
    DownlinkScheduler,
    build_downlink,
    class_a_windows,
    parse_downlink,
)
from repro.lorawan.mac import MType
from repro.lorawan.security import SessionKeys

DEV = 0x26031234
KEYS = SessionKeys.derive_for_test(DEV)


class TestDownlinkFrames:
    def test_roundtrip(self):
        raw = build_downlink(KEYS, DEV, 3, b"config update", fport=5)
        frame = parse_downlink(raw, KEYS)
        assert frame.mtype is MType.UNCONFIRMED_DOWN
        assert frame.dev_addr == DEV
        assert frame.fcnt == 3
        assert frame.fport == 5
        assert frame.frm_payload == b"config update"

    def test_ack_bit(self):
        raw = build_downlink(KEYS, DEV, 1, ack=True)
        frame = parse_downlink(raw, KEYS)
        assert frame.fctrl & 0x20

    def test_confirmed_type(self):
        raw = build_downlink(KEYS, DEV, 1, confirmed=True)
        assert parse_downlink(raw, KEYS).mtype is MType.CONFIRMED_DOWN

    def test_payload_encrypted_on_wire(self):
        raw = build_downlink(KEYS, DEV, 1, b"secret")
        assert b"secret" not in raw

    def test_tampering_detected(self):
        raw = bytearray(build_downlink(KEYS, DEV, 1, b"payload"))
        raw[10] ^= 0x01
        with pytest.raises(MicError):
            parse_downlink(bytes(raw), KEYS)

    def test_wrong_keys_rejected(self):
        raw = build_downlink(KEYS, DEV, 1, b"x")
        with pytest.raises(MicError):
            parse_downlink(raw, SessionKeys.derive_for_test(0xBEEF))

    def test_uplink_bytes_rejected(self):
        from repro.lorawan.mac import build_uplink

        raw = build_uplink(KEYS, DEV, 1, b"x")
        with pytest.raises(DecodeError):
            parse_downlink(raw, KEYS)

    def test_short_frame_rejected(self):
        with pytest.raises(DecodeError):
            parse_downlink(b"\x60\x01", KEYS)

    def test_uplink_downlink_keystreams_differ(self):
        from repro.lorawan.mac import build_uplink, parse_mac_frame

        up = parse_mac_frame(build_uplink(KEYS, DEV, 9, b"same payload"))
        down_raw = build_downlink(KEYS, DEV, 9, b"same payload")
        down_cipher = down_raw[9:-4]
        assert up.frm_payload != down_cipher


class TestClassAWindows:
    def test_window_timing(self):
        rx1, rx2 = class_a_windows(uplink_end_s=100.0)
        assert rx1.opens_at_s == 100.0 + RX1_DELAY_S
        assert rx2.opens_at_s == 100.0 + RX2_DELAY_S
        assert rx1.which == "RX1" and rx2.which == "RX2"

    def test_contains(self):
        rx1, _ = class_a_windows(0.0)
        assert rx1.contains(rx1.opens_at_s)
        assert rx1.contains(rx1.closes_at_s)
        assert not rx1.contains(rx1.closes_at_s + 0.01)


class TestDownlinkScheduler:
    def test_idle_scheduler_hits_rx1(self):
        scheduler = DownlinkScheduler()
        window = scheduler.schedule(uplink_end_s=50.0, airtime_s=0.05)
        assert window is not None and window.which == "RX1"

    def test_busy_scheduler_falls_back_to_rx2(self):
        scheduler = DownlinkScheduler(duty_cycle=0.10)
        first = scheduler.schedule(uplink_end_s=50.0, airtime_s=0.1)
        assert first.which == "RX1"
        # A second uplink ending at nearly the same time: the chain is in
        # its off-period through RX1 but free again by RX2.
        second = scheduler.schedule(uplink_end_s=50.2, airtime_s=0.1)
        assert second is not None and second.which == "RX2"

    def test_saturated_scheduler_misses(self):
        scheduler = DownlinkScheduler(duty_cycle=0.01)  # 99x off-time
        assert scheduler.schedule(40.0, 0.5) is not None
        # The chain is blocked for ~50 s: the next ack misses both windows.
        assert scheduler.schedule(41.0, 0.5) is None

    def test_airtime_accounting(self):
        scheduler = DownlinkScheduler()
        scheduler.schedule(10.0, 0.05)
        scheduler.schedule(100.0, 0.05)
        assert scheduler.airtime_spent_s == pytest.approx(0.10)

    def test_invalid_airtime(self):
        with pytest.raises(ConfigurationError):
            DownlinkScheduler().schedule(0.0, 0.0)
