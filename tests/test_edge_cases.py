"""Edge-case and failure-injection tests across module boundaries."""

import numpy as np
import pytest

from repro.clock.clocks import GpsClock
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.errors import DecodeError
from repro.lorawan.device import EndDevice
from repro.lorawan.gateway import CommodityGateway, ReceiveStatus
from repro.lorawan.mac import build_uplink
from repro.lorawan.security import SessionKeys
from repro.clock.oscillator import Oscillator
from repro.clock.clocks import DriftingClock
from repro.phy.chirp import ChirpConfig
from repro.phy.frame import PhyFrame, PhyReceiver, PhyTransmitter
from repro.sdr.iq import IQTrace


class TestPhyReceiverEdgeCases:
    def test_wrong_onset_by_half_chirp_fails(self, fast_config):
        frame = PhyFrame(payload=b"alignment matters")
        wave = PhyTransmitter(fast_config).modulate(frame)
        padded = np.concatenate([np.zeros(1000, dtype=complex), wave])
        with pytest.raises(DecodeError):
            PhyReceiver(fast_config).decode(
                padded, onset_index=1000 + fast_config.samples_per_chirp // 2
            )

    def test_max_payload_frame(self, fast_config):
        frame = PhyFrame(payload=bytes(range(250)) + bytes(3), coding_rate=1)
        wave = PhyTransmitter(fast_config).modulate(frame)
        result = PhyReceiver(fast_config).decode(wave, onset_index=0)
        assert len(result.payload) == 253

    def test_single_byte_payload(self, fast_config):
        frame = PhyFrame(payload=b"\xff")
        wave = PhyTransmitter(fast_config).modulate(frame)
        assert PhyReceiver(fast_config).decode(wave, onset_index=0).payload == b"\xff"

    def test_long_preamble_frame(self, fast_config):
        frame = PhyFrame(payload=b"long preamble", n_preamble=16)
        wave = PhyTransmitter(fast_config).modulate(frame)
        result = PhyReceiver(fast_config).decode(wave, onset_index=0, n_preamble=16)
        assert result.payload == frame.payload

    def test_truncated_capture_raises_cleanly(self, fast_config):
        frame = PhyFrame(payload=b"cut off mid-frame")
        wave = PhyTransmitter(fast_config).modulate(frame)
        with pytest.raises(Exception) as excinfo:
            PhyReceiver(fast_config).decode(wave[: len(wave) // 2], onset_index=0)
        # Must be a library error, never an IndexError escape.
        assert not isinstance(excinfo.value, IndexError)


class TestGatewayEdgeCases:
    def _device(self, dev_addr=0x26040001, seed=9):
        rng = np.random.default_rng(seed)
        return EndDevice(
            name=f"d{dev_addr:x}",
            dev_addr=dev_addr,
            keys=SessionKeys.derive_for_test(dev_addr),
            radio_oscillator=Oscillator.lora_end_device(rng),
            clock=DriftingClock(drift_ppm=30.0),
            rng=rng,
        )

    def test_gps_jitter_stays_sub_microsecond(self):
        device = self._device()
        gateway = CommodityGateway(
            clock=GpsClock(jitter_s=50e-9, rng=np.random.default_rng(1))
        )
        gateway.register_device(device.dev_addr, device.keys)
        device.take_reading(1.0, 10.0)
        tx = device.transmit(11.0)
        reception = gateway.receive_frame(tx.mac_bytes, tx.emission_time_s)
        assert abs(reception.arrival_time_s - tx.emission_time_s) < 1e-6

    def test_independent_counters_per_device(self):
        a, b = self._device(0x26040001), self._device(0x26040002, seed=10)
        gateway = CommodityGateway()
        gateway.register_device(a.dev_addr, a.keys)
        gateway.register_device(b.dev_addr, b.keys)
        for device in (a, b):
            device.take_reading(1.0, 0.0)
            tx = device.transmit(1.0)
            assert gateway.receive_frame(tx.mac_bytes, tx.emission_time_s).accepted

    def test_non_sensor_payload_accepted_without_readings(self):
        dev_addr = 0x26040003
        keys = SessionKeys.derive_for_test(dev_addr)
        gateway = CommodityGateway()
        gateway.register_device(dev_addr, keys)
        raw = build_uplink(keys, dev_addr, 1, b"\x05opaque app bytes")
        reception = gateway.receive_frame(raw, 50.0)
        assert reception.status is ReceiveStatus.OK
        assert reception.readings == []

    def test_empty_frm_payload(self):
        dev_addr = 0x26040004
        keys = SessionKeys.derive_for_test(dev_addr)
        gateway = CommodityGateway()
        gateway.register_device(dev_addr, keys)
        raw = build_uplink(keys, dev_addr, 1, b"")
        reception = gateway.receive_frame(raw, 50.0)
        assert reception.status is ReceiveStatus.OK


class TestSoftLoRaEdgeCases:
    def _system(self, fast_config):
        dev_addr = 0x26040010
        keys = SessionKeys.derive_for_test(dev_addr)
        commodity = CommodityGateway()
        commodity.register_device(dev_addr, keys)
        gateway = SoftLoRaGateway(config=fast_config, commodity=commodity)
        return gateway, dev_addr, keys

    def test_unknown_device_frame_is_mac_rejected(self, fast_config):
        gateway, _, _ = self._system(fast_config)
        stranger_keys = SessionKeys.derive_for_test(0xDEADBEEF)
        raw = build_uplink(stranger_keys, 0xDEADBEEF, 1, b"hello")
        reception = gateway.process_frame(raw, 10.0, -20e3)
        assert reception.status is SoftLoRaStatus.MAC_REJECTED

    def test_garbled_bytes_are_mac_rejected_not_crash(self, fast_config):
        gateway, _, _ = self._system(fast_config)
        reception = gateway.process_frame(bytes(16), 10.0, -20e3)
        assert reception.status is SoftLoRaStatus.MAC_REJECTED

    def test_capture_too_short_for_estimation(self, fast_config, rng):
        gateway, _, _ = self._system(fast_config)
        # Barely longer than the AIC minimum but far too short for a
        # frame: the pipeline must fail cleanly, not crash.
        noise = rng.standard_normal(600) + 1j * rng.standard_normal(600)
        trace = IQTrace(noise, fast_config.sample_rate_hz)
        reception = gateway.process_capture(trace)
        assert reception.status is SoftLoRaStatus.PHY_DECODE_FAILED

    def test_learning_phase_would_accept_first_replay(self, fast_config):
        # Documented limitation (paper Sec. 7.2): run-time profile
        # building assumes an attack-free learning phase.  A replay seen
        # *before* any history exists is accepted and poisons the profile
        # -- which is why offline bootstrapping is preferred.
        gateway, dev_addr, keys = self._system(fast_config)
        raw = build_uplink(keys, dev_addr, 1, b"")
        reception = gateway.process_frame(raw, 10.0, -20e3 - 600.0)
        assert reception.status is SoftLoRaStatus.ACCEPTED


class TestChirpConfigBoundaries:
    def test_sf6_supported_at_phy_level(self):
        config = ChirpConfig(spreading_factor=6, sample_rate_hz=0.5e6)
        assert config.n_symbols == 64
        assert config.chirp_time_s == pytest.approx(64 / 125e3)

    def test_very_high_sample_rate(self):
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=10e6)
        assert config.samples_per_chirp == 10240

    def test_exact_nyquist_rate_allowed(self):
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=125e3)
        assert config.samples_per_chirp == 128
