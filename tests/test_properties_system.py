"""Second property-test suite: system-level invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attack.jammer import JammingOutcome, JammingWindowModel
from repro.clock.clocks import DriftingClock
from repro.clock.oscillator import Oscillator
from repro.core.freq_bias import LeastSquaresFbEstimator
from repro.core.timestamping import ElapsedTimeCodec
from repro.lorawan.device import decode_sensor_payload, encode_sensor_payload
from repro.lorawan.duty_cycle import DutyCycleLimiter
from repro.phy.chirp import ChirpConfig, upchirp
from repro.radio.channel import Transmission, resolve_collisions
from repro.sdr.iq import IQTrace

_SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
_CONFIG = ChirpConfig(spreading_factor=7, sample_rate_hz=0.25e6)


class TestJammingWindowProperties:
    @given(
        sf=st.integers(7, 12),
        payload=st.integers(0, 200),
    )
    def test_model_windows_always_ordered(self, sf, payload):
        windows = JammingWindowModel().windows(sf, payload)
        assert 0 < windows.w1_s < windows.w2_s < windows.w3_s

    @given(
        sf=st.integers(7, 12),
        payload=st.integers(0, 200),
        offset_fraction=st.floats(0.0, 3.0, allow_nan=False),
    )
    def test_classification_total_and_ordered(self, sf, payload, offset_fraction):
        windows = JammingWindowModel().windows(sf, payload)
        offset = offset_fraction * windows.w3_s
        outcome = windows.classify(offset)
        # The outcome regions partition [0, inf) in a fixed order.
        order = [
            JammingOutcome.JAMMER_ONLY,
            JammingOutcome.SILENT_DROP,
            JammingOutcome.CRC_ALERT,
            JammingOutcome.BOTH_DECODED,
        ]
        boundaries = [windows.w1_s, windows.w2_s, windows.w3_s, float("inf")]
        expected_index = next(i for i, b in enumerate(boundaries) if offset <= b)
        assert outcome is order[expected_index]

    @given(sf=st.integers(7, 12), p1=st.integers(0, 100), p2=st.integers(101, 200))
    def test_w2_monotone_in_payload(self, sf, p1, p2):
        model = JammingWindowModel()
        assert model.windows(sf, p1).w2_s <= model.windows(sf, p2).w2_s


class TestDutyCycleProperties:
    @given(
        airtimes=st.lists(st.floats(0.01, 2.0, allow_nan=False), min_size=1, max_size=10),
        duty=st.sampled_from([0.001, 0.01, 0.1]),
    )
    def test_long_run_airtime_never_exceeds_duty_budget(self, airtimes, duty):
        limiter = DutyCycleLimiter(duty_cycle=duty)
        t = 0.0
        for airtime in airtimes:
            t = max(t, limiter.next_allowed_s("g2"))
            limiter.register(t, airtime)
        window_end = limiter.next_allowed_s("g2")
        # Spent airtime over the enforced horizon respects the duty cycle.
        assert limiter.airtime_spent_s("g2") <= duty * window_end + 1e-9


class TestClockProperties:
    @given(
        drift_ppm=st.floats(-100.0, 100.0, allow_nan=False),
        t1=st.floats(0.0, 1e6, allow_nan=False),
        t2=st.floats(0.0, 1e6, allow_nan=False),
    )
    def test_read_is_monotone_and_invertible(self, drift_ppm, t1, t2):
        clock = DriftingClock(drift_ppm=drift_ppm)
        if t1 < t2:
            assert clock.read(t1) < clock.read(t2)
        assert clock.global_from_local(clock.read(t1)) == pytest.approx(t1, abs=1e-6)

    @given(
        bias=st.floats(-50.0, 50.0, allow_nan=False),
        dt=st.floats(0.0, 40.0, allow_nan=False),
    )
    def test_oscillator_temperature_curve_symmetric(self, bias, dt):
        osc = Oscillator(bias_ppm=bias)
        assert osc.bias_at(25.0 + dt) == pytest.approx(osc.bias_at(25.0 - dt))
        # The AT-cut coefficient is negative: never above the turnover value.
        assert osc.bias_at(25.0 + dt) <= osc.bias_at(25.0) + 1e-12


class TestSensorPayloadProperties:
    @given(
        readings=st.lists(
            st.tuples(
                st.integers(-32768, 32767),
                st.integers(0, (1 << 18) - 1),
            ),
            max_size=20,
        )
    )
    def test_roundtrip(self, readings):
        codec = ElapsedTimeCodec()
        values = [float(v) for v, _ in readings]
        ticks = [t for _, t in readings]
        payload = encode_sensor_payload(values, ticks, codec)
        out_values, out_ticks = decode_sensor_payload(payload, codec)
        assert out_values == values
        assert out_ticks == ticks


class TestCollisionProperties:
    @given(
        data=st.lists(
            st.tuples(
                st.floats(0.0, 10.0, allow_nan=False),   # start
                st.floats(-120.0, -60.0, allow_nan=False),  # power
                st.sampled_from([7, 8, 9]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_delivered_frames_beat_every_co_sf_rival(self, data):
        transmissions = [
            Transmission(
                sender=f"d{i}",
                start_time_s=start,
                airtime_s=1.0,
                rx_power_dbm=power,
                spreading_factor=sf,
            )
            for i, (start, power, sf) in enumerate(data)
        ]
        outcomes = resolve_collisions(transmissions)
        assert len(outcomes) == len(transmissions)
        for outcome in outcomes:
            if not outcome.delivered:
                continue
            tx = outcome.transmission
            for other in transmissions:
                if (
                    other is not tx
                    and other.spreading_factor == tx.spreading_factor
                    and other.overlaps(tx)
                ):
                    assert tx.rx_power_dbm >= other.rx_power_dbm + 6.0


class TestIQTraceProperties:
    @given(
        n=st.integers(2, 256),
        start=st.integers(0, 128),
        fs=st.sampled_from([1e5, 1e6, 2.4e6]),
        t0=st.floats(0.0, 1e4, allow_nan=False),
    )
    def test_slicing_composes_with_time_anchors(self, n, start, fs, t0):
        start = min(start, n)
        trace = IQTrace(np.arange(n, dtype=complex), fs, start_time_s=t0)
        sub = trace.slice_samples(start)
        assert len(sub) == n - start
        if len(sub):
            assert sub.time_of_index(0) == pytest.approx(trace.time_of_index(start))
            # index_of_time inverts time_of_index on the grid.
            k = len(sub) - 1
            assert sub.index_of_time(sub.time_of_index(k)) == k


class TestEstimatorInvarianceProperties:
    @given(
        fb_khz=st.floats(-25.0, 25.0, allow_nan=False),
        rotation=st.floats(0.0, 6.28, allow_nan=False),
        scale=st.floats(0.2, 4.0, allow_nan=False),
    )
    @_SLOW
    def test_fb_estimate_invariant_to_global_phase_and_gain(self, fb_khz, rotation, scale):
        # Receiver gain and constant phase must not move the FB estimate:
        # the defense keys on frequency alone.
        chirp = upchirp(_CONFIG, fb_hz=fb_khz * 1e3, phase=0.4)
        transformed = scale * np.exp(1j * rotation) * chirp
        estimator = LeastSquaresFbEstimator(_CONFIG)
        a = estimator.estimate(chirp).fb_hz
        b = estimator.estimate(transformed).fb_hz
        assert a == pytest.approx(b, abs=0.5)
