"""Property tests for the Semtech UDP packet-forwarder codec.

Pins the two guarantees the daemon's golden verdict check rests on:

* encode -> decode identity: a ``GatewayForward`` survives the rxpk
  JSON round trip *bit for bit* (floats via repr-exact JSON), and every
  datagram type survives ``encode_datagram``/``decode_datagram``;
* malformed input safety: arbitrary bytes and mangled JSON are rejected
  with :class:`~repro.errors.DecodeError` -- and the daemon's datagram
  handler survives them without crashing, only counting.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DecodeError
from repro.server.forwarding import GatewayForward
from repro.server.network_server import NetworkServer
from repro.service.config import ServiceConfig
from repro.service.daemon import NetworkServerDaemon
from repro.service.semtech import (
    PacketType,
    PullAck,
    PullData,
    PullResp,
    PushAck,
    PushData,
    TxAck,
    decode_datagram,
    encode_datagram,
    encode_datr,
    eui_from_gateway_id,
    forward_from_rxpk,
    gateway_id_from_eui,
    parse_datr,
    rxpk_from_forward,
    txpk_for_downlink,
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
gateway_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=8
).filter(lambda s: len(s.encode()) <= 8)
tokens = st.integers(min_value=0, max_value=0xFFFF)
euis = st.binary(min_size=8, max_size=8)

forwards = st.builds(
    GatewayForward,
    gateway_id=gateway_ids,
    mac_bytes=st.binary(min_size=1, max_size=64),
    arrival_time_s=finite,
    fb_hz=finite,
    snr_db=finite,
    spreading_factor=st.integers(min_value=7, max_value=12),
)


@given(forward=forwards)
def test_rxpk_round_trip_is_bit_identical(forward):
    """A forward survives rxpk JSON encoding exactly, floats included."""
    rxpk = json.loads(json.dumps(rxpk_from_forward(forward)))
    assert forward_from_rxpk(forward.gateway_id, rxpk) == forward


@given(gateway_id=gateway_ids)
def test_gateway_eui_round_trip(gateway_id):
    """Gateway ids up to 8 UTF-8 bytes map losslessly onto wire EUIs."""
    eui = eui_from_gateway_id(gateway_id)
    assert len(eui) == 8
    assert gateway_id_from_eui(eui) == gateway_id


@given(token=tokens, eui=euis, forward_list=st.lists(forwards, max_size=4))
def test_push_data_datagram_round_trip(token, eui, forward_list):
    """PUSH_DATA encodes and decodes to the same message."""
    message = PushData(
        token=token,
        gateway_eui=eui,
        rxpks=tuple(rxpk_from_forward(f) for f in forward_list),
    )
    assert decode_datagram(encode_datagram(message)) == message


@given(token=tokens, eui=euis)
def test_ack_and_keepalive_round_trips(token, eui):
    """Every fixed-size datagram type round-trips with its token."""
    for message in (
        PushAck(token=token),
        PullData(token=token, gateway_eui=eui),
        PullAck(token=token),
        TxAck(token=token, gateway_eui=eui),
    ):
        assert decode_datagram(encode_datagram(message)) == message


@given(token=tokens, raw=st.binary(min_size=1, max_size=64), sf=st.integers(7, 12))
def test_pull_resp_round_trip(token, raw, sf):
    """PULL_RESP carries its downlink payload bytes through JSON intact."""
    message = PullResp(token=token, txpk=txpk_for_downlink(raw, sf))
    decoded = decode_datagram(encode_datagram(message))
    assert decoded == message
    assert decoded.payload_bytes() == raw


@given(sf=st.integers(min_value=7, max_value=12))
def test_datr_round_trip(sf):
    """SF encodes to LoRa datr strings and parses back."""
    assert parse_datr(encode_datr(sf)) == sf


@pytest.mark.parametrize("datr", ["SF6BW125", "SF13BW125", "FSK", "", "SF7"])
def test_bad_datr_rejected(datr):
    """Out-of-range or non-LoRa datr strings raise DecodeError."""
    with pytest.raises(DecodeError):
        parse_datr(datr)


@pytest.mark.parametrize("gateway_id", ["", "nine-chars", "x\x00"])
def test_bad_gateway_ids_rejected(gateway_id):
    """Un-mappable gateway ids are a configuration error."""
    with pytest.raises(ConfigurationError):
        eui_from_gateway_id(gateway_id)


@given(data=st.binary(max_size=64))
@settings(max_examples=300)
def test_arbitrary_bytes_never_crash_the_decoder(data):
    """decode_datagram raises DecodeError or returns a datagram, only."""
    try:
        message = decode_datagram(data)
    except DecodeError:
        return
    assert decode_datagram(encode_datagram(message)) == message


@given(data=st.binary(max_size=64))
@settings(max_examples=200)
def test_daemon_handler_survives_arbitrary_datagrams(data):
    """The daemon counts malformed datagrams instead of crashing."""
    daemon = NetworkServerDaemon(server=NetworkServer(), config=ServiceConfig())
    before = daemon.metrics.get("repro_service_malformed_datagrams_total").total()
    daemon.handle_datagram(data, ("127.0.0.1", 9999))
    counted = daemon.metrics.get("repro_service_malformed_datagrams_total").total()
    seen = daemon.metrics.get("repro_service_datagrams_total").total()
    assert counted >= before
    assert counted + seen >= 1


def test_mangled_rxpk_counts_as_malformed_not_fatal():
    """A PUSH_DATA with a broken rxpk is counted, valid siblings survive."""
    daemon = NetworkServerDaemon(server=NetworkServer(), config=ServiceConfig())
    good = rxpk_from_forward(
        GatewayForward(
            gateway_id="gw-0",
            mac_bytes=b"\x40" + bytes(11),
            arrival_time_s=1.25,
            fb_hz=-3.5,
            snr_db=7.0,
        )
    )
    bad = dict(good, data="!!!not-base64!!!")
    message = PushData(token=1, gateway_eui=eui_from_gateway_id("gw-0"), rxpks=(bad, good))
    daemon.handle_datagram(encode_datagram(message), ("127.0.0.1", 9999))
    assert daemon.metrics.get("repro_service_malformed_datagrams_total").total() == 1
    assert daemon.metrics.get("repro_service_uplinks_total").total() == 1


def test_server_to_gateway_types_are_counted_as_misuse():
    """PUSH_ACK arriving at the daemon is protocol misuse, not a crash."""
    daemon = NetworkServerDaemon(server=NetworkServer(), config=ServiceConfig())
    daemon.handle_datagram(encode_datagram(PushAck(token=7)), ("127.0.0.1", 9999))
    assert daemon.metrics.get("repro_service_malformed_datagrams_total").total() == 1


@given(version=st.integers(min_value=0, max_value=255))
def test_wrong_protocol_version_rejected(version):
    """Only protocol version 2 datagrams decode."""
    raw = bytes([version, 0, 0, PacketType.PUSH_ACK])
    if version == 2:
        assert decode_datagram(raw) == PushAck(token=0)
    else:
        with pytest.raises(DecodeError):
            decode_datagram(raw)
