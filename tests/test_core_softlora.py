"""Tests for the SoftLoRa gateway pipeline (repro.core.softlora)."""

import numpy as np
import pytest

from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.clock.clocks import DriftingClock
from repro.clock.oscillator import Oscillator
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.lorawan.device import EndDevice
from repro.lorawan.gateway import CommodityGateway
from repro.lorawan.security import SessionKeys
from repro.sdr.iq import IQTrace
from repro.sdr.noise import complex_awgn, noise_power_for_snr

DEV = 0x26015555


@pytest.fixture
def device():
    rng = np.random.default_rng(11)
    return EndDevice(
        name="node",
        dev_addr=DEV,
        keys=SessionKeys.derive_for_test(DEV),
        radio_oscillator=Oscillator.lora_end_device(rng),
        clock=DriftingClock(drift_ppm=40.0),
        spreading_factor=7,
        rng=rng,
    )


@pytest.fixture
def gateway(fast_config, device):
    commodity = CommodityGateway()
    commodity.register_device(device.dev_addr, device.keys)
    gw = SoftLoRaGateway(config=fast_config, commodity=commodity)
    gw.bootstrap_fb_profile(device.dev_addr, [device.fb_hz + e for e in (-30.0, 0.0, 30.0)])
    return gw


def capture_of(device, tx, config, rng, snr_db=15.0, pad=1500):
    wave = device.modulate(tx, config)
    noise_power = noise_power_for_snr(1.0, snr_db)
    full = np.concatenate([np.zeros(pad, dtype=complex), wave])
    noisy = full + complex_awgn(len(full), noise_power, rng)
    start = tx.emission_time_s - pad / config.sample_rate_hz
    return IQTrace(noisy, config.sample_rate_hz, start_time_s=start), noise_power


class TestFullWaveformPath:
    def test_accepts_legitimate_capture(self, fast_config, device, gateway, rng):
        device.take_reading(25.0, 100.0)
        tx = device.transmit(110.0)
        trace, noise_power = capture_of(device, tx, fast_config, rng)
        reception = gateway.process_capture(trace, noise_power=noise_power)
        assert reception.status is SoftLoRaStatus.ACCEPTED
        assert reception.readings[0].value == 25.0

    def test_phy_timestamp_microsecond_accurate(self, fast_config, device, gateway, rng):
        device.take_reading(1.0, 10.0)
        tx = device.transmit(20.0)
        trace, noise_power = capture_of(device, tx, fast_config, rng, snr_db=20.0)
        reception = gateway.process_capture(trace, noise_power=noise_power)
        assert abs(reception.phy_timestamp_s - tx.emission_time_s) < 10e-6

    def test_fb_estimate_close_to_device_truth(self, fast_config, device, gateway, rng):
        device.take_reading(1.0, 10.0)
        tx = device.transmit(20.0)
        trace, noise_power = capture_of(device, tx, fast_config, rng, snr_db=20.0)
        reception = gateway.process_capture(trace, noise_power=noise_power)
        # Slicing on the sample grid costs up to rate/(2·fs) ~ 120 Hz here.
        assert reception.fb_hz == pytest.approx(device.fb_hz, abs=250.0)

    def test_reconstructed_timestamps_accurate(self, fast_config, device, gateway, rng):
        device.take_reading(7.0, 500.0)
        device.take_reading(8.0, 520.0)
        tx = device.transmit(530.0)
        trace, noise_power = capture_of(device, tx, fast_config, rng)
        reception = gateway.process_capture(trace, noise_power=noise_power)
        times = [r.global_time_s for r in reception.readings]
        assert times[0] == pytest.approx(500.0, abs=10e-3)
        assert times[1] == pytest.approx(520.0, abs=10e-3)

    def test_replayed_capture_detected(self, fast_config, device, gateway, rng):
        device.take_reading(1.0, 10.0)
        tx = device.transmit(20.0)
        wave = device.modulate(tx, fast_config)
        replayer = Replayer.single_usrp(rng)
        trace = IQTrace(wave, fast_config.sample_rate_hz, start_time_s=tx.emission_time_s)
        replayed = replayer.replay(trace, delay_s=45.0)
        pad = 1500
        noise_power = noise_power_for_snr(1.0, 15.0)
        padded = np.concatenate([np.zeros(pad, dtype=complex), replayed.samples])
        noisy = padded + complex_awgn(len(padded), noise_power, rng)
        capture = IQTrace(
            noisy,
            fast_config.sample_rate_hz,
            start_time_s=replayed.start_time_s - pad / fast_config.sample_rate_hz,
        )
        reception = gateway.process_capture(capture, noise_power=noise_power)
        assert reception.status is SoftLoRaStatus.REPLAY_DETECTED
        assert reception.readings == []

    def test_garbage_capture_fails_phy_decode(self, fast_config, gateway, rng):
        noise = complex_awgn(20 * fast_config.samples_per_chirp, 1.0, rng)
        trace = IQTrace(noise, fast_config.sample_rate_hz)
        reception = gateway.process_capture(trace)
        assert reception.status is SoftLoRaStatus.PHY_DECODE_FAILED


class TestFrameLevelPath:
    def test_accepts_in_profile_fb(self, device, gateway):
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        reception = gateway.process_frame(tx.mac_bytes, tx.emission_time_s, device.fb_hz)
        assert reception.status is SoftLoRaStatus.ACCEPTED

    def test_flags_offset_fb(self, device, gateway):
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        reception = gateway.process_frame(
            tx.mac_bytes, tx.emission_time_s + 60.0, device.fb_hz - 600.0
        )
        assert reception.status is SoftLoRaStatus.REPLAY_DETECTED
        assert reception.attack_detected

    def test_mac_rejection_propagates(self, device, gateway):
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        tampered = bytearray(tx.mac_bytes)
        tampered[-1] ^= 0xFF
        reception = gateway.process_frame(bytes(tampered), tx.emission_time_s, device.fb_hz)
        assert reception.status is SoftLoRaStatus.MAC_REJECTED

    def test_full_attack_cycle_frame_level(self, device, gateway, rng):
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(rng)
        )
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        outcome = attack.execute(tx, delay_s=120.0)
        reception = gateway.process_frame(
            outcome.replayed.mac_bytes,
            outcome.replayed.arrival_time_s,
            outcome.replayed.fb_hz,
        )
        assert reception.status is SoftLoRaStatus.REPLAY_DETECTED

    def test_replay_detection_blocks_timestamp_spoofing(self, device, gateway, rng):
        # The final defense property: attacked frames contribute no
        # (shifted) timestamps, legitimate frames keep working.
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(rng)
        )
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        outcome = attack.execute(tx, delay_s=600.0)
        flagged = gateway.process_frame(
            outcome.replayed.mac_bytes,
            outcome.replayed.arrival_time_s,
            outcome.replayed.fb_hz,
        )
        assert flagged.readings == []
        device.take_reading(2.0, 700.0)
        tx2 = device.transmit(710.0)
        ok = gateway.process_frame(tx2.mac_bytes, tx2.emission_time_s, device.fb_hz)
        assert ok.status is SoftLoRaStatus.ACCEPTED
        assert ok.readings[0].global_time_s == pytest.approx(700.0, abs=10e-3)

    def test_receptions_logged(self, device, gateway):
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        gateway.process_frame(tx.mac_bytes, tx.emission_time_s, device.fb_hz)
        assert len(gateway.receptions) == 1
        assert gateway.receptions[0].accepted
