"""Tests for LoRa chirp synthesis (repro.phy.chirp)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.chirp import (
    ChirpConfig,
    chirp_end_phase,
    chirp_waveform,
    downchirp,
    instantaneous_frequency,
    instantaneous_phase,
    preamble_at_times,
    preamble_waveform,
    upchirp,
)


class TestChirpConfig:
    def test_chirp_time_matches_paper(self):
        # SF7 at 125 kHz: 2^7 / 125e3 = 1.024 ms (paper Sec. 6.1.1).
        config = ChirpConfig(spreading_factor=7)
        assert config.chirp_time_s == pytest.approx(1.024e-3)

    def test_sf12_chirp_time(self):
        config = ChirpConfig(spreading_factor=12)
        assert config.chirp_time_s == pytest.approx(32.768e-3)

    def test_samples_per_chirp_at_rtl_rate(self):
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=2.4e6)
        assert config.samples_per_chirp == 2458  # round(1.024 ms * 2.4 Msps)

    def test_n_symbols(self):
        assert ChirpConfig(spreading_factor=9).n_symbols == 512

    def test_symbol_bandwidth(self):
        config = ChirpConfig(spreading_factor=7)
        assert config.symbol_bandwidth_hz == pytest.approx(125e3 / 128)

    @pytest.mark.parametrize("sf", [5, 13, 0, -1])
    def test_invalid_spreading_factor_rejected(self, sf):
        with pytest.raises(ConfigurationError):
            ChirpConfig(spreading_factor=sf)

    def test_sample_rate_below_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            ChirpConfig(spreading_factor=7, sample_rate_hz=100e3)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            ChirpConfig(spreading_factor=7, bandwidth_hz=-1.0)

    def test_sample_times_length(self, fast_config):
        assert len(fast_config.sample_times()) == fast_config.samples_per_chirp
        assert len(fast_config.sample_times(2.0)) == 2 * fast_config.samples_per_chirp


class TestInstantaneousPhase:
    def test_matches_paper_equation_for_base_chirp(self, fast_config):
        # Θ(t) = πW²/2^S·t² − πWt + 2πδt + θ  (paper Eq. 5)
        t = fast_config.sample_times()
        w = fast_config.bandwidth_hz
        s = fast_config.n_symbols
        delta, theta = -20e3, 1.2345
        expected = np.pi * w**2 / s * t**2 - np.pi * w * t + 2 * np.pi * delta * t + theta
        actual = instantaneous_phase(t, fast_config, fb_hz=delta, phase=theta)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_phase_continuous_across_symbol_fold(self, fast_config):
        # Evaluate densely around the fold instant of a data symbol.
        symbol = 40
        t_fold = (fast_config.n_symbols - symbol) / fast_config.bandwidth_hz
        t = np.linspace(t_fold - 1e-6, t_fold + 1e-6, 1001)
        theta = instantaneous_phase(t, fast_config, symbol=symbol)
        steps = np.abs(np.diff(theta))
        assert steps.max() < 0.1  # no 2πW·dt-scale jump

    def test_down_chirp_rejects_symbols(self, fast_config):
        with pytest.raises(ConfigurationError):
            instantaneous_phase(
                fast_config.sample_times(), fast_config, symbol=3, down=True
            )


class TestInstantaneousFrequency:
    def test_sweeps_full_bandwidth(self, fast_config):
        t = fast_config.sample_times()
        f = instantaneous_frequency(t, fast_config)
        w = fast_config.bandwidth_hz
        assert f[0] == pytest.approx(-w / 2)
        assert f[-1] == pytest.approx(w / 2, rel=1e-2)

    def test_down_chirp_sweeps_downward(self, fast_config):
        t = fast_config.sample_times()
        f = instantaneous_frequency(t, fast_config, down=True)
        assert f[0] == pytest.approx(fast_config.bandwidth_hz / 2)
        assert np.all(np.diff(f) < 0)

    def test_fb_shifts_frequency_uniformly(self, fast_config):
        t = fast_config.sample_times()
        base = instantaneous_frequency(t, fast_config)
        shifted = instantaneous_frequency(t, fast_config, fb_hz=5e3)
        np.testing.assert_allclose(shifted - base, 5e3)

    def test_symbol_fold_wraps_frequency(self, fast_config):
        symbol = 100
        t = fast_config.sample_times()
        f = instantaneous_frequency(t, fast_config, symbol=symbol)
        w = fast_config.bandwidth_hz
        assert f.max() <= w / 2 + 1.0
        assert f.min() >= -w / 2 - 1.0


class TestWaveforms:
    def test_constant_envelope(self, fast_config):
        z = upchirp(fast_config, fb_hz=-20e3, phase=0.7, amplitude=2.5)
        np.testing.assert_allclose(np.abs(z), 2.5, rtol=1e-12)

    def test_i_q_are_cos_sin_of_theta(self, fast_config):
        t = fast_config.sample_times()
        theta = instantaneous_phase(t, fast_config, fb_hz=1e3, phase=0.3)
        z = upchirp(fast_config, fb_hz=1e3, phase=0.3)
        np.testing.assert_allclose(z.real, np.cos(theta), atol=1e-12)
        np.testing.assert_allclose(z.imag, np.sin(theta), atol=1e-12)

    def test_symbol_zero_equals_base_chirp(self, fast_config):
        np.testing.assert_allclose(
            upchirp(fast_config, symbol=0), chirp_waveform(fast_config), atol=1e-12
        )

    def test_distinct_symbols_are_nearly_orthogonal(self, fast_config):
        a = upchirp(fast_config, symbol=10)
        b = upchirp(fast_config, symbol=90)
        n = len(a)
        correlation = abs(np.vdot(a, b)) / n
        assert correlation < 0.05

    def test_downchirp_is_conjugate_of_upchirp_at_zero_phase(self, fast_config):
        up = upchirp(fast_config)
        down = downchirp(fast_config)
        # conj(up) sweeps +W/2 -> -W/2 with opposite phase sign; they agree
        # up to the constant -πW t + ... structure; verify via product:
        # up * down should be a tone-free slow phase if down = conj(up).
        np.testing.assert_allclose(down, np.conj(up) * np.exp(2j * np.angle(up[0])), atol=1e-6)


class TestChirpEndPhase:
    def test_closed_form_matches_dense_evaluation(self, fast_config):
        delta, theta = -17.3e3, 0.9
        t_end = np.array([fast_config.chirp_time_s])
        direct = instantaneous_phase(t_end, fast_config, fb_hz=delta, phase=theta)[0]
        closed = chirp_end_phase(fast_config, fb_hz=delta, phase=theta)
        # Equal modulo 2π.
        assert abs((direct - closed + np.pi) % (2 * np.pi) - np.pi) < 1e-6

    def test_zero_fb_preserves_phase(self, fast_config):
        assert chirp_end_phase(fast_config, fb_hz=0.0, phase=1.1) == pytest.approx(1.1)


class TestPreamble:
    def test_length(self, fast_config):
        p = preamble_waveform(fast_config, n_chirps=8)
        assert len(p) == 8 * fast_config.samples_per_chirp

    def test_rejects_empty_preamble(self, fast_config):
        with pytest.raises(ConfigurationError):
            preamble_waveform(fast_config, n_chirps=0)

    def test_phase_continuity_between_chirps(self, fast_config):
        # The phase VALUE is continuous across the boundary even though
        # the instantaneous frequency wraps from +W/2 back to −W/2.  The
        # per-sample phase steps on each side must match the frequencies
        # on each side of the wrap.
        delta = 3e3
        p = preamble_waveform(fast_config, n_chirps=2, fb_hz=delta, phase=0.0)
        spc = fast_config.samples_per_chirp
        fs = fast_config.sample_rate_hz
        w = fast_config.bandwidth_hz
        last_step = np.angle(p[spc - 1] / p[spc - 2])
        first_step = np.angle(p[spc + 1] / p[spc])
        assert last_step == pytest.approx(2 * np.pi * (w / 2 + delta) / fs, abs=0.05)
        assert first_step == pytest.approx(2 * np.pi * (-w / 2 + delta) / fs, abs=0.05)

    def test_preamble_at_times_matches_sampled_synthesis(self, fast_config):
        delta, theta = -11e3, 2.2
        direct = preamble_waveform(fast_config, n_chirps=3, fb_hz=delta, phase=theta)
        t = np.arange(len(direct)) / fast_config.sample_rate_hz
        evaluated = preamble_at_times(t, fast_config, n_chirps=3, fb_hz=delta, phase=theta)
        np.testing.assert_allclose(evaluated, direct, atol=1e-9)

    def test_preamble_at_times_zero_outside_support(self, fast_config):
        t = np.array([-1e-6, -1e-9, 3 * fast_config.chirp_time_s + 1e-9])
        z = preamble_at_times(t, fast_config, n_chirps=3)
        np.testing.assert_array_equal(z, 0)

    def test_fractional_onset_shifts_waveform(self, fast_config):
        fs = fast_config.sample_rate_hz
        t = np.arange(4 * fast_config.samples_per_chirp) / fs
        a = preamble_at_times(t - 10.0 / fs, fast_config)
        b = preamble_at_times(t - 10.5 / fs, fast_config)
        assert not np.allclose(a, b)
