"""Tests for OTAA join (repro.lorawan.join)."""

import pytest

from repro.errors import ConfigurationError, DecodeError, MicError
from repro.lorawan.join import (
    JoinAccept,
    JoinRequest,
    JoinServer,
    derive_session_keys,
    device_join,
)

APP_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


class TestJoinRequest:
    def test_roundtrip(self):
        request = JoinRequest(app_eui=0xA1, dev_eui=0xB2, dev_nonce=0x1234)
        raw = request.to_bytes(APP_KEY)
        assert len(raw) == 23
        assert JoinRequest.from_bytes(raw, APP_KEY) == request

    def test_forged_mic_rejected(self):
        raw = bytearray(JoinRequest(1, 2, 3).to_bytes(APP_KEY))
        raw[-1] ^= 0xFF
        with pytest.raises(MicError):
            JoinRequest.from_bytes(bytes(raw), APP_KEY)

    def test_wrong_length_rejected(self):
        with pytest.raises(DecodeError):
            JoinRequest.from_bytes(b"\x00" * 10, APP_KEY)

    def test_nonce_range(self):
        with pytest.raises(ConfigurationError):
            JoinRequest(1, 2, 0x10000)


class TestJoinAccept:
    def test_roundtrip(self):
        accept = JoinAccept(app_nonce=0x1234, net_id=0x13, dev_addr=0x26030001)
        raw = accept.to_bytes(APP_KEY)
        assert len(raw) == 17
        recovered = JoinAccept.from_bytes(raw, APP_KEY)
        assert recovered == accept

    def test_on_wire_form_is_encrypted(self):
        accept = JoinAccept(app_nonce=0x1234, net_id=0x13, dev_addr=0x26030001)
        raw = accept.to_bytes(APP_KEY)
        assert (0x26030001).to_bytes(4, "little") not in raw

    def test_wrong_key_rejected(self):
        accept = JoinAccept(app_nonce=0x1, net_id=0x2, dev_addr=0x3)
        with pytest.raises(MicError):
            JoinAccept.from_bytes(accept.to_bytes(APP_KEY), b"\x42" * 16)

    def test_field_ranges(self):
        with pytest.raises(ConfigurationError):
            JoinAccept(app_nonce=1 << 24, net_id=0, dev_addr=0)


class TestKeyDerivation:
    def test_deterministic(self):
        accept = JoinAccept(app_nonce=5, net_id=6, dev_addr=7)
        a = derive_session_keys(APP_KEY, accept, dev_nonce=9)
        b = derive_session_keys(APP_KEY, accept, dev_nonce=9)
        assert a == b

    def test_nonce_changes_keys(self):
        accept = JoinAccept(app_nonce=5, net_id=6, dev_addr=7)
        a = derive_session_keys(APP_KEY, accept, dev_nonce=9)
        b = derive_session_keys(APP_KEY, accept, dev_nonce=10)
        assert a != b

    def test_nwk_app_keys_differ(self):
        accept = JoinAccept(app_nonce=5, net_id=6, dev_addr=7)
        keys = derive_session_keys(APP_KEY, accept, dev_nonce=9)
        assert keys.nwk_skey != keys.app_skey


class TestJoinServer:
    def test_full_join_flow(self):
        server = JoinServer(app_key=APP_KEY)
        keys, dev_addr = device_join(APP_KEY, 0xA, 0xB, dev_nonce=0x42, server=server)
        assert dev_addr >= 0x26030000
        # Device and server derive identical session keys.
        raw = JoinRequest(0xA, 0xB, 0x43).to_bytes(APP_KEY)
        _, server_keys, _ = server.handle(raw)
        assert len(server_keys.nwk_skey) == 16

    def test_devnonce_replay_rejected(self):
        server = JoinServer(app_key=APP_KEY)
        raw = JoinRequest(0xA, 0xB, 0x42).to_bytes(APP_KEY)
        server.handle(raw)
        with pytest.raises(DecodeError):
            server.handle(raw)

    def test_nonces_tracked_per_device(self):
        server = JoinServer(app_key=APP_KEY)
        server.handle(JoinRequest(0xA, 0xB, 0x42).to_bytes(APP_KEY))
        # Same nonce from a different DevEUI is fine.
        server.handle(JoinRequest(0xA, 0xC, 0x42).to_bytes(APP_KEY))

    def test_unique_addresses(self):
        server = JoinServer(app_key=APP_KEY)
        _, addr1 = device_join(APP_KEY, 0xA, 0xB, 1, server)
        _, addr2 = device_join(APP_KEY, 0xA, 0xC, 1, server)
        assert addr1 != addr2

    def test_forged_request_rejected(self):
        server = JoinServer(app_key=APP_KEY)
        raw = JoinRequest(0xA, 0xB, 1).to_bytes(b"\x00" * 16)  # wrong key
        with pytest.raises(MicError):
            server.handle(raw)

    def test_device_server_key_agreement(self):
        # The essential OTAA property: both ends independently derive the
        # same session keys and can exchange a MIC'd frame.
        from repro.lorawan.mac import build_uplink, verify_and_decrypt

        server = JoinServer(app_key=APP_KEY)
        request = JoinRequest(0xA, 0xD, 0x77)
        accept_bytes, server_keys, dev_addr = server.handle(request.to_bytes(APP_KEY))
        from repro.lorawan.join import JoinAccept as JA

        accept = JA.from_bytes(accept_bytes, APP_KEY)
        device_keys = derive_session_keys(APP_KEY, accept, 0x77)
        assert device_keys == server_keys
        frame = build_uplink(device_keys, dev_addr, 0, b"joined!")
        assert verify_and_decrypt(frame, server_keys).frm_payload == b"joined!"
