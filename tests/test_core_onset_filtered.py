"""Tests for the production FilteredAicDetector pipeline."""

from repro.analysis.metrics import timing_error_s
from repro.core.onset import AicDetector, FilteredAicDetector
from repro.experiments.common import synthesize_capture


class TestFilteredAicDetector:
    def test_matches_plain_aic_at_high_snr(self, rtl_config, rng):
        capture = synthesize_capture(rtl_config, rng, snr_db=25.0, fb_hz=-20e3)
        plain = AicDetector().detect(capture.trace, component="i")
        filtered = FilteredAicDetector().detect(capture.trace)
        assert abs(filtered.index - plain.index) < 30  # both within ~12 µs

    def test_beats_plain_aic_at_low_snr(self, rtl_config, rng):
        plain_errors, filtered_errors = [], []
        for _ in range(4):
            capture = synthesize_capture(rtl_config, rng, snr_db=-10.0, fb_hz=-20e3)
            plain = AicDetector().detect(capture.trace, component="i")
            filtered = FilteredAicDetector().detect(capture.trace)
            plain_errors.append(timing_error_s(plain.time_s, capture.true_onset_time_s))
            filtered_errors.append(
                timing_error_s(filtered.time_s, capture.true_onset_time_s)
            )
        assert sum(filtered_errors) < sum(plain_errors)

    def test_reports_detector_name_and_cutoff(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, snr_db=15.0, fb_hz=-20e3)
        onset = FilteredAicDetector(cutoff_hz=90e3).detect(capture.trace)
        assert onset.detector == "filtered_aic"
        assert onset.diagnostics["cutoff_hz"] == 90e3

    def test_microsecond_accuracy_in_building_snr_range(self, rtl_config, rng):
        # The Fig. 15 operating condition: SNR >= -1 dB, sub-10 µs errors.
        for snr in (-1.0, 5.0, 13.0):
            capture = synthesize_capture(rtl_config, rng, snr_db=snr, fb_hz=-22e3)
            onset = FilteredAicDetector().detect(capture.trace)
            error = timing_error_s(onset.time_s, capture.true_onset_time_s)
            assert error < 10e-6, f"{error * 1e6:.1f} µs at {snr} dB"

    def test_custom_inner_detector(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, snr_db=15.0, fb_hz=-20e3)
        inner = AicDetector(margin_fraction=0.05)
        onset = FilteredAicDetector(aic=inner).detect(capture.trace)
        assert abs(onset.index - capture.true_onset_index_float) < 20
