"""Tests for adversary-side device fingerprinting (paper Sec. 4.2.1)."""

import pytest

from repro.attack.fingerprint import DeviceFingerprinter, DeviceObservation
from repro.errors import ConfigurationError, EstimationError


def enroll_fleet(fingerprinter, fleet, rng, frames=5):
    for name, fb, rssi in fleet:
        for _ in range(frames):
            fingerprinter.enroll(
                name,
                DeviceObservation(
                    fb_hz=fb + float(rng.normal(0, 30.0)),
                    rssi_dbm=rssi + float(rng.normal(0, 0.5)),
                ),
            )


class TestFingerprinter:
    FLEET = [
        ("node-a", -20000.0, -80.0),
        ("node-b", -23000.0, -85.0),
        ("node-c", -17500.0, -95.0),
    ]

    def test_identifies_distinct_devices(self, rng):
        fp = DeviceFingerprinter()
        enroll_fleet(fp, self.FLEET, rng)
        for name, fb, rssi in self.FLEET:
            observation = DeviceObservation(fb_hz=fb + 20.0, rssi_dbm=rssi + 0.3)
            assert fp.identify(observation) == name

    def test_fb_twins_ambiguous_by_fb_alone(self, rng):
        # Nodes 3/8/14 of Fig. 13 share similar FBs: FB-only
        # identification must refuse to answer...
        twins = [("twin-1", -21000.0, -75.0), ("twin-2", -21050.0, -95.0)]
        fp = DeviceFingerprinter()
        enroll_fleet(fp, twins, rng)
        assert fp.identify_by_fb_only(-21020.0) is None

    def test_fb_twins_resolved_with_rssi(self, rng):
        # ...while the joint (FB, RSSI) fingerprint separates them, as
        # the paper suggests (location sets the received strength).
        twins = [("twin-1", -21000.0, -75.0), ("twin-2", -21050.0, -95.0)]
        fp = DeviceFingerprinter()
        enroll_fleet(fp, twins, rng)
        assert fp.identify(DeviceObservation(-21020.0, -75.5)) == "twin-1"
        assert fp.identify(DeviceObservation(-21030.0, -94.5)) == "twin-2"

    def test_single_enrolled_device(self):
        fp = DeviceFingerprinter()
        fp.enroll("only", DeviceObservation(-20000.0, -80.0))
        assert fp.identify(DeviceObservation(-25000.0, -60.0)) == "only"

    def test_exact_match_wins_outright(self, rng):
        fp = DeviceFingerprinter()
        enroll_fleet(fp, self.FLEET, rng, frames=1)
        fb, rssi = fp._centroid("node-b")
        assert fp.identify(DeviceObservation(fb, rssi)) == "node-b"

    def test_unenrolled_rejected(self):
        with pytest.raises(EstimationError):
            DeviceFingerprinter().identify(DeviceObservation(0.0, 0.0))
        with pytest.raises(EstimationError):
            DeviceFingerprinter().identify_by_fb_only(0.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            DeviceFingerprinter(fb_scale_hz=0.0)
        with pytest.raises(ConfigurationError):
            DeviceFingerprinter(ambiguity_margin=0.5)

    def test_enrolled_listing(self, rng):
        fp = DeviceFingerprinter()
        enroll_fleet(fp, self.FLEET, rng, frames=1)
        assert fp.enrolled() == ["node-a", "node-b", "node-c"]

    def test_defense_asymmetry_documented(self, rng):
        # The attacker needs distinctiveness; the defense does not.  Two
        # FB-identical devices defeat the fingerprinter yet each is still
        # protected by per-node FB *change* detection (covered in
        # test_integration.TestMultiDeviceStory).
        clones = [("c1", -21000.0, -80.0), ("c2", -21000.0, -80.0)]
        fp = DeviceFingerprinter()
        enroll_fleet(fp, clones, rng)
        assert fp.identify(DeviceObservation(-21000.0, -80.0)) is None
