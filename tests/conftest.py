"""Shared fixtures: fast chirp configs and seeded generators.

Tests default to SF7 at 0.5 Msps so the suite stays quick; the benchmark
harness uses the paper's 2.4 Msps / SF12 settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.chirp import ChirpConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def fast_config() -> ChirpConfig:
    """SF7 at 0.5 Msps: 512 samples per chirp, integral chirp period."""
    return ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)


@pytest.fixture
def rtl_config() -> ChirpConfig:
    """The paper's capture setting: SF7 at the RTL-SDR's 2.4 Msps."""
    return ChirpConfig(spreading_factor=7, sample_rate_hz=2.4e6)
