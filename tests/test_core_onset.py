"""Tests for onset detection (repro.core.onset) -- paper Sec. 6."""

import numpy as np
import pytest

from repro.analysis.metrics import timing_error_upper_bound_s
from repro.core.onset import (
    AicDetector,
    EnvelopeDetector,
    MatchedFilterDetector,
    SpectrogramOnsetDetector,
)
from repro.errors import ConfigurationError, EstimationError
from repro.experiments.common import synthesize_capture
from repro.sdr.iq import IQTrace


@pytest.fixture
def capture(fast_config, rng):
    return synthesize_capture(fast_config, rng, snr_db=20.0, fb_hz=-20e3, n_chirps=8)


class TestAicDetector:
    def test_exact_at_high_snr(self, fast_config, rng):
        capture = synthesize_capture(
            fast_config, rng, snr_db=30.0, fb_hz=-20e3, fractional_onset=False
        )
        onset = AicDetector().detect(capture.trace, component="i")
        assert onset.index == int(capture.true_onset_index_float)

    def test_within_two_samples_at_moderate_snr(self, fast_config, rng):
        for _ in range(5):
            capture = synthesize_capture(fast_config, rng, snr_db=10.0, fb_hz=-18e3)
            onset = AicDetector().detect(capture.trace, component="i")
            assert abs(onset.index - capture.true_onset_index_float) <= 2.0

    def test_works_on_q_component(self, capture):
        onset = AicDetector().detect(capture.trace, component="q")
        assert abs(onset.index - capture.true_onset_index_float) <= 2.0

    def test_works_on_magnitude(self, capture):
        onset = AicDetector().detect(capture.trace, component="magnitude")
        assert abs(onset.index - capture.true_onset_index_float) <= 2.0

    def test_time_upper_bound_under_paper_limit(self, rtl_config, rng):
        # Table 2: AIC errors below 2 µs at bench SNR and 2.4 Msps.
        for _ in range(3):
            capture = synthesize_capture(rtl_config, rng, snr_db=30.0, fb_hz=-22e3)
            onset = AicDetector().detect(capture.trace, component="i")
            bound = timing_error_upper_bound_s(
                onset.time_s, capture.true_onset_time_s, capture.trace.sample_period_s
            )
            assert bound < 2e-6

    def test_aic_curve_minimum_at_onset(self, fast_config, rng):
        capture = synthesize_capture(
            fast_config, rng, snr_db=25.0, fb_hz=-20e3, fractional_onset=False
        )
        curve = AicDetector().aic_curve(capture.trace.i)
        assert int(np.nanargmin(curve)) == int(capture.true_onset_index_float)

    def test_needs_no_threshold(self, capture):
        # Formulated as an optimization: no threshold parameter exists.
        detector = AicDetector()
        assert not hasattr(detector, "threshold")

    def test_short_trace_rejected(self, fast_config):
        trace = IQTrace(np.zeros(8), fast_config.sample_rate_hz)
        with pytest.raises(EstimationError):
            AicDetector(min_segment=8).detect(trace)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            AicDetector(min_segment=1)
        with pytest.raises(ConfigurationError):
            AicDetector(margin_fraction=0.6)

    def test_absolute_time_anchoring(self, fast_config, rng):
        capture = synthesize_capture(
            fast_config, rng, snr_db=25.0, fb_hz=-20e3, start_time_s=123.0
        )
        onset = AicDetector().detect(capture.trace, component="i")
        assert onset.time_s == pytest.approx(capture.true_onset_time_s, abs=1e-5)
        assert onset.time_s > 123.0


class TestEnvelopeDetector:
    def test_finds_onset_at_high_snr(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, snr_db=30.0, fb_hz=-20e3)
        onset = EnvelopeDetector().detect(capture.trace, component="i")
        # ~5 µs bias at 2.4 Msps corresponds to half the smoothing window.
        assert abs(onset.index - capture.true_onset_index_float) <= 20

    def test_less_accurate_than_aic(self, rtl_config, rng):
        # Table 2's headline comparison.
        env_errors, aic_errors = [], []
        for _ in range(4):
            capture = synthesize_capture(rtl_config, rng, snr_db=30.0, fb_hz=-20e3)
            env = EnvelopeDetector().detect(capture.trace, component="i")
            aic = AicDetector().detect(capture.trace, component="i")
            env_errors.append(abs(env.time_s - capture.true_onset_time_s))
            aic_errors.append(abs(aic.time_s - capture.true_onset_time_s))
        assert np.mean(env_errors) > np.mean(aic_errors)

    def test_smoothing_window_sets_the_early_bias(self, rtl_config, rng):
        # The moving average spreads the onset edge over the window, so
        # the max-ratio sample sits ~window/2 early; larger windows mean
        # larger (but deterministic) bias.  The unsmoothed variant is
        # excluded: the per-sample ratio of Rayleigh envelopes has
        # unbounded variance in noise, and with noise nearly absent the
        # Hilbert transform's pre-onset ringing creates spurious spikes.
        capture = synthesize_capture(
            rtl_config, rng, snr_db=30.0, fb_hz=-20e3, fractional_onset=False
        )
        biases = {}
        for window in (9, 25, 49):
            onset = EnvelopeDetector(smoothing_window=window).detect(
                capture.trace, component="i"
            )
            biases[window] = capture.true_onset_index_float - onset.index
        assert all(0 <= bias <= window for window, bias in biases.items())
        assert biases[49] > biases[9]

    def test_ratio_diagnostic_present(self, capture):
        onset = EnvelopeDetector().detect(capture.trace, component="i")
        assert onset.diagnostics["max_ratio"] > 1.0

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            EnvelopeDetector(smoothing_window=0)

    def test_short_trace_rejected(self, fast_config):
        with pytest.raises(EstimationError):
            EnvelopeDetector().detect(IQTrace(np.zeros(2), 1e6))

    def test_invalid_component(self, capture):
        with pytest.raises(ConfigurationError):
            EnvelopeDetector().detect(capture.trace, component="x")


class TestMatchedFilterDetector:
    def test_phase_mismatch_degrades_it(self, fast_config, rng):
        # The paper's argument (Sec. 6.1.2): the real-template correlator
        # depends on the unknown phase and the FB; across random phases
        # its worst error far exceeds the AIC's.
        detector = MatchedFilterDetector(fast_config, template_phase=0.0)
        worst_mf, worst_aic = 0.0, 0.0
        for _ in range(6):
            capture = synthesize_capture(fast_config, rng, snr_db=25.0, fb_hz=-22e3)
            mf = detector.detect(capture.trace, component="i")
            aic = AicDetector().detect(capture.trace, component="i")
            worst_mf = max(worst_mf, abs(mf.index - capture.true_onset_index_float))
            worst_aic = max(worst_aic, abs(aic.index - capture.true_onset_index_float))
        assert worst_mf > 10 * max(worst_aic, 1.0)

    def test_short_trace_rejected(self, fast_config):
        detector = MatchedFilterDetector(fast_config)
        with pytest.raises(EstimationError):
            detector.detect(IQTrace(np.zeros(16), fast_config.sample_rate_hz))


class TestSpectrogramDetector:
    def test_coarse_but_in_the_neighbourhood(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, snr_db=25.0, fb_hz=-20e3)
        onset = SpectrogramOnsetDetector(fast_config).detect(capture.trace)
        # Within one STFT window of truth but no better than the hop.
        assert abs(onset.index - capture.true_onset_index_float) < 2 * fast_config.n_symbols

    def test_time_resolution_reported(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, snr_db=25.0, fb_hz=-20e3)
        onset = SpectrogramOnsetDetector(fast_config).detect(capture.trace)
        assert onset.diagnostics["time_resolution_s"] > 1.0 / fast_config.sample_rate_hz * 50

    def test_pure_noise_raises(self, fast_config, rng):
        noise = IQTrace(
            rng.standard_normal(4096) + 1j * rng.standard_normal(4096),
            fast_config.sample_rate_hz,
        )
        with pytest.raises(EstimationError):
            SpectrogramOnsetDetector(fast_config, threshold_over_floor=50.0).detect(noise)

    def test_invalid_threshold(self, fast_config):
        with pytest.raises(ConfigurationError):
            SpectrogramOnsetDetector(fast_config, threshold_over_floor=0.5)
