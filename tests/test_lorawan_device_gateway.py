"""Tests for the end device and commodity gateway (repro.lorawan)."""

import numpy as np
import pytest

from repro.clock.clocks import DriftingClock, PerfectClock
from repro.clock.oscillator import Oscillator
from repro.core.timestamping import ElapsedTimeCodec
from repro.errors import ConfigurationError, DecodeError, DutyCycleError
from repro.lorawan.device import (
    EndDevice,
    decode_sensor_payload,
    encode_sensor_payload,
)
from repro.lorawan.gateway import CommodityGateway, ReceiveStatus
from repro.lorawan.security import SessionKeys

DEV = 0x26014242


def make_device(drift_ppm=40.0, sf=7, seed=3, **kwargs) -> EndDevice:
    rng = np.random.default_rng(seed)
    return EndDevice(
        name="node",
        dev_addr=DEV,
        keys=SessionKeys.derive_for_test(DEV),
        radio_oscillator=Oscillator.lora_end_device(rng),
        clock=DriftingClock(drift_ppm=drift_ppm),
        spreading_factor=sf,
        rng=rng,
        **kwargs,
    )


def make_gateway(device: EndDevice) -> CommodityGateway:
    gateway = CommodityGateway()
    gateway.register_device(device.dev_addr, device.keys)
    return gateway


class TestSensorPayload:
    def test_roundtrip(self):
        codec = ElapsedTimeCodec()
        payload = encode_sensor_payload([100.0, -5.0, 32000.0], [1, 500, 262143], codec)
        values, ticks = decode_sensor_payload(payload, codec)
        assert values == [100.0, -5.0, 32000.0]
        assert ticks == [1, 500, 262143]

    def test_empty_reading_list(self):
        codec = ElapsedTimeCodec()
        payload = encode_sensor_payload([], [], codec)
        assert decode_sensor_payload(payload, codec) == ([], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            encode_sensor_payload([1.0], [], ElapsedTimeCodec())

    def test_value_out_of_int16(self):
        with pytest.raises(ConfigurationError):
            encode_sensor_payload([40000.0], [0], ElapsedTimeCodec())

    def test_truncated_payload_rejected(self):
        codec = ElapsedTimeCodec()
        payload = encode_sensor_payload([1.0, 2.0], [3, 4], codec)
        with pytest.raises(DecodeError):
            decode_sensor_payload(payload[:-1], codec)

    def test_empty_bytes_rejected(self):
        with pytest.raises(DecodeError):
            decode_sensor_payload(b"", ElapsedTimeCodec())

    def test_compactness(self):
        # Two readings: 1 + ceil(36/8) + 4 = 10 bytes, versus 2 readings x
        # (8-byte timestamp + 2-byte value) = 20 bytes sync-based.
        codec = ElapsedTimeCodec()
        payload = encode_sensor_payload([1.0, 2.0], [10, 20], codec)
        assert len(payload) == 10


class TestEndDevice:
    def test_fb_from_oscillator(self):
        device = make_device()
        assert -25e3 <= device.fb_hz <= -17e3

    def test_fb_tracks_temperature(self):
        device = make_device()
        cold = device.fb_hz
        device.temperature_c = 45.0
        assert device.fb_hz != cold

    def test_transmit_packs_buffered_readings(self):
        device = make_device()
        device.take_reading(21.0, 100.0)
        device.take_reading(22.0, 105.0)
        tx = device.transmit(110.0)
        assert tx.values == [21.0, 22.0]
        assert len(tx.elapsed_ticks) == 2
        assert tx.true_event_times_s == [100.0, 105.0]
        assert device.pending_readings == 0

    def test_elapsed_ticks_reflect_local_elapsed(self):
        device = make_device(drift_ppm=0.0)
        device.take_reading(1.0, 100.0)
        tx = device.transmit(160.0)
        assert device.codec.decode(tx.elapsed_ticks[0]) == pytest.approx(60.0, abs=1e-3)

    def test_frame_counter_increments(self):
        device = make_device()
        device.take_reading(1.0, 0.0)
        first = device.transmit(1.0)
        device.take_reading(2.0, 200.0)
        second = device.transmit(201.0)
        assert first.fcnt == 0
        assert second.fcnt == 1
        assert device.fcnt == 2

    def test_emission_follows_request_with_latency(self):
        device = make_device()
        device.take_reading(1.0, 0.0)
        tx = device.transmit(10.0)
        assert tx.emission_time_s > tx.request_time_s
        assert tx.emission_time_s - tx.request_time_s < 10e-3

    def test_duty_cycle_enforced(self):
        device = make_device(sf=12)
        device.take_reading(1.0, 0.0)
        device.transmit(1.0)
        device.take_reading(2.0, 2.0)
        with pytest.raises(DutyCycleError):
            device.transmit(3.0)

    def test_regional_payload_cap_enforced(self):
        device = make_device(sf=12)
        for i in range(30):
            device.take_reading(float(i), float(i))
        with pytest.raises(ConfigurationError):
            device.transmit(100.0)  # 30 readings exceed DR0's 51-byte cap

    def test_modulate_requires_matching_sf(self, fast_config):
        device = make_device(sf=8)
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        with pytest.raises(ConfigurationError):
            device.modulate(tx, fast_config)  # fast_config is SF7

    def test_modulated_waveform_length_matches_airtime(self, fast_config):
        device = make_device(sf=7)
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        wave = device.modulate(tx, fast_config)
        duration = len(wave) / fast_config.sample_rate_hz
        assert duration == pytest.approx(tx.airtime_s, rel=0.05)


class TestCommodityGateway:
    def test_accepts_valid_frame_and_reconstructs(self):
        device = make_device(drift_ppm=0.0, tx_latency_mean_s=0.0, tx_latency_jitter_s=0.0)
        gateway = make_gateway(device)
        device.take_reading(42.0, 100.0)
        tx = device.transmit(150.0)
        reception = gateway.receive_frame(tx.mac_bytes, tx.emission_time_s)
        assert reception.status is ReceiveStatus.OK
        assert reception.mac_frame.dev_addr == DEV
        assert reception.readings[0].value == 42.0
        assert reception.readings[0].global_time_s == pytest.approx(100.0, abs=2e-3)

    def test_reconstruction_accuracy_with_drift_and_latency(self):
        # End-to-end sync-free accuracy: drift over the buffer window plus
        # ~3 ms radio latency (paper Sec. 3.2 budget).
        device = make_device(drift_ppm=40.0)
        gateway = make_gateway(device)
        device.take_reading(1.0, 1000.0)
        tx = device.transmit(1100.0)
        reception = gateway.receive_frame(tx.mac_bytes, tx.emission_time_s)
        error = abs(reception.readings[0].global_time_s - 1000.0)
        assert error < 10e-3

    def test_latency_compensation_improves_accuracy(self):
        device = make_device(drift_ppm=0.0, tx_latency_jitter_s=0.0)
        plain = make_gateway(device)
        compensated = CommodityGateway(tx_latency_compensation_s=3e-3)
        compensated.register_device(device.dev_addr, device.keys)
        device.take_reading(1.0, 100.0)
        tx = device.transmit(150.0)
        e_plain = abs(
            plain.receive_frame(tx.mac_bytes, tx.emission_time_s).readings[0].global_time_s
            - 100.0
        )
        device.take_reading(1.0, 300.0)
        tx2 = device.transmit(350.0)
        e_comp = abs(
            compensated.receive_frame(tx2.mac_bytes, tx2.emission_time_s)
            .readings[0]
            .global_time_s
            - 300.0
        )
        assert e_comp < e_plain

    def test_unknown_device_rejected(self):
        device = make_device()
        gateway = CommodityGateway()  # no registration
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        reception = gateway.receive_frame(tx.mac_bytes, tx.emission_time_s)
        assert reception.status is ReceiveStatus.UNKNOWN_DEVICE

    def test_tampered_frame_mic_failure(self):
        device = make_device()
        gateway = make_gateway(device)
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        tampered = bytearray(tx.mac_bytes)
        tampered[-5] ^= 0x01
        reception = gateway.receive_frame(bytes(tampered), tx.emission_time_s)
        assert reception.status is ReceiveStatus.MIC_FAILURE

    def test_repeated_frame_counter_rejected(self):
        device = make_device()
        gateway = make_gateway(device)
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        first = gateway.receive_frame(tx.mac_bytes, tx.emission_time_s)
        assert first.status is ReceiveStatus.OK
        replayed_same = gateway.receive_frame(tx.mac_bytes, tx.emission_time_s + 5.0)
        assert replayed_same.status is ReceiveStatus.COUNTER_REJECT

    def test_delayed_frame_passes_counter_check(self):
        # The attack's premise: the original never arrived, so the
        # replayed copy carries a fresh counter and is accepted.
        device = make_device()
        gateway = make_gateway(device)
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        # (original suppressed by jamming -- never delivered)
        delayed = gateway.receive_frame(tx.mac_bytes, tx.emission_time_s + 60.0)
        assert delayed.status is ReceiveStatus.OK

    def test_receptions_logged(self):
        device = make_device()
        gateway = make_gateway(device)
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        gateway.receive_frame(tx.mac_bytes, tx.emission_time_s)
        assert len(gateway.receptions) == 1

    def test_counter_reset_support(self):
        device = make_device()
        gateway = make_gateway(device)
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        gateway.receive_frame(tx.mac_bytes, tx.emission_time_s)
        gateway.reset_counter(DEV)
        again = gateway.receive_frame(tx.mac_bytes, tx.emission_time_s + 1.0)
        assert again.status is ReceiveStatus.OK

    def test_gps_clock_used_for_arrival(self):
        device = make_device()
        gateway = CommodityGateway(clock=PerfectClock())
        gateway.register_device(device.dev_addr, device.keys)
        device.take_reading(1.0, 0.0)
        tx = device.transmit(1.0)
        reception = gateway.receive_frame(tx.mac_bytes, 12345.678)
        assert reception.arrival_time_s == 12345.678
