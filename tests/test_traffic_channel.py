"""Direct unit/property tests for the traffic model and ALOHA channel.

Both were previously exercised only through higher layers; the
event-driven runtime now leans on their exact semantics -- jitter
bounds, duty-cycle compatibility, overlap symmetry -- so they get
pinned here on their own.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.channel import Transmission, resolve_collisions
from repro.sim.traffic import AlohaChannel, PeriodicTrafficModel


def _tx(name, start, power=-80.0, airtime=0.06, sf=7):
    return Transmission(
        sender=name,
        start_time_s=start,
        airtime_s=airtime,
        rx_power_dbm=power,
        spreading_factor=sf,
    )


class TestPeriodicTrafficJitterBounds:
    @given(
        period_s=st.floats(min_value=1.0, max_value=600.0),
        jitter_frac=st.floats(min_value=0.0, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        start_s=st.floats(min_value=0.0, max_value=1e4),
    )
    @settings(max_examples=40, deadline=None)
    def test_request_times_within_jittered_grid(self, period_s, jitter_frac, seed, start_s):
        jitter_s = period_s * jitter_frac
        duration_s = 10.0 * period_s
        model = PeriodicTrafficModel(
            period_s=period_s, jitter_s=jitter_s, rng=np.random.default_rng(seed)
        )
        uplinks = model.schedule(["dev"], duration_s, start_s=start_s)
        assert uplinks, "ten periods must produce at least one uplink"
        times = [u.request_time_s for u in uplinks]
        assert times == sorted(times)
        # Every request sits on its jittered grid slot: base tick in
        # [start, start + duration), plus jitter in [0, jitter).
        assert times[0] >= start_s
        assert times[-1] < start_s + duration_s + jitter_s
        # Consecutive reports of one device can shift against each other
        # by at most one full jitter span around the period (epsilon for
        # the accumulated float rounding of the schedule walk).
        eps = 1e-9 * (start_s + duration_s + period_s)
        for earlier, later in zip(times, times[1:]):
            gap = later - earlier
            assert period_s - jitter_s - eps <= gap <= period_s + jitter_s + eps

    def test_about_duration_over_period_reports_per_device(self):
        model = PeriodicTrafficModel(period_s=60.0, jitter_s=30.0)
        for name in ("a", "b", "c"):
            count = sum(1 for u in model.schedule([name], 1200.0) if u.device_name == name)
            assert 19 <= count <= 21

    def test_zero_jitter_is_strictly_periodic(self):
        model = PeriodicTrafficModel(period_s=10.0, jitter_s=0.0, rng=np.random.default_rng(0))
        times = [u.request_time_s for u in model.schedule(["x"], 100.0)]
        gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert gaps == {10.0}


class TestOverlapDetection:
    @given(
        start_a=st.floats(min_value=0.0, max_value=10.0),
        airtime_a=st.floats(min_value=1e-3, max_value=2.0),
        start_b=st.floats(min_value=0.0, max_value=10.0),
        airtime_b=st.floats(min_value=1e-3, max_value=2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_overlap_is_symmetric(self, start_a, airtime_a, start_b, airtime_b):
        a = _tx("a", start_a, airtime=airtime_a)
        b = _tx("b", start_b, airtime=airtime_b)
        assert a.overlaps(b) == b.overlaps(a)
        # Overlap iff the open intervals intersect.
        expected = start_a < start_b + airtime_b and start_b < start_a + airtime_a
        assert a.overlaps(b) == expected

    def test_touching_frames_do_not_overlap(self):
        a = _tx("a", 0.0, airtime=0.5)
        b = _tx("b", 0.5, airtime=0.5)
        assert not a.overlaps(b) and not b.overlaps(a)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_resolution_is_permutation_invariant(self, seed):
        rng = np.random.default_rng(seed)
        txs = [
            _tx(f"d{i}", float(rng.uniform(0.0, 1.0)), power=float(rng.uniform(-95, -70)))
            for i in range(6)
        ]
        fates = {}
        for _ in range(3):
            order = list(rng.permutation(len(txs)))
            outcomes = resolve_collisions([txs[i] for i in order])
            fate = {o.transmission.sender: o.delivered for o in outcomes}
            fates.setdefault("baseline", fate)
            assert fate == fates["baseline"]


class TestAlohaChannelCapture:
    def test_capture_at_exact_threshold_survives(self):
        channel = AlohaChannel(capture_threshold_db=6.0)
        channel.offer(_tx("strong", 0.0, power=-74.0))
        channel.offer(_tx("weak", 0.01, power=-80.0))
        outcomes = {o.transmission.sender: o.delivered for o in channel.resolve()}
        assert outcomes == {"strong": True, "weak": False}

    def test_just_below_threshold_loses_both(self):
        channel = AlohaChannel(capture_threshold_db=6.0)
        channel.offer(_tx("a", 0.0, power=-74.1))
        channel.offer(_tx("b", 0.01, power=-80.0))
        assert channel.collision_count() == 2

    def test_cross_sf_frames_are_quasi_orthogonal(self):
        channel = AlohaChannel()
        channel.offer(_tx("sf7", 0.0, sf=7))
        channel.offer(_tx("sf8", 0.01, sf=8))
        assert channel.delivery_ratio() == 1.0

    def test_three_way_pileup_needs_margin_over_every_rival(self):
        channel = AlohaChannel(capture_threshold_db=6.0)
        channel.offer(_tx("top", 0.0, power=-70.0))
        channel.offer(_tx("mid", 0.01, power=-75.0))
        channel.offer(_tx("low", 0.02, power=-90.0))
        outcomes = {o.transmission.sender: o.delivered for o in channel.resolve()}
        # top clears mid by only 5 dB: nobody survives the pileup.
        assert outcomes == {"top": False, "mid": False, "low": False}
