"""Tests for spectral utilities (repro.phy.spectrum)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpConfig, upchirp
from repro.phy.spectrum import (
    hilbert_envelope,
    measure_snr_db,
    signal_power,
    snr_db,
    snr_from_db,
    spectrogram,
)
from repro.sdr.noise import complex_awgn


class TestSpectrogram:
    def test_paper_fig6_frame_count(self):
        # 2^S-point Kaiser window with 16-point overlap over an SF7 chirp
        # at 2.4 Msps yields ~20 PSDs (paper Fig. 6).
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=2.4e6)
        spec = spectrogram(upchirp(config, amplitude=2.0), config)
        assert 19 <= len(spec.times_s) <= 22

    def test_time_resolution_too_coarse_for_timestamping(self):
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=2.4e6)
        spec = spectrogram(upchirp(config), config)
        assert spec.time_resolution_s > 40e-6  # paper: ~50 µs

    def test_energy_tracks_the_sweep(self, fast_config):
        spec = spectrogram(upchirp(fast_config), fast_config, noverlap=0)
        peak_freqs = spec.frequencies_hz[np.argmax(spec.power, axis=0)]
        # Instantaneous frequency rises with time for an up chirp.
        assert peak_freqs[-1] > peak_freqs[0]

    def test_frequencies_sorted(self, fast_config):
        spec = spectrogram(upchirp(fast_config), fast_config)
        assert np.all(np.diff(spec.frequencies_hz) > 0)

    def test_invalid_overlap(self, fast_config):
        with pytest.raises(ConfigurationError):
            spectrogram(upchirp(fast_config), fast_config, nperseg=64, noverlap=64)

    def test_invalid_nperseg(self, fast_config):
        with pytest.raises(ConfigurationError):
            spectrogram(upchirp(fast_config), fast_config, nperseg=1)


class TestEnvelope:
    def test_real_tone_envelope_constant(self):
        t = np.arange(4096) / 4096
        x = 1.7 * np.cos(2 * np.pi * 100 * t)
        env = hilbert_envelope(x)
        interior = env[200:-200]
        np.testing.assert_allclose(interior, 1.7, rtol=0.02)

    def test_complex_input_returns_magnitude(self):
        z = np.array([3 + 4j, 1 + 0j])
        np.testing.assert_allclose(hilbert_envelope(z), [5.0, 1.0])

    def test_step_visible_in_envelope(self, rng):
        x = np.concatenate([np.zeros(500), np.cos(np.linspace(0, 300, 2000))])
        env = hilbert_envelope(x)
        assert env[:400].mean() < 0.1
        assert env[700:].mean() > 0.5


class TestPowerAndSnr:
    def test_signal_power_constant_envelope(self, fast_config):
        assert signal_power(upchirp(fast_config, amplitude=2.0)) == pytest.approx(4.0)

    def test_signal_power_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            signal_power(np.array([]))

    def test_snr_db_roundtrip(self):
        assert snr_from_db(snr_db(10.0, 1.0)) == pytest.approx(10.0)

    def test_snr_db_invalid(self):
        with pytest.raises(ConfigurationError):
            snr_db(0.0, 1.0)

    def test_measure_snr_recovers_truth(self, fast_config, rng):
        target = 7.0
        chirp = upchirp(fast_config)
        noise_power = signal_power(chirp) / snr_from_db(target)
        noisy = chirp + complex_awgn(len(chirp), noise_power, rng)
        measured = measure_snr_db(noisy, noise_power)
        assert measured == pytest.approx(target, abs=1.5)

    def test_measure_snr_all_noise_is_minus_inf(self, rng):
        noise = complex_awgn(4096, 1.0, rng)
        assert measure_snr_db(noise, 1.05) in (float("-inf"),) or measure_snr_db(
            noise, 1.05
        ) < -5
