"""The columnar engine: TimeWheel, FleetState, FleetSpec, equivalence.

The contract under test: the time-wheel :class:`ColumnarRuntime` in
events mode replays the legacy heap-driven :class:`FleetRuntime` *bit
for bit* (single-gateway, fused multi-gateway, ADR-on, and attack phase
sequences), while counters mode resolves the full scenario matrix --
plain traffic, armed frame-delay attacks, ADR downlinks, serverless
multi-gateway fusion -- into counters that match events mode
counter for counter on the same seeds.  Spec-built worlds
(:class:`FleetSpec` / :meth:`FleetState.from_spec`) must be bitwise
equal to the object-built snapshot, chunked power matrices bitwise
equal to unchunked ones.  Golden SHA pins anchor both engines to the
recorded streams, so a regression in *either* engine (not just a
divergence between them) fails loudly.
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.softlora import SoftLoRaGateway
from repro.errors import ConfigurationError, SimulationError
from repro.lorawan.gateway import CommodityGateway
from repro.phy.airtime import airtime_s
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import AdrController, NetworkServer
from repro.sim.columnar import ColumnarRuntime, FleetSpec, FleetState
from repro.sim.events import TimeWheel
from repro.sim.network import LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import build_fleet, build_fleet_spec
from repro.sim.traffic import PeriodicTrafficModel


def build_world(seed, n, ring=400.0, sf=7, exponent=2.0, extra_gw=False, server=None):
    streams = RngStreams(seed)
    devices = build_fleet(n_devices=n, streams=streams, spreading_factor=sf)
    for i, d in enumerate(devices):
        ang = 2 * np.pi * i / max(n, 1)
        d.position = Position(ring * float(np.cos(ang)), ring * float(np.sin(ang)), 1.0)
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(
            config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
            commodity=CommodityGateway(),
        ),
        gateway_position=Position(0.0, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=exponent)),
        rng=streams.stream("world"),
    )
    if extra_gw:
        world.add_gateway(Position(150.0, 150.0, 1.0))
    for d in devices:
        world.add_device(d)
    if server is not None:
        world.attach_server(server())
    return world, streams


def event_sha(events):
    h = hashlib.sha256()
    for e in events:
        fb = None if e.reception is None else e.reception.fb_hz
        h.update(
            repr(
                (
                    e.kind.value,
                    e.time_s,
                    e.device_name,
                    e.snr_db,
                    fb,
                    None if e.transmission is None else e.transmission.fcnt,
                    None
                    if e.verdict is None
                    else (e.verdict.status.value, e.verdict.fused_fb_hz),
                )
            ).encode()
        )
    return h.hexdigest()


def _traffic(streams, period_s, jitter_s):
    return PeriodicTrafficModel(period_s=period_s, jitter_s=jitter_s, rng=streams.stream("traffic"))


#: Event-stream SHAs recorded from the legacy FleetRuntime on the seed
#: tree; both engines must keep reproducing them bit for bit.
GOLDEN_SINGLE_GW = "5d56de6cb46619a949a6c53d50a8b2020efef823568216fc441ae1c0bc4f2406"
GOLDEN_FUSED = "170cd02c39980cf2c5c21564d49d38c20c1e8e05f18d1081377d0ad624bd982d"
GOLDEN_ADR = "f9a38fc702e31c1eaf38bf90cb3dbfe3688a6ce0dec219d09a84f25596164468"
#: Single-gateway serverless attack phases: pins the batched replay-FB
#: measurement path in ``network._deliver_single`` (one batch draw per
#: window) to the stream the per-replay scalar draws produced.
GOLDEN_ATTACK_SINGLE_GW = "1c7b2a40cd70d197f8ec67727f92b9e58019d581dafc328cdf8479223e6b7666"


def _report_tuple(report):
    return (
        report.attempts,
        report.deferrals,
        report.adr_commands_sent,
        report.adr_commands_dropped,
        report.adr_commands_applied,
    )


def _stats_tuple(report):
    """Every counter a runtime phase reports, for exact-parity checks."""
    stats = report.contention
    return (
        report.attempts,
        report.deferrals,
        stats.attempts,
        stats.delivered,
        stats.collided,
        stats.lost_low_snr,
        stats.suppressed,
        stats.replays_delivered,
        report.adr_commands_sent,
        report.adr_commands_dropped,
        report.adr_commands_applied,
    )


class TestEngineEquivalence:
    """Events mode replays the legacy runtime bit for bit (golden-pinned)."""

    def _run_pair(self, world_kwargs, period_s, jitter_s, durations, window_s=2.0):
        reports = []
        for engine in ("legacy", "columnar"):
            world, streams = build_world(**world_kwargs)
            traffic = _traffic(streams, period_s, jitter_s)
            runtime = (
                FleetRuntime(world, traffic, window_s=window_s)
                if engine == "legacy"
                else ColumnarRuntime(world, traffic, window_s=window_s, mode="events")
            )
            reports.append([runtime.run(d) for d in durations])
        legacy, columnar = reports
        for a, b in zip(legacy, columnar):
            assert _report_tuple(a) == _report_tuple(b)
            assert len(a.events) == len(b.events)
        sha_a = event_sha([e for r in legacy for e in r.events])
        sha_b = event_sha([e for r in columnar for e in r.events])
        assert sha_a == sha_b, "event streams diverged between engines"
        return legacy, sha_a

    def test_single_gateway_pinned(self):
        reports, sha = self._run_pair(
            dict(seed=4, n=30), period_s=60.0, jitter_s=20.0, durations=(300.0,)
        )
        assert reports[0].attempts == 150
        assert sha == GOLDEN_SINGLE_GW

    def test_fused_multi_gateway_pinned(self):
        reports, sha = self._run_pair(
            dict(seed=6, n=12, extra_gw=True, server=NetworkServer),
            period_s=30.0,
            jitter_s=10.0,
            durations=(120.0,),
        )
        assert reports[0].attempts == 48
        assert sha == GOLDEN_FUSED

    def test_adr_on_pinned(self):
        reports, sha = self._run_pair(
            dict(
                seed=21,
                n=6,
                ring=50.0,
                sf=12,
                server=lambda: NetworkServer(adr=AdrController(min_history=2)),
            ),
            period_s=30.0,
            jitter_s=10.0,
            durations=(180.0, 120.0),
        )
        # A weak workload where ADR never fires would pin nothing.
        assert sum(r.adr_commands_sent for r in reports) > 0
        assert sum(r.adr_commands_applied for r in reports) > 0
        assert sha == GOLDEN_ADR

    def test_attack_phases_identical(self):
        shas = []
        replays = []
        for engine in ("legacy", "columnar"):
            world, streams = build_world(
                seed=7, n=10, ring=300.0, sf=7, extra_gw=True, server=NetworkServer
            )
            traffic = _traffic(streams, 60.0, 20.0)
            runtime = (
                FleetRuntime(world, traffic, window_s=2.0)
                if engine == "legacy"
                else ColumnarRuntime(world, traffic, window_s=2.0, mode="events")
            )
            r1 = runtime.run(180.0)
            attack = FrameDelayAttack(
                jammer=StealthyJammer(),
                replayer=Replayer.single_usrp(streams.stream("replayer")),
                rng=streams.stream("attack"),
            )
            world.arm_attack(attack, list(world.devices)[:3], delay_s=30.0)
            r2 = runtime.run(180.0)
            shas.append(event_sha(r1.events + r2.events))
            replays.append(sum(1 for e in r2.events if e.kind.value == "replay_delivered"))
        assert shas[0] == shas[1]
        assert replays[0] == replays[1]
        assert replays[0] > 0, "attack never replayed -- weak workload"

    def test_attack_single_gateway_pinned(self):
        shas = []
        replay_counts = []
        for engine in ("legacy", "columnar"):
            world, streams = build_world(seed=7, n=10, ring=300.0)
            traffic = _traffic(streams, 60.0, 20.0)
            runtime = (
                FleetRuntime(world, traffic, window_s=2.0)
                if engine == "legacy"
                else ColumnarRuntime(world, traffic, window_s=2.0, mode="events")
            )
            r1 = runtime.run(180.0)
            attack = FrameDelayAttack(
                jammer=StealthyJammer(),
                replayer=Replayer.single_usrp(streams.stream("replayer")),
                rng=streams.stream("attack"),
            )
            world.arm_attack(attack, list(world.devices)[:3], delay_s=30.0)
            r2 = runtime.run(180.0)
            shas.append(event_sha(r1.events + r2.events))
            replay_counts.append(
                sum(1 for e in r2.events if e.kind.value == "replay_delivered")
            )
        assert shas[0] == shas[1] == GOLDEN_ATTACK_SINGLE_GW
        assert replay_counts == [9, 9]

    def test_device_subset_matches_legacy(self):
        reports = []
        for engine in ("legacy", "columnar"):
            world, streams = build_world(seed=4, n=8)
            subset = list(world.devices)[2:6]
            traffic = _traffic(streams, 60.0, 20.0)
            runtime = (
                FleetRuntime(world, traffic, window_s=2.0)
                if engine == "legacy"
                else ColumnarRuntime(world, traffic, window_s=2.0, mode="events")
            )
            reports.append(runtime.run(120.0, device_names=subset))
        assert event_sha(reports[0].events) == event_sha(reports[1].events)
        assert {e.device_name for e in reports[1].events} <= set(
            list(build_world(seed=4, n=8)[0].devices)[2:6]
        )

    def test_validation_matches_legacy(self):
        world, streams = build_world(seed=4, n=4)
        traffic = _traffic(streams, 60.0, 20.0)
        runtime = ColumnarRuntime(world, traffic, window_s=2.0)
        with pytest.raises(ConfigurationError):
            runtime.run(0.0)
        with pytest.raises(ConfigurationError):
            runtime.run(60.0, device_names=["nope"])
        with pytest.raises(ConfigurationError):
            ColumnarRuntime(world, traffic, window_s=0.0)
        with pytest.raises(ConfigurationError):
            ColumnarRuntime(world, traffic, backoff_s=0.0)
        with pytest.raises(ConfigurationError):
            ColumnarRuntime(world, traffic, mode="fast")


class TestCountersMode:
    def _pair(self, seed=11, n=40, ring=900.0, exponent=3.2, duration=600.0):
        results = []
        for mode in ("events", "counters"):
            world, streams = build_world(seed=seed, n=n, ring=ring, exponent=exponent)
            traffic = _traffic(streams, 60.0, 20.0)
            results.append(
                ColumnarRuntime(world, traffic, window_s=2.0, mode=mode).run(duration)
            )
        return results

    def test_attempt_accounting_matches_events_mode(self):
        events_report, counters_report = self._pair()
        assert events_report.attempts == counters_report.attempts
        assert events_report.deferrals == counters_report.deferrals
        assert counters_report.events == []
        assert counters_report.counters is not None
        stats = counters_report.contention
        assert stats.attempts == counters_report.attempts
        assert stats.attempts == stats.delivered + stats.collided + stats.lost_low_snr
        # Counters mode draws the emission jitter from the same
        # per-device streams events mode uses, so the partition is not
        # merely statistically equivalent -- it is exactly equal.
        assert _stats_tuple(counters_report) == _stats_tuple(events_report)

    def test_multi_gateway_counters_run(self):
        world, streams = build_world(seed=9, n=20, ring=600.0, extra_gw=True, server=NetworkServer)
        traffic = _traffic(streams, 60.0, 20.0)
        report = ColumnarRuntime(world, traffic, window_s=2.0, mode="counters").run(300.0)
        stats = report.contention
        assert stats.attempts == report.attempts > 0
        assert stats.attempts == stats.delivered + stats.collided + stats.lost_low_snr

    def test_attack_counters_match_events_mode(self):
        """Armed frame-delay attacks: suppression/replay counters exact."""
        results = []
        for mode in ("events", "counters"):
            world, streams = build_world(seed=7, n=10, ring=300.0)
            traffic = _traffic(streams, 60.0, 20.0)
            runtime = ColumnarRuntime(world, traffic, window_s=2.0, mode=mode)
            clean = runtime.run(180.0)
            attack = FrameDelayAttack(
                jammer=StealthyJammer(),
                replayer=Replayer.single_usrp(streams.stream("replayer")),
                rng=streams.stream("attack"),
            )
            world.arm_attack(attack, list(world.devices)[:3], delay_s=30.0)
            attacked = runtime.run(180.0)
            results.append((_stats_tuple(clean), _stats_tuple(attacked)))
        events, counters = results
        assert events == counters
        suppressed = counters[1][6]
        assert suppressed > 0, "attack never suppressed a frame -- weak workload"
        assert counters[1][7] == suppressed  # every replay got through

    def test_adr_counters_match_events_mode(self):
        """ADR downlinks: sent/dropped/applied and retuned airtimes exact."""
        results = []
        for mode in ("events", "counters"):
            world, streams = build_world(
                seed=21,
                n=6,
                ring=50.0,
                sf=12,
                server=lambda: NetworkServer(adr=AdrController(min_history=2)),
            )
            traffic = _traffic(streams, 30.0, 10.0)
            runtime = ColumnarRuntime(world, traffic, window_s=2.0, mode=mode)
            results.append((_stats_tuple(runtime.run(180.0)), _stats_tuple(runtime.run(120.0))))
        events, counters = results
        assert events == counters
        # A workload where ADR never fires would pin nothing: the
        # deferral counts above only match if the retune really applied
        # (post-retune airtime feeds the duty-cycle gate).
        assert sum(phase[8] for phase in counters) > 0
        assert sum(phase[10] for phase in counters) > 0

    def test_serverless_multi_gateway_matches_fused_events(self):
        """Serverless counters fusion == events mode with a server attached."""
        world_e, streams_e = build_world(
            seed=9, n=20, ring=600.0, extra_gw=True, server=NetworkServer
        )
        events_report = ColumnarRuntime(
            world_e, _traffic(streams_e, 60.0, 20.0), window_s=2.0, mode="events"
        ).run(300.0)
        world_c, streams_c = build_world(seed=9, n=20, ring=600.0, extra_gw=True)
        counters_report = ColumnarRuntime(
            world_c, _traffic(streams_c, 60.0, 20.0), window_s=2.0, mode="counters"
        ).run(300.0)
        assert _stats_tuple(counters_report) == _stats_tuple(events_report)
        assert counters_report.contention.delivered > 0


class TestTimeWheel:
    def test_pop_window_orders_like_global_sort(self):
        wheel = TimeWheel(2.0)
        rng = np.random.default_rng(3)
        times = rng.uniform(0.0, 20.0, size=200)
        items = np.arange(200)
        # Two pushes: sequences must keep FIFO order across batches.
        wheel.push(times[:120], items[:120])
        wheel.push(times[120:], items[120:])
        assert wheel.pending == 200
        popped_t, popped_i = [], []
        while (window := wheel.pop_window()) is not None:
            key, w_times, w_seq, w_items = window
            assert np.all(w_times >= wheel.window_start_s(key))
            assert np.all(w_times < wheel.window_end_s(key))
            popped_t.extend(w_times.tolist())
            popped_i.extend(w_items.tolist())
        assert wheel.pending == 0
        order = np.lexsort((items, times))
        assert popped_t == times[order].tolist()
        assert popped_i == items[order].tolist()

    def test_fifo_tie_break_across_pushes(self):
        wheel = TimeWheel(1.0)
        wheel.push(np.array([0.5, 0.5]), np.array([1, 2]))
        wheel.push(np.array([0.5]), np.array([3]))
        _, _, _, w_items = wheel.pop_window()
        assert w_items.tolist() == [1, 2, 3]

    def test_repush_into_popped_window(self):
        wheel = TimeWheel(1.0)
        wheel.push(np.array([0.2, 3.4]), np.array([0, 1]))
        key, w_times, _, _ = wheel.pop_window()
        assert key == 0
        # A retry landing back in the popped window re-creates the
        # bucket; the wheel serves it before later windows.
        wheel.push(np.array([0.7]), np.array([2]))
        assert wheel.peek_time_s() == 0.7
        key, w_times, _, w_items = wheel.pop_window()
        assert (key, w_items.tolist()) == (0, [2])
        key, _, _, w_items = wheel.pop_window()
        assert (key, w_items.tolist()) == (3, [1])
        assert wheel.pop_window() is None
        assert wheel.peek_time_s() is None

    def test_reserve_sequence_interleaves(self):
        wheel = TimeWheel(1.0)
        wheel.push(np.array([0.1]), np.array([0]))
        seq = wheel.reserve_sequence()
        wheel.push(np.array([0.1]), np.array([1]))
        _, _, w_seq, w_items = wheel.pop_window()
        # The reserved number sits between the two pushes.
        assert w_seq[0] < seq < w_seq[1]
        assert w_items.tolist() == [0, 1]

    def test_validation(self):
        with pytest.raises(SimulationError):
            TimeWheel(0.0)
        wheel = TimeWheel(1.0)
        with pytest.raises(SimulationError):
            wheel.push(np.array([1.0, 2.0]), np.array([1]))
        wheel.push(np.empty(0), np.empty(0, dtype=np.int64))
        assert wheel.pending == 0


class TestScheduleArrays:
    @pytest.mark.parametrize(
        "period_s,jitter_s,duration_s,start_s",
        [
            (60.0, 20.0, 300.0, 0.0),
            (60.0, 0.0, 300.0, 0.0),
            (5.0, 4.9, 31.0, 120.0),
            (120.0, 30.0, 60.0, 7.5),
        ],
    )
    def test_bit_identical_to_schedule(self, period_s, jitter_s, duration_s, start_s):
        names = [f"d{i}" for i in range(23)]
        scalar_model = PeriodicTrafficModel(
            period_s=period_s, jitter_s=jitter_s, rng=np.random.default_rng(42)
        )
        array_model = PeriodicTrafficModel(
            period_s=period_s, jitter_s=jitter_s, rng=np.random.default_rng(42)
        )
        uplinks = scalar_model.schedule(names, duration_s, start_s=start_s)
        times, indices = array_model.schedule_arrays(len(names), duration_s, start_s=start_s)
        assert times.tolist() == [u.request_time_s for u in uplinks]
        assert [names[i] for i in indices] == [u.device_name for u in uplinks]
        # The generators must land in the same state: a later phase draws
        # the exact same schedule through either code path.
        assert (
            scalar_model.rng.bit_generator.state == array_model.rng.bit_generator.state
        )

    def test_empty_horizon(self):
        model = PeriodicTrafficModel(period_s=60.0, jitter_s=0.0, rng=np.random.default_rng(1))
        times, indices = model.schedule_arrays(5, 1e-9)
        assert times.size == 0 and indices.size == 0


class TestFleetState:
    def test_rejects_empty_world(self):
        world, _ = build_world(seed=4, n=1)
        world.devices.clear()
        with pytest.raises(ConfigurationError):
            FleetState.from_world(world)

    def test_columns_match_devices(self):
        world, _ = build_world(seed=4, n=6, extra_gw=True, server=NetworkServer)
        state = FleetState.from_world(world)
        # A twin world supplies real empty-buffer transmissions to check
        # the frame/airtime columns against, without mutating the
        # snapshotted devices.
        probe_world, _ = build_world(seed=4, n=6, extra_gw=True, server=NetworkServer)
        devices = list(world.devices.values())
        probes = list(probe_world.devices.values())
        assert state.n_devices == 6
        assert state.names == [d.name for d in devices]
        assert state.powers_dbm.shape == (6, 2)
        for row, (device, probe) in enumerate(zip(devices, probes)):
            tx = probe.transmit(0.0)
            assert state.frame_bytes[row] == len(tx.mac_bytes)
            assert state.airtime_s[row] == airtime_s(
                len(tx.mac_bytes), device.spreading_factor, coding_rate=device.coding_rate
            )
            assert state.fcnt[row] == device.fcnt
            assert state.duty_cycle[row] == device.duty_cycle.duty_cycle
            for col, site in enumerate(world.sites):
                expected = site.link.rx_power_dbm(
                    device.tx_power_dbm, device.position, site.position
                )
                assert state.powers_dbm[row, col] == pytest.approx(expected, abs=1e-9)


class TestFleetSpec:
    """Spec-built worlds: bitwise parity, validation, chunking, dtype."""

    def _world(self, shadowing=0.0, extra_gw=True):
        world = LoRaWanWorld(
            gateway=SoftLoRaGateway(
                config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
                commodity=CommodityGateway(),
            ),
            gateway_position=Position(0.0, 0.0, 15.0),
            link=LinkBudget(
                pathloss=LogDistancePathLoss(exponent=2.0, shadowing_sigma_db=shadowing)
            ),
            rng=RngStreams(123).stream("world"),
        )
        if extra_gw:
            world.add_gateway(Position(150.0, 150.0, 1.0))
        return world

    def test_spec_state_matches_object_built_state(self):
        spec = FleetSpec(n_devices=12, ring_radius_m=400.0, spreading_factor=8, seed=5)
        world = self._world()
        spec_state = FleetState.from_spec(spec, world)
        for device in spec.realize():
            world.add_device(device)
        object_state = FleetState.from_world(world)
        for field in dataclasses.fields(FleetState):
            if field.name == "rngs":
                continue
            built, reference = (
                getattr(spec_state, field.name),
                getattr(object_state, field.name),
            )
            if isinstance(built, np.ndarray):
                assert built.dtype == reference.dtype, field.name
                assert np.array_equal(built, reference), field.name
            else:
                assert built == reference, field.name
        # The spec path defers key derivation and never builds device
        # objects, so there are no per-device generators to share.
        assert spec_state.rngs is None
        assert object_state.rngs is not None

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(n_devices=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(n_devices=4, fb_range_hz=(5.0, 5.0))
        with pytest.raises(ConfigurationError):
            FleetSpec(n_devices=4, ring_radius_m=0.0)
        with pytest.raises(ConfigurationError):
            FleetSpec(n_devices=4, spreading_factor=13)

    def test_build_fleet_validation_matches_spec(self):
        for kwargs in (
            dict(n_devices=0),
            dict(fb_range_hz=(0.0, -1.0)),
            dict(fb_range_hz=(-17e3, -17e3)),
            dict(ring_radius_m=-2.0),
        ):
            with pytest.raises(ConfigurationError):
                build_fleet(**kwargs)
            with pytest.raises(ConfigurationError):
                build_fleet_spec(**kwargs)

    def test_chunked_power_matrix_bitwise_equal(self):
        spec = FleetSpec(n_devices=11, ring_radius_m=300.0, seed=2)
        world = self._world()
        whole = FleetState.from_spec(spec, world, chunk_rows=None)
        chunked = FleetState.from_spec(spec, world, chunk_rows=3)
        for name in ("powers_dbm", "delays_s", "loss_db", "in_range"):
            assert np.array_equal(getattr(whole, name), getattr(chunked, name)), name
        assert whole.powers_dbm.dtype == chunked.powers_dbm.dtype

    def test_float32_power_storage(self):
        spec = FleetSpec(n_devices=9, ring_radius_m=250.0, seed=3)
        world = self._world()
        narrow = FleetState.from_spec(spec, world, power_dtype=np.float32)
        wide = FleetState.from_spec(spec, world)
        assert narrow.powers_dbm.dtype == np.float32
        assert np.allclose(narrow.powers_dbm, wide.powers_dbm, atol=1e-3)

    def test_spec_state_drives_counters_on_device_less_world(self):
        spec = FleetSpec(n_devices=50, ring_radius_m=400.0, seed=8)
        world = self._world(extra_gw=False)
        state = FleetState.from_spec(spec, world)
        traffic = PeriodicTrafficModel(
            period_s=60.0, jitter_s=20.0, rng=RngStreams(8).stream("traffic")
        )
        report = ColumnarRuntime(
            world, traffic, window_s=2.0, mode="counters", state=state
        ).run(300.0)
        stats = report.contention
        assert stats.attempts == report.attempts > 0
        assert stats.attempts == stats.delivered + stats.collided + stats.lost_low_snr

    def test_events_mode_requires_realized_devices(self):
        spec = FleetSpec(n_devices=4, seed=8)
        world = self._world(extra_gw=False)
        state = FleetState.from_spec(spec, world)
        traffic = PeriodicTrafficModel(
            period_s=60.0, jitter_s=20.0, rng=RngStreams(8).stream("traffic")
        )
        with pytest.raises(ConfigurationError, match="realize"):
            ColumnarRuntime(world, traffic, window_s=2.0, mode="events", state=state)

    def test_from_spec_requires_vectorized_pathloss(self):
        # Shadowed log-distance loss hashes endpoint positions, which a
        # distance-only column cannot reproduce; without device objects
        # there is no scalar path to fall back to.
        spec = FleetSpec(n_devices=4)
        world = self._world(shadowing=2.0)
        with pytest.raises(ConfigurationError):
            FleetState.from_spec(spec, world)


class TestFleetScaleEngine:
    def test_columnar_engine_matches_legacy_cells(self):
        from repro.experiments.fleet_scale import run_fleet_scale

        results = {}
        for engine in ("legacy", "columnar"):
            results[engine] = run_fleet_scale(
                gateway_counts=(2,),
                device_counts=(25,),
                clean_rounds=1,
                attack_rounds=1,
                period_s=120.0,
                jitter_s=30.0,
                window_s=5.0,
                engine=engine,
            )
        legacy_cell = results["legacy"].cells[0]
        columnar_cell = results["columnar"].cells[0]
        for field_name in (
            "uplink_attempts",
            "resolved_uplinks",
            "delivery_rate",
            "dedup_rate",
            "collision_rate",
            "goodput_fps",
            "fused_fb_mae_hz",
            "best_single_fb_mae_hz",
            "detection_tpr",
            "detection_fpr",
            "detection_latency_s",
        ):
            assert getattr(legacy_cell, field_name) == getattr(columnar_cell, field_name), (
                field_name
            )

    def test_counters_engine_matches_contention_columns(self):
        import math

        from repro.experiments.fleet_scale import run_fleet_scale

        kwargs = dict(
            gateway_counts=(1,),
            device_counts=(12,),
            clean_rounds=3,
            attack_rounds=2,
            period_s=30.0,
            jitter_s=10.0,
            window_s=5.0,
            seed=3,
        )
        events_cell = run_fleet_scale(engine="columnar", **kwargs).cells[0]
        counters_cell = run_fleet_scale(engine="columnar-counters", **kwargs).cells[0]
        for field_name in (
            "uplink_attempts",
            "resolved_uplinks",
            "delivery_rate",
            "collision_rate",
            "goodput_fps",
        ):
            assert getattr(counters_cell, field_name) == getattr(events_cell, field_name), (
                field_name
            )
        # Counters cells never assemble frames for the server, so the
        # estimation/detection columns are reported as unmeasured.
        for field_name in ("fused_fb_mae_hz", "detection_tpr", "detection_latency_s"):
            assert math.isnan(getattr(counters_cell, field_name)), field_name

    def test_counters_engine_matches_on_partial_coverage(self):
        # The default cell geometry leaves part of the fleet out of
        # range, so the attack targets only devices the gateway heard;
        # counters cells must pick the same target set off the
        # runtime's heard tally (no verdict log exists to read).
        from repro.experiments.fleet_scale import run_fleet_scale

        kwargs = dict(gateway_counts=(1,), device_counts=(100,))
        legacy_cell = run_fleet_scale(engine="legacy", **kwargs).cells[0]
        counters_cell = run_fleet_scale(engine="columnar-counters", **kwargs).cells[0]
        assert legacy_cell.delivery_rate < 1.0  # coverage really is partial
        for field_name in (
            "uplink_attempts",
            "resolved_uplinks",
            "delivery_rate",
            "collision_rate",
            "goodput_fps",
        ):
            assert getattr(counters_cell, field_name) == getattr(legacy_cell, field_name), (
                field_name
            )

    def test_heard_names_matches_server_verdicts(self):
        from repro.experiments.fleet_scale import _build_cell_world

        def cell(mode):
            streams = RngStreams(77)
            world = _build_cell_world(1, 30, streams, 7, 1500.0, 700.0, 3.4)
            server = NetworkServer()
            world.attach_server(server)
            traffic = _traffic(streams, period_s=120.0, jitter_s=30.0)
            runtime = ColumnarRuntime(world, traffic, window_s=5.0, mode=mode)
            runtime.run(240.0)
            return world, server, runtime

        world, server, events_rt = cell("events")
        addr_to_name = {f"{d.dev_addr:08x}": d.name for d in world.devices.values()}
        heard_events = {addr_to_name[v.node_id] for v in server.verdicts}
        _, _, counters_rt = cell("counters")
        assert set(counters_rt.heard_names()) == heard_events
        assert 0 < len(heard_events) < 30  # partial coverage, non-trivial set
        with pytest.raises(ConfigurationError):
            events_rt.heard_names()

    def test_rejects_unknown_engine(self):
        from repro.experiments.fleet_scale import run_fleet_scale

        with pytest.raises(ConfigurationError):
            run_fleet_scale(gateway_counts=(1,), device_counts=(4,), engine="gpu")

