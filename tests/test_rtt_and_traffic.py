"""Tests for the RTT strawman detector and the ALOHA traffic model."""

import numpy as np
import pytest

from repro.core.rtt_detector import RttCostModel, RttDetector, RttObservation
from repro.errors import ConfigurationError
from repro.experiments.rtt_baseline import run_rtt_baseline
from repro.lorawan.downlink import RX1_DELAY_S
from repro.phy.airtime import airtime_s
from repro.radio.channel import Transmission
from repro.sim.traffic import (
    AlohaChannel,
    PeriodicTrafficModel,
    offered_load_erlangs,
    pure_aloha_success_probability,
)


class TestRttDetector:
    @pytest.fixture
    def detector(self):
        up = airtime_s(20, 7)
        return RttDetector(uplink_airtime_s=up, ack_airtime_s=airtime_s(12, 7))

    def test_expected_rtt_includes_rx1_delay(self, detector):
        assert detector.expected_rtt_s > RX1_DELAY_S

    def test_normal_round_trip_passes(self, detector):
        obs = RttObservation(10.0, 10.0 + detector.expected_rtt_s + 0.02)
        assert not detector.check(obs)

    def test_delayed_round_trip_flagged(self, detector):
        obs = RttObservation(10.0, 10.0 + detector.expected_rtt_s + 60.0)
        assert detector.check(obs)

    def test_missing_ack_flagged(self, detector):
        assert detector.check(RttObservation(10.0, None))

    def test_early_ack_also_flagged(self, detector):
        # An ack arriving impossibly early is just as anomalous.
        obs = RttObservation(10.0, 10.0 + 0.1)
        assert detector.check(obs)

    def test_observations_recorded(self, detector):
        detector.check(RttObservation(1.0, None))
        detector.check(RttObservation(2.0, 2.0 + detector.expected_rtt_s))
        assert len(detector.observations) == 2

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            RttDetector(uplink_airtime_s=0.0, ack_airtime_s=0.1)
        with pytest.raises(ConfigurationError):
            RttDetector(uplink_airtime_s=0.1, ack_airtime_s=0.1, tolerance_s=-1.0)


class TestRttCostModel:
    def test_overhead_is_substantial(self):
        cost = RttCostModel()
        # Acking a 20-byte uplink costs a large fraction of its airtime.
        assert cost.airtime_overhead_ratio(20) > 0.4

    def test_fleet_bound_scales_with_period(self):
        cost = RttCostModel()
        small, large = cost.max_fleet_size(60.0), cost.max_fleet_size(600.0)
        # Ten times the reporting period serves ~ten times the devices
        # (up to integer truncation).
        assert 10 * small <= large <= 10 * (small + 1)

    def test_small_fleet_fully_served(self):
        cost = RttCostModel()
        assert cost.simulate_ack_service(5, 60.0, 600.0) == 1.0

    def test_large_fleet_starved(self):
        cost = RttCostModel()
        small = cost.simulate_ack_service(10, 60.0, 600.0)
        large = cost.simulate_ack_service(400, 60.0, 600.0)
        assert large < small

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            RttCostModel().max_fleet_size(0.0)


class TestRttBaselineExperiment:
    def test_paper_argument_reproduced(self):
        result = run_rtt_baseline()
        # It does detect...
        assert result.detects_delay
        assert result.detects_loss
        # ...at a continuous cost SoftLoRa does not pay.
        assert result.airtime_overhead_ratio > 0.4
        assert result.softlora_airtime_overhead == 0.0
        # The single downlink chain saturates for large fleets.
        assert result.ack_service_fraction[10] == 1.0
        assert result.ack_service_fraction[200] < 1.0
        assert "Sec. 4.4" in result.format()


class TestTrafficModel:
    def test_schedule_is_time_ordered(self):
        model = PeriodicTrafficModel(period_s=60.0, jitter_s=5.0)
        uplinks = model.schedule(["a", "b", "c"], duration_s=600.0)
        times = [u.request_time_s for u in uplinks]
        assert times == sorted(times)

    def test_each_device_reports_about_duration_over_period(self):
        model = PeriodicTrafficModel(period_s=60.0, jitter_s=5.0)
        uplinks = model.schedule(["a"], duration_s=600.0)
        assert 8 <= len(uplinks) <= 11

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PeriodicTrafficModel(period_s=0.0, jitter_s=0.0)
        with pytest.raises(ConfigurationError):
            PeriodicTrafficModel(period_s=10.0, jitter_s=10.0)

    def test_deterministic_with_seed(self):
        a = PeriodicTrafficModel(60.0, 5.0, rng=np.random.default_rng(1)).schedule(
            ["x"], 300.0
        )
        b = PeriodicTrafficModel(60.0, 5.0, rng=np.random.default_rng(1)).schedule(
            ["x"], 300.0
        )
        assert [u.request_time_s for u in a] == [u.request_time_s for u in b]


class TestAlohaChannel:
    @staticmethod
    def _tx(name, start, power=-80.0, duration=0.06, sf=7):
        return Transmission(
            sender=name,
            start_time_s=start,
            airtime_s=duration,
            rx_power_dbm=power,
            spreading_factor=sf,
        )

    def test_sparse_traffic_all_delivered(self):
        channel = AlohaChannel()
        for i in range(5):
            channel.offer(self._tx(f"d{i}", i * 1.0))
        assert channel.delivery_ratio() == 1.0

    def test_equal_power_overlap_collides(self):
        channel = AlohaChannel()
        channel.offer(self._tx("a", 0.0))
        channel.offer(self._tx("b", 0.03))
        assert channel.collision_count() == 2

    def test_capture_saves_the_stronger(self):
        channel = AlohaChannel()
        channel.offer(self._tx("strong", 0.0, power=-70.0))
        channel.offer(self._tx("weak", 0.03, power=-90.0))
        outcomes = {o.transmission.sender: o.delivered for o in channel.resolve()}
        assert outcomes["strong"] and not outcomes["weak"]

    def test_load_and_throughput_formulas(self):
        load = offered_load_erlangs(100, 60.0, 0.06)
        assert load == pytest.approx(0.1)
        assert pure_aloha_success_probability(load) == pytest.approx(np.exp(-0.2))
        assert pure_aloha_success_probability(0.0) == 1.0
        with pytest.raises(ConfigurationError):
            pure_aloha_success_probability(-1.0)

    def test_simulated_collisions_track_aloha_prediction(self):
        # Heavy load: simulated delivery sits in the ballpark of exp(-2G).
        rng = np.random.default_rng(4)
        model = PeriodicTrafficModel(period_s=10.0, jitter_s=9.0, rng=rng)
        airtime = 0.3
        names = [f"d{i}" for i in range(20)]
        uplinks = model.schedule(names, duration_s=300.0)
        channel = AlohaChannel()
        for uplink in uplinks:
            channel.offer(self._tx(uplink.device_name, uplink.request_time_s, duration=airtime))
        load = offered_load_erlangs(20, 10.0, airtime)
        predicted = pure_aloha_success_probability(load)
        measured = channel.delivery_ratio()
        assert abs(measured - predicted) < 0.25


class TestSelectiveJammerContrast:
    def test_selective_jamming_is_not_stealthy(self):
        # Paper Sec. 2: the selective jammer of [5] must decode the
        # header first, so it can only corrupt payload -> CRC alert.
        from repro.attack.jammer import JammingOutcome, SelectiveJammer, StealthyJammer

        selective = SelectiveJammer()
        stealthy = StealthyJammer()
        for sf, payload in ((7, 10), (7, 30), (8, 30), (9, 30)):
            _, outcome = selective.jam(sf, payload, frame_start_s=0.0)
            assert outcome is JammingOutcome.CRC_ALERT, (sf, payload)
            _, stealthy_outcome = stealthy.jam(sf, payload, frame_start_s=0.0)
            assert stealthy_outcome is JammingOutcome.SILENT_DROP

    def test_selective_onset_after_header(self):
        from repro.attack.jammer import SelectiveJammer
        from repro.phy.airtime import airtime_breakdown

        jammer = SelectiveJammer()
        offset = jammer.earliest_onset_offset_s(7, 30)
        assert offset > airtime_breakdown(30, 7).header_end_s
