"""Tests for CSS modulation/demodulation (repro.phy.modulation)."""

import numpy as np
import pytest

from repro.errors import ModulationError
from repro.phy.chirp import ChirpConfig
from repro.phy.modulation import CssDemodulator, CssModulator
from repro.sdr.noise import add_noise_for_snr


@pytest.fixture
def mod(fast_config):
    return CssModulator(fast_config)


@pytest.fixture
def dem(fast_config):
    return CssDemodulator(fast_config)


class TestModulator:
    def test_waveform_length(self, fast_config, mod):
        wave = mod.modulate([0, 1, 2, 3])
        assert len(wave) == 4 * fast_config.samples_per_chirp

    def test_empty_symbol_list(self, mod):
        assert len(mod.modulate([])) == 0

    def test_out_of_range_symbol_rejected(self, fast_config, mod):
        with pytest.raises(ModulationError):
            mod.modulate([fast_config.n_symbols])
        with pytest.raises(ModulationError):
            mod.modulate([-1])

    def test_constant_envelope(self, mod):
        wave = mod.modulate([5, 77, 12], amplitude=1.5)
        np.testing.assert_allclose(np.abs(wave), 1.5, rtol=1e-12)


class TestDemodulator:
    def test_roundtrip_clean(self, mod, dem, rng):
        symbols = [int(s) for s in rng.integers(0, 128, 30)]
        wave = mod.modulate(symbols)
        assert dem.symbols(wave, 30) == symbols

    def test_roundtrip_all_corner_symbols(self, fast_config, mod, dem):
        symbols = [0, 1, 63, 64, 126, 127]
        wave = mod.modulate(symbols)
        assert dem.symbols(wave, len(symbols)) == symbols

    def test_roundtrip_with_fb_correction(self, mod, dem, rng):
        symbols = [int(s) for s in rng.integers(0, 128, 20)]
        wave = mod.modulate(symbols, fb_hz=-22.8e3, phase=1.0)
        assert dem.symbols(wave, 20, fb_hz=-22.8e3) == symbols

    def test_uncorrected_large_fb_breaks_demodulation(self, mod, dem, rng):
        symbols = [int(s) for s in rng.integers(0, 128, 20)]
        wave = mod.modulate(symbols, fb_hz=-22.8e3)
        wrong = dem.symbols(wave, 20, fb_hz=0.0)
        errors = sum(1 for a, b in zip(wrong, symbols) if a != b)
        assert errors > 10  # a 23 kHz offset shifts ~23 bins

    def test_small_residual_fb_tolerated(self, fast_config, mod, dem, rng):
        # Residual below half a bin (W/2^S/2 ~ 488 Hz at SF7) is harmless.
        symbols = [int(s) for s in rng.integers(0, 128, 20)]
        wave = mod.modulate(symbols, fb_hz=300.0)
        assert dem.symbols(wave, 20, fb_hz=0.0) == symbols

    def test_roundtrip_under_noise(self, mod, dem, rng):
        symbols = [int(s) for s in rng.integers(0, 128, 20)]
        wave = mod.modulate(symbols)
        noisy = add_noise_for_snr(wave, snr_db=0.0, rng=rng)
        assert dem.symbols(noisy, 20) == symbols

    def test_roundtrip_at_demod_floor(self, mod, dem, rng):
        # SF7's datasheet floor is -7.5 dB; full-band SNR at 0.5 Msps has
        # 6 dB margin over the 125 kHz in-band definition, so test -5 dB.
        symbols = [int(s) for s in rng.integers(0, 128, 10)]
        wave = mod.modulate(symbols)
        noisy = add_noise_for_snr(wave, snr_db=-5.0, rng=rng)
        decoded = dem.symbols(noisy, 10)
        errors = sum(1 for a, b in zip(decoded, symbols) if a != b)
        assert errors <= 1

    def test_short_input_rejected(self, fast_config, dem):
        with pytest.raises(ModulationError):
            dem.demodulate_chirp(np.zeros(10, dtype=complex))
        with pytest.raises(ModulationError):
            dem.demodulate(np.zeros(fast_config.samples_per_chirp, dtype=complex), 2)

    def test_decision_margin_high_when_clean(self, mod, dem):
        # Symbol 0 dechirps to a single on-bin tone: near-infinite margin.
        result0 = dem.demodulate_chirp(mod.modulate([0]))
        assert result0.value == 0
        assert result0.decision_margin > 100.0
        # A folded symbol splits into two rectangular segments whose sinc
        # leakage bounds the margin, but the decision still clears it.
        result42 = dem.demodulate_chirp(mod.modulate([42]))
        assert result42.value == 42
        assert result42.decision_margin > 1.5

    def test_demodulate_returns_metadata(self, mod, dem):
        wave = mod.modulate([7, 8])
        results = dem.demodulate(wave, 2)
        assert [r.value for r in results] == [7, 8]
        assert all(r.magnitude > 0 for r in results)


class TestAcrossConfigurations:
    @pytest.mark.parametrize("sf", [7, 8, 9, 10])
    def test_roundtrip_each_sf(self, sf, rng):
        config = ChirpConfig(spreading_factor=sf, sample_rate_hz=0.5e6)
        mod, dem = CssModulator(config), CssDemodulator(config)
        symbols = [int(s) for s in rng.integers(0, config.n_symbols, 8)]
        assert dem.symbols(mod.modulate(symbols), 8) == symbols

    @pytest.mark.parametrize("fs", [0.25e6, 1.0e6, 2.4e6])
    def test_roundtrip_each_sample_rate(self, fs, rng):
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=fs)
        mod, dem = CssModulator(config), CssDemodulator(config)
        symbols = [int(s) for s in rng.integers(0, 128, 8)]
        assert dem.symbols(mod.modulate(symbols), 8) == symbols
