"""Tests for AES-128, AES-CMAC and LoRaWAN frame security."""

import pytest

from repro.errors import ConfigurationError, MicError
from repro.lorawan.crypto.aes import aes128_decrypt_block, aes128_encrypt_block
from repro.lorawan.crypto.cmac import aes_cmac
from repro.lorawan.security import (
    SessionKeys,
    compute_uplink_mic,
    decrypt_frm_payload,
    encrypt_frm_payload,
    verify_uplink_mic,
)

FIPS_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestAes128:
    def test_fips197_appendix_b(self):
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert aes128_encrypt_block(FIPS_KEY, plaintext) == expected

    def test_fips197_appendix_c(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes128_encrypt_block(key, plaintext) == expected

    def test_decrypt_inverts_encrypt(self):
        block = bytes(range(16))
        assert aes128_decrypt_block(FIPS_KEY, aes128_encrypt_block(FIPS_KEY, block)) == block

    def test_bad_key_length(self):
        with pytest.raises(ConfigurationError):
            aes128_encrypt_block(b"short", bytes(16))

    def test_bad_block_length(self):
        with pytest.raises(ConfigurationError):
            aes128_encrypt_block(FIPS_KEY, b"tiny")
        with pytest.raises(ConfigurationError):
            aes128_decrypt_block(FIPS_KEY, b"tiny")

    def test_different_keys_different_output(self):
        block = bytes(16)
        assert aes128_encrypt_block(FIPS_KEY, block) != aes128_encrypt_block(
            bytes(16), block
        )


class TestCmac:
    """RFC 4493 test vectors."""

    def test_empty_message(self):
        assert aes_cmac(FIPS_KEY, b"").hex() == "bb1d6929e95937287fa37d129b756746"

    def test_16_bytes(self):
        msg = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert aes_cmac(FIPS_KEY, msg).hex() == "070a16b46b4d4144f79bdd9dd04a287c"

    def test_40_bytes(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411"
        )
        assert aes_cmac(FIPS_KEY, msg).hex() == "dfa66747de9ae63030ca32611497c827"

    def test_64_bytes(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52ef"
            "f69f2445df4f9b17ad2b417be66c3710"
        )
        assert aes_cmac(FIPS_KEY, msg).hex() == "51f0bebf7e3b9d92fc49741779363cfe"

    def test_mac_changes_with_message(self):
        assert aes_cmac(FIPS_KEY, b"a") != aes_cmac(FIPS_KEY, b"b")


class TestSessionKeys:
    def test_key_lengths_enforced(self):
        with pytest.raises(ConfigurationError):
            SessionKeys(nwk_skey=b"short", app_skey=bytes(16))

    def test_derive_for_test_deterministic(self):
        a = SessionKeys.derive_for_test(0x1234)
        b = SessionKeys.derive_for_test(0x1234)
        assert a == b

    def test_derive_for_test_distinct_devices(self):
        assert SessionKeys.derive_for_test(1) != SessionKeys.derive_for_test(2)

    def test_nwk_and_app_keys_differ(self):
        keys = SessionKeys.derive_for_test(7)
        assert keys.nwk_skey != keys.app_skey


class TestFrameSecurity:
    def test_payload_encryption_roundtrip(self):
        keys = SessionKeys.derive_for_test(0xAABBCCDD)
        payload = b"sensor readings live here, 30B!"
        encrypted = encrypt_frm_payload(keys.app_skey, 0xAABBCCDD, 5, 0, payload)
        assert encrypted != payload
        decrypted = decrypt_frm_payload(keys.app_skey, 0xAABBCCDD, 5, 0, encrypted)
        assert decrypted == payload

    def test_encryption_depends_on_counter(self):
        keys = SessionKeys.derive_for_test(1)
        payload = b"same bytes"
        a = encrypt_frm_payload(keys.app_skey, 1, 1, 0, payload)
        b = encrypt_frm_payload(keys.app_skey, 1, 2, 0, payload)
        assert a != b

    def test_encryption_depends_on_direction(self):
        keys = SessionKeys.derive_for_test(1)
        payload = b"same bytes"
        up = encrypt_frm_payload(keys.app_skey, 1, 1, 0, payload)
        down = encrypt_frm_payload(keys.app_skey, 1, 1, 1, payload)
        assert up != down

    def test_invalid_direction(self):
        with pytest.raises(ConfigurationError):
            encrypt_frm_payload(bytes(16), 1, 1, 2, b"x")

    def test_empty_payload(self):
        assert encrypt_frm_payload(bytes(16), 1, 1, 0, b"") == b""

    def test_mic_verifies(self):
        keys = SessionKeys.derive_for_test(3)
        msg = b"\x40" + bytes(10)
        mic = compute_uplink_mic(keys.nwk_skey, 3, 9, msg)
        assert len(mic) == 4
        verify_uplink_mic(keys.nwk_skey, 3, 9, msg, mic)  # no raise

    def test_mic_rejects_tampering(self):
        keys = SessionKeys.derive_for_test(3)
        msg = bytearray(b"\x40" + bytes(10))
        mic = compute_uplink_mic(keys.nwk_skey, 3, 9, bytes(msg))
        msg[5] ^= 0x01
        with pytest.raises(MicError):
            verify_uplink_mic(keys.nwk_skey, 3, 9, bytes(msg), mic)

    def test_mic_rejects_wrong_counter(self):
        keys = SessionKeys.derive_for_test(3)
        msg = b"\x40" + bytes(10)
        mic = compute_uplink_mic(keys.nwk_skey, 3, 9, msg)
        with pytest.raises(MicError):
            verify_uplink_mic(keys.nwk_skey, 3, 10, msg, mic)
