"""Tests for the Semtech time-on-air model (repro.phy.airtime)."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.airtime import (
    airtime_breakdown,
    airtime_s,
    low_data_rate_optimize,
    n_payload_symbols,
    preamble_time_s,
    symbol_time_s,
)


class TestSymbolTime:
    @pytest.mark.parametrize(
        "sf,expected_ms", [(7, 1.024), (8, 2.048), (9, 4.096), (12, 32.768)]
    )
    def test_matches_table1_chirp_times(self, sf, expected_ms):
        assert symbol_time_s(sf) == pytest.approx(expected_ms * 1e-3)

    def test_invalid_sf(self):
        with pytest.raises(ConfigurationError):
            symbol_time_s(13)


class TestPreambleTime:
    @pytest.mark.parametrize("sf,expected_ms", [(7, 8.2), (8, 16.4), (9, 32.8)])
    def test_matches_table1_preamble_times(self, sf, expected_ms):
        # Table 1 lists the 8-chirp programmed preamble (without the 4.25
        # sync symbols) as "preamble time".
        programmed = 8 * symbol_time_s(sf)
        assert programmed == pytest.approx(expected_ms * 1e-3, rel=0.01)
        # Our full preamble includes the 4.25 sync symbols on top.
        assert preamble_time_s(sf) == pytest.approx((8 + 4.25) * symbol_time_s(sf))

    def test_rejects_zero_preamble(self):
        with pytest.raises(ConfigurationError):
            preamble_time_s(7, n_preamble=0)


class TestPayloadSymbols:
    def test_known_value_sf7_10bytes(self):
        # 8 + ceil((80 - 28 + 28 + 16)/28)*5 = 8 + ceil(96/28)*5 = 28
        assert n_payload_symbols(10, 7) == 28

    def test_known_value_sf7_30bytes(self):
        assert n_payload_symbols(30, 7) == 58

    def test_implicit_header_shortens(self):
        explicit = n_payload_symbols(20, 7, explicit_header=True)
        implicit = n_payload_symbols(20, 7, explicit_header=False)
        assert implicit <= explicit

    def test_crc_adds_symbols_or_keeps_equal(self):
        with_crc = n_payload_symbols(10, 7, crc=True)
        without = n_payload_symbols(10, 7, crc=False)
        assert with_crc >= without

    def test_ldro_auto_enabled_at_sf12(self):
        assert low_data_rate_optimize(12) is True
        assert low_data_rate_optimize(7) is False

    def test_ldro_increases_symbol_count(self):
        assert n_payload_symbols(30, 12, ldro=True) >= n_payload_symbols(30, 12, ldro=False)

    def test_monotone_in_payload(self):
        previous = 0
        for payload in range(0, 120, 10):
            current = n_payload_symbols(payload, 9)
            assert current >= previous
            previous = current

    def test_higher_coding_rate_never_shrinks(self):
        for cr in range(1, 4):
            assert n_payload_symbols(30, 8, coding_rate=cr + 1) >= n_payload_symbols(
                30, 8, coding_rate=cr
            )

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            n_payload_symbols(-1, 7)

    def test_bad_coding_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            n_payload_symbols(10, 7, coding_rate=5)


class TestAirtime:
    def test_paper_sf12_budget_number(self):
        # Paper Sec. 3.2: a 30-byte SF12 frame allows ~24 frames/hour at
        # 1% duty -> airtime ~1.48 s (computed without LDRO).
        assert airtime_s(30, 12, ldro=False) == pytest.approx(1.4828, rel=1e-3)

    def test_sf7_30bytes(self):
        # preamble 12.25 syms + 58 payload syms, all at 1.024 ms.
        assert airtime_s(30, 7) == pytest.approx((12.25 + 58) * 1.024e-3)

    def test_monotone_in_spreading_factor(self):
        times = [airtime_s(30, sf) for sf in range(7, 13)]
        assert times == sorted(times)

    def test_breakdown_sums_to_total(self):
        breakdown = airtime_breakdown(30, 9)
        assert breakdown.total_s == pytest.approx(airtime_s(30, 9))

    def test_breakdown_header_region(self):
        breakdown = airtime_breakdown(30, 7)
        assert breakdown.header_s == pytest.approx(8 * 1.024e-3)
        assert breakdown.header_end_s == pytest.approx(
            breakdown.preamble_s + breakdown.header_s
        )

    def test_breakdown_symbol_count_consistent(self):
        breakdown = airtime_breakdown(42, 8, coding_rate=2)
        assert breakdown.n_payload_symbols == n_payload_symbols(42, 8, coding_rate=2)
