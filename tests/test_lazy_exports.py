"""Guard the package's lazy-export map against drift.

``repro.__init__`` re-exports heavy aggregates through a module-level
``__getattr__``; a name added to ``__all__`` without a matching eager
import or ``_LAZY`` entry would only explode at first attribute access.
These tests touch every advertised name so the drift is caught in CI.
"""

import pytest

import repro


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_every_public_name_resolves(name):
    assert getattr(repro, name) is not None


def test_lazy_names_are_advertised():
    # Everything reachable through the lazy map must also be in __all__,
    # otherwise star-imports and the docs disagree with getattr.
    for name in repro._LAZY:
        assert name in repro.__all__, f"lazy export {name!r} missing from __all__"


def test_lazy_map_targets_exist():
    import importlib

    for name, (module_name, attr) in repro._LAZY.items():
        module = importlib.import_module(module_name)
        assert hasattr(module, attr), f"{name!r} points at missing {module_name}.{attr}"


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_an_export
