"""Durable FB stores: conformance, crash recovery, and verdict parity.

The acceptance bar from the ISSUE: every persistent backend behind the
:class:`~repro.core.detector.FbStore` protocol must be verdict-bitwise
equal to the in-memory :class:`~repro.core.detector.FbDatabase` on
golden scenarios -- including across a simulated crash and restart in
the middle of a scenario.
"""

import dataclasses
import math

import pytest

from repro.core.detector import FbDatabase, FbStore, ReplayDetector
from repro.errors import ConfigurationError
from repro.server import NetworkServer
from repro.server.sharding import ShardedFbDatabase
from repro.server.store import (
    LMDB_AVAILABLE,
    LmdbFbStore,
    LruCachedStore,
    PersistentShardedFbDatabase,
    SqliteFbStore,
    open_store,
    store_batch,
    store_stats,
)
from repro.server.store.sharded import META_FILE
from repro.service import build_plan


@pytest.fixture(scope="module")
def plan():
    """A small recorded fleet run with clean and attack phases."""
    return build_plan(n_devices=6, n_gateways=2, clean_s=90.0, attack_s=90.0)


def store_builders(tmp_path):
    """Label -> zero-arg builder for every available backend."""
    builders = {
        "memory": lambda: FbDatabase(),
        "sharded-memory": lambda: ShardedFbDatabase(n_shards=4),
        "sqlite": lambda: SqliteFbStore(tmp_path / "fb.sqlite"),
        "lru-sqlite": lambda: LruCachedStore(
            SqliteFbStore(tmp_path / "fb-lru.sqlite"), max_nodes=64
        ),
        "sharded-sqlite": lambda: PersistentShardedFbDatabase(
            tmp_path / "fb.d", n_shards=3
        ),
    }
    if LMDB_AVAILABLE:
        builders["lmdb"] = lambda: LmdbFbStore(tmp_path / "fb.lmdb")
    return builders


class TestProtocolConformance:
    def test_every_backend_satisfies_fbstore(self, tmp_path):
        for label, build in store_builders(tmp_path).items():
            store = build()
            assert isinstance(store, FbStore), label
            close = getattr(store, "close", None)
            if callable(close):
                close()

    def test_protocol_is_runtime_checkable_and_rejects_non_stores(self):
        assert not isinstance(object(), FbStore)
        assert not isinstance({"record": None}, FbStore)

    def test_store_stats_shape(self, tmp_path):
        store = SqliteFbStore(tmp_path / "s.sqlite")
        store.record("node", 10.0, 1.0)
        stats = store_stats(store)
        assert stats == {"backend": "SqliteFbStore", "node_count": 1}
        cached = LruCachedStore(store, max_nodes=4)
        cached.interval("node", 5.0)
        stats = store_stats(cached)
        assert stats["backend"] == "LruCachedStore"
        assert stats["cache"]["misses"] == 1
        store.close()


class TestSqliteStore:
    def test_record_interval_and_pruning_match_reference(self, tmp_path):
        ref = FbDatabase(history_len=3)
        store = SqliteFbStore(tmp_path / "s.sqlite", history_len=3)
        values = [(-20.0, 1.0), (5.5, 2.0), (30.25, 3.0), (-4.75, 4.0), (18.0, 5.0)]
        for fb, t in values:
            ref.record("n1", fb, t)
            store.record("n1", fb, t)
        assert store.estimates("n1") == ref.estimates("n1")
        assert store.history("n1") == ref.history("n1")
        assert store.sample_count("n1") == 3
        got = store.interval("n1", guard_hz=7.0)
        want = ref.interval("n1", guard_hz=7.0)
        assert (got.low_hz, got.high_hz) == (want.low_hz, want.high_hz)
        assert store.interval("missing", 7.0) is None
        store.close()

    def test_floats_round_trip_bitwise(self, tmp_path):
        store = SqliteFbStore(tmp_path / "s.sqlite")
        awkward = [0.1, -0.3, 1e-17, 123456.789012345, math.pi, -2.5e8]
        for i, fb in enumerate(awkward):
            store.record("n", fb, float(i) + 0.1)
        got = store.estimates("n")
        assert [v.hex() for v in got] == [v.hex() for v in awkward]
        store.close()

    def test_history_survives_close_and_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        store = SqliteFbStore(path, history_len=4)
        for fb in (1.0, 2.0, 3.0):
            store.record("node", fb, fb)
        store.flush()
        store.close()
        reopened = SqliteFbStore(path, history_len=4)
        assert reopened.history("node") == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        reopened.record("node", 4.0, 4.0)
        assert reopened.estimates("node") == [1.0, 2.0, 3.0, 4.0]
        reopened.close()

    def test_crash_reopen_without_close_sees_committed_rows(self, tmp_path):
        path = tmp_path / "s.sqlite"
        writer = SqliteFbStore(path)
        with writer.batch():
            writer.record("a", 1.0, 1.0)
            writer.record("b", 2.0, 1.5)
        # Simulated process kill: a second store opens the same file
        # while the writer never ran flush()/close().
        survivor = SqliteFbStore(path)
        assert survivor.known_nodes() == ["a", "b"]
        assert survivor.history("a") == [(1.0, 1.0)]
        survivor.close()
        writer.close()

    def test_batch_rolls_back_wholesale_on_error(self, tmp_path):
        store = SqliteFbStore(tmp_path / "s.sqlite")
        store.record("keep", 5.0, 1.0)
        with pytest.raises(RuntimeError):
            with store.batch():
                store.record("keep", 6.0, 2.0)
                store.record("gone", 7.0, 2.0)
                raise RuntimeError("window died")
        assert store.estimates("keep") == [5.0]
        assert store.known_nodes() == ["keep"]
        store.close()

    def test_batch_is_reentrant_and_blocks_flush(self, tmp_path):
        store = SqliteFbStore(tmp_path / "s.sqlite")
        with store.batch():
            with store.batch():
                store.record("n", 1.0, 1.0)
            with pytest.raises(ConfigurationError):
                store.flush()
        assert store.estimates("n") == [1.0]
        store.close()

    def test_forget_and_validation(self, tmp_path):
        store = SqliteFbStore(tmp_path / "s.sqlite")
        store.record("n", 1.0, 1.0)
        store.forget("n")
        assert store.node_count() == 0
        assert store.sample_count("n") == 0
        store.close()
        with pytest.raises(ConfigurationError):
            SqliteFbStore(tmp_path / "bad.sqlite", history_len=0)


@pytest.mark.skipif(not LMDB_AVAILABLE, reason="lmdb binding not installed")
class TestLmdbStore:
    def test_round_trip_and_reopen(self, tmp_path):
        path = tmp_path / "fb.lmdb"
        store = LmdbFbStore(path, history_len=3)
        for fb in (1.0, 2.5, -3.0, 4.0):
            store.record("n", fb, fb * 2.0)
        assert store.estimates("n") == [2.5, -3.0, 4.0]
        store.close()
        reopened = LmdbFbStore(path, history_len=3)
        assert reopened.history("n") == [(5.0, 2.5), (-6.0, -3.0), (8.0, 4.0)]
        reopened.close()


class TestLmdbGating:
    def test_absent_binding_raises_configuration_error(self, tmp_path):
        if LMDB_AVAILABLE:
            pytest.skip("lmdb binding installed; gating path unreachable")
        with pytest.raises(ConfigurationError, match="lmdb"):
            LmdbFbStore(tmp_path / "fb.lmdb")


class TestLruCachedStore:
    def test_write_through_and_counters(self, tmp_path):
        backing = SqliteFbStore(tmp_path / "s.sqlite")
        cached = LruCachedStore(backing, max_nodes=2)
        cached.record("a", 1.0, 1.0)
        cached.record("a", 2.0, 2.0)
        assert backing.estimates("a") == [1.0, 2.0]
        assert cached.estimates("a") == [1.0, 2.0]
        stats = cached.stats()
        assert stats.misses == 1 and stats.hits >= 1
        assert 0.0 < stats.hit_rate <= 1.0
        backing.close()

    def test_eviction_bounds_cached_nodes(self, tmp_path):
        backing = SqliteFbStore(tmp_path / "s.sqlite")
        cached = LruCachedStore(backing, max_nodes=2)
        for node in ("a", "b", "c"):
            cached.record(node, 1.0, 1.0)
        stats = cached.stats()
        assert stats.cached_nodes == 2
        assert stats.evictions == 1
        # Evicted node reloads from backing on next touch, not empty.
        assert cached.estimates("a") == [1.0]
        backing.close()

    def test_cache_never_double_counts_fresh_writes(self, tmp_path):
        backing = SqliteFbStore(tmp_path / "s.sqlite", history_len=4)
        backing.record("n", 1.0, 1.0)
        cached = LruCachedStore(backing, max_nodes=4)
        cached.record("n", 2.0, 2.0)  # miss-load then append: no dupes
        assert cached.estimates("n") == [1.0, 2.0]
        assert backing.estimates("n") == [1.0, 2.0]
        backing.close()

    def test_forget_and_invalidate(self, tmp_path):
        backing = SqliteFbStore(tmp_path / "s.sqlite")
        cached = LruCachedStore(backing, max_nodes=4)
        cached.record("n", 1.0, 1.0)
        cached.forget("n")
        assert cached.sample_count("n") == 0
        cached.record("m", 2.0, 1.0)
        cached.invalidate()
        assert cached.stats().cached_nodes == 0
        assert cached.estimates("m") == [2.0]
        backing.close()

    def test_wrapping_in_memory_store_composes(self):
        cached = LruCachedStore(FbDatabase(), max_nodes=4)
        with store_batch(cached):
            cached.record("n", 1.0, 1.0)
        assert cached.estimates("n") == [1.0]


class TestPersistentSharded:
    def test_routing_matches_in_memory_sharding(self, tmp_path):
        memory = ShardedFbDatabase(n_shards=5)
        durable = PersistentShardedFbDatabase(tmp_path / "fb.d", n_shards=5)
        for i in range(40):
            node = f"{i:08x}"
            assert durable.shard_index(node) == memory.shard_index(node)
        durable.close()

    def test_meta_sidecar_reload_and_mismatch(self, tmp_path):
        directory = tmp_path / "fb.d"
        store = PersistentShardedFbDatabase(directory, n_shards=3, history_len=7)
        store.record("node", 1.0, 1.0)
        store.close()
        assert (directory / META_FILE).exists()
        reopened = PersistentShardedFbDatabase(directory)
        assert reopened.n_shards == 3
        assert reopened.history_len == 7
        assert reopened.estimates("node") == [1.0]
        reopened.close()
        with pytest.raises(ConfigurationError, match="rebalance"):
            PersistentShardedFbDatabase(directory, n_shards=8)

    def test_rebalance_preserves_every_history(self, tmp_path):
        store = PersistentShardedFbDatabase(tmp_path / "fb.d", n_shards=2)
        histories = {}
        for i in range(25):
            node = f"{i:08x}"
            for k in range(3):
                store.record(node, float(i) + k * 0.25, float(k))
            histories[node] = store.history(node)
        for count in (7, 1, 4):
            store.rebalance(count)
            assert store.n_shards == count
            assert store.known_nodes() == sorted(histories)
            for node, history in histories.items():
                assert store.history(node) == history
        assert sum(store.shard_sizes()) == len(histories)
        store.close()

    def test_rebalance_is_deterministic(self, tmp_path):
        def build(directory):
            store = PersistentShardedFbDatabase(directory, n_shards=2)
            for i in range(12):
                store.record(f"{i:08x}", float(i), float(i))
            store.rebalance(5)
            store.flush()
            store.close()

        build(tmp_path / "a")
        build(tmp_path / "b")
        for index in range(5):
            name = f"shard-{index:04d}.sqlite"
            a = (tmp_path / "a" / name).read_bytes()
            b = (tmp_path / "b" / name).read_bytes()
            assert a == b, f"shard file {name} diverged between identical runs"


class TestOpenStore:
    def test_specs_build_expected_backends(self, tmp_path):
        assert isinstance(open_store("memory"), FbDatabase)
        assert isinstance(open_store("sharded?shards=4"), ShardedFbDatabase)
        sqlite_store = open_store(f"sqlite:{tmp_path / 'fb.sqlite'}")
        assert isinstance(sqlite_store, SqliteFbStore)
        sqlite_store.close()
        cached = open_store(f"sqlite:{tmp_path / 'fb2.sqlite'}?cache=8&history=4")
        assert isinstance(cached, LruCachedStore)
        assert cached.backing.history_len == 4
        cached.close()
        sharded = open_store(f"sharded-sqlite:{tmp_path / 'fb.d'}?shards=2")
        assert isinstance(sharded, PersistentShardedFbDatabase)
        assert sharded.n_shards == 2
        sharded.close()

    def test_memory_spec_with_options_and_defaults(self):
        store = open_store("memory?history=4")
        assert isinstance(store, FbDatabase)
        assert store.history_len == 4

    def test_bad_specs_raise(self):
        with pytest.raises(ConfigurationError, match="unknown store backend"):
            open_store("redis:somewhere")
        with pytest.raises(ConfigurationError, match="bad store option"):
            open_store("memory?turbo=1")
        with pytest.raises(ConfigurationError, match="must be an integer"):
            open_store("memory?history=lots")


def _drive(plan, store):
    """Replay the plan's forwards through a server backed by ``store``."""
    server = NetworkServer(detector=ReplayDetector(database=store))
    plan.provision(server)
    verdicts = []
    for batch in plan.batches:
        with store_batch(store):
            verdicts.extend(v.as_dict() for v in server.process_step(batch))
    return verdicts


class TestGoldenVerdictParity:
    def test_every_backend_is_verdict_bitwise_equal(self, plan, tmp_path):
        oracle = list(plan.oracle_verdicts)
        for label, build in store_builders(tmp_path).items():
            store = build()
            assert _drive(plan, store) == oracle, f"backend {label} diverged"
            close = getattr(store, "close", None)
            if callable(close):
                close()

    def test_crash_and_restart_mid_scenario_is_bit_identical(self, plan, tmp_path):
        oracle = list(plan.oracle_verdicts)
        half = len(plan.batches) // 2
        path = tmp_path / "crash.sqlite"

        first = SqliteFbStore(path)
        before = _drive(dataclasses.replace(plan, batches=plan.batches[:half]), first)
        # Crash: the first process never flushes or closes; a new store
        # opens the same file, and provisioning skips the FB bootstraps
        # because the histories are already on disk.
        survivor = SqliteFbStore(path)
        after = _drive(
            dataclasses.replace(plan, batches=plan.batches[half:]), survivor
        )
        assert before + after == oracle
        survivor.close()
        first.close()

    def test_restart_with_sharded_store_directory(self, plan, tmp_path):
        oracle = list(plan.oracle_verdicts)
        half = len(plan.batches) // 2
        directory = tmp_path / "crash.d"

        first = PersistentShardedFbDatabase(directory, n_shards=3)
        before = _drive(dataclasses.replace(plan, batches=plan.batches[:half]), first)
        first.close()
        survivor = PersistentShardedFbDatabase(directory)
        after = _drive(
            dataclasses.replace(plan, batches=plan.batches[half:]), survivor
        )
        assert before + after == oracle
        survivor.close()
