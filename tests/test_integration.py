"""Cross-module integration tests: the paper's stories, end to end."""

import numpy as np
import pytest

from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.eavesdropper import Eavesdropper
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.clock.clocks import DriftingClock
from repro.clock.oscillator import Oscillator
from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.lorawan.device import EndDevice
from repro.lorawan.gateway import CommodityGateway, ReceiveStatus
from repro.lorawan.security import SessionKeys
from repro.phy.chirp import ChirpConfig
from repro.sdr.iq import IQTrace
from repro.sdr.noise import complex_awgn, noise_power_for_snr
from repro.sdr.receiver import SdrReceiver
from repro.sim.rng import RngStreams

DEV = 0x26017777


def build_system(seed=21, sf=7, fs=0.5e6, drift_ppm=40.0):
    streams = RngStreams(seed)
    config = ChirpConfig(spreading_factor=sf, sample_rate_hz=fs)
    device = EndDevice(
        name="node",
        dev_addr=DEV,
        keys=SessionKeys.derive_for_test(DEV),
        radio_oscillator=Oscillator.lora_end_device(streams.stream("osc")),
        clock=DriftingClock(drift_ppm=drift_ppm),
        spreading_factor=sf,
        rng=streams.stream("dev"),
    )
    commodity = CommodityGateway()
    commodity.register_device(device.dev_addr, device.keys)
    gateway = SoftLoRaGateway(
        config=config,
        commodity=commodity,
        replay_detector=ReplayDetector(database=FbDatabase()),
    )
    return config, device, gateway, streams


def noisy_capture(wave, emission_time_s, config, rng, snr_db=15.0, pad=1200, tail=1024):
    # Leading noise before the onset plus a trailing margin so a +/-1
    # sample onset estimate still leaves a full frame to demodulate.
    noise_power = noise_power_for_snr(1.0, snr_db)
    padded = np.concatenate([np.zeros(pad, dtype=complex), wave, np.zeros(tail, dtype=complex)])
    noisy = padded + complex_awgn(len(padded), noise_power, rng)
    start = emission_time_s - pad / config.sample_rate_hz
    return IQTrace(noisy, config.sample_rate_hz, start_time_s=start), noise_power


class TestNormalOperationStory:
    """Sec. 3.2: sync-free timestamping in benign conditions."""

    def test_continuous_monitoring_with_drifting_clock(self):
        config, device, gateway, streams = build_system()
        rng = streams.stream("noise")
        worst_error = 0.0
        # Learn the FB profile over the first three frames, then measure.
        for frame_index in range(6):
            base = 1000.0 + frame_index * 200.0
            event_times = [base, base + 30.0, base + 60.0]
            for i, t in enumerate(event_times):
                device.take_reading(100.0 + i, t)
            tx = device.transmit(base + 90.0)
            wave = device.modulate(tx, config)
            trace, noise_power = noisy_capture(wave, tx.emission_time_s, config, rng)
            reception = gateway.process_capture(trace, noise_power=noise_power)
            assert reception.status is SoftLoRaStatus.ACCEPTED
            for reading, truth in zip(reception.readings, event_times):
                worst_error = max(worst_error, abs(reading.global_time_s - truth))
        # The paper's end-to-end budget: drift + latency + quantization,
        # all well under 10 ms.
        assert worst_error < 10e-3

    def test_fb_profile_converges(self):
        config, device, gateway, streams = build_system()
        rng = streams.stream("noise")
        for frame_index in range(4):
            device.take_reading(1.0, 100.0 * (frame_index + 1))
            tx = device.transmit(100.0 * (frame_index + 1) + 5.0)
            wave = device.modulate(tx, config)
            trace, noise_power = noisy_capture(wave, tx.emission_time_s, config, rng)
            gateway.process_capture(trace, noise_power=noise_power)
        node_id = f"{DEV:08x}"
        estimates = gateway.replay_detector.database.estimates(node_id)
        assert len(estimates) == 4
        # At 0.5 Msps one sample of onset error biases the FB by
        # rate/fs ~ 244 Hz, which dominates the scatter here.
        assert np.std(estimates) < 600.0


class TestAttackStory:
    """Sec. 4 + Sec. 7.2: the frame delay attack and its detection."""

    def test_commodity_gateway_is_fooled_softlora_is_not(self):
        config, device, gateway, streams = build_system()
        rng = streams.stream("noise")
        # Warm-up traffic to learn the profile.
        for i in range(3):
            device.take_reading(1.0, 50.0 + 100.0 * i)
            tx = device.transmit(55.0 + 100.0 * i)
            gateway.process_frame(tx.mac_bytes, tx.emission_time_s, device.fb_hz)

        # The attacked uplink, full waveform path through the chain.
        device.take_reading(7.7, 1000.0)
        tx = device.transmit(1005.0)
        wave = device.modulate(tx, config)
        attack = FrameDelayAttack(
            jammer=StealthyJammer(),
            replayer=Replayer.single_usrp(streams.stream("replayer")),
            eavesdropper=Eavesdropper(
                receiver=SdrReceiver(sample_rate_hz=config.sample_rate_hz)
            ),
            rng=streams.stream("attack"),
        )
        delay = 300.0
        outcome = attack.execute(tx, delay_s=delay, waveform=wave)
        assert outcome.stealthy

        # Plain commodity gateway: accepts and mis-timestamps by τ.
        naive = CommodityGateway()
        naive.register_device(device.dev_addr, device.keys)
        naive_view = naive.receive_frame(
            outcome.replayed.mac_bytes, outcome.replayed.arrival_time_s
        )
        assert naive_view.status is ReceiveStatus.OK
        spoofed_error = abs(naive_view.readings[0].global_time_s - 1000.0)
        assert spoofed_error == pytest.approx(delay, abs=0.1)

        # SoftLoRa: estimates the FB from the replayed waveform and flags.
        pad = 1200
        noise_power = noise_power_for_snr(1.0, 15.0)
        replay_samples = outcome.replayed_trace.samples
        padded = np.concatenate(
            [np.zeros(pad, dtype=complex), replay_samples, np.zeros(1024, dtype=complex)]
        )
        noisy = padded + complex_awgn(len(padded), noise_power, streams.stream("noise2"))
        capture = IQTrace(
            noisy,
            config.sample_rate_hz,
            start_time_s=outcome.replayed_trace.start_time_s - pad / config.sample_rate_hz,
        )
        softlora_view = gateway.process_capture(capture, noise_power=noise_power)
        assert softlora_view.status is SoftLoRaStatus.REPLAY_DETECTED
        assert softlora_view.readings == []

    def test_detection_across_delays(self):
        # Detection is delay-independent: any τ produces the same FB shift.
        config, device, gateway, streams = build_system()
        for i in range(3):
            device.take_reading(1.0, 10.0 + 100.0 * i)
            tx = device.transmit(12.0 + 100.0 * i)
            gateway.process_frame(tx.mac_bytes, tx.emission_time_s, device.fb_hz)
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        for delay in (0.5, 10.0, 3600.0):
            device.take_reading(1.0, 2000.0 + delay)
            tx = device.transmit(2001.0 + delay)
            outcome = attack.execute(tx, delay_s=delay)
            reception = gateway.process_frame(
                outcome.replayed.mac_bytes,
                outcome.replayed.arrival_time_s,
                outcome.replayed.fb_hz,
            )
            assert reception.status is SoftLoRaStatus.REPLAY_DETECTED


class TestTemperatureDriftStory:
    """Sec. 7.2: benign FB drift is tracked, attacks still detected."""

    def test_detector_follows_thermal_drift_and_catches_replay(self):
        config, device, gateway, streams = build_system()
        # Frames while the device warms from 25 to 33 degrees in half-
        # degree steps: the AT-cut parabola moves the FB a few hundred Hz
        # per frame at most, inside the guard band (the paper's premise
        # that run-time temperature drift is slow relative to traffic).
        for step in range(16):
            device.temperature_c = 25.0 + 0.5 * step
            device.take_reading(1.0, 100.0 * (step + 1))
            tx = device.transmit(100.0 * (step + 1) + 2.0)
            reception = gateway.process_frame(
                tx.mac_bytes, tx.emission_time_s, device.fb_hz
            )
            assert reception.status is SoftLoRaStatus.ACCEPTED
        # Total drift so far is large, yet a replay at the *current*
        # temperature still stands out by the chain offset.
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        device.take_reading(1.0, 5000.0)
        tx = device.transmit(5001.0)
        outcome = attack.execute(tx, delay_s=60.0)
        reception = gateway.process_frame(
            outcome.replayed.mac_bytes,
            outcome.replayed.arrival_time_s,
            outcome.replayed.fb_hz,
        )
        assert reception.status is SoftLoRaStatus.REPLAY_DETECTED


class TestMultiDeviceStory:
    def test_shared_fb_values_do_not_confuse_detection(self):
        # Two devices with nearly identical FBs (like nodes 3/8/14 in
        # Fig. 13): per-node change detection still works.
        streams = RngStreams(33)
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
        commodity = CommodityGateway()
        gateway = SoftLoRaGateway(
            config=config,
            commodity=commodity,
            replay_detector=ReplayDetector(database=FbDatabase()),
        )
        devices = []
        for idx in range(2):
            dev_addr = 0x26020000 + idx
            device = EndDevice(
                name=f"twin-{idx}",
                dev_addr=dev_addr,
                keys=SessionKeys.derive_for_test(dev_addr),
                radio_oscillator=Oscillator(bias_ppm=-23.0 + 0.001 * idx),
                clock=DriftingClock(drift_ppm=30.0),
                rng=streams.stream(f"d{idx}"),
            )
            commodity.register_device(dev_addr, device.keys)
            devices.append(device)
        for device in devices:
            for i in range(3):
                device.take_reading(1.0, 10.0 + 100.0 * i)
                tx = device.transmit(11.0 + 100.0 * i)
                assert gateway.process_frame(
                    tx.mac_bytes, tx.emission_time_s, device.fb_hz
                ).status is SoftLoRaStatus.ACCEPTED
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        devices[0].take_reading(1.0, 900.0)
        tx = devices[0].transmit(901.0)
        outcome = attack.execute(tx, delay_s=30.0)
        assert gateway.process_frame(
            outcome.replayed.mac_bytes,
            outcome.replayed.arrival_time_s,
            outcome.replayed.fb_hz,
        ).status is SoftLoRaStatus.REPLAY_DETECTED
