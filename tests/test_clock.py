"""Tests for the clock substrate (repro.clock)."""

import math

import numpy as np
import pytest

from repro.clock.clocks import DriftingClock, GpsClock, PerfectClock
from repro.clock.oscillator import Oscillator
from repro.clock.sync import (
    SyncBasedTimestamping,
    duty_cycle_frame_budget,
    elapsed_time_bits_needed,
    elapsed_time_capacity_s,
    max_buffer_time_s,
    required_sync_interval_s,
    sync_sessions_per_hour,
    timestamp_payload_overhead,
)
from repro.errors import ConfigurationError


class TestOscillator:
    def test_static_bias_at_turnover(self):
        osc = Oscillator(bias_ppm=25.0)
        assert osc.bias_at(25.0) == pytest.approx(25.0)

    def test_temperature_curve_is_parabolic(self):
        osc = Oscillator(bias_ppm=0.0, temp_coeff_ppm_per_c2=-0.034)
        assert osc.bias_at(35.0) == pytest.approx(-3.4)
        assert osc.bias_at(15.0) == pytest.approx(-3.4)

    def test_aging(self):
        osc = Oscillator(bias_ppm=1.0, aging_ppm_per_year=2.0)
        assert osc.bias_at(25.0, age_years=3.0) == pytest.approx(7.0)

    def test_frequency_offset_at_carrier(self):
        osc = Oscillator(bias_ppm=-26.2)
        fb = osc.frequency_offset_hz(carrier_hz=869.75e6)
        assert fb == pytest.approx(-26.2e-6 * 869.75e6)

    def test_lora_end_device_fb_in_paper_range(self, rng):
        # Fig. 13: net FBs between -25 and -17 kHz at 869.75 MHz.
        for _ in range(50):
            osc = Oscillator.lora_end_device(rng)
            fb = osc.frequency_offset_hz()
            assert -25e3 <= fb <= -17e3

    def test_usrp_tcxo_in_paper_range(self, rng):
        for _ in range(50):
            fb = Oscillator.usrp_tcxo(rng).frequency_offset_hz()
            assert -743.0 <= fb <= -543.0

    def test_typical_mcu_crystal_range(self, rng):
        for _ in range(50):
            bias = abs(Oscillator.typical_mcu_crystal(rng).bias_ppm)
            assert 30.0 <= bias <= 50.0

    def test_invalid_fb_range(self, rng):
        with pytest.raises(ConfigurationError):
            Oscillator.lora_end_device(rng, fb_range_hz=(5.0, -5.0))


class TestClocks:
    def test_perfect_clock_identity(self):
        clock = PerfectClock()
        assert clock.read(123.45) == 123.45
        assert clock.global_from_local(5.0) == 5.0
        assert clock.elapsed(1.0, 3.0) == 2.0

    def test_gps_clock_jitter_bounded(self):
        clock = GpsClock(jitter_s=50e-9, rng=np.random.default_rng(1))
        errors = [abs(clock.read(10.0) - 10.0) for _ in range(200)]
        assert max(errors) < 1e-6
        assert np.mean(errors) > 0

    def test_gps_clock_zero_jitter_needs_no_rng(self):
        assert GpsClock(jitter_s=0.0).read(7.0) == 7.0

    def test_gps_clock_jitter_requires_rng(self):
        with pytest.raises(ConfigurationError):
            GpsClock(jitter_s=1e-9)

    def test_drifting_clock_rate(self):
        clock = DriftingClock(drift_ppm=40.0)
        # After 250 s the clock has drifted exactly 10 ms (paper Sec. 3.2).
        assert clock.error_at(250.0) == pytest.approx(10e-3)

    def test_drifting_clock_negative_drift(self):
        clock = DriftingClock(drift_ppm=-40.0)
        assert clock.error_at(250.0) == pytest.approx(-10e-3)

    def test_global_from_local_inverts_read(self):
        clock = DriftingClock(drift_ppm=33.0, anchor_global_s=5.0, anchor_local_s=6.0)
        for t in (0.0, 17.3, 9999.9):
            assert clock.global_from_local(clock.read(t)) == pytest.approx(t)

    def test_elapsed_scales_with_rate(self):
        clock = DriftingClock(drift_ppm=100.0)
        assert clock.elapsed(0.0, 1000.0) == pytest.approx(1000.0 * (1 + 1e-4))

    def test_synchronize_resets_error(self):
        clock = DriftingClock(drift_ppm=40.0)
        assert abs(clock.error_at(1000.0)) > 1e-3
        clock.synchronize(1000.0)
        assert clock.error_at(1000.0) == pytest.approx(0.0, abs=1e-12)
        assert clock.sync_count == 1

    def test_synchronize_with_residual(self):
        clock = DriftingClock(drift_ppm=0.0)
        clock.synchronize(10.0, residual_error_s=2e-3)
        assert clock.error_at(10.0) == pytest.approx(2e-3)


class TestSyncArithmetic:
    def test_paper_sync_sessions_per_hour(self):
        # 40 ppm, sub-10 ms  ->  14.4 sessions/hour (paper says 14).
        assert sync_sessions_per_hour(10e-3, 40.0) == pytest.approx(14.4)

    def test_sync_interval(self):
        assert required_sync_interval_s(10e-3, 40.0) == pytest.approx(250.0)

    def test_zero_drift_needs_no_syncs(self):
        assert math.isinf(required_sync_interval_s(1e-3, 0.0))
        assert sync_sessions_per_hour(1e-3, 0.0) == 0.0

    def test_paper_duty_cycle_budget(self):
        # SF12, 30 B, no LDRO: 1.483 s airtime -> 24 frames/hour at 1%.
        assert duty_cycle_frame_budget(1.4828) == 24

    def test_paper_timestamp_overhead(self):
        assert timestamp_payload_overhead(8, 30) == pytest.approx(8 / 30)

    def test_paper_buffer_time(self):
        # 10 ms at 40 ppm -> 250 s ~ 4.1 minutes.
        assert max_buffer_time_s(10e-3, 40.0) == pytest.approx(250.0)

    def test_paper_elapsed_bits(self):
        assert elapsed_time_bits_needed(250.0, 1e-3) == 18

    def test_elapsed_capacity(self):
        assert elapsed_time_capacity_s(18, 1e-3) == pytest.approx(262.143)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            required_sync_interval_s(-1.0, 40.0)
        with pytest.raises(ConfigurationError):
            duty_cycle_frame_budget(0.0)
        with pytest.raises(ConfigurationError):
            timestamp_payload_overhead(31, 30)
        with pytest.raises(ConfigurationError):
            elapsed_time_bits_needed(0.0)


class TestSyncBasedTimestamping:
    def test_error_bounded_by_drift_times_interval(self, rng):
        clock = DriftingClock(drift_ppm=40.0)
        baseline = SyncBasedTimestamping(
            clock=clock, sync_interval_s=250.0, sync_accuracy_s=0.0, rng=rng
        )
        for t in np.arange(0.0, 3600.0, 10.0):
            baseline.timestamp(float(t))
        assert baseline.max_abs_error_s() <= 10e-3 + 1e-9

    def test_sparser_syncs_mean_larger_errors(self, rng):
        def worst(interval):
            clock = DriftingClock(drift_ppm=40.0)
            baseline = SyncBasedTimestamping(
                clock=clock, sync_interval_s=interval, sync_accuracy_s=0.0, rng=rng
            )
            for t in np.arange(0.0, 3600.0, 10.0):
                baseline.timestamp(float(t))
            return baseline.max_abs_error_s()

        assert worst(1000.0) > worst(100.0)

    def test_airtime_accounting(self, rng):
        clock = DriftingClock(drift_ppm=40.0)
        baseline = SyncBasedTimestamping(
            clock=clock, sync_interval_s=600.0, sync_accuracy_s=0.0, rng=rng
        )
        for t in np.arange(0.0, 3600.0, 60.0):
            baseline.timestamp(float(t))
        assert clock.sync_count >= 6
        assert baseline.sync_airtime_spent_s == pytest.approx(
            clock.sync_count * baseline.sync_session_airtime_s
        )

    def test_no_records_raises(self, rng):
        baseline = SyncBasedTimestamping(
            clock=DriftingClock(drift_ppm=1.0),
            sync_interval_s=10.0,
            sync_accuracy_s=0.0,
            rng=rng,
        )
        with pytest.raises(ConfigurationError):
            baseline.max_abs_error_s()
