"""Tests for the experiment drivers (fast, reduced-size runs).

Each driver must (a) run, (b) produce the paper's qualitative shape, and
(c) format a paper-vs-measured table.  The benchmarks run the full-size
versions; these tests guard the drivers' logic at small scale.
"""

import numpy as np
import pytest

from repro.attack.jammer import JammingOutcome
from repro.core.softlora import SoftLoRaStatus
from repro.experiments.attack_e2e import min_viable_spreading_factor, run_attack_e2e
from repro.experiments.campus import run_campus
from repro.experiments.common import synthesize_capture
from repro.experiments.detection import run_detection
from repro.experiments.fig09_detectors import run_fig9
from repro.experiments.fig10_onset_snr import run_fig10
from repro.experiments.fig12_fb_pipeline import run_fig12
from repro.experiments.fig13_fleet_fb import run_fig13
from repro.experiments.fig14_ls_snr import run_fig14
from repro.experiments.fig15_building import run_fig15
from repro.experiments.fig16_txpower import run_fig16
from repro.experiments.overhead import run_overhead
from repro.experiments.table1_jamming import run_table1
from repro.experiments.table2_onset import run_table2
from repro.experiments.waveforms import run_fig6, run_fig7, run_fig8, run_fig11


class TestSynthesizeCapture:
    def test_onset_ground_truth(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, snr_db=20.0)
        pad = int(capture.true_onset_index_float)
        assert capture.true_onset_time_s == pytest.approx(
            capture.true_onset_index_float / fast_config.sample_rate_hz
        )
        # Pre-onset region is noise-only: much lower power than signal.
        pre = np.mean(np.abs(capture.trace.samples[: pad - 2]) ** 2)
        post = np.mean(np.abs(capture.trace.samples[pad + 2 :]) ** 2)
        assert post > 10 * pre

    def test_signal_extends_to_window_end(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, snr_db=30.0, n_chirps=4)
        tail = capture.trace.samples[-fast_config.samples_per_chirp // 4 :]
        assert np.mean(np.abs(tail) ** 2) > 0.5

    def test_integer_onset_when_disabled(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, fractional_onset=False)
        assert capture.true_onset_index_float == int(capture.true_onset_index_float)


class TestWaveformFigures:
    def test_fig6(self):
        result = run_fig6()
        assert result.chirp_time_s == pytest.approx(1.024e-3)
        assert 19 <= result.n_psd_frames <= 22
        assert 40e-6 < result.time_resolution_s < 60e-6
        assert "Fig. 6" in result.format()

    def test_fig7_phase_flip_negates_waveform(self):
        result = run_fig7()
        assert result.max_abs_difference == pytest.approx(2.0, rel=0.01)
        np.testing.assert_allclose(result.i_theta_zero, -result.i_theta_pi, atol=1e-9)

    def test_fig8_dip_shift_direction_and_magnitude(self):
        result = run_fig8(fb_hz=-22.8e3)
        assert result.measured_shift_s > 0  # negative bias -> later dip
        assert result.measured_shift_s == pytest.approx(
            result.predicted_shift_s, abs=0.1e-3
        )

    def test_fig11_opposite_shifts(self):
        result = run_fig11()
        assert result.negative.measured_shift_s > 0
        assert result.positive.measured_shift_s < 0


class TestTable1:
    def test_rows_cover_paper_table(self):
        result = run_table1()
        assert len(result.rows) == 6
        assert {(r.spreading_factor, r.payload_bytes) for r in result.rows} == {
            (7, 10), (7, 20), (7, 30), (7, 40), (8, 30), (9, 30),
        }

    def test_model_within_tolerances(self):
        result = run_table1()
        assert result.max_relative_error("w1") < 0.35
        assert result.max_relative_error("w2") < 0.25
        assert result.max_relative_error("w3") < 0.15

    def test_format(self):
        assert "Table 1" in run_table1().format()


class TestTable2:
    def test_reduced_run_reproduces_split(self, rng):
        result = run_table2(n_runs=3, sample_rate_hz=1e6)
        assert result.max_aic_error_us() < 5.0
        assert result.max_env_error_us() < 40.0
        assert result.max_aic_error_us() < result.max_env_error_us()

    def test_format_lists_all_runs(self):
        result = run_table2(n_runs=2, sample_rate_hz=0.5e6)
        assert "run 2" in result.format()


class TestFig9:
    def test_detector_ordering(self):
        result = run_fig9(sample_rate_hz=1e6)
        assert result.errors_us["aic"] < 5.0
        assert result.errors_us["envelope"] < 40.0
        assert result.errors_us["spectrogram"] > result.errors_us["aic"]
        assert len(result.aic_curve) > 0
        assert "Fig. 9" in result.format()


class TestFig10:
    def test_shape(self):
        result = run_fig10(
            snrs_db=[-10.0, 0.0, 10.0, 30.0], n_trials=3, sample_rate_hz=1e6
        )
        # Error grows as SNR falls; building-range SNRs stay under 20 µs.
        assert result.error_at(30.0) < result.error_at(-10.0)
        assert result.error_at(0.0) < 20.0
        assert result.error_at(10.0) < 20.0

    def test_raw_ablation_worse_at_low_snr(self):
        filtered = run_fig10(snrs_db=[-10.0], n_trials=4, sample_rate_hz=1e6)
        raw = run_fig10(
            snrs_db=[-10.0], n_trials=4, sample_rate_hz=1e6, bandlimit_cutoff_hz=None
        )
        assert filtered.error_at(-10.0) <= raw.error_at(-10.0)


class TestFig12:
    def test_estimates_paper_value(self):
        result = run_fig12(sample_rate_hz=1e6)
        assert result.estimated_fb_hz == pytest.approx(-22.8e3, abs=150.0)
        assert abs(result.estimated_ppm) == pytest.approx(26.2, abs=0.5)
        assert result.residual_linearity_rmse < 1.0

    def test_intermediates_have_consistent_lengths(self):
        result = run_fig12(sample_rate_hz=0.5e6)
        n = len(result.i_trace)
        assert len(result.q_trace) == n
        assert len(result.rectified_phase) == n
        assert len(result.linear_residual) == n


class TestFig13:
    def test_replay_offsets_in_paper_band(self):
        result = run_fig13(
            n_nodes=3, frames_per_node=3, sample_rate_hz=0.5e6
        )
        for added in result.mean_additional_fb_hz:
            assert -743.0 - 60.0 <= added <= -543.0 + 60.0

    def test_original_fbs_in_paper_band(self):
        result = run_fig13(n_nodes=3, frames_per_node=3, sample_rate_hz=0.5e6)
        for summary in result.original:
            assert -25.5e3 <= summary.mean_hz <= -16.5e3

    def test_per_node_stability(self):
        result = run_fig13(n_nodes=2, frames_per_node=5, sample_rate_hz=0.5e6)
        for summary in result.original:
            assert summary.max_hz - summary.min_hz < 500.0


class TestFig14:
    def test_resolution_bound(self):
        result = run_fig14(
            snrs_db=[-25.0, -10.0, 0.0], n_trials=2, sample_rate_hz=0.5e6
        )
        assert result.max_error_hz() < 120.0  # the paper's resolution

    def test_both_noise_types_reported(self):
        result = run_fig14(snrs_db=[-10.0], n_trials=2, sample_rate_hz=0.5e6)
        assert len(result.gaussian_errors_hz) == 1
        assert len(result.real_errors_hz) == 1


class TestFig15:
    def test_snr_and_timing_claims(self):
        result = run_fig15(max_cells=8, sample_rate_hz=1e6, spreading_factor=9)
        lo, hi = result.snr_range_db()
        assert lo >= -1.5 and hi <= 13.5
        assert result.max_timing_error_us() < 10.0

    def test_measured_snr_close_to_link_snr(self):
        result = run_fig15(max_cells=5, sample_rate_hz=1e6, spreading_factor=9)
        for cell in result.cells:
            assert cell.measured_snr_db == pytest.approx(cell.link_snr_db, abs=1.5)


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig16(frames_per_point=3, sample_rate_hz=0.5e6)

    def test_power_insensitivity(self, result):
        assert result.power_sensitivity_hz("gateway_direct") < 150.0
        assert result.power_sensitivity_hz("eavesdropper") < 150.0

    def test_replay_separation_near_2khz(self, result):
        assert -2600.0 < result.replay_separation_hz() < -1400.0

    def test_observers_differ(self, result):
        gap = result.eavesdropper[0].median - result.gateway_direct[0].median
        assert abs(gap) > 200.0


class TestCampus:
    def test_microsecond_accuracy_at_1km(self):
        result = run_campus(sample_rate_hz=1e6, spreading_factor=9)
        assert result.propagation_delay_us == pytest.approx(3.57, abs=0.05)
        assert result.max_error_us() < 10.0
        assert "1.07" in result.format()


class TestOverhead:
    def test_every_paper_number(self):
        result = run_overhead()
        assert result.sync_sessions_per_hour == pytest.approx(14.4)
        assert result.frames_per_hour == 24
        assert result.timestamp_overhead == pytest.approx(0.2667, abs=1e-3)
        assert result.buffer_time_s == pytest.approx(250.0)
        assert result.elapsed_bits == 18
        assert result.simulated_max_sync_error_s <= 10e-3 + 1e-9
        assert 13 <= result.simulated_sync_count <= 16


class TestAttackE2E:
    def test_min_sf_selection(self):
        assert min_viable_spreading_factor(-9.0) == 8
        assert min_viable_spreading_factor(0.0) == 7
        assert min_viable_spreading_factor(-19.0) == 12
        with pytest.raises(ValueError):
            min_viable_spreading_factor(-30.0)

    def test_full_scenario(self):
        result = run_attack_e2e()
        assert result.min_viable_sf == 8
        assert result.jam_outcome is JammingOutcome.SILENT_DROP
        assert result.commodity_accepted_replay
        assert result.timestamp_shift_s == pytest.approx(
            result.injected_delay_s, abs=0.05
        )
        assert result.replay_within_linear_range
        assert not result.monitor_can_hear_replay
        assert result.softlora_status is SoftLoRaStatus.REPLAY_DETECTED


class TestDetection:
    def test_perfect_detection_no_false_alarms(self):
        result = run_detection(n_devices=6, rounds=8, attacked=2)
        assert result.stats.detection_rate == 1.0
        assert result.stats.false_alarm_rate == 0.0
        assert result.stats.true_positives > 0
        assert result.stats.true_negatives > 0
