"""Tests for the simulation substrate (repro.sim)."""

import numpy as np
import pytest

from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.errors import ConfigurationError, SimulationError
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.sim.events import Simulator
from repro.sim.network import EventKind, FbMeasurementModel, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.scenarios import (
    build_building_scenario,
    build_campus_scenario,
    build_fleet,
)


class TestRngStreams:
    def test_named_streams_independent(self):
        streams = RngStreams(1)
        a = streams.stream("a").standard_normal(4)
        b = streams.stream("b").standard_normal(4)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        x = RngStreams(7).stream("x").standard_normal(4)
        y = RngStreams(7).stream("x").standard_normal(4)
        np.testing.assert_array_equal(x, y)

    def test_stream_cached_and_stateful(self):
        streams = RngStreams(1)
        first = streams.stream("s").standard_normal(2)
        second = streams.stream("s").standard_normal(2)
        assert not np.allclose(first, second)

    def test_fresh_restarts(self):
        streams = RngStreams(1)
        a = streams.fresh("f").standard_normal(2)
        b = streams.fresh("f").standard_normal(2)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").standard_normal(4)
        b = RngStreams(2).stream("x").standard_normal(4)
        assert not np.allclose(a, b)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(1.0, log.append, 2)
        sim.run()
        assert log == [1, 2]

    def test_clock_advances(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now_s == 5.0

    def test_past_scheduling_rejected(self):
        sim = Simulator(start_time_s=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_schedule_in(self):
        sim = Simulator(start_time_s=3.0)
        fired = []
        sim.schedule_in(2.0, fired.append, True)
        sim.run()
        assert fired and sim.now_s == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_run_until_partial(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(10.0, log.append, 2)
        sim.run_until(5.0)
        assert log == [1]
        assert sim.now_s == 5.0
        assert sim.pending == 1

    def test_cascading_events(self):
        sim = Simulator()
        log = []

        def fire(n):
            log.append(n)
            if n < 3:
                sim.schedule_in(1.0, fire, n + 1)

        sim.schedule(0.0, fire, 0)
        sim.run()
        assert log == [0, 1, 2, 3]

    def test_event_budget(self):
        sim = Simulator()

        def forever():
            sim.schedule_in(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_exact_budget_drains_cleanly(self):
        # Regression: the budget-th event emptying the queue is success,
        # not a budget violation.
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i), log.append, i)
        assert sim.run(max_events=5) == 5
        assert log == [0, 1, 2, 3, 4]

    def test_budget_exceeded_by_one_raises(self):
        sim = Simulator()
        for i in range(6):
            sim.schedule(float(i), lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)


class TestFbMeasurementModel:
    def test_sigma_shrinks_with_snr(self):
        model = FbMeasurementModel()
        assert model.sigma_hz(-25.0) > model.sigma_hz(0.0) > model.sigma_hz(30.0)

    def test_sigma_clamped(self):
        model = FbMeasurementModel(ceiling_hz=120.0, floor_hz=2.0)
        assert model.sigma_hz(-60.0) == 120.0
        assert model.sigma_hz(80.0) == 2.0

    def test_measurement_unbiased(self, rng):
        model = FbMeasurementModel()
        samples = [model.measure(-20000.0, 10.0, rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(-20000.0, abs=20.0)


def build_world(seed=0, n_devices=4):
    streams = RngStreams(seed)
    devices = build_fleet(n_devices=n_devices, streams=streams)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
    commodity = CommodityGateway()
    gateway = SoftLoRaGateway(
        config=config,
        commodity=commodity,
        replay_detector=ReplayDetector(database=FbDatabase()),
    )
    world = LoRaWanWorld(
        gateway=gateway,
        gateway_position=Position(0.0, 0.0, 1.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    for device in devices:
        world.add_device(device)
    return world, devices, streams


class TestLoRaWanWorld:
    def test_clean_uplink_delivered(self):
        world, devices, _ = build_world()
        devices[0].take_reading(1.0, 0.0)
        event = world.uplink(devices[0].name, 1.0)
        assert event.kind is EventKind.DELIVERED
        assert event.reception.status is SoftLoRaStatus.ACCEPTED

    def test_duplicate_device_rejected(self):
        world, devices, _ = build_world()
        with pytest.raises(ConfigurationError):
            world.add_device(devices[0])

    def test_low_snr_loses_frame(self):
        world, devices, _ = build_world()
        devices[0].position = Position(1000e3, 0.0, 1.0)  # 1000 km away
        devices[0].take_reading(1.0, 0.0)
        event = world.uplink(devices[0].name, 1.0)
        assert event.kind is EventKind.LOST_LOW_SNR
        assert event.reception is None

    def test_attack_suppresses_then_replays(self):
        world, devices, streams = build_world()
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        # Warm up the FB profile with clean traffic first.
        for round_index in range(3):
            devices[0].take_reading(1.0, 100.0 * round_index)
            world.uplink(devices[0].name, 100.0 * round_index + 1.0)
        world.arm_attack(attack, [devices[0].name], delay_s=60.0)
        devices[0].take_reading(9.0, 1000.0)
        event = world.uplink(devices[0].name, 1001.0)
        assert event.kind is EventKind.REPLAY_DELIVERED
        assert event.reception.status is SoftLoRaStatus.REPLAY_DETECTED
        kinds = [e.kind for e in world.events]
        assert EventKind.SUPPRESSED_BY_JAMMING in kinds

    def test_replay_arrival_shifted_by_delay(self):
        world, devices, streams = build_world()
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        world.arm_attack(attack, [devices[0].name], delay_s=45.0)
        devices[0].take_reading(1.0, 10.0)
        event = world.uplink(devices[0].name, 11.0)
        suppressed = world.events_of(EventKind.SUPPRESSED_BY_JAMMING)[0]
        assert event.time_s - suppressed.time_s == pytest.approx(45.0, abs=1e-6)

    def test_disarm_attack(self):
        world, devices, streams = build_world()
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        world.arm_attack(attack, [devices[0].name], delay_s=45.0)
        world.disarm_attack()
        devices[0].take_reading(1.0, 0.0)
        event = world.uplink(devices[0].name, 1.0)
        assert event.kind is EventKind.DELIVERED

    def test_unknown_target_rejected(self):
        world, _, streams = build_world()
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        with pytest.raises(ConfigurationError):
            world.arm_attack(attack, ["ghost"], delay_s=1.0)

    def test_scheduled_uplinks_run_in_order(self):
        world, devices, _ = build_world()
        for i, device in enumerate(devices):
            device.take_reading(float(i), 10.0 * i)
            world.schedule_uplink(device.name, 10.0 * i + 1.0)
        world.run()
        delivered = world.events_of(EventKind.DELIVERED)
        assert len(delivered) == len(devices)
        times = [e.time_s for e in delivered]
        assert times == sorted(times)


class TestScenarios:
    def test_building_snr_range_matches_paper(self):
        scenario = build_building_scenario()
        survey = scenario.survey()
        assert min(survey.values()) == pytest.approx(-1.0, abs=0.01)
        assert max(survey.values()) == pytest.approx(13.0, abs=0.01)

    def test_building_snr_decays_along_length(self):
        scenario = build_building_scenario()
        floor3 = [scenario.snr_db(c, 3) for c in ("A2", "B2", "C2")]
        assert floor3 == sorted(floor3, reverse=True)

    def test_building_tx_cell_excluded(self):
        scenario = build_building_scenario()
        assert ("A1", 3) not in scenario.survey()

    def test_campus_propagation_delay(self):
        scenario = build_campus_scenario()
        assert scenario.propagation_delay_s() == pytest.approx(3.57e-6, abs=0.02e-6)

    def test_campus_snr_calibrated(self):
        scenario = build_campus_scenario(target_snr_db=6.5)
        assert scenario.snr_db() == pytest.approx(6.5)

    def test_fleet_properties(self):
        fleet = build_fleet(n_devices=16)
        assert len(fleet) == 16
        assert len({d.dev_addr for d in fleet}) == 16
        assert len({d.name for d in fleet}) == 16
        for device in fleet:
            assert -25e3 <= device.fb_hz <= -17e3

    def test_fleet_deterministic(self):
        a = build_fleet(n_devices=4, streams=RngStreams(5))
        b = build_fleet(n_devices=4, streams=RngStreams(5))
        assert [d.fb_hz for d in a] == [d.fb_hz for d in b]

    def test_fleet_size_validated(self):
        with pytest.raises(ConfigurationError):
            build_fleet(n_devices=0)
