"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.freq_bias import LeastSquaresFbEstimator, LinearRegressionFbEstimator
from repro.core.timestamping import ElapsedTimeCodec
from repro.lorawan.crypto.aes import aes128_decrypt_block, aes128_encrypt_block
from repro.lorawan.crypto.cmac import aes_cmac
from repro.lorawan.mac import build_uplink, verify_and_decrypt
from repro.lorawan.security import SessionKeys
from repro.phy.airtime import airtime_s, n_payload_symbols
from repro.phy.chirp import ChirpConfig, upchirp
from repro.phy.encoding import (
    PayloadCodec,
    deinterleave_block,
    gray_decode,
    gray_encode,
    hamming_decode,
    hamming_encode,
    interleave_block,
    whiten,
)
from repro.phy.frame import PhyHeader, crc16_ccitt

# A fixed small config keeps waveform-based properties fast.
_CONFIG = ChirpConfig(spreading_factor=7, sample_rate_hz=0.25e6)

_SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestCodingProperties:
    @given(value=st.integers(min_value=0, max_value=1 << 20))
    def test_gray_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(data=st.binary(max_size=128))
    def test_whitening_involution(self, data):
        assert whiten(whiten(data)) == data

    @given(nibble=st.integers(0, 15), cr=st.integers(1, 4))
    def test_hamming_roundtrip(self, nibble, cr):
        decoded, flagged = hamming_decode(hamming_encode(nibble, cr), cr)
        assert decoded == nibble and not flagged

    @given(
        nibble=st.integers(0, 15),
        cr=st.sampled_from([3, 4]),
        bit=st.integers(0, 6),
    )
    def test_hamming_corrects_any_single_bit(self, nibble, cr, bit):
        codeword = hamming_encode(nibble, cr) ^ (1 << bit)
        decoded, changed = hamming_decode(codeword, cr)
        assert decoded == nibble and changed

    @given(
        sf=st.integers(7, 12),
        cr=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    def test_interleaver_roundtrip(self, sf, cr, seed):
        rng = np.random.default_rng(seed)
        codewords = [int(v) for v in rng.integers(0, 1 << (4 + cr), sf)]
        symbols = interleave_block(codewords, sf, cr)
        assert deinterleave_block(symbols, sf, cr) == codewords

    @given(data=st.binary(max_size=48), cr=st.integers(1, 4))
    @_SLOW
    def test_payload_codec_roundtrip(self, data, cr):
        codec = PayloadCodec(7, cr)
        assert codec.decode(codec.encode(data), len(data)).data == data

    @given(data=st.binary(max_size=64))
    def test_crc16_detects_single_byte_change(self, data):
        if not data:
            return
        corrupted = bytearray(data)
        corrupted[0] ^= 0x5A
        assert crc16_ccitt(data) != crc16_ccitt(bytes(corrupted))


class TestAirtimeProperties:
    @given(
        payload=st.integers(0, 200),
        sf=st.integers(7, 12),
        cr=st.integers(1, 4),
    )
    def test_airtime_positive_and_monotone_in_payload(self, payload, sf, cr):
        t1 = airtime_s(payload, sf, coding_rate=cr)
        t2 = airtime_s(payload + 1, sf, coding_rate=cr)
        assert 0 < t1 <= t2

    @given(payload=st.integers(0, 200), sf=st.integers(7, 11))
    def test_airtime_monotone_in_sf(self, payload, sf):
        assert airtime_s(payload, sf) < airtime_s(payload, sf + 1)

    @given(payload=st.integers(0, 255), sf=st.integers(7, 12))
    def test_symbol_count_at_least_minimum(self, payload, sf):
        assert n_payload_symbols(payload, sf) >= 8


class TestCryptoProperties:
    @given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
    @_SLOW
    def test_aes_decrypt_inverts_encrypt(self, key, block):
        assert aes128_decrypt_block(key, aes128_encrypt_block(key, block)) == block

    @given(
        key=st.binary(min_size=16, max_size=16),
        message=st.binary(max_size=64),
    )
    @_SLOW
    def test_cmac_deterministic_and_16_bytes(self, key, message):
        a = aes_cmac(key, message)
        assert a == aes_cmac(key, message)
        assert len(a) == 16

    @given(
        dev_addr=st.integers(0, 0xFFFFFFFF),
        fcnt=st.integers(0, 0xFFFF),
        payload=st.binary(max_size=32),
        fport=st.integers(0, 255),
    )
    @_SLOW
    def test_mac_frame_roundtrip(self, dev_addr, fcnt, payload, fport):
        keys = SessionKeys.derive_for_test(dev_addr)
        raw = build_uplink(keys, dev_addr, fcnt, payload, fport=fport)
        frame = verify_and_decrypt(raw, keys)
        assert frame.dev_addr == dev_addr
        assert frame.fcnt == fcnt
        assert frame.fport == fport
        assert frame.frm_payload == payload


class TestElapsedTimeProperties:
    @given(ticks=st.lists(st.integers(0, (1 << 18) - 1), max_size=16))
    def test_pack_unpack_roundtrip(self, ticks):
        codec = ElapsedTimeCodec()
        assert codec.unpack(codec.pack(ticks), len(ticks)) == ticks

    @given(elapsed=st.floats(min_value=0.0, max_value=262.0, allow_nan=False))
    def test_quantization_error_bounded(self, elapsed):
        codec = ElapsedTimeCodec()
        decoded = codec.decode(codec.encode(elapsed))
        assert abs(decoded - elapsed) <= codec.resolution_s / 2 + 1e-12

    @given(
        bits=st.integers(4, 32),
        resolution_ms=st.sampled_from([0.1, 1.0, 10.0]),
    )
    def test_capacity_consistent(self, bits, resolution_ms):
        codec = ElapsedTimeCodec(bits=bits, resolution_s=resolution_ms * 1e-3)
        assert codec.encode(codec.capacity_s) == codec.max_ticks
        assert codec.decode(codec.max_ticks) == pytest.approx(codec.capacity_s)


class TestPhyHeaderProperties:
    @given(
        payload_len=st.integers(0, 255),
        cr=st.integers(1, 4),
        crc=st.booleans(),
    )
    def test_header_roundtrip(self, payload_len, cr, crc):
        header = PhyHeader(payload_len=payload_len, coding_rate=cr, has_crc=crc)
        assert PhyHeader.from_bytes(header.to_bytes()) == header


class TestEstimatorProperties:
    @given(
        fb_khz=st.floats(min_value=-30.0, max_value=30.0, allow_nan=False),
        phase=st.floats(min_value=0.0, max_value=6.28, allow_nan=False),
    )
    @_SLOW
    def test_linear_regression_exact_on_clean_chirps(self, fb_khz, phase):
        chirp = upchirp(_CONFIG, fb_hz=fb_khz * 1e3, phase=phase)
        estimate = LinearRegressionFbEstimator(_CONFIG).estimate(chirp)
        assert estimate.fb_hz == pytest.approx(fb_khz * 1e3, abs=2.0)

    @given(
        fb_khz=st.floats(min_value=-35.0, max_value=35.0, allow_nan=False),
        phase=st.floats(min_value=0.0, max_value=6.28, allow_nan=False),
        amplitude=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    @_SLOW
    def test_least_squares_exact_on_clean_chirps(self, fb_khz, phase, amplitude):
        chirp = upchirp(_CONFIG, fb_hz=fb_khz * 1e3, phase=phase, amplitude=amplitude)
        estimate = LeastSquaresFbEstimator(_CONFIG).estimate(chirp)
        assert estimate.fb_hz == pytest.approx(fb_khz * 1e3, abs=2.0)

    @given(
        fb_khz=st.floats(min_value=-20.0, max_value=20.0, allow_nan=False),
        phase=st.floats(min_value=0.1, max_value=6.1, allow_nan=False),
    )
    @_SLOW
    def test_estimators_agree_on_clean_chirps(self, fb_khz, phase):
        chirp = upchirp(_CONFIG, fb_hz=fb_khz * 1e3, phase=phase)
        lr = LinearRegressionFbEstimator(_CONFIG).estimate(chirp)
        ls = LeastSquaresFbEstimator(_CONFIG).estimate(chirp)
        assert lr.fb_hz == pytest.approx(ls.fb_hz, abs=3.0)
