"""Closed-loop ADR: MAC commands, controller, downlink path, multi-SF fleets."""

import hashlib

import numpy as np
import pytest

from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway
from repro.errors import ConfigurationError, DecodeError, FrameSizeError, MicError
from repro.lorawan.downlink import RX1_DELAY_S, build_downlink
from repro.lorawan.gateway import CommodityGateway
from repro.lorawan.mac import (
    LinkADRAns,
    LinkADRReq,
    parse_mac_commands,
    parse_mac_frame,
)
from repro.lorawan.regional import EU868
from repro.phy.airtime import airtime_s
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import (
    InterSfCaptureMatrix,
    LinkBudget,
    Transmission,
    resolve_collisions,
)
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import AdrController, NetworkServer
from repro.sim.network import EventKind, FbMeasurementModel, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import build_fleet
from repro.sim.traffic import PeriodicTrafficModel


def build_world(seed=0, n_devices=4, exponent=2.0, ring_radius_m=5.0, spreading_factor=7):
    streams = RngStreams(seed)
    devices = build_fleet(
        n_devices=n_devices,
        streams=streams,
        ring_radius_m=ring_radius_m,
        spreading_factor=spreading_factor,
    )
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(
            config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
            commodity=CommodityGateway(),
            replay_detector=ReplayDetector(database=FbDatabase()),
        ),
        gateway_position=Position(0.0, 0.0, 1.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=exponent)),
        rng=streams.stream("world"),
    )
    for device in devices:
        world.add_device(device)
    return world, devices, streams


class TestLinkAdrCommands:
    def test_req_round_trip(self):
        req = LinkADRReq(data_rate_index=5, tx_power_index=2, ch_mask=0x00FF, nb_trans=3)
        wire = req.encode()
        assert len(wire) == 5 and wire[0] == 0x03
        (parsed,) = parse_mac_commands(wire, uplink=False)
        assert parsed == req

    def test_ans_round_trip(self):
        for accepted in (True, False):
            ans = LinkADRAns(data_rate_ok=accepted)
            (parsed,) = parse_mac_commands(ans.encode(), uplink=True)
            assert parsed == ans
            assert parsed.accepted is accepted

    def test_command_stream_parses_in_order(self):
        stream = LinkADRAns().encode() + LinkADRAns(power_ok=False).encode()
        first, second = parse_mac_commands(stream, uplink=True)
        assert first.accepted and not second.accepted

    def test_wire_nbtrans_zero_means_keep_current(self):
        # LoRaWAN 1.0.2: Redundancy NbTrans=0 is "keep the current
        # value"; it must parse (as the 1-transmission default), not
        # explode through the dataclass validator.
        (parsed,) = parse_mac_commands(bytes([0x03, 0x50, 0xFF, 0xFF, 0x00]), uplink=False)
        assert parsed.nb_trans == 1

    def test_truncated_and_unknown_cids_rejected(self):
        with pytest.raises(DecodeError):
            parse_mac_commands(b"\x03\x50\xff", uplink=False)  # truncated req
        with pytest.raises(DecodeError):
            parse_mac_commands(b"\x07\x00", uplink=True)  # unknown CID
        with pytest.raises(ConfigurationError):
            LinkADRReq(data_rate_index=16)


class TestAdrController:
    def test_wide_margin_commands_sf7_in_one_step(self):
        adr = AdrController(min_history=2)
        assert adr.observe(1, snr_db=30.0, spreading_factor=12, time_s=0.0) is None
        command = adr.observe(1, snr_db=30.0, spreading_factor=12, time_s=10.0)
        assert command is not None
        assert EU868.DATA_RATES[command.request.data_rate_index].spreading_factor == 7

    def test_negative_margin_steps_sf_up_once(self):
        adr = AdrController(min_history=1)
        command = adr.observe(1, snr_db=-9.0, spreading_factor=7, time_s=0.0)
        assert command is not None
        assert EU868.DATA_RATES[command.request.data_rate_index].spreading_factor == 8

    def test_single_command_in_flight(self):
        adr = AdrController(min_history=1)
        assert adr.observe(1, snr_db=30.0, spreading_factor=12, time_s=0.0) is not None
        # Still transmitting at SF12: the command is in flight, no re-issue.
        assert adr.observe(1, snr_db=30.0, spreading_factor=12, time_s=10.0) is None
        # A drop re-arms the loop for a retry.
        adr.command_dropped(1)
        assert adr.observe(1, snr_db=30.0, spreading_factor=12, time_s=20.0) is not None

    def test_observed_sf_change_clears_inflight_and_converges(self):
        adr = AdrController(min_history=1)
        adr.observe(1, snr_db=5.0, spreading_factor=8, time_s=0.0)
        assert not adr.converged(1)
        adr.observe(1, snr_db=5.0, spreading_factor=7, time_s=10.0)
        assert adr.last_sf(1) == 7
        assert adr.converged(1)
        assert adr.commands_issued(1) == 1

    def test_dropped_power_only_command_is_reissued(self):
        adr = AdrController(min_history=1, adjust_tx_power=True)
        first = adr.observe(1, snr_db=30.0, spreading_factor=7, time_s=0.0)
        assert first is not None and first.request.tx_power_index > 0
        # A same-SF uplink must NOT confirm a power-only command (the SF
        # was already the commanded one) ...
        assert adr.observe(1, snr_db=30.0, spreading_factor=7, time_s=10.0) is None
        # ... so a drop rolls the power back and the retune is retried.
        adr.command_dropped(1)
        retry = adr.observe(1, snr_db=30.0, spreading_factor=7, time_s=20.0)
        assert retry is not None
        assert retry.request.tx_power_index == first.request.tx_power_index

    def test_margin_optimal_sf_emits_nothing(self):
        adr = AdrController(min_history=1)
        # SF7 floor is -7.5 dB; 5 dB SNR gives margin within one step.
        assert adr.observe(1, snr_db=5.0, spreading_factor=7, time_s=0.0) is None
        assert adr.take_pending() == []


class TestDeviceSide:
    def test_apply_link_adr_retunes_and_answers(self):
        _, devices, _ = build_world(n_devices=1, spreading_factor=12)
        device = devices[0]
        ans = device.apply_link_adr(LinkADRReq(data_rate_index=5), at_time_s=42.0)
        assert ans.accepted
        assert device.spreading_factor == 7
        assert device.sf_changes == [(42.0, 7)]
        tx = device.transmit(50.0)
        frame = parse_mac_frame(tx.mac_bytes)
        (answer,) = parse_mac_commands(frame.fopts, uplink=True)
        assert answer.accepted
        assert device.pending_fopts == b""  # consumed by the uplink

    def test_fopts_overflow_drops_whole_commands(self):
        # 7 answers fill 14 of the 15 FOpts bytes; the 8th is dropped
        # whole, so the queued stream always parses cleanly.
        _, devices, _ = build_world(n_devices=1, spreading_factor=12)
        device = devices[0]
        for _ in range(8):
            device.apply_link_adr(LinkADRReq(data_rate_index=5))
        assert len(device.pending_fopts) == 14
        answers = parse_mac_commands(device.pending_fopts, uplink=True)
        assert len(answers) == 7

    def test_unknown_data_rate_answered_negatively(self):
        _, devices, _ = build_world(n_devices=1, spreading_factor=12)
        device = devices[0]
        ans = device.apply_link_adr(LinkADRReq(data_rate_index=9))
        assert not ans.accepted and not ans.data_rate_ok
        assert device.spreading_factor == 12

    def test_receive_downlink_applies_port0_commands(self):
        _, devices, _ = build_world(n_devices=1, spreading_factor=12)
        device = devices[0]
        raw = build_downlink(
            device.keys, device.dev_addr, 0, payload=LinkADRReq(5).encode(), fport=0
        )
        device.receive_downlink(raw, at_time_s=7.0)
        assert device.spreading_factor == 7

    def test_corrupt_downlink_leaves_device_untouched(self):
        _, devices, _ = build_world(n_devices=1, spreading_factor=12)
        device = devices[0]
        raw = build_downlink(
            device.keys, device.dev_addr, 0, payload=LinkADRReq(5).encode(), fport=0
        )
        with pytest.raises(MicError):
            device.receive_downlink(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        assert device.spreading_factor == 12


class TestFrameBuildValidation:
    def test_sf12_oversized_buffer_raises_before_mutation(self):
        _, devices, _ = build_world(n_devices=1, spreading_factor=12)
        device = devices[0]
        for i in range(20):  # 20 readings -> 86-byte FRMPayload > DR0's 51
            device.take_reading(float(i), float(i))
        fcnt_before, pending_before = device.fcnt, device.pending_readings
        with pytest.raises(FrameSizeError):
            device.transmit(100.0)
        assert device.fcnt == fcnt_before
        assert device.pending_readings == pending_before

    def test_same_payload_fine_after_retune_to_sf7(self):
        _, devices, _ = build_world(n_devices=1, spreading_factor=12)
        device = devices[0]
        for i in range(20):
            device.take_reading(float(i), float(i))
        device.apply_link_adr(LinkADRReq(data_rate_index=5))
        tx = device.transmit(100.0)
        assert tx.spreading_factor == 7
        assert len(tx.values) == 20


class TestInterSfCapture:
    def _tx(self, sf, power, name="a", start=0.0, airtime=1.0):
        return Transmission(
            sender=name,
            start_time_s=start,
            airtime_s=airtime,
            rx_power_dbm=power,
            spreading_factor=sf,
        )

    def test_cross_sf_orthogonal_without_matrix(self):
        outcomes = resolve_collisions([self._tx(7, -100.0), self._tx(12, -60.0, "b")])
        assert all(o.delivered for o in outcomes)

    def test_strong_cross_sf_rival_destroys_weak_frame(self):
        matrix = InterSfCaptureMatrix()
        weak = self._tx(7, -110.0)
        strong = self._tx(12, -60.0, "b")
        outcomes = resolve_collisions([weak, strong], capture_matrix=matrix)
        assert not outcomes[0].delivered
        assert outcomes[0].reason == "lost to inter-SF interference"
        assert outcomes[1].delivered  # SF12 holds -25 dB margin easily

    def test_quasi_orthogonality_headroom(self):
        # SF7 tolerates an SF12 rival up to 9 dB stronger (threshold -9).
        matrix = InterSfCaptureMatrix()
        outcomes = resolve_collisions(
            [self._tx(7, -100.0), self._tx(12, -92.0, "b")], capture_matrix=matrix
        )
        assert all(o.delivered for o in outcomes)

    def test_co_sf_matches_legacy_rule(self):
        matrix = InterSfCaptureMatrix()
        frames = [self._tx(7, -80.0), self._tx(7, -88.0, "b"), self._tx(7, -95.0, "c")]
        legacy = [o.delivered for o in resolve_collisions(frames)]
        with_matrix = [o.delivered for o in resolve_collisions(frames, capture_matrix=matrix)]
        assert legacy == with_matrix == [True, False, False]

    def test_out_of_range_sf_rejected(self):
        with pytest.raises(ConfigurationError):
            InterSfCaptureMatrix().threshold_db(6, 7)


class TestSfAwareFbSigma:
    def test_higher_sf_estimates_are_tighter(self):
        model = FbMeasurementModel()
        assert model.sigma_hz(-10.0, 12) < model.sigma_hz(-10.0, 7)
        assert model.sigma_hz(-10.0, 7) == model.sigma_hz(-10.0)

    def test_floor_still_clamps(self):
        model = FbMeasurementModel()
        assert model.sigma_hz(40.0, 12) == model.floor_hz

    def test_sf7_batch_is_bit_identical_to_untagged(self):
        model = FbMeasurementModel()
        fbs = np.linspace(-25e3, -17e3, 16)
        snrs = np.linspace(-20.0, 30.0, 16)
        a = model.measure_batch(fbs, snrs, np.random.default_rng(3))
        b = model.measure_batch(fbs, snrs, np.random.default_rng(3), np.full(16, 7))
        assert np.array_equal(a, b)


def make_adr_world(n_devices, seed=21, spreading_factor=12, ring_radius_m=50.0):
    world, devices, streams = build_world(
        seed=seed,
        n_devices=n_devices,
        ring_radius_m=ring_radius_m,
        spreading_factor=spreading_factor,
    )
    # Off-center gateway: ring devices land at distinct distances, so
    # co-SF overlaps capture-resolve instead of mutually annihilating.
    world.gateway_position = Position(ring_radius_m * 0.6, 0.0, 1.0)
    server = world.attach_server(NetworkServer(adr=AdrController(min_history=2)))
    return world, devices, streams, server


class TestRuntimeDownlinkPath:
    def test_rx1_window_scheduled_off_real_uplink_airtime(self):
        world, devices, streams, server = make_adr_world(1)
        device = devices[0]
        runtime = FleetRuntime(
            world,
            PeriodicTrafficModel(period_s=60.0, jitter_s=5.0, rng=streams.stream("t")),
            window_s=0.5,
        )
        report = runtime.run(300.0)
        assert report.adr_commands_sent == 1
        assert report.adr_commands_applied == 1
        assert device.spreading_factor == 7
        # The command rode the second uplink; its RX1 window opens exactly
        # one second after that frame's true end of airtime, and the
        # device acts once the 18-byte port-0 downlink (at the uplink's
        # data rate) has fully arrived.
        ((applied_at, _),) = device.sf_changes
        anchor = [e for e in report.events if e.kind is EventKind.DELIVERED][1]
        downlink_airtime = airtime_s(18, anchor.transmission.spreading_factor)
        assert applied_at == pytest.approx(
            anchor.transmission.end_time_s + RX1_DELAY_S + downlink_airtime, abs=1e-9
        )
        # The answer made it back to the controller on the next uplink.
        assert server.adr.converged(device.dev_addr)

    def test_duty_cycle_limited_downlinks_drop_and_device_keeps_sf(self):
        # Eight SF12 devices report within one flush window: their RX
        # windows pile onto one gateway's downlink chain, whose ETSI
        # off-time (10x a ~1 s SF12 downlink) admits only a couple.
        world, devices, streams, server = make_adr_world(8, seed=5)
        runtime = FleetRuntime(
            world,
            PeriodicTrafficModel(period_s=60.0, jitter_s=10.0, rng=streams.stream("t")),
            window_s=60.0,
        )
        first = runtime.run(180.0)
        assert first.adr_commands_dropped > 0
        kept = [d for d in devices if d.spreading_factor == 12]
        assert kept, "every device retuned despite the duty-cycle budget"
        # The controller re-arms dropped commands: later rounds finish the job.
        for _ in range(6):
            runtime.run(120.0)
        assert all(d.spreading_factor == 7 for d in devices)

    def test_adr_loop_reaches_steady_state_and_goes_quiet(self):
        world, devices, streams, _ = make_adr_world(4, seed=9)
        runtime = FleetRuntime(
            world,
            PeriodicTrafficModel(period_s=50.0, jitter_s=10.0, rng=streams.stream("t")),
            window_s=5.0,
        )
        for _ in range(4):
            runtime.run(150.0)
        assert all(d.spreading_factor == 7 for d in devices)
        quiet = runtime.run(150.0)
        assert quiet.adr_commands_sent == 0
        assert quiet.adr_commands_dropped == 0

    def test_mixed_sf_fleet_delivers_at_every_sf(self):
        world, devices, streams, _ = make_adr_world(6, seed=13)
        for device, sf in zip(devices, (7, 8, 9, 10, 11, 12)):
            device.spreading_factor = sf
        runtime = FleetRuntime(
            world,
            PeriodicTrafficModel(period_s=120.0, jitter_s=30.0, rng=streams.stream("t")),
            window_s=5.0,
        )
        report = runtime.run(120.0)
        delivered_sfs = {
            e.transmission.spreading_factor
            for e in report.events
            if e.kind is EventKind.DELIVERED
        }
        assert delivered_sfs == {7, 8, 9, 10, 11, 12}
        for event in report.events:
            if event.verdict is not None and event.verdict.fused is not None:
                assert event.verdict.fused.sigma_hz > 0


class TestGoldenPr3BitIdentity:
    """ADR-disabled single-SF runtime output pinned to the pre-ADR tree.

    The hashes were recorded on the PR 3 code base immediately before the
    ADR/multi-SF change set; matching them proves the refactor left the
    classic paths bit-identical.
    """

    def _signature(self, events):
        h = hashlib.sha256()
        for e in events:
            fb = None if e.reception is None else e.reception.fb_hz
            h.update(
                repr(
                    (
                        e.kind.value,
                        e.time_s,
                        e.device_name,
                        e.snr_db,
                        fb,
                        None if e.transmission is None else e.transmission.fcnt,
                        None
                        if e.verdict is None
                        else (e.verdict.status.value, e.verdict.fused_fb_hz),
                    )
                ).encode()
            )
        return h.hexdigest()

    def test_single_gateway_contention_run_pinned(self):
        world, _, _ = build_world(seed=4, n_devices=30, ring_radius_m=400.0)
        traffic = PeriodicTrafficModel(
            period_s=60.0, jitter_s=20.0, rng=np.random.default_rng(2)
        )
        report = FleetRuntime(world, traffic, window_s=2.0).run(300.0)
        assert len(report.events) == 150
        assert self._signature(report.events) == (
            "6a117c64e13f8af9c9d95e352e1a35bee94ef077a7cf47a8a8ff4d510e138e0f"
        )

    def test_fused_multi_gateway_run_pinned(self):
        world, _, _ = build_world(seed=6, n_devices=12, ring_radius_m=200.0)
        world.add_gateway(Position(150.0, 150.0, 1.0))
        world.attach_server(NetworkServer())
        traffic = PeriodicTrafficModel(
            period_s=30.0, jitter_s=10.0, rng=np.random.default_rng(9)
        )
        report = FleetRuntime(world, traffic, window_s=2.0).run(120.0)
        assert len(report.events) == 48
        assert self._signature(report.events) == (
            "286afedd64e7198c1d5186e82da4dc270542cc81c2de666be58249b308efac25"
        )


class TestAdrConvergenceExperiment:
    @pytest.mark.slow
    def test_sf12_cell_converges_and_matches_sf7_detection(self):
        from repro.experiments.adr_convergence import run_adr_convergence

        result = run_adr_convergence(
            fleet_sizes=(100,), sf_mixes=("sf12", "sf7"), max_adr_rounds=8
        )
        retuned = result.cell(2, 100, "sf12")
        reference = result.cell(2, 100, "sf7")
        # The fleet converges: the median device reaches its margin-optimal SF.
        assert retuned.median_final_sf == reference.median_final_sf == 7
        assert retuned.converged_fraction > 0.5
        assert retuned.commands_sent >= 100
        # The loop pays off and detection quality survives the retune.
        assert retuned.goodput_gain > 1.0
        assert retuned.tpr_after == pytest.approx(reference.tpr_after, abs=0.1)
        assert retuned.fpr_after <= 0.01
