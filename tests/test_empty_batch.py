"""Regressions: empty batches are no-ops, not numpy shape errors.

An idle fleet step hands the pipeline zero captures (and the world zero
device names); every batched entry point must map that to an empty
result instead of tripping over zero-length stacking.
"""

import numpy as np
import pytest

from repro.core.softlora import SoftLoRaGateway
from repro.errors import ConfigurationError
from repro.experiments.common import ScenarioSpec
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.pipeline.batch import CaptureBatch
from repro.pipeline.engine import BatchPipeline


@pytest.fixture
def config():
    return ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)


class TestEmptyCaptureBatch:
    def test_empty_constructor(self, config):
        batch = CaptureBatch.empty(config.sample_rate_hz)
        assert len(batch) == 0
        assert batch.start_times_s.shape == (0,)
        assert batch.metadata == []

    def test_from_traces_with_rate(self, config):
        batch = CaptureBatch.from_traces([], sample_rate_hz=config.sample_rate_hz)
        assert len(batch) == 0
        assert batch.sample_rate_hz == config.sample_rate_hz

    def test_from_traces_without_rate_still_raises(self):
        with pytest.raises(ConfigurationError):
            CaptureBatch.from_traces([])

    def test_synthesize_batch_of_zero(self, config, rng):
        spec = ScenarioSpec(config)
        batch, captures = spec.synthesize_batch(rng, 0)
        assert len(batch) == 0
        assert captures == []

    def test_negative_count_rejected(self, config, rng):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(config).synthesize_batch(rng, -1)


class TestEmptyPipelineRun:
    def test_engine_returns_empty_result(self, config):
        engine = BatchPipeline(config=config)
        result = engine.run(CaptureBatch.empty(config.sample_rate_hz))
        assert len(result) == 0
        assert result.outcomes == []
        assert result.onset_indices.shape == (0,)
        assert result.phy_timestamps_s.shape == (0,)
        assert result.fb_hz.shape == (0,)
        assert result.ok.shape == (0,)

    def test_gateway_process_batch_empty(self, config):
        gateway = SoftLoRaGateway(config=config, commodity=CommodityGateway())
        receptions = gateway.process_batch(CaptureBatch.empty(config.sample_rate_hz))
        assert receptions == []
        assert gateway.receptions == []

    def test_gateway_process_frame_batch_empty(self, config):
        gateway = SoftLoRaGateway(config=config, commodity=CommodityGateway())
        assert gateway.process_frame_batch([]) == []

    def test_nonempty_after_empty_unaffected(self, config, rng):
        # An empty run must not poison caches or reference state.
        engine = BatchPipeline(config=config)
        engine.run(CaptureBatch.empty(config.sample_rate_hz))
        batch, captures = ScenarioSpec(config, snr_db=20.0).synthesize_batch(rng, 2)
        result = engine.run(batch)
        assert len(result) == 2
        assert np.all(result.ok)


class TestEmptyWorldStep:
    def test_uplink_batch_empty_names(self):
        from repro.radio.channel import LinkBudget
        from repro.radio.geometry import Position
        from repro.radio.pathloss import LogDistancePathLoss
        from repro.sim.network import LoRaWanWorld
        from repro.sim.rng import RngStreams
        from repro.sim.scenarios import build_fleet

        streams = RngStreams(0)
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
        world = LoRaWanWorld(
            gateway=SoftLoRaGateway(config=config, commodity=CommodityGateway()),
            gateway_position=Position(0.0, 0.0, 1.0),
            link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
            rng=streams.stream("world"),
        )
        for device in build_fleet(n_devices=2, streams=streams):
            world.add_device(device)
        assert world.uplink_batch([]) == []
        assert world.events == []
        assert len(world.gateway.receptions) == 0
