"""Tests for the world simulator's full-DSP uplink path."""

import pytest

from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.scenarios import build_fleet


@pytest.fixture
def world():
    streams = RngStreams(44)
    devices = build_fleet(n_devices=2, streams=streams)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
    commodity = CommodityGateway()
    gateway = SoftLoRaGateway(
        config=config,
        commodity=commodity,
        replay_detector=ReplayDetector(database=FbDatabase()),
    )
    w = LoRaWanWorld(
        gateway=gateway,
        gateway_position=Position(0.0, 0.0, 1.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    for device in devices:
        w.add_device(device)
    return w


class TestWaveformUplink:
    def test_full_dsp_delivery(self, world):
        device = world.devices["node-0"]
        device.take_reading(7.0, 100.0)
        event = world.uplink_with_capture("node-0", 105.0)
        assert event.kind is EventKind.DELIVERED
        assert event.reception.status is SoftLoRaStatus.ACCEPTED
        # The PHY timestamp was produced by actual onset detection.
        assert event.reception.onset is not None
        assert event.reception.fb_estimate is not None

    def test_phy_timestamp_accuracy(self, world):
        device = world.devices["node-0"]
        device.take_reading(7.0, 100.0)
        event = world.uplink_with_capture("node-0", 105.0)
        tx = event.transmission
        # Arrival = emission + propagation; both are sub-µs here.
        assert abs(event.reception.phy_timestamp_s - tx.emission_time_s) < 20e-6

    def test_fb_estimate_matches_device(self, world):
        device = world.devices["node-1"]
        device.take_reading(7.0, 100.0)
        event = world.uplink_with_capture("node-1", 105.0)
        # Within the sample-grid slicing bias at 0.5 Msps.
        assert event.reception.fb_hz == pytest.approx(device.fb_hz, abs=300.0)

    def test_reconstructed_reading_accuracy(self, world):
        device = world.devices["node-0"]
        device.take_reading(42.0, 200.0)
        event = world.uplink_with_capture("node-0", 260.0)
        reading = event.reception.readings[0]
        assert reading.value == 42.0
        assert reading.global_time_s == pytest.approx(200.0, abs=10e-3)

    def test_low_snr_device_lost(self, world):
        device = world.devices["node-0"]
        device.position = Position(1000e3, 0.0, 1.0)
        device.take_reading(1.0, 10.0)
        event = world.uplink_with_capture("node-0", 11.0)
        assert event.kind is EventKind.LOST_LOW_SNR

    def test_frame_and_waveform_paths_agree(self, world):
        # Same device, consecutive uplinks through both paths: both must
        # accept and produce consistent FB pictures.
        device = world.devices["node-0"]
        device.take_reading(1.0, 10.0)
        fast = world.uplink("node-0", 12.0)
        device.take_reading(2.0, 300.0)
        full = world.uplink_with_capture("node-0", 302.0)
        assert fast.reception.status is SoftLoRaStatus.ACCEPTED
        assert full.reception.status is SoftLoRaStatus.ACCEPTED
        assert fast.reception.fb_hz == pytest.approx(full.reception.fb_hz, abs=400.0)
