"""Tests for the parallel sweep executor (repro.experiments.common)."""

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import (
    ScenarioSpec,
    SweepExecutor,
    SweepPoint,
    run_sweep,
    uniform_fb,
)


def _spec(config):
    return ScenarioSpec(config, snr_db=20.0, fb_hz=uniform_fb(), n_chirps=2)


def measure_fb(point, trial, capture, prng):
    """Module-level (spawn-picklable) measure: the capture's drawn FB."""
    return capture.fb_hz if capture is not None else float(point.key)


class TestSerialEquivalence:
    def test_executor_n1_reproduces_run_sweep_exactly(self, fast_config):
        points = [SweepPoint(key=k, spec=_spec(fast_config), n_trials=3) for k in (1, 2)]
        classic = run_sweep(points, measure_fb, rng=np.random.default_rng(42))
        executor = SweepExecutor(n_workers=1).run(points, measure_fb, rng=np.random.default_rng(42))
        assert classic.measurements == executor.measurements
        assert classic.keys() == executor.keys()

    def test_point_seed_results_independent_of_grid(self, fast_config):
        def run_grid(keys):
            return SweepExecutor(n_workers=1).run(
                [SweepPoint(key=k, spec=_spec(fast_config)) for k in keys],
                measure_fb,
                point_seed=7,
            )

        full = run_grid(["a", "b", "c"])
        reordered = run_grid(["c", "a"])
        assert full.trials("a") == reordered.trials("a")
        assert full.trials("c") == reordered.trials("c")


class TestValidation:
    def test_at_most_one_rng_mode(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor().run(
                [SweepPoint(key=1)],
                measure_fb,
                rng=np.random.default_rng(0),
                point_seed=3,
            )

    def test_shared_rng_rejected_in_parallel(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(n_workers=2).run(
                [SweepPoint(key=1)], measure_fb, rng=np.random.default_rng(0)
            )

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor().run([SweepPoint(key=1), SweepPoint(key=1)], measure_fb)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(n_workers=0).run([SweepPoint(key=1)], measure_fb)

    def test_spec_without_rng_rejected(self, fast_config):
        with pytest.raises(ConfigurationError):
            SweepExecutor().run([SweepPoint(key=1, spec=_spec(fast_config))], measure_fb)

    def test_zero_trials_fails_fast_in_parent(self):
        # The parent validates the whole grid before any dispatch, so a
        # bad trial count surfaces as a clear error naming the point --
        # not a traceback from inside a spawn worker.
        with pytest.raises(ConfigurationError, match="'bad'"):
            SweepExecutor(n_workers=2).run(
                [SweepPoint(key="ok"), SweepPoint(key="bad", n_trials=0)],
                measure_fb,
                point_seed=1,
            )

    def test_spec_without_rng_fails_fast_in_parallel_parent(self, fast_config):
        with pytest.raises(ConfigurationError, match="no rng"):
            SweepExecutor(n_workers=2).run(
                [SweepPoint(key=1, spec=_spec(fast_config))], measure_fb
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(n_workers=2, backend="fiber").run([SweepPoint(key=1)], measure_fb)

    def test_zero_chunksize_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(n_workers=2, chunksize=0).run([SweepPoint(key=1)], measure_fb)


class TestSpawnSafety:
    def test_scenario_spec_with_stock_fb_law_pickles(self, fast_config):
        spec = _spec(fast_config)
        clone = pickle.loads(pickle.dumps(spec))
        draws_a = clone.fb_hz(np.random.default_rng(3))
        draws_b = spec.fb_hz(np.random.default_rng(3))
        assert draws_a == draws_b

    def test_parallel_matches_serial(self, fast_config):
        points = [SweepPoint(key=k, spec=_spec(fast_config), n_trials=2) for k in ("p", "q")]
        serial = SweepExecutor(n_workers=1).run(points, measure_fb, point_seed=5)
        parallel = SweepExecutor(n_workers=2).run(points, measure_fb, point_seed=5)
        assert serial.measurements == parallel.measurements
