"""Tests for multi-gateway routing in LoRaWanWorld + the fused verdicts."""

import pytest

from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.softlora import SoftLoRaGateway
from repro.errors import ConfigurationError
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import FusionPolicy, NetworkServer, ServerStatus
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.scenarios import build_fleet


def build_multi_world(seed=0, n_devices=6, n_gateways=4, exponent=2.0, ring_m=60.0):
    streams = RngStreams(seed)
    devices = build_fleet(n_devices=n_devices, streams=streams, ring_radius_m=20.0)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(config=config, commodity=CommodityGateway()),
        gateway_position=Position(ring_m, 0.0, 10.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=exponent)),
        rng=streams.stream("world"),
    )
    positions = [
        Position(0.0, ring_m, 10.0),
        Position(-ring_m, 0.0, 10.0),
        Position(0.0, -ring_m, 10.0),
        Position(ring_m, ring_m, 10.0),
        Position(-ring_m, -ring_m, 10.0),
        Position(2 * ring_m, 0.0, 10.0),
        Position(0.0, 2 * ring_m, 10.0),
    ]
    for index in range(n_gateways - 1):
        world.add_gateway(positions[index])
    for device in devices:
        world.add_device(device)
    return world, devices, streams


class TestTopology:
    def test_sites_include_primary_first(self):
        world, _, _ = build_multi_world(n_gateways=3)
        assert [site.gateway_id for site in world.sites] == ["gw-0", "gw-1", "gw-2"]

    def test_duplicate_gateway_id_rejected(self):
        world, _, _ = build_multi_world(n_gateways=2)
        with pytest.raises(ConfigurationError):
            world.add_gateway(Position(1.0, 1.0, 1.0), gateway_id="gw-0")

    def test_extra_gateways_without_server_is_an_error(self):
        world, devices, _ = build_multi_world(n_gateways=2)
        with pytest.raises(ConfigurationError):
            world.uplink_batch()
        # The single-uplink entry must refuse too, not silently route to
        # the primary gateway alone.
        with pytest.raises(ConfigurationError):
            world.uplink(devices[0].name, 5.0)

    def test_attach_server_provisions_existing_devices(self):
        world, devices, _ = build_multi_world(n_gateways=2)
        server = world.attach_server()
        assert sorted(server.mac.known_devices()) == sorted(
            d.dev_addr for d in devices
        )


class TestFusedUplinks:
    def test_each_uplink_heard_by_all_gateways(self):
        world, devices, _ = build_multi_world(n_gateways=4)
        server = world.attach_server()
        events = world.uplink_batch(request_time_s=10.0)
        assert len(events) == len(devices)
        assert len(server.verdicts) == len(devices)
        for event in events:
            assert event.kind is EventKind.DELIVERED
            assert event.reception is None  # gateways forward, server judges
            assert event.verdict is not None
            assert event.verdict.n_gateways == 4
        assert server.dedup_rate == 4.0

    def test_exactly_one_verdict_per_transmission(self):
        world, devices, _ = build_multi_world(n_gateways=4)
        server = world.attach_server()
        for round_index in range(3):
            world.uplink_batch(request_time_s=10.0 + 60.0 * round_index)
        keys = [(v.dev_addr, v.fcnt) for v in server.verdicts]
        assert len(keys) == 3 * len(devices)
        assert len(set(keys)) == len(keys)

    def test_single_uplink_routes_through_server(self):
        world, devices, _ = build_multi_world(n_gateways=2)
        world.attach_server()
        event = world.uplink(devices[0].name, 5.0)
        assert event.kind is EventKind.DELIVERED
        assert event.verdict.status is ServerStatus.ACCEPTED
        assert event.verdict.n_gateways == 2

    def test_empty_batch_is_noop(self):
        world, _, _ = build_multi_world(n_gateways=2)
        world.attach_server()
        assert world.uplink_batch([]) == []
        assert world.events == []

    def test_out_of_range_device_lost_at_all_gateways(self):
        world, devices, _ = build_multi_world(n_gateways=3)
        world.attach_server()
        devices[0].position = Position(5000e3, 0.0, 1.0)
        events = world.uplink_batch(request_time_s=10.0)
        lost = next(e for e in events if e.device_name == devices[0].name)
        assert lost.kind is EventKind.LOST_LOW_SNR
        assert lost.verdict is None
        assert "all 3 gateways" in lost.detail

    def test_partial_coverage_counts_only_in_range_gateways(self):
        # A steep exponent shrinks each gateway's range: the device near
        # gw-0 is out of range of the far gateway at 2*ring.
        world, devices, _ = build_multi_world(
            seed=3, n_devices=1, n_gateways=7, exponent=4.5, ring_m=400.0
        )
        world.attach_server()
        devices[0].position = Position(380.0, 0.0, 1.0)  # next to gw-0
        events = world.uplink_batch(request_time_s=10.0)
        verdict = events[0].verdict
        assert verdict is not None
        assert 1 <= verdict.n_gateways < 7

    def test_fcnt_advances_across_rounds(self):
        world, devices, _ = build_multi_world(n_gateways=2, n_devices=2)
        server = world.attach_server()
        for round_index in range(3):
            world.uplink_batch(request_time_s=10.0 + 60.0 * round_index)
        fcnts = sorted(
            v.fcnt for v in server.verdicts if v.dev_addr == devices[0].dev_addr
        )
        assert fcnts == [0, 1, 2]


class TestFusedAttackDetection:
    def test_replay_flagged_once_with_evidence_from_all_gateways(self):
        world, devices, streams = build_multi_world(n_gateways=4)
        server = world.attach_server(
            NetworkServer(fusion=FusionPolicy.INVERSE_VARIANCE)
        )
        target = devices[0].name
        for round_index in range(4):  # learn profiles
            world.uplink_batch(request_time_s=10.0 + 60.0 * round_index)
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        world.arm_attack(attack, [target], delay_s=90.0)
        events = world.uplink_batch(request_time_s=10.0 + 60.0 * 4)

        replay = next(e for e in events if e.device_name == target)
        assert replay.kind is EventKind.REPLAY_DELIVERED
        assert replay.verdict.status is ServerStatus.REPLAY_DETECTED
        assert replay.verdict.n_gateways == 4
        replay_verdicts = server.verdicts_of(ServerStatus.REPLAY_DETECTED)
        assert len(replay_verdicts) == 1  # one verdict, not one per gateway

        # Jam suppression is still visible on the air interface.
        suppressed = [
            e for e in world.events if e.kind is EventKind.SUPPRESSED_BY_JAMMING
        ]
        assert len(suppressed) == 1

        clean = [e for e in events if e.device_name != target]
        assert all(e.verdict.status is ServerStatus.ACCEPTED for e in clean)

    def test_single_gateway_server_matches_topology_of_paper(self):
        # One gateway + server: same defense outcome as the classic world,
        # through the fused path.
        world, devices, streams = build_multi_world(n_gateways=1)
        world.attach_server()
        target = devices[0].name
        for round_index in range(4):
            world.uplink_batch(request_time_s=10.0 + 60.0 * round_index)
        attack = FrameDelayAttack(
            jammer=StealthyJammer(), replayer=Replayer.single_usrp(streams.stream("r"))
        )
        world.arm_attack(attack, [target], delay_s=90.0)
        events = world.uplink_batch(request_time_s=10.0 + 60.0 * 4)
        replay = next(e for e in events if e.device_name == target)
        assert replay.verdict.status is ServerStatus.REPLAY_DETECTED
        assert replay.verdict.n_gateways == 1


class TestFusedAccuracy:
    def test_fused_fb_error_beats_best_single_gateway_on_fleet_workload(self):
        """Acceptance: 4 gateways, fig13-style fleet, fused MAE <= best-GW MAE."""
        import numpy as np

        world, devices, _ = build_multi_world(seed=13, n_devices=16, n_gateways=4)
        server = world.attach_server(
            NetworkServer(fusion=FusionPolicy.INVERSE_VARIANCE)
        )
        true_fb = {f"{d.dev_addr:08x}": d.fb_hz for d in devices}
        for round_index in range(20):  # fig13 captures 20 frames per node
            world.uplink_batch(request_time_s=10.0 + 60.0 * round_index)

        fused_errors, best_errors = [], []
        for verdict in server.verdicts:
            assert verdict.status is ServerStatus.ACCEPTED
            truth = true_fb[verdict.node_id]
            fused_errors.append(abs(verdict.fused.fb_hz - truth))
            best_row = int(np.argmax(verdict.gateway_snrs_db))
            best_errors.append(abs(verdict.gateway_fbs_hz[best_row] - truth))
        assert len(fused_errors) == 16 * 20
        assert float(np.mean(fused_errors)) <= float(np.mean(best_errors))
