"""Tests for sync-free timestamping (repro.core.timestamping)."""

import pytest

from repro.clock.clocks import DriftingClock
from repro.core.timestamping import (
    DeviceRecordBuffer,
    ElapsedTimeCodec,
    SyncFreeTimestamper,
)
from repro.errors import ConfigurationError


class TestElapsedTimeCodec:
    def test_paper_defaults(self):
        codec = ElapsedTimeCodec()
        assert codec.bits == 18
        assert codec.resolution_s == 1e-3
        # 18 bits at 1 ms covers the paper's ~4.1-minute buffer window.
        assert codec.capacity_s == pytest.approx(262.143)

    def test_encode_decode_roundtrip(self):
        codec = ElapsedTimeCodec()
        for elapsed in (0.0, 0.001, 1.5, 123.456, 262.143):
            ticks = codec.encode(elapsed)
            assert codec.decode(ticks) == pytest.approx(elapsed, abs=codec.resolution_s / 2)

    def test_quantization_rounds_to_nearest(self):
        codec = ElapsedTimeCodec()
        assert codec.encode(0.0014) == 1
        assert codec.encode(0.0016) == 2

    def test_over_capacity_raises(self):
        codec = ElapsedTimeCodec()
        with pytest.raises(ConfigurationError):
            codec.encode(300.0)

    def test_negative_elapsed_raises(self):
        with pytest.raises(ConfigurationError):
            ElapsedTimeCodec().encode(-0.1)

    def test_decode_range_checked(self):
        codec = ElapsedTimeCodec()
        with pytest.raises(ConfigurationError):
            codec.decode(-1)
        with pytest.raises(ConfigurationError):
            codec.decode(1 << 18)

    def test_pack_unpack_roundtrip(self):
        codec = ElapsedTimeCodec()
        ticks = [0, 1, 262143, 12345, 77]
        packed = codec.pack(ticks)
        assert len(packed) == (18 * 5 + 7) // 8
        assert codec.unpack(packed, 5) == ticks

    def test_pack_empty(self):
        codec = ElapsedTimeCodec()
        assert codec.pack([]) == b""
        assert codec.unpack(b"", 0) == []

    def test_unpack_short_buffer_raises(self):
        codec = ElapsedTimeCodec()
        with pytest.raises(ConfigurationError):
            codec.unpack(b"\x00", 2)

    def test_pack_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            ElapsedTimeCodec().pack([1 << 18])

    def test_custom_width(self):
        codec = ElapsedTimeCodec(bits=10, resolution_s=0.1)
        assert codec.capacity_s == pytest.approx(102.3)
        assert codec.unpack(codec.pack([1023, 0, 512]), 3) == [1023, 0, 512]

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ElapsedTimeCodec(bits=0)
        with pytest.raises(ConfigurationError):
            ElapsedTimeCodec(resolution_s=0.0)

    def test_byte_savings_vs_full_timestamp(self):
        # Sec. 3.2: 18 bits vs an 8-byte timestamp.
        codec = ElapsedTimeCodec()
        assert codec.bits < 8 * 8


class TestSyncFreeTimestamper:
    def test_reconstruction(self):
        timestamper = SyncFreeTimestamper()
        codec = timestamper.codec
        readings = timestamper.reconstruct(
            arrival_time_s=1000.0,
            elapsed_ticks=[codec.encode(10.0), codec.encode(0.5)],
            values=[21.5, 22.0],
        )
        assert readings[0].global_time_s == pytest.approx(990.0)
        assert readings[1].global_time_s == pytest.approx(999.5)
        assert readings[0].value == 21.5

    def test_latency_compensation(self):
        timestamper = SyncFreeTimestamper(tx_latency_s=3e-3)
        reading = timestamper.reconstruct(100.0, [0])[0]
        assert reading.global_time_s == pytest.approx(100.0 - 3e-3)

    def test_values_default_to_nan(self):
        reading = SyncFreeTimestamper().reconstruct(10.0, [0])[0]
        assert reading.value != reading.value  # NaN

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigurationError):
            SyncFreeTimestamper().reconstruct(10.0, [0, 1], values=[1.0])


class TestDeviceRecordBuffer:
    def test_elapsed_computed_against_local_clock(self):
        # The same drifting clock stamps and flushes, so absolute clock
        # error cancels; only drift over the buffer interval remains.
        clock = DriftingClock(drift_ppm=40.0, anchor_local_s=500.0)
        buffer = DeviceRecordBuffer()
        t_event, t_flush = 1000.0, 1060.0
        buffer.add(7.0, clock.read(t_event))
        values, ticks = buffer.flush(clock.read(t_flush))
        elapsed = buffer.codec.decode(ticks[0])
        true_elapsed = t_flush - t_event
        drift_error = abs(elapsed - true_elapsed)
        assert drift_error < true_elapsed * 50e-6 + buffer.codec.resolution_s

    def test_flush_clears(self):
        buffer = DeviceRecordBuffer()
        buffer.add(1.0, 0.0)
        buffer.flush(1.0)
        assert len(buffer) == 0

    def test_multiple_records_order_preserved(self):
        buffer = DeviceRecordBuffer()
        buffer.add(1.0, 10.0)
        buffer.add(2.0, 20.0)
        values, ticks = buffer.flush(30.0)
        assert values == [1.0, 2.0]
        assert buffer.codec.decode(ticks[0]) == pytest.approx(20.0)
        assert buffer.codec.decode(ticks[1]) == pytest.approx(10.0)

    def test_future_record_raises_on_flush(self):
        buffer = DeviceRecordBuffer()
        buffer.add(1.0, 100.0)
        with pytest.raises(ConfigurationError):
            buffer.flush(50.0)

    def test_end_to_end_accuracy_within_paper_budget(self):
        # Device stamps -> elapsed fields -> gateway reconstruction: the
        # total error stays within quantization + drift (~ms scale).
        clock = DriftingClock(drift_ppm=40.0)
        buffer = DeviceRecordBuffer()
        timestamper = SyncFreeTimestamper()
        t_event, t_send = 2000.0, 2100.0
        buffer.add(42.0, clock.read(t_event))
        values, ticks = buffer.flush(clock.read(t_send))
        # Arrival == send time here (propagation is microseconds).
        reading = timestamper.reconstruct(t_send, ticks, values)[0]
        assert abs(reading.global_time_s - t_event) < 10e-3
