"""Tests for the consolidated reproduction report."""

from repro.experiments.report_all import generate_report, main


class TestGenerateReport:
    def test_fast_report_covers_every_experiment(self):
        report = generate_report(fast=True)
        for marker in (
            "Sec 3.2",
            "Table 1",
            "Table 2",
            "Fig 6",
            "Fig 7",
            "Fig 8",
            "Fig 9",
            "Fig 10",
            "Fig 11",
            "Fig 12",
            "Fig 13",
            "Fig 14",
            "Fig 15",
            "Fig 16",
            "Sec 8.2",
            "Sec 8.1",
            "Sec 7.2",
            "Sec 4.4",
        ):
            assert marker in report, f"report is missing {marker}"

    def test_report_contains_paper_reference_values(self):
        report = generate_report(fast=True)
        # Spot-check a few of the paper's numbers that must appear.
        assert "14.4" in report  # sync sessions/hour
        assert "3.57" in report  # campus propagation µs
        assert "replay_detected" in report

    def test_main_entry_point(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
