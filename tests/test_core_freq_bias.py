"""Tests for FB estimation (repro.core.freq_bias) -- paper Sec. 7.1."""

import numpy as np
import pytest

from repro.core.freq_bias import (
    LeastSquaresFbEstimator,
    LinearRegressionFbEstimator,
    estimate_amplitude,
)
from repro.errors import ConfigurationError, EstimationError
from repro.phy.chirp import ChirpConfig, upchirp
from repro.sdr.noise import complex_awgn, noise_power_for_snr


def clean_chirp(config, fb_hz, phase=0.9, amplitude=1.0):
    return upchirp(config, fb_hz=fb_hz, phase=phase, amplitude=amplitude)


class TestLinearRegression:
    def test_exact_on_clean_chirp(self, fast_config):
        estimator = LinearRegressionFbEstimator(fast_config)
        for fb in (-25e3, -17e3, 0.0, 10e3):
            estimate = estimator.estimate(clean_chirp(fast_config, fb))
            assert estimate.fb_hz == pytest.approx(fb, abs=1.0)

    def test_phase_recovered(self, fast_config):
        estimator = LinearRegressionFbEstimator(fast_config)
        estimate = estimator.estimate(clean_chirp(fast_config, -5e3, phase=1.7))
        assert estimate.phase == pytest.approx(1.7, abs=0.01)

    def test_accurate_at_high_snr(self, fast_config, rng):
        estimator = LinearRegressionFbEstimator(fast_config)
        chirp = clean_chirp(fast_config, -22.8e3)
        noisy = chirp + complex_awgn(len(chirp), noise_power_for_snr(1.0, 25.0), rng)
        assert estimator.estimate(noisy).fb_hz == pytest.approx(-22.8e3, abs=100.0)

    def test_fails_at_very_low_snr(self, fast_config, rng):
        # Sec. 7.1.1: inverse-tangent rectification breaks at low SNR.
        estimator = LinearRegressionFbEstimator(fast_config)
        chirp = clean_chirp(fast_config, -22.8e3)
        noisy = chirp + complex_awgn(len(chirp), noise_power_for_snr(1.0, -20.0), rng)
        error = abs(estimator.estimate(noisy).fb_hz - (-22.8e3))
        assert error > 1e3

    def test_residual_is_linear(self, fast_config):
        estimator = LinearRegressionFbEstimator(fast_config)
        residual = estimator.linear_residual(clean_chirp(fast_config, -10e3))
        t = fast_config.sample_times()
        slope, intercept = np.polyfit(t, residual, 1)
        fitted = slope * t + intercept
        assert np.max(np.abs(residual - fitted)) < 0.01

    def test_diagnostics_rmse(self, fast_config):
        estimator = LinearRegressionFbEstimator(fast_config)
        estimate = estimator.estimate(clean_chirp(fast_config, -10e3))
        assert estimate.diagnostics["fit_rmse_rad"] < 1e-6

    def test_short_input_rejected(self, fast_config):
        estimator = LinearRegressionFbEstimator(fast_config)
        with pytest.raises(EstimationError):
            estimator.estimate(np.zeros(10, dtype=complex))


class TestLeastSquares:
    def test_exact_on_clean_chirp(self, fast_config):
        estimator = LeastSquaresFbEstimator(fast_config)
        for fb in (-24e3, -18e3, 5e3):
            estimate = estimator.estimate(clean_chirp(fast_config, fb))
            assert estimate.fb_hz == pytest.approx(fb, abs=0.5)

    def test_robust_at_low_snr(self, fast_config, rng):
        # Sec. 7.1.2: still works below the demodulation limit.  SF7 at
        # -18 dB full-band corresponds to roughly the paper's regime.
        estimator = LeastSquaresFbEstimator(fast_config)
        chirp = clean_chirp(fast_config, -21e3)
        errors = []
        for _ in range(5):
            noisy = chirp + complex_awgn(len(chirp), noise_power_for_snr(1.0, -18.0), rng)
            errors.append(abs(estimator.estimate(noisy).fb_hz + 21e3))
        assert np.median(errors) < 120.0  # the paper's resolution

    def test_sf12_resolution_at_minus25db(self, rng):
        # Fig. 14: below 120 Hz at -25 dB with the paper's SF12 default.
        config = ChirpConfig(spreading_factor=12, sample_rate_hz=0.5e6)
        estimator = LeastSquaresFbEstimator(config)
        chirp = clean_chirp(config, -22e3)
        noisy = chirp + complex_awgn(len(chirp), noise_power_for_snr(1.0, -25.0), rng)
        assert abs(estimator.estimate(noisy).fb_hz + 22e3) < 120.0

    def test_beats_linear_regression_at_low_snr(self, fast_config, rng):
        chirp = clean_chirp(fast_config, -20e3)
        noisy = chirp + complex_awgn(len(chirp), noise_power_for_snr(1.0, -15.0), rng)
        ls_error = abs(LeastSquaresFbEstimator(fast_config).estimate(noisy).fb_hz + 20e3)
        lr_error = abs(LinearRegressionFbEstimator(fast_config).estimate(noisy).fb_hz + 20e3)
        assert ls_error < lr_error

    def test_de_matches_dechirp(self, rng):
        # The differential-evolution solver (the paper's) and the fast
        # dechirp reduction optimize the same objective.
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.25e6)
        chirp = clean_chirp(config, -7.5e3, phase=2.0)
        noise_power = noise_power_for_snr(1.0, 5.0)
        noisy = chirp + complex_awgn(len(chirp), noise_power, rng)
        de = LeastSquaresFbEstimator(config, search_range_hz=(-20e3, 20e3), method="de")
        fast = LeastSquaresFbEstimator(config, search_range_hz=(-20e3, 20e3))
        fb_de = de.estimate(noisy, noise_power=noise_power).fb_hz
        fb_fast = fast.estimate(noisy).fb_hz
        assert fb_de == pytest.approx(fb_fast, abs=2.0)

    def test_phase_estimate_consistent(self, fast_config):
        estimator = LeastSquaresFbEstimator(fast_config)
        estimate = estimator.estimate(clean_chirp(fast_config, -3e3, phase=0.8))
        assert estimate.phase == pytest.approx(0.8, abs=0.05)

    def test_search_range_respected(self, fast_config):
        estimator = LeastSquaresFbEstimator(fast_config, search_range_hz=(-5e3, 5e3))
        estimate = estimator.estimate(clean_chirp(fast_config, -2e3))
        assert -5e3 <= estimate.fb_hz <= 5e3

    def test_slicing_offset_biases_by_sweep_rate(self, fast_config):
        # A slice starting ε late reads δ + rate·ε: the quantitative link
        # between PHY timestamping accuracy and FB accuracy.
        estimator = LeastSquaresFbEstimator(fast_config)
        two_chirps = np.concatenate(
            [clean_chirp(fast_config, -10e3), clean_chirp(fast_config, -10e3)]
        )
        offset = 5
        estimate = estimator.estimate(two_chirps[offset : offset + fast_config.samples_per_chirp])
        rate = fast_config.bandwidth_hz**2 / fast_config.n_symbols
        expected_bias = rate * offset / fast_config.sample_rate_hz
        assert estimate.fb_hz - (-10e3) == pytest.approx(expected_bias, rel=0.1)

    def test_invalid_construction(self, fast_config):
        with pytest.raises(ConfigurationError):
            LeastSquaresFbEstimator(fast_config, search_range_hz=(5e3, -5e3))
        with pytest.raises(ConfigurationError):
            LeastSquaresFbEstimator(fast_config, method="magic")
        with pytest.raises(ConfigurationError):
            LeastSquaresFbEstimator(fast_config, zero_pad_factor=0)

    def test_short_input_rejected(self, fast_config):
        with pytest.raises(EstimationError):
            LeastSquaresFbEstimator(fast_config).estimate(np.zeros(4, dtype=complex))


class TestAmplitudeEstimation:
    def test_recovers_amplitude(self, fast_config, rng):
        # E[I² + Q²] = A² + noise power (paper Sec. 7.1.2).
        amplitude, noise_power = 1.6, 0.9
        chirp = clean_chirp(fast_config, -10e3, amplitude=amplitude)
        noisy = chirp + complex_awgn(len(chirp), noise_power, rng)
        estimated = estimate_amplitude(noisy, noise_power)
        assert estimated == pytest.approx(amplitude, rel=0.05)

    def test_zero_noise(self, fast_config):
        chirp = clean_chirp(fast_config, 0.0, amplitude=2.0)
        assert estimate_amplitude(chirp, 0.0) == pytest.approx(2.0)

    def test_noise_dominates_clamps_to_zero(self, rng):
        noise = complex_awgn(4096, 1.0, rng)
        assert estimate_amplitude(noise, 2.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            estimate_amplitude(np.array([]), 0.0)
        with pytest.raises(ConfigurationError):
            estimate_amplitude(np.ones(4), -1.0)
