"""Property tests: every FB store is state-equivalent to FbDatabase.

Hypothesis drives random ``record`` / ``interval`` / ``forget``
sequences against each backend and the in-memory reference in
lockstep; after every operation the observable state -- known nodes,
per-node histories, sample counts, guarded intervals -- must match
exactly.  A second property pins the rebalance invariant: migrating a
:class:`~repro.server.store.sharded.PersistentShardedFbDatabase` to
*any* shard count preserves ``known_nodes()`` and every per-node
history bit for bit.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import FbDatabase
from repro.server.sharding import ShardedFbDatabase
from repro.server.store import (
    LMDB_AVAILABLE,
    LmdbFbStore,
    LruCachedStore,
    PersistentShardedFbDatabase,
    SqliteFbStore,
)

#: Small node pool and history depth so pruning and forgetting both fire.
NODES = ["26000000", "26000001", "26000002"]
HISTORY_LEN = 4

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)

#: One store operation: (op, node, fb_hz, time_s/guard_hz).
operations = st.lists(
    st.tuples(
        st.sampled_from(["record", "interval", "forget"]),
        st.sampled_from(NODES),
        finite,
        finite,
    ),
    min_size=1,
    max_size=40,
)


def build_backends(root: Path) -> dict:
    """Label -> store instance for every backend available here."""
    backends = {
        "sharded-memory": ShardedFbDatabase(n_shards=2, history_len=HISTORY_LEN),
        "sqlite": SqliteFbStore(root / "fb.sqlite", history_len=HISTORY_LEN),
        "lru-sqlite": LruCachedStore(
            SqliteFbStore(root / "fb-lru.sqlite", history_len=HISTORY_LEN),
            max_nodes=2,  # smaller than the node pool, so eviction fires
        ),
        "sharded-sqlite": PersistentShardedFbDatabase(
            root / "fb.d", n_shards=2, history_len=HISTORY_LEN
        ),
    }
    if LMDB_AVAILABLE:
        backends["lmdb"] = LmdbFbStore(root / "fb.lmdb", history_len=HISTORY_LEN)
    return backends


def assert_same_state(reference: FbDatabase, store, label: str) -> None:
    assert store.known_nodes() == reference.known_nodes(), label
    assert store.node_count() == reference.node_count(), label
    for node in NODES:
        assert store.sample_count(node) == reference.sample_count(node), label
        assert store.history(node) == reference.history(node), label
        assert store.estimates(node) == reference.estimates(node), label
        want = reference.interval(node, 30.0)
        got = store.interval(node, 30.0)
        if want is None:
            assert got is None, label
        else:
            assert (got.low_hz, got.high_hz) == (want.low_hz, want.high_hz), label


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_backends_track_reference_through_random_ops(ops):
    with tempfile.TemporaryDirectory() as tmp:
        backends = build_backends(Path(tmp))
        reference = FbDatabase(history_len=HISTORY_LEN)
        try:
            for op, node, fb_hz, extra in ops:
                if op == "record":
                    reference.record(node, fb_hz, extra)
                    for store in backends.values():
                        store.record(node, fb_hz, extra)
                elif op == "forget":
                    reference.forget(node)
                    for store in backends.values():
                        store.forget(node)
                else:
                    guard = abs(extra)
                    want = reference.interval(node, guard)
                    for label, store in backends.items():
                        got = store.interval(node, guard)
                        if want is None:
                            assert got is None, label
                        else:
                            assert (got.low_hz, got.high_hz) == (
                                want.low_hz,
                                want.high_hz,
                            ), label
            for label, store in backends.items():
                assert_same_state(reference, store, label)
        finally:
            for store in backends.values():
                close = getattr(store, "close", None)
                if callable(close):
                    close()


@settings(max_examples=25, deadline=None)
@given(
    ops=operations,
    shard_counts=st.lists(
        st.integers(min_value=1, max_value=9), min_size=1, max_size=3
    ),
)
def test_rebalance_to_any_count_preserves_state(ops, shard_counts):
    with tempfile.TemporaryDirectory() as tmp:
        store = PersistentShardedFbDatabase(
            Path(tmp) / "fb.d", n_shards=3, history_len=HISTORY_LEN
        )
        reference = FbDatabase(history_len=HISTORY_LEN)
        try:
            for op, node, fb_hz, extra in ops:
                if op == "record":
                    reference.record(node, fb_hz, extra)
                    store.record(node, fb_hz, extra)
                elif op == "forget":
                    reference.forget(node)
                    store.forget(node)
            for count in shard_counts:
                store.rebalance(count)
                assert store.n_shards == count
                assert_same_state(reference, store, f"rebalance({count})")
        finally:
            store.close()
