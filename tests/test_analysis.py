"""Tests for metrics and report formatting (repro.analysis)."""

import pytest

from repro.analysis.metrics import (
    DetectionStats,
    detection_stats,
    fb_error_hz,
    timing_error_s,
    timing_error_upper_bound_s,
)
from repro.analysis.report import format_series, format_table
from repro.errors import ConfigurationError


class TestTimingMetrics:
    def test_plain_error(self):
        assert timing_error_s(10.0, 9.5) == 0.5
        assert timing_error_s(9.5, 10.0) == 0.5

    def test_upper_bound_exceeds_plain_error(self):
        ts = 1e-6
        for detected, truth in ((10.0, 10.0000007), (5.0, 4.9999993)):
            plain = timing_error_s(detected, truth)
            bound = timing_error_upper_bound_s(detected, truth, ts)
            assert bound >= plain

    def test_upper_bound_exact_detection(self):
        # Detecting the sample just below the true onset: the bound is
        # one full sample period (truth could be anywhere in the gap).
        ts = 1.0
        assert timing_error_upper_bound_s(3.0, 3.0, ts) == pytest.approx(1.0)

    def test_upper_bound_mid_interval(self):
        ts = 1.0
        # truth at 3.5, detected at 3.0: interval [3, 4], worst case 1.0.
        assert timing_error_upper_bound_s(3.0, 3.5, ts) == pytest.approx(1.0)

    def test_upper_bound_distant_detection(self):
        ts = 1.0
        assert timing_error_upper_bound_s(10.0, 3.5, ts) == pytest.approx(7.0)

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            timing_error_upper_bound_s(1.0, 1.0, 0.0)

    def test_fb_error(self):
        assert fb_error_hz(-20000.0, -20100.0) == 100.0


class TestDetectionStats:
    def test_perfect_detection(self):
        stats = detection_stats([True, True, False, False], [True, True, False, False])
        assert stats.detection_rate == 1.0
        assert stats.false_alarm_rate == 0.0
        assert stats.precision == 1.0
        assert stats.accuracy == 1.0

    def test_mixed_outcomes(self):
        labels = [True, True, False, False, False]
        predictions = [True, False, True, False, False]
        stats = detection_stats(labels, predictions)
        assert stats.true_positives == 1
        assert stats.false_negatives == 1
        assert stats.false_positives == 1
        assert stats.true_negatives == 2
        assert stats.detection_rate == pytest.approx(0.5)
        assert stats.false_alarm_rate == pytest.approx(1 / 3)

    def test_empty_edge_cases(self):
        stats = detection_stats([], [])
        assert stats.total == 0
        assert stats.detection_rate != stats.detection_rate  # NaN

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            detection_stats([True], [])

    def test_dataclass_direct(self):
        stats = DetectionStats(
            true_positives=8, false_positives=0, true_negatives=90, false_negatives=2
        )
        assert stats.detection_rate == pytest.approx(0.8)
        assert stats.total == 100


class TestReport:
    def test_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_table_rejects_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_float_formatting(self):
        table = format_table(["x"], [[1234.5678], [0.0001234], [float("nan")]])
        assert "1.23e+03" in table
        assert "nan" in table

    def test_series(self):
        series = format_series("snr", "err", [(0, 1.0), (5, 0.5)])
        assert "snr" in series and "err" in series
        assert len(series.splitlines()) == 4
