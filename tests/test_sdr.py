"""Tests for the SDR substrate (repro.sdr: iq, noise, receiver, filters)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.chirp import preamble_waveform, upchirp
from repro.sdr.filters import bandlimit_trace
from repro.sdr.iq import IQTrace
from repro.sdr.noise import (
    RealNoiseModel,
    add_noise_for_snr,
    complex_awgn,
    noise_power_for_snr,
)
from repro.sdr.receiver import SdrReceiver


class TestIQTrace:
    def test_components(self):
        trace = IQTrace(np.array([1 + 2j, 3 - 4j]), 1e6)
        np.testing.assert_array_equal(trace.i, [1, 3])
        np.testing.assert_array_equal(trace.q, [2, -4])

    def test_timing_anchors(self):
        trace = IQTrace(np.zeros(100), 1e6, start_time_s=5.0)
        assert trace.time_of_index(0) == 5.0
        assert trace.time_of_index(10) == pytest.approx(5.0 + 10e-6)
        assert trace.index_of_time(5.0 + 25e-6) == 25
        assert trace.duration_s == pytest.approx(100e-6)

    def test_times_vector(self):
        trace = IQTrace(np.zeros(3), 2.0, start_time_s=1.0)
        np.testing.assert_allclose(trace.times(), [1.0, 1.5, 2.0])

    def test_slice_preserves_absolute_time(self):
        trace = IQTrace(np.arange(10, dtype=complex), 1e3, start_time_s=2.0)
        sub = trace.slice_samples(4, 8)
        assert sub.start_time_s == pytest.approx(2.0 + 4e-3)
        np.testing.assert_array_equal(sub.samples.real, [4, 5, 6, 7])

    def test_slice_out_of_range(self):
        trace = IQTrace(np.zeros(4), 1e3)
        with pytest.raises(ConfigurationError):
            trace.slice_samples(-1)

    def test_power(self):
        trace = IQTrace(np.array([3 + 4j, 3 + 4j]), 1.0)
        assert trace.power() == pytest.approx(25.0)

    def test_empty_power_rejected(self):
        with pytest.raises(ConfigurationError):
            IQTrace(np.array([]), 1.0).power()

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            IQTrace(np.zeros(4), 0.0)


class TestNoise:
    def test_awgn_power(self, rng):
        noise = complex_awgn(200_000, 3.0, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(3.0, rel=0.02)

    def test_awgn_circular(self, rng):
        noise = complex_awgn(100_000, 2.0, rng)
        assert np.mean(noise.real**2) == pytest.approx(np.mean(noise.imag**2), rel=0.05)
        assert abs(np.mean(noise)) < 0.05

    def test_awgn_zero_samples(self, rng):
        assert len(complex_awgn(0, 1.0, rng)) == 0

    def test_awgn_invalid(self, rng):
        with pytest.raises(ConfigurationError):
            complex_awgn(-1, 1.0, rng)
        with pytest.raises(ConfigurationError):
            complex_awgn(10, -1.0, rng)

    def test_noise_power_for_snr(self):
        assert noise_power_for_snr(1.0, 10.0) == pytest.approx(0.1)
        assert noise_power_for_snr(4.0, -3.0) == pytest.approx(4.0 * 10**0.3)

    def test_add_noise_hits_target_snr(self, fast_config, rng):
        signal = preamble_waveform(fast_config, n_chirps=4)
        noisy = add_noise_for_snr(signal, snr_db=5.0, rng=rng)
        noise = noisy - signal
        measured = 10 * np.log10(
            np.mean(np.abs(signal) ** 2) / np.mean(np.abs(noise) ** 2)
        )
        assert measured == pytest.approx(5.0, abs=0.5)

    def test_real_noise_normalized_power(self, rng):
        model = RealNoiseModel()
        noise = model.generate(100_000, 2.5, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(2.5, rel=0.05)

    def test_real_noise_is_colored(self, rng):
        model = RealNoiseModel(color_pole=0.9, impulse_rate=0.0)
        noise = model.generate(65536, 1.0, rng)
        spectrum = np.abs(np.fft.fft(noise)) ** 2
        low = spectrum[1:1000].mean()
        high = spectrum[30000:32000].mean()
        assert low > 3 * high

    def test_real_noise_has_impulses(self, rng):
        quiet = RealNoiseModel(impulse_rate=0.0)
        bursty = RealNoiseModel(impulse_rate=5e-3, impulse_gain=10.0)
        q = quiet.generate(50_000, 1.0, rng)
        b = bursty.generate(50_000, 1.0, rng)
        # Same mean power but heavier tails for the bursty model.
        assert np.max(np.abs(b)) > np.max(np.abs(q))

    def test_real_noise_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RealNoiseModel(color_pole=1.0)
        with pytest.raises(ConfigurationError):
            RealNoiseModel(impulse_rate=-1.0)
        with pytest.raises(ConfigurationError):
            RealNoiseModel(impulse_duration=0)


class TestSdrReceiver:
    def test_mixer_shifts_baseband_by_minus_rx_fb(self, fast_config):
        # Receiving a pure tone at f with an LO bias δRx yields f − δRx.
        fs = fast_config.sample_rate_hz
        tone_hz = 10e3
        rx_fb = 4e3
        t = np.arange(8192) / fs
        tone = np.exp(2j * np.pi * tone_hz * t)
        receiver = SdrReceiver(sample_rate_hz=fs, fb_hz=rx_fb)
        captured = receiver.capture(tone)
        spectrum = np.abs(np.fft.fft(captured.samples))
        freqs = np.fft.fftfreq(len(t), 1 / fs)
        peak = freqs[int(np.argmax(spectrum))]
        assert peak == pytest.approx(tone_hz - rx_fb, abs=fs / len(t) * 2)

    def test_capture_stamps_start_time(self, fast_config):
        receiver = SdrReceiver(sample_rate_hz=fast_config.sample_rate_hz)
        trace = receiver.capture(np.zeros(16), start_time_s=42.0)
        assert trace.start_time_s == 42.0

    def test_noise_floor_added(self, fast_config, rng):
        receiver = SdrReceiver(sample_rate_hz=1e6, noise_power=0.5)
        trace = receiver.capture(np.zeros(50_000), rng=rng)
        assert trace.power() == pytest.approx(0.5, rel=0.1)

    def test_noise_requires_rng(self):
        receiver = SdrReceiver(sample_rate_hz=1e6, noise_power=0.5)
        with pytest.raises(ConfigurationError):
            receiver.capture(np.zeros(10))

    def test_quantization_limits_levels(self, fast_config):
        receiver = SdrReceiver(sample_rate_hz=1e6, adc_bits=4, adc_full_scale=1.0)
        ramp = np.linspace(-2, 2, 1001) + 0j
        captured = receiver.capture(ramp)
        assert np.max(captured.samples.real) <= 1.0
        assert len(np.unique(captured.samples.real)) <= 16

    def test_rtl_factory_settings(self):
        receiver = SdrReceiver.rtl_sdr(fb_hz=123.0)
        assert receiver.sample_rate_hz == 2.4e6
        assert receiver.adc_bits == 8
        assert receiver.fb_hz == 123.0

    def test_lo_rotation_depends_on_absolute_time(self, fast_config):
        # The LO runs continuously: capturing the same waveform at two
        # different start times yields different constant phase offsets.
        receiver = SdrReceiver(sample_rate_hz=1e6, fb_hz=1.37e3)
        wave = np.ones(64, dtype=complex)
        a = receiver.capture(wave, start_time_s=0.0)
        b = receiver.capture(wave, start_time_s=0.1001)
        assert not np.allclose(a.samples, b.samples)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SdrReceiver(sample_rate_hz=-1)
        with pytest.raises(ConfigurationError):
            SdrReceiver(noise_power=-0.1)
        with pytest.raises(ConfigurationError):
            SdrReceiver(adc_bits=0)


class TestBandlimit:
    def test_preserves_in_band_chirp(self, fast_config):
        chirp = upchirp(fast_config)
        trace = IQTrace(chirp, fast_config.sample_rate_hz)
        filtered = bandlimit_trace(trace, cutoff_hz=100e3)
        # Power loss should be small: the chirp lives inside ±62.5 kHz.
        assert filtered.power() == pytest.approx(trace.power(), rel=0.1)

    def test_removes_out_of_band_noise(self, fast_config, rng):
        fs = fast_config.sample_rate_hz
        noise = complex_awgn(65536, 1.0, rng)
        trace = IQTrace(noise, fs)
        filtered = bandlimit_trace(trace, cutoff_hz=50e3)
        # White noise power shrinks roughly by the bandwidth ratio.
        expected = 2 * 50e3 / fs
        assert filtered.power() == pytest.approx(expected, rel=0.3)

    def test_keeps_timing_metadata(self, fast_config):
        trace = IQTrace(np.ones(4096, dtype=complex), 1e6, start_time_s=9.0)
        filtered = bandlimit_trace(trace, cutoff_hz=100e3)
        assert filtered.start_time_s == 9.0
        assert filtered.sample_rate_hz == 1e6

    def test_invalid_cutoff(self):
        trace = IQTrace(np.ones(4096, dtype=complex), 1e6)
        with pytest.raises(ConfigurationError):
            bandlimit_trace(trace, cutoff_hz=0)
        with pytest.raises(ConfigurationError):
            bandlimit_trace(trace, cutoff_hz=0.6e6)

    def test_too_short_trace(self):
        trace = IQTrace(np.ones(5, dtype=complex), 1e6)
        with pytest.raises(ConfigurationError):
            bandlimit_trace(trace)
