"""The network-server daemon: golden verdicts, control plane, backpressure.

The central guarantee here is the ISSUE's acceptance bar: a daemon fed
the same forward stream as an in-process server issues *bit-identical*
verdicts -- same statuses, same fused floats, same gateway evidence, in
the same order.  The loadgen's recorded oracle makes that a strict
equality over ``ServerVerdict.as_dict()`` streams.
"""

import asyncio
import json

import pytest

from repro.lorawan.downlink import parse_downlink
from repro.lorawan.mac import LinkADRReq, parse_mac_commands
from repro.lorawan.security import SessionKeys
from repro.server import AdrController, NetworkServer
from repro.service import (
    NetworkServerDaemon,
    ServiceConfig,
    build_plan,
    new_server,
    replay,
)
from repro.service.semtech import (
    PullData,
    PullResp,
    PushData,
    TxAck,
    decode_datagram,
    encode_datagram,
    eui_from_gateway_id,
    rxpk_from_forward,
)

def loopback_config(**overrides) -> ServiceConfig:
    defaults = dict(udp_host="127.0.0.1", udp_port=0, http_host="127.0.0.1", http_port=0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def http_get(port: int, path: str) -> tuple[int, bytes]:
    """Minimal async HTTP GET against the daemon's control plane."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body


@pytest.fixture(scope="module")
def plan():
    """One recorded fleet run (clean + attack phases), shared per module."""
    return build_plan(n_devices=10, n_gateways=2, clean_s=90.0, attack_s=90.0)


async def make_daemon(plan, server=None, config=None) -> NetworkServerDaemon:
    """A started daemon provisioned with the plan's devices and profiles."""
    server = server if server is not None else new_server()
    plan.provision(server)
    daemon = NetworkServerDaemon(server=server, config=config or loopback_config())
    await daemon.start()
    return daemon


class TestGoldenVerdicts:
    def test_daemon_verdicts_bit_identical_to_in_process(self, plan):
        async def run():
            daemon = await make_daemon(plan)
            stats = await replay(plan, "127.0.0.1", daemon.udp_port)
            await daemon.drain()
            await daemon.stop()
            return stats, [v.as_dict() for v in daemon.server.verdicts]

        stats, got = asyncio.run(run())
        assert stats.forwards_sent == plan.n_forwards
        assert stats.acks_received == stats.datagrams_sent
        assert got == list(plan.oracle_verdicts)

    def test_plan_covers_every_verdict_path(self, plan):
        statuses = {v["status"] for v in plan.oracle_verdicts}
        assert "accepted" in statuses
        assert "replay_detected" in statuses
        assert any(v["duplicates_dropped"] >= 0 and len(v["gateway_ids"]) > 1
                   for v in plan.oracle_verdicts), "no multi-gateway dedup exercised"


class TestControlPlane:
    def test_devices_verdicts_and_metrics(self, plan):
        async def run():
            daemon = await make_daemon(plan)
            await replay(plan, "127.0.0.1", daemon.udp_port)
            await daemon.drain()
            port = daemon.http_port
            out = {}
            out["health"] = await http_get(port, "/healthz")
            out["device"] = await http_get(port, "/devices/26000000")
            out["missing"] = await http_get(port, "/devices/deadbeef")
            out["badaddr"] = await http_get(port, "/devices/nothex")
            out["page"] = await http_get(port, "/verdicts?offset=1&limit=2")
            out["metrics"] = await http_get(port, "/metrics")
            out["nothere"] = await http_get(port, "/nothere")
            out["state"] = daemon.server.device_state(0x26000000)
            await daemon.stop()
            return out

        out = asyncio.run(run())
        status, body = out["health"]
        health = json.loads(body)
        assert status == 200 and health["status"] == "ok"
        assert health["verdicts_total"] == len(plan.oracle_verdicts)
        assert {g["gateway_id"] for g in health["gateways"]} == set(plan.gateway_ids)

        status, body = out["device"]
        device = json.loads(body)
        assert status == 200
        assert device == out["state"]
        assert device["fb_profile"]["sample_count"] >= 5
        assert device["last_verdict"] is not None

        assert out["missing"][0] == 404
        assert out["badaddr"][0] == 400
        assert out["nothere"][0] == 404

        status, body = out["page"]
        page = json.loads(body)
        assert status == 200
        assert page["total"] == len(plan.oracle_verdicts)
        assert page["verdicts"] == list(plan.oracle_verdicts[1:3])

        status, body = out["metrics"]
        text = body.decode()
        assert status == 200
        assert f"repro_service_uplinks_total {plan.n_forwards}" in text
        by_status = {}
        for verdict in plan.oracle_verdicts:
            by_status[verdict["status"]] = by_status.get(verdict["status"], 0) + 1
        for name, count in by_status.items():
            assert f'repro_service_verdicts_total{{status="{name}"}} {count}' in text
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_uplinks_per_s" in text

    def test_verdict_paging_is_capped_by_config(self, plan):
        async def run():
            daemon = await make_daemon(plan, config=loopback_config(verdict_page_limit=3))
            await replay(plan, "127.0.0.1", daemon.udp_port)
            await daemon.drain()
            page = await http_get(daemon.http_port, "/verdicts?limit=999")
            await daemon.stop()
            return page

        status, body = asyncio.run(run())
        page = json.loads(body)
        assert status == 200
        assert page["limit"] == 3
        assert len(page["verdicts"]) == 3


class TestBackpressure:
    def test_overflow_sheds_forwards_and_counts(self, plan):
        async def run():
            server = new_server()
            plan.provision(server)
            daemon = NetworkServerDaemon(
                server=server,
                config=loopback_config(queue_limit=5, linger_s=5.0, max_hold_s=10.0),
            )
            await daemon.start()
            # Bypass the socket: feed the handler directly so nothing
            # drains between datagrams (the worker never sees a tick).
            big = plan.batches[0] * 10
            rxpks = tuple(rxpk_from_forward(f) for f in big[:20])
            message = PushData(
                token=1, gateway_eui=eui_from_gateway_id("gw-0"), rxpks=rxpks
            )
            daemon.handle_datagram(encode_datagram(message), ("127.0.0.1", 40000))
            accepted = daemon.metrics.get("repro_service_uplinks_total").total()
            shed = daemon.metrics.get("repro_service_queue_overflow_total").total()
            await daemon.stop()
            return accepted, shed

        accepted, shed = asyncio.run(run())
        assert accepted == 5
        assert shed == 15

    def test_linger_flush_without_stat_beacon(self, plan):
        """Real forwarders send no ticks; the linger timer must flush."""

        async def run():
            server = new_server()
            plan.provision(server)
            daemon = NetworkServerDaemon(
                server=server, config=loopback_config(linger_s=0.02)
            )
            await daemon.start()
            batch = plan.batches[0]
            rxpks = tuple(rxpk_from_forward(f) for f in batch)
            message = PushData(
                token=1, gateway_eui=eui_from_gateway_id("gw-0"), rxpks=rxpks
            )
            daemon.handle_datagram(encode_datagram(message), ("127.0.0.1", 40000))
            await daemon.drain(timeout_s=5.0)
            count = len(daemon.server.verdicts)
            await daemon.stop()
            return count

        assert asyncio.run(run()) > 0


class TestAdrDownlink:
    def test_pending_command_leaves_as_pull_resp(self, plan):
        async def run():
            server = new_server(adr=AdrController())
            plan.provision(server)
            dev_addr = plan.registrations[0][0]
            # Four strong SF12 observations queue one retune command.
            for i in range(4):
                server.adr.observe(dev_addr, 20.0, 12, float(i))
            assert server.adr.pending
            daemon = NetworkServerDaemon(server=server, config=loopback_config())
            await daemon.start()

            class Client(asyncio.DatagramProtocol):
                def __init__(self):
                    self.inbox = asyncio.Queue()

                def datagram_received(self, data, addr):
                    self.inbox.put_nowait(decode_datagram(data))

            loop = asyncio.get_running_loop()
            transport, client = await loop.create_datagram_endpoint(
                Client, remote_addr=("127.0.0.1", daemon.udp_port)
            )
            eui = eui_from_gateway_id(plan.gateway_ids[0])
            transport.sendto(encode_datagram(PullData(token=9, gateway_eui=eui)))
            # A stat-only PUSH_DATA forces a flush, which dispatches ADR.
            beacon = PushData(token=10, gateway_eui=eui, rxpks=(), stat={"rxnb": 0})
            transport.sendto(encode_datagram(beacon))
            resp = None
            for _ in range(8):
                message = await asyncio.wait_for(client.inbox.get(), 5.0)
                if isinstance(message, PullResp):
                    resp = message
                    break
            assert resp is not None
            inflight = daemon.metrics.get("repro_service_adr_commands_in_flight").get()
            transport.sendto(encode_datagram(TxAck(token=resp.token, gateway_eui=eui)))
            await asyncio.sleep(0.05)
            settled = daemon.metrics.get("repro_service_adr_commands_in_flight").get()
            transport.close()
            await daemon.stop()
            keys = dict(plan.registrations)[dev_addr]
            return resp, inflight, settled, keys, dev_addr

        resp, inflight, settled, keys, dev_addr = asyncio.run(run())
        assert inflight == 1.0
        assert settled == 0.0
        frame = parse_downlink(resp.payload_bytes(), keys)
        assert frame.dev_addr == dev_addr
        (request,) = parse_mac_commands(frame.frm_payload, uplink=False)
        assert isinstance(request, LinkADRReq)

    def test_command_without_poller_is_returned_to_controller(self, plan):
        async def run():
            server = new_server(adr=AdrController())
            plan.provision(server)
            dev_addr = plan.registrations[0][0]
            for i in range(4):
                server.adr.observe(dev_addr, 20.0, 12, float(i))
            daemon = NetworkServerDaemon(server=server, config=loopback_config())
            await daemon.start()
            daemon._pending = []
            daemon._dispatch_adr()
            undeliverable = daemon.metrics.get(
                "repro_service_adr_undeliverable_total"
            ).total()
            await daemon.stop()
            return undeliverable, server.adr.pending

        undeliverable, pending = asyncio.run(run())
        assert undeliverable == 1
        assert pending == []


class TestProvisioningCli:
    def test_main_module_provisions_devices(self, tmp_path):
        from repro.service.__main__ import _provision

        keys = SessionKeys.derive_for_test(0x26000042)
        table = {
            "26000042": {
                "nwk_skey": keys.nwk_skey.hex(),
                "app_skey": keys.app_skey.hex(),
                "fb_profile": [-20.0, 5.0, 30.0],
            }
        }
        path = tmp_path / "devices.json"
        path.write_text(json.dumps(table))
        server = NetworkServer()
        assert _provision(server, str(path)) == 1
        state = server.device_state(0x26000042)
        assert state is not None
        assert state["fb_profile"]["sample_count"] == 3


class TestPersistentStore:
    def test_daemon_restart_resumes_bit_identically(self, plan, tmp_path):
        """Kill the daemon mid-scenario; a sqlite store resumes exactly.

        The first daemon replays half the plan's batches into a durable
        store and stops gracefully; a *fresh* daemon (new server, new
        MAC state, new dedup) reopens the same store file, provisioning
        skips the FB bootstraps because the histories are on disk, and
        the remaining batches produce the oracle's verdicts bit for bit.
        """
        import dataclasses

        from repro.core.detector import ReplayDetector
        from repro.server.store import SqliteFbStore

        path = tmp_path / "fb.sqlite"
        half = len(plan.batches) // 2
        first_half = dataclasses.replace(plan, batches=plan.batches[:half])
        second_half = dataclasses.replace(plan, batches=plan.batches[half:])

        async def run_half(sub_plan):
            store = SqliteFbStore(path)
            server = NetworkServer(detector=ReplayDetector(database=store))
            daemon = await make_daemon(sub_plan, server=server)
            await replay(sub_plan, "127.0.0.1", daemon.udp_port)
            await daemon.drain()
            _, metrics = await http_get(daemon.http_port, "/metrics")
            _, health = await http_get(daemon.http_port, "/healthz")
            await daemon.stop()
            store.close()
            return [v.as_dict() for v in daemon.server.verdicts], metrics, health

        before, _, _ = asyncio.run(run_half(first_half))
        after, metrics, health = asyncio.run(run_half(second_half))
        assert before + after == list(plan.oracle_verdicts)

        text = metrics.decode()
        assert "# TYPE repro_service_store_nodes gauge" in text
        assert "repro_service_store_batches_total" in text
        assert "repro_service_store_flush_seconds" in text
        assert "repro_service_store_cache_hit_rate" in text
        store_health = json.loads(health)["store"]
        assert store_health["backend"] == "SqliteFbStore"
        assert store_health["node_count"] == len(plan.registrations)

    def test_memory_store_reports_unit_hit_rate(self, plan):
        async def run():
            daemon = await make_daemon(plan)
            await replay(plan, "127.0.0.1", daemon.udp_port)
            await daemon.drain()
            rate = daemon.metrics.get("repro_service_store_cache_hit_rate").get()
            nodes = daemon.metrics.get("repro_service_store_nodes").get()
            await daemon.stop()
            return rate, nodes

        rate, nodes = asyncio.run(run())
        assert rate == 1.0
        assert nodes == len(plan.registrations)

    def test_provision_cli_is_idempotent_over_a_persistent_store(self, tmp_path):
        from repro.core.detector import ReplayDetector
        from repro.server.store import SqliteFbStore
        from repro.service.__main__ import _provision

        keys = SessionKeys.derive_for_test(0x26000042)
        table = {
            "26000042": {
                "nwk_skey": keys.nwk_skey.hex(),
                "app_skey": keys.app_skey.hex(),
                "fb_profile": [-20.0, 5.0, 30.0],
            }
        }
        path = tmp_path / "devices.json"
        path.write_text(json.dumps(table))
        db_path = tmp_path / "fb.sqlite"

        store = SqliteFbStore(db_path)
        server = NetworkServer(detector=ReplayDetector(database=store))
        _provision(server, str(path))
        assert store.sample_count("26000042") == 3
        store.close()

        # Second boot on the same file: the profile must not re-record.
        reopened = SqliteFbStore(db_path)
        server = NetworkServer(detector=ReplayDetector(database=reopened))
        _provision(server, str(path))
        assert reopened.sample_count("26000042") == 3
        reopened.close()
