"""Tests for PHY frame assembly and decode (repro.phy.frame)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, CrcError, DecodeError
from repro.phy.frame import (
    PhyFrame,
    PhyHeader,
    PhyReceiver,
    PhyTransmitter,
    crc16_ccitt,
    frame_layout,
    sfd_n_samples,
)
from repro.sdr.noise import add_noise_for_snr


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_detects_change(self):
        assert crc16_ccitt(b"hello") != crc16_ccitt(b"hellp")


class TestPhyHeader:
    def test_roundtrip(self):
        header = PhyHeader(payload_len=42, coding_rate=3, has_crc=True)
        assert PhyHeader.from_bytes(header.to_bytes()) == header

    def test_checksum_detects_corruption(self):
        raw = bytearray(PhyHeader(payload_len=10).to_bytes())
        raw[0] ^= 0xFF
        with pytest.raises(CrcError):
            PhyHeader.from_bytes(bytes(raw))

    def test_short_input(self):
        with pytest.raises(DecodeError):
            PhyHeader.from_bytes(b"\x01")

    def test_invalid_fields(self):
        with pytest.raises(ConfigurationError):
            PhyHeader(payload_len=300)
        with pytest.raises(ConfigurationError):
            PhyHeader(payload_len=1, coding_rate=0)


class TestPhyFrame:
    def test_payload_with_crc_appends_two_bytes(self):
        frame = PhyFrame(payload=b"abc")
        assert len(frame.payload_with_crc()) == 5

    def test_no_crc_mode(self):
        frame = PhyFrame(payload=b"abc", has_crc=False)
        assert frame.payload_with_crc() == b"abc"

    def test_sync_symbols_derived_from_sync_word(self, fast_config):
        frame = PhyFrame(payload=b"", sync_word=0x34)
        hi, lo = frame.sync_symbols(fast_config)
        assert hi == (3 << 3) % 128
        assert lo == (4 << 3) % 128

    def test_oversized_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            PhyFrame(payload=bytes(256))


class TestFrameLayout:
    def test_monotone_segments(self, fast_config):
        frame = PhyFrame(payload=b"0123456789")
        layout = frame_layout(frame, fast_config)
        assert (
            layout.preamble_start
            < layout.sync_start
            < layout.sfd_start
            < layout.header_start
            < layout.payload_start
            < layout.end
        )

    def test_layout_matches_waveform_length(self, fast_config):
        frame = PhyFrame(payload=b"payload bytes!")
        layout = frame_layout(frame, fast_config)
        wave = PhyTransmitter(fast_config).modulate(frame)
        assert len(wave) == layout.end

    def test_shift(self, fast_config):
        frame = PhyFrame(payload=b"x")
        layout = frame_layout(frame, fast_config)
        shifted = layout.shifted(100)
        assert shifted.preamble_start == 100
        assert shifted.end == layout.end + 100

    def test_sfd_length(self, fast_config):
        assert sfd_n_samples(fast_config) == int(round(2.25 * fast_config.samples_per_chirp))


class TestEndToEnd:
    def test_clean_roundtrip(self, fast_config):
        frame = PhyFrame(payload=b"the quick brown fox")
        wave = PhyTransmitter(fast_config).modulate(frame, phase=0.3)
        result = PhyReceiver(fast_config).decode(wave, onset_index=0)
        assert result.payload == frame.payload
        assert result.crc_ok
        assert result.header.payload_len == len(frame.payload)

    def test_roundtrip_with_fb(self, fast_config):
        frame = PhyFrame(payload=b"biased transmitter")
        wave = PhyTransmitter(fast_config, fb_hz=-21e3).modulate(frame, phase=2.0)
        result = PhyReceiver(fast_config).decode(wave, onset_index=0, fb_hz=-21e3)
        assert result.payload == frame.payload

    def test_roundtrip_with_noise_and_offset(self, fast_config, rng):
        frame = PhyFrame(payload=b"noisy but fine", coding_rate=2)
        wave = PhyTransmitter(fast_config).modulate(frame)
        padded = np.concatenate([np.zeros(777, dtype=complex), wave])
        noisy = add_noise_for_snr(padded, snr_db=10.0, rng=rng)
        result = PhyReceiver(fast_config).decode(noisy, onset_index=777)
        assert result.payload == frame.payload

    def test_sync_word_mismatch_raises(self, fast_config):
        frame = PhyFrame(payload=b"zzz", sync_word=0x12)
        wave = PhyTransmitter(fast_config).modulate(frame)
        with pytest.raises(DecodeError):
            PhyReceiver(fast_config).decode(wave, onset_index=0, sync_word=0x34)

    def test_sync_check_can_be_disabled(self, fast_config):
        frame = PhyFrame(payload=b"zzz", sync_word=0x12)
        wave = PhyTransmitter(fast_config).modulate(frame)
        result = PhyReceiver(fast_config).decode(
            wave, onset_index=0, sync_word=0x34, check_sync=False
        )
        assert result.payload == frame.payload

    def test_corrupted_payload_raises_crc_error(self, fast_config):
        frame = PhyFrame(payload=b"integrity matters here")
        wave = PhyTransmitter(fast_config).modulate(frame)
        layout = frame_layout(frame, fast_config)
        corrupted = wave.copy()
        # Zero several payload chirps: enough symbol damage to defeat CR1.
        start = layout.payload_start
        corrupted[start : start + 3 * fast_config.samples_per_chirp] = 0
        with pytest.raises((CrcError, DecodeError)):
            PhyReceiver(fast_config).decode(corrupted, onset_index=0)

    def test_corrupted_header_raises(self, fast_config):
        frame = PhyFrame(payload=b"header gone")
        wave = PhyTransmitter(fast_config).modulate(frame)
        layout = frame_layout(frame, fast_config)
        corrupted = wave.copy()
        corrupted[layout.header_start : layout.payload_start] = 0
        with pytest.raises(DecodeError):
            PhyReceiver(fast_config).decode(corrupted, onset_index=0)

    @pytest.mark.parametrize("cr", [1, 2, 3, 4])
    def test_all_coding_rates(self, fast_config, cr):
        frame = PhyFrame(payload=b"cr sweep", coding_rate=cr)
        wave = PhyTransmitter(fast_config).modulate(frame)
        assert PhyReceiver(fast_config).decode(wave, onset_index=0).payload == frame.payload

    def test_empty_payload_frame(self, fast_config):
        frame = PhyFrame(payload=b"")
        wave = PhyTransmitter(fast_config).modulate(frame)
        result = PhyReceiver(fast_config).decode(wave, onset_index=0)
        assert result.payload == b""
        assert result.crc_ok
