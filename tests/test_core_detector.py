"""Tests for replay detection (repro.core.detector) -- paper Sec. 7.2."""

import pytest

from repro.constants import SINGLE_USRP_REPLAY_FB_RANGE_HZ
from repro.core.detector import FbDatabase, FbInterval, ReplayDetector
from repro.errors import ConfigurationError


class TestFbDatabase:
    def test_record_and_query(self):
        db = FbDatabase()
        db.record("node", -20000.0)
        db.record("node", -20050.0)
        assert db.sample_count("node") == 2
        assert db.estimates("node") == [-20000.0, -20050.0]

    def test_interval_covers_range_plus_guard(self):
        db = FbDatabase()
        for fb in (-20000.0, -20100.0, -19950.0):
            db.record("node", fb)
        interval = db.interval("node", guard_hz=100.0)
        assert interval == FbInterval(low_hz=-20200.0, high_hz=-19850.0)

    def test_interval_of_unknown_node_is_none(self):
        assert FbDatabase().interval("ghost", 100.0) is None

    def test_history_bounded(self):
        db = FbDatabase(history_len=5)
        for i in range(20):
            db.record("node", float(i))
        assert db.sample_count("node") == 5
        assert db.estimates("node") == [15.0, 16.0, 17.0, 18.0, 19.0]

    def test_bounded_history_tracks_drift(self):
        # Old estimates age out, letting the interval follow slow benign
        # drift (temperature) without growing without bound.
        db = FbDatabase(history_len=4)
        for fb in (-20000.0, -19990.0, -19980.0, -19970.0, -19960.0, -19950.0):
            db.record("node", fb)
        interval = db.interval("node", guard_hz=0.0)
        assert interval.low_hz == -19980.0

    def test_forget(self):
        db = FbDatabase()
        db.record("node", 1.0)
        db.forget("node")
        assert db.sample_count("node") == 0

    def test_known_nodes_sorted(self):
        db = FbDatabase()
        db.record("b", 1.0)
        db.record("a", 1.0)
        assert db.known_nodes() == ["a", "b"]

    def test_invalid_history_len(self):
        with pytest.raises(ConfigurationError):
            FbDatabase(history_len=0)


class TestReplayDetector:
    @staticmethod
    def trained_detector(fb=-20000.0, guard=360.0, spread=50.0):
        detector = ReplayDetector(database=FbDatabase(), guard_hz=guard)
        detector.bootstrap("node", [fb - spread, fb, fb + spread])
        return detector

    def test_learning_phase_accepts_and_learns(self):
        detector = ReplayDetector(database=FbDatabase(), min_history=3)
        for i in range(3):
            result = detector.check("new", -20000.0 + i)
            assert not result.is_replay
            assert "learning" in result.reason
        assert detector.database.sample_count("new") == 3

    def test_in_range_accepted(self):
        detector = self.trained_detector()
        result = detector.check("node", -20030.0)
        assert not result.is_replay

    def test_guard_band_tolerates_estimation_noise(self):
        detector = self.trained_detector(guard=360.0, spread=50.0)
        # 100 Hz beyond the recorded extreme but within the guard band.
        assert not detector.check("node", -20150.0).is_replay

    def test_single_usrp_replay_detected(self):
        # The smallest measured replay offset (543 Hz) exceeds the guard
        # band (3 x 120 Hz): every Fig. 13 replay trips the detector.
        detector = self.trained_detector()
        for offset in SINGLE_USRP_REPLAY_FB_RANGE_HZ:
            result = detector.check("node", -20000.0 + offset)
            assert result.is_replay
            assert result.deviation_hz > 0

    def test_dual_usrp_replay_detected(self):
        detector = self.trained_detector()
        assert detector.check("node", -22000.0).is_replay

    def test_accepted_frames_update_database(self):
        detector = self.trained_detector()
        before = detector.database.sample_count("node")
        detector.check("node", -20010.0)
        assert detector.database.sample_count("node") == before + 1

    def test_flagged_frames_never_update_database(self):
        # Sec. 7.2: an FB from a detected replay must not poison history.
        detector = self.trained_detector()
        before = detector.database.estimates("node")
        detector.check("node", -25000.0)
        assert detector.database.estimates("node") == before

    def test_learning_can_be_disabled(self):
        detector = self.trained_detector()
        detector.learn_on_accept = False
        before = detector.database.sample_count("node")
        detector.check("node", -20000.0)
        assert detector.database.sample_count("node") == before

    def test_benign_temperature_drift_tracked(self):
        # Slow drift of ~20 Hz/frame stays within the guard band and the
        # detector follows it across a large cumulative excursion.
        detector = self.trained_detector()
        fb = -20000.0
        for step in range(50):
            fb += 20.0
            assert not detector.check("node", fb).is_replay
        # After drifting 1 kHz, the original value is now out of range.
        assert fb - (-20000.0) == pytest.approx(1000.0)

    def test_detection_does_not_require_unique_fbs(self):
        # Two nodes sharing an FB: detection is per-node change, not
        # identification (paper Sec. 7.2, note 2).
        detector = ReplayDetector(database=FbDatabase())
        detector.bootstrap("a", [-20000.0, -20010.0, -19990.0])
        detector.bootstrap("b", [-20000.0, -20010.0, -19990.0])
        assert not detector.check("a", -20000.0).is_replay
        assert not detector.check("b", -20000.0).is_replay
        assert detector.check("a", -20600.0).is_replay

    def test_checks_are_recorded(self):
        detector = self.trained_detector()
        detector.check("node", -20000.0)
        detector.check("node", -25000.0)
        assert len(detector.checks) == 2
        assert [c.is_replay for c in detector.checks] == [False, True]

    def test_deviation_reported(self):
        detector = self.trained_detector(guard=360.0, spread=0.0)
        result = detector.check("node", -21000.0)
        assert result.deviation_hz == pytest.approx(1000.0 - 360.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ReplayDetector(database=FbDatabase(), guard_hz=0.0)
        with pytest.raises(ConfigurationError):
            ReplayDetector(database=FbDatabase(), min_history=0)


class TestFbInterval:
    def test_contains(self):
        interval = FbInterval(low_hz=-10.0, high_hz=10.0)
        assert interval.contains(0.0)
        assert interval.contains(-10.0)
        assert interval.contains(10.0)
        assert not interval.contains(10.1)

    def test_width(self):
        assert FbInterval(low_hz=-5.0, high_hz=15.0).width_hz == 20.0
