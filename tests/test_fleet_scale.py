"""Tests for the fleet_scale experiment driver (small grid)."""

import pytest

from repro.experiments.fleet_scale import run_fleet_scale
from repro.server import FusionPolicy


@pytest.fixture(scope="module")
def result():
    return run_fleet_scale(
        gateway_counts=(1, 4),
        device_counts=(24,),
        clean_rounds=3,
        attack_rounds=1,
        attack_fraction=0.1,
    )


class TestFleetScale:
    def test_grid_covers_every_cell(self, result):
        assert [(c.n_gateways, c.n_devices) for c in result.cells] == [
            (1, 24),
            (4, 24),
        ]

    def test_more_gateways_never_hurt_delivery(self, result):
        assert result.cell(4, 24).delivery_rate >= result.cell(1, 24).delivery_rate

    def test_dedup_rate_grows_with_gateways(self, result):
        assert result.cell(1, 24).dedup_rate == pytest.approx(1.0)
        assert result.cell(4, 24).dedup_rate > 1.0

    def test_fusion_no_worse_than_best_single_gateway(self, result):
        cell = result.cell(4, 24)
        assert cell.fused_fb_mae_hz <= cell.best_single_fb_mae_hz

    def test_attack_detected_without_false_alarms(self, result):
        for cell in result.cells:
            assert cell.detection_tpr == 1.0
            assert cell.detection_fpr == 0.0

    def test_format(self, result):
        table = result.format()
        assert "Fleet scale" in table
        assert FusionPolicy.INVERSE_VARIANCE.value in table

    def test_best_snr_policy_runs(self):
        result = run_fleet_scale(
            gateway_counts=(2,),
            device_counts=(8,),
            clean_rounds=2,
            attack_rounds=1,
            fusion=FusionPolicy.BEST_SNR,
        )
        (cell,) = result.cells
        assert cell.resolved_uplinks > 0
        assert FusionPolicy.BEST_SNR.value in result.format()
