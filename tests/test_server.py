"""Tests for the network-server layer: dedup, fusion, sharding, verdicts."""

import numpy as np
import pytest

from repro.core.detector import FbDatabase, ReplayDetector
from repro.errors import ConfigurationError
from repro.lorawan.mac import build_uplink
from repro.lorawan.security import SessionKeys
from repro.server import (
    FusionPolicy,
    GatewayForward,
    NetworkServer,
    ServerStatus,
    ShardedFbDatabase,
    UplinkDeduplicator,
    best_snr_contribution,
    fuse_fb,
    fuse_timestamp_s,
)
from repro.sim.network import FbMeasurementModel

DEV_ADDR = 0x26011BDA
KEYS = SessionKeys.derive_for_test(DEV_ADDR)


def frame(fcnt: int, payload: bytes = b"\x01\x02") -> bytes:
    return build_uplink(KEYS, DEV_ADDR, fcnt, payload)


def forward(
    gateway_id: str,
    fcnt: int = 0,
    arrival: float = 100.0,
    fb: float = -20e3,
    snr: float = 10.0,
    mac_bytes: bytes | None = None,
) -> GatewayForward:
    return GatewayForward(
        gateway_id=gateway_id,
        mac_bytes=frame(fcnt) if mac_bytes is None else mac_bytes,
        arrival_time_s=arrival,
        fb_hz=fb,
        snr_db=snr,
    )


class TestDeduplicator:
    def test_copies_of_one_uplink_group(self):
        dedup = UplinkDeduplicator()
        raw = frame(7)
        for gw in ("gw-0", "gw-1", "gw-2"):
            dedup.offer(forward(gw, fcnt=7, mac_bytes=raw))
        uplinks = dedup.resolve()
        assert len(uplinks) == 1
        assert uplinks[0].key == (DEV_ADDR, 7)
        assert uplinks[0].n_gateways == 3

    def test_distinct_fcnts_stay_distinct(self):
        dedup = UplinkDeduplicator()
        dedup.offer(forward("gw-0", fcnt=1))
        dedup.offer(forward("gw-0", fcnt=2, arrival=100.1))
        assert len(dedup.resolve()) == 2

    def test_same_gateway_duplicate_dropped(self):
        dedup = UplinkDeduplicator()
        dedup.offer(forward("gw-0", fcnt=3, arrival=100.0))
        dedup.offer(forward("gw-0", fcnt=3, arrival=100.2))
        (uplink,) = dedup.resolve()
        assert uplink.n_gateways == 1
        assert uplink.duplicates_dropped == 1
        assert uplink.first_arrival_s == 100.0

    def test_window_separates_counter_reuse(self):
        dedup = UplinkDeduplicator(window_s=2.0)
        dedup.offer(forward("gw-0", fcnt=5, arrival=100.0))
        dedup.offer(forward("gw-1", fcnt=5, arrival=5000.0))  # wrap, much later
        uplinks = dedup.resolve()
        assert len(uplinks) == 2
        assert [u.first_arrival_s for u in uplinks] == [100.0, 5000.0]

    def test_resolve_clears_state(self):
        dedup = UplinkDeduplicator()
        dedup.offer(forward("gw-0"))
        assert dedup.pending == 1
        dedup.resolve()
        assert dedup.pending == 0
        assert dedup.resolve() == []

    def test_unparseable_forward_counted(self):
        dedup = UplinkDeduplicator()
        assert dedup.offer(forward("gw-0", mac_bytes=b"\xff\x00\x01")) is None
        assert dedup.malformed == 1

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            UplinkDeduplicator(window_s=0.0)


class TestForwardConstructors:
    def test_forward_validation(self):
        with pytest.raises(ConfigurationError):
            GatewayForward(gateway_id="", mac_bytes=b"x", arrival_time_s=0, fb_hz=0, snr_db=0)
        with pytest.raises(ConfigurationError):
            GatewayForward(gateway_id="gw", mac_bytes=b"", arrival_time_s=0, fb_hz=0, snr_db=0)

    def test_forward_from_reception(self):
        from repro.core.softlora import SoftLoRaGateway
        from repro.lorawan.gateway import CommodityGateway
        from repro.phy.chirp import ChirpConfig
        from repro.server import forward_from_reception

        config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
        gateway = SoftLoRaGateway(config=config, commodity=CommodityGateway())
        gateway.commodity.register_device(DEV_ADDR, KEYS)
        raw = frame(0)
        reception = gateway.process_frame(raw, 123.0, -20e3)
        fwd = forward_from_reception("gw-7", reception, snr_db=12.0, mac_bytes=raw)
        assert fwd.gateway_id == "gw-7"
        assert fwd.mac_bytes == raw
        assert fwd.arrival_time_s == 123.0
        assert fwd.fb_hz == -20e3
        assert fwd.snr_db == 12.0

    def test_forward_from_event(self):
        from repro.core.softlora import SoftLoRaReception, SoftLoRaStatus
        from repro.lorawan.device import UplinkTransmission
        from repro.phy.frame import PhyFrame
        from repro.server import forward_from_event
        from repro.sim.network import EventKind, WorldEvent

        raw = frame(0)
        tx = UplinkTransmission(
            device_name="node",
            dev_addr=DEV_ADDR,
            mac_bytes=raw,
            phy_frame=PhyFrame(payload=raw),
            request_time_s=10.0,
            emission_time_s=10.003,
            fb_hz=-20e3,
            tx_power_dbm=14.0,
            spreading_factor=7,
            airtime_s=0.05,
        )
        reception = SoftLoRaReception(
            status=SoftLoRaStatus.ACCEPTED, phy_timestamp_s=10.003, fb_hz=-20.1e3
        )
        event = WorldEvent(
            kind=EventKind.DELIVERED,
            time_s=10.003,
            device_name="node",
            snr_db=9.0,
            transmission=tx,
            reception=reception,
        )
        fwd = forward_from_event("gw-2", event)
        assert fwd.mac_bytes == raw
        assert fwd.fb_hz == -20.1e3
        assert fwd.snr_db == 9.0

    def test_forward_from_event_without_frame_rejected(self):
        from repro.server import forward_from_event
        from repro.sim.network import EventKind, WorldEvent

        lost = WorldEvent(
            kind=EventKind.LOST_LOW_SNR, time_s=1.0, device_name="node", snr_db=-30.0
        )
        with pytest.raises(ConfigurationError):
            forward_from_event("gw-0", lost)


class TestFusion:
    def setup_method(self):
        self.model = FbMeasurementModel()

    def test_best_snr_picks_strongest_link(self):
        contribs = [
            forward("gw-0", fb=-20100.0, snr=5.0),
            forward("gw-1", fb=-19900.0, snr=15.0),
        ]
        fused = fuse_fb(contribs, FusionPolicy.BEST_SNR, self.model)
        assert fused.fb_hz == -19900.0
        assert fused.best_gateway_id == "gw-1"
        assert fused.sigma_hz == self.model.sigma_hz(15.0)

    def test_best_snr_tie_breaks_by_gateway_id(self):
        contribs = [forward("gw-1", fb=1.0, snr=10.0), forward("gw-0", fb=2.0, snr=10.0)]
        assert best_snr_contribution(contribs).gateway_id == "gw-1"

    def test_inverse_variance_is_weighted_mean(self):
        contribs = [
            forward("gw-0", fb=-20000.0, snr=-20.0),
            forward("gw-1", fb=-19000.0, snr=-20.0),
        ]
        fused = fuse_fb(contribs, FusionPolicy.INVERSE_VARIANCE, self.model)
        assert fused.fb_hz == pytest.approx(-19500.0)
        # Equal sigmas: fused sigma shrinks by sqrt(2).
        assert fused.sigma_hz == pytest.approx(self.model.sigma_hz(-20.0) / np.sqrt(2))

    def test_inverse_variance_leans_toward_strong_link(self):
        contribs = [
            forward("gw-0", fb=-20000.0, snr=-25.0),
            forward("gw-1", fb=-19000.0, snr=30.0),
        ]
        fused = fuse_fb(contribs, FusionPolicy.INVERSE_VARIANCE, self.model)
        assert abs(fused.fb_hz - -19000.0) < 50.0

    def test_timestamp_is_earliest(self):
        contribs = [forward("gw-0", arrival=100.003), forward("gw-1", arrival=100.001)]
        assert fuse_timestamp_s(contribs) == 100.001

    def test_zero_contributions_rejected(self):
        with pytest.raises(ConfigurationError):
            fuse_fb([], FusionPolicy.BEST_SNR, self.model)
        with pytest.raises(ConfigurationError):
            fuse_timestamp_s([])


class TestShardedFbDatabase:
    def test_drop_in_for_flat_database(self):
        sharded = ShardedFbDatabase(n_shards=4)
        flat = FbDatabase()
        for node in ("aaaa", "bbbb", "cccc"):
            for fb in (-20e3, -20.1e3, -19.9e3):
                sharded.record(node, fb, time_s=1.0)
                flat.record(node, fb, time_s=1.0)
        for node in ("aaaa", "bbbb", "cccc"):
            assert sharded.estimates(node) == flat.estimates(node)
            assert sharded.sample_count(node) == flat.sample_count(node)
            assert sharded.interval(node, 360.0) == flat.interval(node, 360.0)
        assert sharded.known_nodes() == flat.known_nodes()
        assert sharded.node_count() == 3

    def test_routing_is_stable_and_total(self):
        sharded = ShardedFbDatabase(n_shards=8)
        nodes = [f"{i:08x}" for i in range(100)]
        for node in nodes:
            sharded.record(node, -20e3)
        assert sharded.node_count() == 100
        assert sum(sharded.shard_sizes()) == 100
        for node in nodes:
            assert sharded.shard_index(node) == sharded.shard_index(node)
            assert sharded.shard_for(node).sample_count(node) == 1

    def test_forget_reaches_owning_shard(self):
        sharded = ShardedFbDatabase(n_shards=4)
        sharded.record("node", -20e3)
        sharded.forget("node")
        assert sharded.node_count() == 0

    def test_detector_accepts_sharded_store(self):
        detector = ReplayDetector(database=ShardedFbDatabase(n_shards=4), min_history=2)
        for _ in range(2):
            assert not detector.check("node", -20e3).is_replay
        assert detector.check("node", -19.99e3).is_replay is False
        assert detector.check("node", -15e3).is_replay is True

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedFbDatabase(n_shards=0)


class TestNetworkServer:
    def make_server(self, **kwargs) -> NetworkServer:
        server = NetworkServer(**kwargs)
        server.register_device(DEV_ADDR, KEYS)
        return server

    def test_one_verdict_per_uplink(self):
        server = self.make_server()
        raw = frame(0)
        forwards = [
            forward(f"gw-{i}", fcnt=0, mac_bytes=raw, arrival=100.0 + i * 1e-4, snr=10.0 + i)
            for i in range(4)
        ]
        verdicts = server.process_step(forwards)
        assert len(verdicts) == 1
        verdict = verdicts[0]
        assert verdict.status is ServerStatus.ACCEPTED
        assert verdict.n_gateways == 4
        assert verdict.timestamp_s == 100.0
        assert verdict.fused.best_gateway_id == "gw-3"
        assert server.dedup_rate == 4.0

    def test_mac_checked_once_per_uplink(self):
        server = self.make_server()
        raw = frame(0)
        server.process_step(
            [forward(f"gw-{i}", fcnt=0, mac_bytes=raw, arrival=100.0) for i in range(4)]
        )
        assert len(server.mac.receptions) == 1

    def test_unknown_device_rejected(self):
        server = NetworkServer()  # no keys provisioned
        (verdict,) = server.process_step([forward("gw-0")])
        assert verdict.status is ServerStatus.MAC_REJECTED

    def test_replay_fcnt_reuse_rejected_by_counter(self):
        server = self.make_server()
        raw = frame(0)
        server.process_step([forward("gw-0", fcnt=0, mac_bytes=raw, arrival=100.0)])
        (verdict,) = server.process_step(
            [forward("gw-0", fcnt=0, mac_bytes=raw, arrival=500.0)]
        )
        assert verdict.status is ServerStatus.MAC_REJECTED

    def test_fb_jump_flagged_with_cross_gateway_evidence(self):
        server = self.make_server()
        server.bootstrap_fb_profile(DEV_ADDR, [-20e3, -20.01e3, -19.99e3])
        (verdict,) = server.process_step(
            [forward(f"gw-{i}", fcnt=0, fb=-20.7e3, snr=20.0) for i in range(3)]
        )
        assert verdict.status is ServerStatus.REPLAY_DETECTED
        assert verdict.detection.is_replay
        assert verdict.n_gateways == 3

    def test_flagged_fb_never_trains_database(self):
        server = self.make_server()
        server.bootstrap_fb_profile(DEV_ADDR, [-20e3, -20.01e3, -19.99e3])
        before = server.detector.database.sample_count(f"{DEV_ADDR:08x}")
        server.process_step([forward("gw-0", fcnt=0, fb=-20.7e3)])
        assert server.detector.database.sample_count(f"{DEV_ADDR:08x}") == before

    def test_process_step_requires_clean_state(self):
        server = self.make_server()
        server.ingest(forward("gw-0"))
        with pytest.raises(ConfigurationError):
            server.process_step([forward("gw-1")])

    def test_forward_capture_feeds_server(self):
        """Waveform path: a keyless gateway forwards; the server judges."""
        import numpy as np

        from repro.clock.clocks import DriftingClock
        from repro.clock.oscillator import Oscillator
        from repro.core.softlora import SoftLoRaGateway
        from repro.lorawan.device import EndDevice
        from repro.lorawan.gateway import CommodityGateway
        from repro.phy.chirp import ChirpConfig
        from repro.sdr.iq import IQTrace
        from repro.sdr.noise import complex_awgn, noise_power_for_snr

        rng = np.random.default_rng(7)
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
        device = EndDevice(
            name="node",
            dev_addr=DEV_ADDR,
            keys=KEYS,
            radio_oscillator=Oscillator.lora_end_device(np.random.default_rng(1)),
            clock=DriftingClock(drift_ppm=20.0),
            rng=rng,
        )
        gateway = SoftLoRaGateway(config=config, commodity=CommodityGateway())
        tx = device.transmit(100.0)
        waveform = device.modulate(tx, config)
        snr_db = 20.0
        noise_power = noise_power_for_snr(1.0, snr_db)
        padded = np.concatenate(
            [np.zeros(1200, dtype=complex), waveform, np.zeros(1024, dtype=complex)]
        )
        trace = IQTrace(
            padded + complex_awgn(len(padded), noise_power, rng),
            config.sample_rate_hz,
            start_time_s=tx.emission_time_s - 1200 / config.sample_rate_hz,
        )
        fwd = gateway.forward_capture(
            trace, gateway_id="gw-0", snr_db=snr_db, noise_power=noise_power
        )
        assert fwd is not None
        assert fwd.mac_bytes == tx.mac_bytes
        assert fwd.fb_hz == pytest.approx(device.fb_hz, abs=300.0)
        # The forwarding gateway never touched MAC or replay state.
        assert gateway.receptions == []
        assert gateway.commodity.receptions == []

        server = self.make_server()
        (verdict,) = server.process_step([fwd])
        assert verdict.status is ServerStatus.ACCEPTED
        assert verdict.fused.fb_hz == fwd.fb_hz

    def test_readings_reconstructed_from_fused_timestamp(self):
        # A sensor payload reconstructs readings against the earliest arrival.
        from repro.core.timestamping import ElapsedTimeCodec
        from repro.lorawan.device import encode_sensor_payload

        codec = ElapsedTimeCodec()
        payload = encode_sensor_payload([21.0], [codec.encode(5.0)], codec)
        raw = build_uplink(KEYS, DEV_ADDR, 0, payload)
        server = self.make_server()
        (verdict,) = server.process_step(
            [
                forward("gw-0", mac_bytes=raw, arrival=105.002),
                forward("gw-1", mac_bytes=raw, arrival=105.000),
            ]
        )
        assert verdict.status is ServerStatus.ACCEPTED
        assert len(verdict.readings) == 1
        assert verdict.readings[0].global_time_s == pytest.approx(100.0, abs=1e-6)
