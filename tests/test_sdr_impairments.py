"""Tests for SDR impairments and estimator robustness under them."""

import numpy as np
import pytest

from repro.core.freq_bias import LeastSquaresFbEstimator
from repro.core.onset import AicDetector
from repro.errors import ConfigurationError
from repro.experiments.common import synthesize_capture
from repro.phy.chirp import upchirp
from repro.sdr.impairments import (
    apply_dc_offset,
    apply_iq_imbalance,
    apply_phase_noise,
    apply_rtl_sdr_impairments,
    image_rejection_ratio_db,
)
from repro.sdr.iq import IQTrace


class TestDcOffset:
    def test_shifts_mean(self, rng):
        samples = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
        shifted = apply_dc_offset(samples, 0.3 + 0.1j)
        assert np.mean(shifted) == pytest.approx(np.mean(samples) + 0.3 + 0.1j, abs=0.05)

    def test_zero_offset_identity(self):
        samples = np.ones(8, dtype=complex)
        np.testing.assert_array_equal(apply_dc_offset(samples, 0), samples)


class TestIqImbalance:
    def test_perfect_balance_is_identity(self, fast_config):
        chirp = upchirp(fast_config, fb_hz=-10e3)
        out = apply_iq_imbalance(chirp, gain_mismatch_db=0.0, phase_mismatch_deg=0.0)
        np.testing.assert_allclose(out, chirp, atol=1e-12)

    def test_creates_image_tone(self, fast_config):
        fs = fast_config.sample_rate_hz
        t = np.arange(8192) / fs
        tone = np.exp(2j * np.pi * 20e3 * t)
        out = apply_iq_imbalance(tone, gain_mismatch_db=1.0, phase_mismatch_deg=5.0)
        spectrum = np.abs(np.fft.fft(out))
        freqs = np.fft.fftfreq(len(t), 1 / fs)
        main = spectrum[np.argmin(np.abs(freqs - 20e3))]
        image = spectrum[np.argmin(np.abs(freqs + 20e3))]
        assert image > 0.01 * main  # a visible image
        assert image < main  # but weaker than the signal

    def test_irr_matches_spectral_measurement(self, fast_config):
        fs = fast_config.sample_rate_hz
        t = np.arange(16384) / fs
        tone = np.exp(2j * np.pi * 20e3 * t)
        g_db, phi = 0.8, 4.0
        out = apply_iq_imbalance(tone, g_db, phi)
        spectrum = np.abs(np.fft.fft(out))
        freqs = np.fft.fftfreq(len(t), 1 / fs)
        main = spectrum[np.argmin(np.abs(freqs - 20e3))]
        image = spectrum[np.argmin(np.abs(freqs + 20e3))]
        measured_irr = 20 * np.log10(main / image)
        assert measured_irr == pytest.approx(image_rejection_ratio_db(g_db, phi), abs=1.0)

    def test_irr_infinite_when_balanced(self):
        assert image_rejection_ratio_db(0.0, 0.0) == float("inf")


class TestPhaseNoise:
    def test_preserves_power(self, fast_config, rng):
        chirp = upchirp(fast_config)
        out = apply_phase_noise(chirp, fast_config.sample_rate_hz, 100.0, rng)
        assert np.mean(np.abs(out) ** 2) == pytest.approx(1.0, rel=1e-9)

    def test_zero_linewidth_identity(self, fast_config, rng):
        chirp = upchirp(fast_config)
        out = apply_phase_noise(chirp, fast_config.sample_rate_hz, 0.0, rng)
        np.testing.assert_array_equal(out, chirp)

    def test_broadens_a_tone(self, fast_config, rng):
        fs = fast_config.sample_rate_hz
        t = np.arange(65536) / fs
        tone = np.exp(2j * np.pi * 10e3 * t)
        clean_peak = np.max(np.abs(np.fft.fft(tone)))
        noisy = apply_phase_noise(tone, fs, 200.0, rng)
        noisy_peak = np.max(np.abs(np.fft.fft(noisy)))
        assert noisy_peak < 0.8 * clean_peak  # energy leaked into skirts

    def test_invalid_params(self, rng):
        with pytest.raises(ConfigurationError):
            apply_phase_noise(np.ones(4, dtype=complex), 1e6, -1.0, rng)
        with pytest.raises(ConfigurationError):
            apply_phase_noise(np.ones(4, dtype=complex), 0.0, 1.0, rng)


class TestEstimatorRobustness:
    """The defense's FB resolution must survive realistic front ends."""

    def test_fb_estimation_under_full_impairment_stack(self, fast_config, rng):
        fb = -21e3
        chirp = upchirp(fast_config, fb_hz=fb, phase=0.7)
        impaired = apply_rtl_sdr_impairments(chirp, fast_config.sample_rate_hz, rng)
        estimate = LeastSquaresFbEstimator(fast_config).estimate(impaired)
        # Still inside the paper's 120 Hz resolution budget.
        assert abs(estimate.fb_hz - fb) < 120.0

    def test_fb_estimation_tolerates_strong_dc(self, fast_config):
        # The dechirp search must not lock onto the DC spike.
        fb = -18e3
        chirp = upchirp(fast_config, fb_hz=fb)
        impaired = apply_dc_offset(chirp, 0.3 + 0.2j)
        estimate = LeastSquaresFbEstimator(fast_config).estimate(impaired)
        assert abs(estimate.fb_hz - fb) < 120.0

    def test_fb_estimation_under_iq_imbalance(self, fast_config):
        fb = -23e3
        chirp = upchirp(fast_config, fb_hz=fb)
        impaired = apply_iq_imbalance(chirp, 1.0, 5.0)  # poor 25 dB-ish IRR
        estimate = LeastSquaresFbEstimator(fast_config).estimate(impaired)
        assert abs(estimate.fb_hz - fb) < 120.0

    def test_phase_noise_degrades_gracefully(self, fast_config, rng):
        fb = -20e3
        chirp = upchirp(fast_config, fb_hz=fb)
        estimator = LeastSquaresFbEstimator(fast_config)
        mild = apply_phase_noise(chirp, fast_config.sample_rate_hz, 30.0, rng)
        harsh = apply_phase_noise(chirp, fast_config.sample_rate_hz, 3000.0, rng)
        err_mild = abs(estimator.estimate(mild).fb_hz - fb)
        err_harsh = abs(estimator.estimate(harsh).fb_hz - fb)
        assert err_mild < 120.0
        assert err_harsh >= err_mild

    def test_onset_detection_under_impairments(self, fast_config, rng):
        capture = synthesize_capture(fast_config, rng, snr_db=20.0, fb_hz=-20e3)
        impaired = IQTrace(
            apply_rtl_sdr_impairments(
                capture.trace.samples, fast_config.sample_rate_hz, rng
            ),
            fast_config.sample_rate_hz,
            capture.trace.start_time_s,
        )
        onset = AicDetector().detect(impaired, component="i")
        assert abs(onset.time_s - capture.true_onset_time_s) < 20e-6
