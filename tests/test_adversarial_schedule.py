"""Adversarial schedule tests: deterministic worst-case delay/jam plans.

Mirrors the reliability-repo idiom of driving the system with a *fixed*
adversarial schedule and asserting correctness exactly: a scripted fleet
of devices runs round after round through :class:`LoRaWanWorld` while the
frame delay attacker is armed against changing target sets with
worst-case delays (from just past benign jitter to a half-hour hold).
Every random draw comes from :class:`repro.sim.rng.RngStreams`, so the
whole run replays bit-for-bit and the per-round replay-detection verdicts
can be asserted verbatim.
"""

from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.scenarios import build_fleet

#: Clean rounds first so the gateway finishes the FB learning phase
#: (``min_history=3``) for every node before the adversary wakes up.
WARMUP_ROUNDS = 3

#: The fixed worst-case plan: per round, which devices the attacker jams
#: and how long it holds their frames.  Covers a short just-noticeable
#: delay, a full-fleet round, a quiet round mid-attack, and a half-hour
#: hold -- the orderings that historically shook out state bugs.
ATTACK_SCHEDULE: dict[int, tuple[tuple[str, ...], float]] = {
    3: (("node-0", "node-1"), 45.0),
    4: (("node-2",), 240.0),
    5: (("node-0", "node-1", "node-2", "node-3"), 600.0),
    6: ((), 0.0),
    7: (("node-3",), 1800.0),
}

ROUNDS = 8
ROUND_PERIOD_S = 60.0


def build_world(seed: int = 4242, n_devices: int = 4) -> tuple[LoRaWanWorld, RngStreams]:
    streams = RngStreams(seed)
    devices = build_fleet(n_devices=n_devices, streams=streams)
    gateway = SoftLoRaGateway(
        config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
        commodity=CommodityGateway(),
        replay_detector=ReplayDetector(database=FbDatabase(), min_history=3),
    )
    world = LoRaWanWorld(
        gateway=gateway,
        gateway_position=Position(0.0, 0.0, 1.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    for device in devices:
        world.add_device(device)
    return world, streams


def run_schedule(world: LoRaWanWorld, streams: RngStreams) -> list[list[str]]:
    """Drive the fixed plan; returns per-round gateway verdict lists."""
    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.single_usrp(streams.stream("replayer")),
        rng=streams.stream("attack"),
    )
    verdicts: list[list[str]] = []
    for round_index in range(ROUNDS):
        targets, delay_s = ATTACK_SCHEDULE.get(round_index, ((), 0.0))
        if targets:
            world.arm_attack(attack, list(targets), delay_s)
        else:
            world.disarm_attack()
        base = 10.0 + round_index * ROUND_PERIOD_S
        for device in world.devices.values():
            device.take_reading(float(round_index), base)
        # Even rounds exercise the batched fleet step, odd rounds the
        # classic per-device path; verdicts must not depend on which.
        if round_index % 2 == 0:
            events = world.uplink_batch(request_time_s=base + 2.0)
        else:
            events = [
                world.uplink(name, base + 2.0) for name in list(world.devices)
            ]
        verdicts.append([event.reception.status.value for event in events])
    return verdicts


class TestAdversarialSchedule:
    def test_verdicts_exactly_match_schedule(self):
        world, streams = build_world()
        verdicts = run_schedule(world, streams)

        def expected_round(round_index: int) -> list[str]:
            targets, _ = ATTACK_SCHEDULE.get(round_index, ((), 0.0))
            return [
                SoftLoRaStatus.REPLAY_DETECTED.value
                if f"node-{n}" in targets
                else SoftLoRaStatus.ACCEPTED.value
                for n in range(4)
            ]

        assert verdicts == [expected_round(r) for r in range(ROUNDS)]

    def test_schedule_replays_bit_for_bit(self):
        world_a, streams_a = build_world()
        world_b, streams_b = build_world()
        assert run_schedule(world_a, streams_a) == run_schedule(world_b, streams_b)
        fbs_a = [e.reception.fb_hz for e in world_a.events if e.reception is not None]
        fbs_b = [e.reception.fb_hz for e in world_b.events if e.reception is not None]
        assert fbs_a == fbs_b  # measured FBs, not just verdicts, replay exactly

    def test_no_false_alarms_and_no_misses(self):
        world, streams = build_world()
        run_schedule(world, streams)
        replays = world.events_of(EventKind.REPLAY_DELIVERED)
        delivered = world.events_of(EventKind.DELIVERED)
        n_attacked = sum(len(t) for t, _ in ATTACK_SCHEDULE.values())
        assert len(replays) == n_attacked
        assert all(
            e.reception.status is SoftLoRaStatus.REPLAY_DETECTED for e in replays
        )
        assert all(e.reception.status is SoftLoRaStatus.ACCEPTED for e in delivered)
        # Flagged frames never teach the FB database: every node's history
        # holds only its clean-round estimates.
        database = world.gateway.replay_detector.database
        clean_rounds = ROUNDS - sum(
            1
            for r in range(ROUNDS)
            if ATTACK_SCHEDULE.get(r, ((), 0.0))[0]
            and "node-0" in ATTACK_SCHEDULE[r][0]
        )
        assert database.sample_count(f"{world.devices['node-0'].dev_addr:08x}") == clean_rounds

    def test_jamming_always_suppresses_original(self):
        world, streams = build_world()
        run_schedule(world, streams)
        suppressed = world.events_of(EventKind.SUPPRESSED_BY_JAMMING)
        assert len(suppressed) == sum(len(t) for t, _ in ATTACK_SCHEDULE.values())
