"""Tests for the repro.parallel layer: pools, shm transport, scheduling.

The load-bearing guarantee is pinned here: worker count, backend,
chunk size, work-stealing order, and intra-kernel thread count change
wall-clock only -- never a single result bit.
"""

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import SweepExecutor, SweepPoint
from repro.parallel import (
    PayloadPublisher,
    ShmArrayRef,
    WorkerPool,
    attach_array,
    default_pool,
    intra_thread_count,
    pickled_nbytes,
    plan_chunks,
    resolve_payload,
    set_intra_threads,
    shared_arrays,
    shutdown_default_pools,
    thread_map,
    use_shared,
)
from repro.sim.rng import RngStreams


def measure_key_noise(point, trial, captures, rng):
    """Module-level (spawn-picklable) measure: keyed noise per trial."""
    return float(point.key) * 100.0 + float(rng.standard_normal())


def measure_shared_sum(point, trial, captures, rng):
    """Reads the run-scoped shared array pack inside the worker."""
    table = shared_arrays()["table"]
    return float(table[point.key % table.shape[0]].sum()) + float(rng.standard_normal())


def _points(n=6, n_trials=3):
    return [SweepPoint(key=k, n_trials=n_trials) for k in range(n)]


class TestPlanChunks:
    def test_partitions_every_index_in_order(self):
        chunks = plan_chunks([1.0] * 10, n_workers=3)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(10))

    def test_balances_by_cost(self):
        # One expensive point early closes its chunk immediately.
        chunks = plan_chunks([1, 1, 5, 1, 1, 1, 1, 1], n_workers=2, chunks_per_worker=2)
        assert chunks[0][-1] == 2 or len(chunks[0]) <= 3

    def test_fixed_chunk_points(self):
        assert plan_chunks([1.0] * 5, n_workers=4, chunk_points=2) == [[0, 1], [2, 3], [4]]

    def test_zero_cost_falls_back_to_even_chunks(self):
        chunks = plan_chunks([0.0] * 6, n_workers=2, chunks_per_worker=3)
        assert [i for chunk in chunks for i in chunk] == list(range(6))

    def test_empty_grid(self):
        assert plan_chunks([], n_workers=2) == []

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_chunks([1.0], n_workers=0)
        with pytest.raises(ConfigurationError):
            plan_chunks([1.0], n_workers=1, chunks_per_worker=0)
        with pytest.raises(ConfigurationError):
            plan_chunks([1.0], n_workers=1, chunk_points=0)


class TestShmTransport:
    def test_round_trip_is_bitwise(self):
        rng = np.random.default_rng(3)
        payload = {
            "big": rng.standard_normal(4096),
            "small": rng.standard_normal(4),
            "nested": [rng.standard_normal((64, 16)), "label", 7],
        }
        publisher = PayloadPublisher(min_bytes=1024)
        skeleton = publisher.strip(payload)
        pack = publisher.seal()
        assert pack is not None
        try:
            shipped = publisher.fill(skeleton)
            clone = resolve_payload(pickle.loads(pickle.dumps(shipped)))
            assert np.array_equal(clone["big"], payload["big"])
            assert np.array_equal(clone["small"], payload["small"])
            assert np.array_equal(clone["nested"][0], payload["nested"][0])
            assert clone["nested"][1:] == ["label", 7]
        finally:
            pack.close()
            pack.unlink()

    def test_payload_shrinks_below_array_bytes(self):
        payload = {"matrix": np.arange(100_000, dtype=np.float64)}
        publisher = PayloadPublisher(min_bytes=1024)
        skeleton = publisher.strip(payload)
        pack = publisher.seal()
        try:
            shipped = publisher.fill(skeleton)
            assert pickled_nbytes(shipped) < payload["matrix"].nbytes // 100
        finally:
            pack.close()
            pack.unlink()

    def test_small_arrays_ride_the_pickle(self):
        publisher = PayloadPublisher(min_bytes=1 << 16)
        skeleton = publisher.strip({"tiny": np.arange(8)})
        assert publisher.seal() is None
        assert isinstance(skeleton["tiny"], np.ndarray)

    def test_attach_array_views_are_read_only(self):
        payload = {"block": np.arange(1024, dtype=np.float64)}
        publisher = PayloadPublisher(min_bytes=16)
        skeleton = publisher.strip(payload)
        pack = publisher.seal()
        try:
            ref = publisher.fill(skeleton)["block"]
            assert isinstance(ref, ShmArrayRef)
            view = attach_array(ref)
            assert np.array_equal(view, payload["block"])
            with pytest.raises(ValueError):
                view[0] = -1.0
        finally:
            pack.close()
            pack.unlink()

    def test_use_shared_scopes_the_mapping(self):
        table = np.arange(6.0).reshape(2, 3)
        use_shared({"table": table})
        try:
            assert shared_arrays()["table"] is table
        finally:
            use_shared(None)
        assert shared_arrays() == {}


class TestThreadMap:
    def test_results_stay_ordered(self):
        items = list(range(40))
        assert thread_map(lambda x: x * x, items, n_threads=4) == [x * x for x in items]

    def test_serial_fallback(self):
        assert thread_map(lambda x: -x, [5], n_threads=8) == [-5]
        assert thread_map(lambda x: -x, [1, 2], n_threads=1) == [-1, -2]

    def test_env_knob_and_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTRA_THREADS", "3")
        assert intra_thread_count() == 3
        set_intra_threads(5)
        try:
            assert intra_thread_count() == 5
        finally:
            set_intra_threads(None)
        monkeypatch.setenv("REPRO_INTRA_THREADS", "zero")
        with pytest.raises(ConfigurationError):
            intra_thread_count()


class TestWorkerPool:
    def test_thread_pool_survives_across_dispatches(self):
        with WorkerPool(2, backend="thread") as pool:
            assert pool.is_warm
            first = sorted(pool.imap_unordered(abs, [-1, -2]))
            second = sorted(pool.imap_unordered(abs, [-3, -4]))
            assert (first, second) == ([1, 2], [3, 4])
            assert pool.dispatches == 2
        assert not pool.is_warm

    def test_default_pool_is_shared_per_signature(self):
        try:
            a = default_pool("thread", 2)
            b = default_pool("thread", 2)
            c = default_pool("thread", 3)
            assert a is b
            assert a is not c
        finally:
            shutdown_default_pools()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)
        with pytest.raises(ConfigurationError):
            WorkerPool(2, backend="fiber")


class TestBitwiseDeterminism:
    """The tentpole invariant, across every execution knob."""

    def _run(self, **kwargs):
        return SweepExecutor(**kwargs).run(_points(), measure_key_noise, point_seed=11)

    def test_thread_backend_matches_serial_at_any_chunksize(self):
        serial = self._run(n_workers=1)
        for n_workers in (2, 3):
            for chunksize in (None, 1, 2, 5):
                threaded = self._run(
                    n_workers=n_workers, backend="thread", chunksize=chunksize
                )
                assert threaded.measurements == serial.measurements

    def test_rng_factory_policy_matches_serial(self):
        def factory(point):
            return RngStreams(23).fresh(f"node:{point.key}")

        points = _points()
        serial = SweepExecutor(n_workers=1).run(points, measure_key_noise, rng_factory=factory)
        threaded = SweepExecutor(n_workers=3, backend="thread").run(
            points, measure_key_noise, rng_factory=factory
        )
        assert threaded.measurements == serial.measurements

    def test_shared_rng_policy_is_repeatable_serially(self):
        points = _points()
        runs = [
            SweepExecutor(n_workers=1).run(
                points, measure_key_noise, rng=np.random.default_rng(9)
            )
            for _ in range(2)
        ]
        assert runs[0].measurements == runs[1].measurements

    def test_shared_arrays_reach_thread_workers_bitwise(self):
        table = np.random.default_rng(5).standard_normal((4, 8))
        points = _points()
        serial = SweepExecutor(n_workers=1).run(
            points, measure_shared_sum, point_seed=2, shared={"table": table}
        )
        threaded = SweepExecutor(n_workers=2, backend="thread").run(
            points, measure_shared_sum, point_seed=2, shared={"table": table}
        )
        assert threaded.measurements == serial.measurements

    def test_transport_stats_recorded(self):
        threaded = self._run(n_workers=2, backend="thread")
        assert threaded.transport is not None
        assert threaded.transport.backend == "thread"
        assert threaded.transport.n_workers == 2
        assert threaded.transport.n_chunks >= 2
        serial = self._run(n_workers=1)
        assert serial.transport is None

    def test_cost_hints_shape_chunks_not_results(self):
        serial = self._run(n_workers=1)
        hinted = [
            SweepPoint(key=k, n_trials=3, metadata={"cost_hint": 1.0 + (k % 2) * 50.0})
            for k in range(6)
        ]
        threaded = SweepExecutor(n_workers=2, backend="thread").run(
            hinted, measure_key_noise, point_seed=11
        )
        assert threaded.measurements == serial.measurements


@pytest.mark.slow
class TestProcessBackend:
    """Spawn-pool paths: slower, so kept to the essential pins."""

    def test_process_backend_matches_serial_and_thread(self):
        points = _points(n=4, n_trials=2)
        serial = SweepExecutor(n_workers=1).run(points, measure_key_noise, point_seed=7)
        threaded = SweepExecutor(n_workers=2, backend="thread").run(
            points, measure_key_noise, point_seed=7
        )
        spawned = SweepExecutor(n_workers=2, backend="process", chunksize=1).run(
            points, measure_key_noise, point_seed=7
        )
        assert spawned.measurements == serial.measurements == threaded.measurements
        assert spawned.transport.payload_pickle_bytes > 0

    def test_default_pool_reused_across_runs(self):
        points = _points(n=4, n_trials=2)
        executor = SweepExecutor(n_workers=2, backend="process")
        first = executor.run(points, measure_key_noise, point_seed=7)
        second = executor.run(points, measure_key_noise, point_seed=7)
        assert second.transport.pool_reused
        assert first.measurements == second.measurements

    def test_shared_arrays_cross_the_process_boundary_via_shm(self):
        table = np.random.default_rng(5).standard_normal((4, 8))
        points = _points(n=4, n_trials=2)
        serial = SweepExecutor(n_workers=1).run(
            points, measure_shared_sum, point_seed=2, shared={"table": table}
        )
        spawned = SweepExecutor(n_workers=2, backend="process", shm_min_bytes=64).run(
            points, measure_shared_sum, point_seed=2, shared={"table": table}
        )
        assert spawned.measurements == serial.measurements
        assert spawned.transport.shm_bytes >= table.nbytes


class TestIntraKernelThreads:
    def test_site_power_columns_bitwise_at_any_thread_count(self):
        from repro.sim.runtime import site_power_columns

        class _Loss:
            def loss_db_from_distance(self, distance):
                return 40.0 + 30.0 * np.log10(np.maximum(distance, 1.0))

        class _Link:
            pathloss = _Loss()
            tx_antenna_gain_db = 2.0
            rx_antenna_gain_db = 3.0

        class _Site:
            link = _Link()
            position = None

        rng = np.random.default_rng(7)
        dev_xyz = rng.uniform(-1000.0, 1000.0, (997, 3))
        site_xyz = rng.uniform(-500.0, 500.0, (3, 3))
        tx = rng.uniform(2.0, 14.0, 997)
        sites = [_Site() for _ in range(3)]
        base = site_power_columns(sites, site_xyz, None, dev_xyz, tx, chunk_rows=128)
        for n_threads in (2, 5):
            out = site_power_columns(
                sites, site_xyz, None, dev_xyz, tx, chunk_rows=128, n_threads=n_threads
            )
            for got, want in zip(out, base):
                assert np.array_equal(got, want)

    def test_intra_threads_do_not_change_columnar_counters(self):
        from repro.experiments.fleet_scale import FleetScaleParams, measure_fleet_cell
        from repro.server.fusion import FusionPolicy

        params = FleetScaleParams(
            clean_rounds=2,
            attack_rounds=1,
            attack_fraction=0.2,
            attack_delay_s=120.0,
            fusion=FusionPolicy.INVERSE_VARIANCE,
            spreading_factor=7,
            area_radius_m=1500.0,
            gateway_ring_m=700.0,
            pathloss_exponent=3.4,
            seed=2020,
            period_s=600.0,
            jitter_s=60.0,
            window_s=30.0,
            engine="columnar-counters",
        )
        point = SweepPoint(key=(2, 50))

        def run_cell():
            cell = measure_fleet_cell(point, 0, None, None, params=params)
            return (cell.uplink_attempts, cell.collision_rate, cell.delivery_rate)

        set_intra_threads(1)
        try:
            base = run_cell()
            set_intra_threads(4)
            assert run_cell() == base
        finally:
            set_intra_threads(None)
