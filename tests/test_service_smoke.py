"""End-to-end service smoke: boot, 200+ uplinks, health, metrics, alerts.

This is the test the CI ``service-smoke`` job runs on its own: a real
daemon on loopback, driven by the loadgen over UDP with a fleet stream
that includes replayed frames, then checked from the outside through
the control plane only -- ``/healthz`` reports ok, ``/metrics`` counters
match what was sent, and the replay fires an ``attack_detected`` event
on the ``/alerts`` SSE stream.
"""

import asyncio
import json

import pytest

from repro.service import NetworkServerDaemon, ServiceConfig, build_plan, new_server, replay

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def plan():
    """A fleet stream big enough for a meaningful smoke (200+ forwards)."""
    return build_plan(
        n_devices=20, n_gateways=2, clean_s=240.0, attack_s=120.0, n_attacked=4
    )


def test_service_smoke_end_to_end(plan):
    assert plan.n_forwards >= 200, f"plan too small: {plan.n_forwards} forwards"
    replays = [v for v in plan.oracle_verdicts if v["status"] == "replay_detected"]
    assert replays, "plan contains no replayed frame"

    async def run():
        server = new_server()
        plan.provision(server)
        daemon = NetworkServerDaemon(
            server=server,
            config=ServiceConfig(
                udp_host="127.0.0.1", udp_port=0, http_host="127.0.0.1", http_port=0
            ),
        )
        await daemon.start()
        port = daemon.http_port

        # Subscribe to /alerts before any traffic flows.
        alerts_reader, alerts_writer = await asyncio.open_connection("127.0.0.1", port)
        alerts_writer.write(b"GET /alerts HTTP/1.1\r\nHost: smoke\r\n\r\n")
        await alerts_writer.drain()
        head = await alerts_reader.readuntil(b"\r\n\r\n")
        assert b"200 OK" in head and b"text/event-stream" in head

        stats = await replay(plan, "127.0.0.1", daemon.udp_port)
        await daemon.drain()

        async def get(path):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = raw.partition(b"\r\n\r\n")
            return int(head.split()[1]), body

        status, body = await get("/healthz")
        health = json.loads(body)

        status_metrics, metrics_body = await get("/metrics")
        metrics = metrics_body.decode()

        # One SSE event per replay verdict, in order.
        events = []
        for _ in replays:
            while True:
                block = await asyncio.wait_for(alerts_reader.readuntil(b"\n\n"), 10.0)
                text = block.decode()
                if text.startswith("event: attack_detected"):
                    data_line = next(
                        line for line in text.splitlines() if line.startswith("data: ")
                    )
                    events.append(json.loads(data_line[len("data: ") :]))
                    break
        alerts_writer.close()
        try:
            await alerts_writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await daemon.stop()
        return stats, status, health, status_metrics, metrics, events

    stats, status, health, status_metrics, metrics, events = asyncio.run(run())

    assert stats.forwards_sent == plan.n_forwards
    assert status == 200
    assert health["status"] == "ok"
    assert health["uplinks_total"] == plan.n_forwards
    assert health["verdicts_total"] == len(plan.oracle_verdicts)
    assert health["queue_depth"] == 0

    assert status_metrics == 200
    assert f"repro_service_uplinks_total {plan.n_forwards}" in metrics
    counts = {}
    for verdict in plan.oracle_verdicts:
        counts[verdict["status"]] = counts.get(verdict["status"], 0) + 1
    for name, count in counts.items():
        assert f'repro_service_verdicts_total{{status="{name}"}} {count}' in metrics
    assert f"repro_service_alerts_total {len(replays)}" in metrics
    assert "repro_service_queue_overflow_total 0" in metrics

    assert len(events) == len(replays)
    for event, expected in zip(events, replays):
        assert event["status"] == "replay_detected"
        assert event["node_id"] == expected["node_id"]
        assert event["fcnt"] == expected["fcnt"]
        assert event["detection"] == expected["detection"]
