"""End-to-end service smoke: boot, 200+ uplinks, health, metrics, alerts.

This is the test the CI ``service-smoke`` job runs on its own: a real
daemon on loopback, driven by the loadgen over UDP with a fleet stream
that includes replayed frames, then checked from the outside through
the control plane only -- ``/healthz`` reports ok, ``/metrics`` counters
match what was sent, and the replay fires an ``attack_detected`` event
on the ``/alerts`` SSE stream.
"""

import asyncio
import json

import pytest

from repro.service import NetworkServerDaemon, ServiceConfig, build_plan, new_server, replay

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def plan():
    """A fleet stream big enough for a meaningful smoke (200+ forwards)."""
    return build_plan(
        n_devices=20, n_gateways=2, clean_s=240.0, attack_s=120.0, n_attacked=4
    )


def test_service_smoke_end_to_end(plan):
    assert plan.n_forwards >= 200, f"plan too small: {plan.n_forwards} forwards"
    replays = [v for v in plan.oracle_verdicts if v["status"] == "replay_detected"]
    assert replays, "plan contains no replayed frame"

    async def run():
        server = new_server()
        plan.provision(server)
        daemon = NetworkServerDaemon(
            server=server,
            config=ServiceConfig(
                udp_host="127.0.0.1", udp_port=0, http_host="127.0.0.1", http_port=0
            ),
        )
        await daemon.start()
        port = daemon.http_port

        # Subscribe to /alerts before any traffic flows.
        alerts_reader, alerts_writer = await asyncio.open_connection("127.0.0.1", port)
        alerts_writer.write(b"GET /alerts HTTP/1.1\r\nHost: smoke\r\n\r\n")
        await alerts_writer.drain()
        head = await alerts_reader.readuntil(b"\r\n\r\n")
        assert b"200 OK" in head and b"text/event-stream" in head

        stats = await replay(plan, "127.0.0.1", daemon.udp_port)
        await daemon.drain()

        async def get(path):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = raw.partition(b"\r\n\r\n")
            return int(head.split()[1]), body

        status, body = await get("/healthz")
        health = json.loads(body)

        status_metrics, metrics_body = await get("/metrics")
        metrics = metrics_body.decode()

        # One SSE event per replay verdict, in order.
        events = []
        for _ in replays:
            while True:
                block = await asyncio.wait_for(alerts_reader.readuntil(b"\n\n"), 10.0)
                text = block.decode()
                if text.startswith("event: attack_detected"):
                    data_line = next(
                        line for line in text.splitlines() if line.startswith("data: ")
                    )
                    events.append(json.loads(data_line[len("data: ") :]))
                    break
        alerts_writer.close()
        try:
            await alerts_writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await daemon.stop()
        return stats, status, health, status_metrics, metrics, events

    stats, status, health, status_metrics, metrics, events = asyncio.run(run())

    assert stats.forwards_sent == plan.n_forwards
    assert status == 200
    assert health["status"] == "ok"
    assert health["uplinks_total"] == plan.n_forwards
    assert health["verdicts_total"] == len(plan.oracle_verdicts)
    assert health["queue_depth"] == 0

    assert status_metrics == 200
    assert f"repro_service_uplinks_total {plan.n_forwards}" in metrics
    counts = {}
    for verdict in plan.oracle_verdicts:
        counts[verdict["status"]] = counts.get(verdict["status"], 0) + 1
    for name, count in counts.items():
        assert f'repro_service_verdicts_total{{status="{name}"}} {count}' in metrics
    assert f"repro_service_alerts_total {len(replays)}" in metrics
    assert "repro_service_queue_overflow_total 0" in metrics

    assert len(events) == len(replays)
    for event, expected in zip(events, replays):
        assert event["status"] == "replay_detected"
        assert event["node_id"] == expected["node_id"]
        assert event["fcnt"] == expected["fcnt"]
        assert event["detection"] == expected["detection"]


def test_service_smoke_store_restart(plan, tmp_path):
    """CI service-smoke: restart the daemon mid-load on a durable store.

    Half the plan flows into daemon one (``--store sqlite:`` semantics:
    an LRU-cached :class:`SqliteFbStore`), the daemon stops, and a
    brand-new daemon on the same file serves the rest.  From the
    outside: ``/devices/{addr}`` still knows the device's FB profile
    after the restart, ``/metrics`` still exports the store series, and
    the concatenated verdict stream equals the oracle's, bit for bit.
    """
    import dataclasses

    from repro.core.detector import ReplayDetector
    from repro.server import NetworkServer
    from repro.server.store import open_store

    spec = f"sqlite:{tmp_path / 'fb.sqlite'}?cache=64"
    half = len(plan.batches) // 2
    halves = [
        dataclasses.replace(plan, batches=plan.batches[:half]),
        dataclasses.replace(plan, batches=plan.batches[half:]),
    ]
    dev_addr = plan.registrations[0][0]

    async def run_half(sub_plan):
        store = open_store(spec)
        server = NetworkServer(detector=ReplayDetector(database=store))
        sub_plan.provision(server)
        daemon = NetworkServerDaemon(
            server=server,
            config=ServiceConfig(
                udp_host="127.0.0.1", udp_port=0, http_host="127.0.0.1", http_port=0
            ),
        )
        await daemon.start()
        await replay(sub_plan, "127.0.0.1", daemon.udp_port)
        await daemon.drain()

        async def get(path):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.http_port)
            writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = raw.partition(b"\r\n\r\n")
            return int(head.split()[1]), body

        device_status, device_body = await get(f"/devices/{dev_addr:08x}")
        _, metrics_body = await get("/metrics")
        await daemon.stop()
        store.close()
        return (
            [v.as_dict() for v in daemon.server.verdicts],
            device_status,
            json.loads(device_body),
            metrics_body.decode(),
        )

    before, _, device_before, _ = asyncio.run(run_half(halves[0]))
    after, device_status, device_after, metrics = asyncio.run(run_half(halves[1]))

    assert before + after == list(plan.oracle_verdicts)
    assert device_status == 200
    # The FB profile learned before the restart is still live after it.
    assert device_after["fb_profile"]["sample_count"] >= device_before[
        "fb_profile"
    ]["sample_count"] > 0
    assert "# TYPE repro_service_store_nodes gauge" in metrics
    assert f"repro_service_store_nodes {len(plan.registrations)}" in metrics
    assert "repro_service_store_cache_hit_rate" in metrics
    assert "repro_service_store_batches_total" in metrics
