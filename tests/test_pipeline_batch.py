"""Regression tests for the batched capture-processing engine.

The contract under test: a batch of one is *bitwise identical* to the
single-capture APIs (`AicDetector`, `LeastSquaresFbEstimator`,
`SyncFreeTimestamper`), and every row of a larger batch matches the
corresponding single-capture call exactly.  Plus edge cases: minimum
length traces in a batch, short FB chirps, ragged inputs.
"""

import numpy as np
import pytest

from repro.core.freq_bias import LeastSquaresFbEstimator
from repro.core.onset import AicDetector
from repro.core.timestamping import SyncFreeTimestamper
from repro.errors import ConfigurationError, EstimationError
from repro.experiments.common import ScenarioSpec, synthesize_capture
from repro.phy.chirp import (
    ChirpConfig,
    cached_base_downchirp,
    cached_base_upchirp,
    cached_sample_times,
    cached_sweep_phase,
    downchirp,
    upchirp,
)
from repro.pipeline import BatchPipeline, CaptureBatch
from repro.sdr.iq import IQTrace
from repro.sdr.noise import complex_awgn


@pytest.fixture
def captures(fast_config, rng):
    return [
        synthesize_capture(
            fast_config, rng, snr_db=20.0, fb_hz=float(rng.uniform(-25e3, -17e3))
        )
        for _ in range(5)
    ]


class TestChirpCache:
    def test_cached_references_match_fresh_synthesis(self, fast_config):
        np.testing.assert_array_equal(
            cached_sample_times(fast_config), fast_config.sample_times()
        )
        np.testing.assert_array_equal(cached_base_upchirp(fast_config), upchirp(fast_config))
        np.testing.assert_array_equal(
            cached_base_downchirp(fast_config), downchirp(fast_config)
        )

    def test_cache_hit_returns_same_object(self, fast_config):
        same_config = ChirpConfig(
            spreading_factor=fast_config.spreading_factor,
            sample_rate_hz=fast_config.sample_rate_hz,
        )
        assert cached_sweep_phase(fast_config) is cached_sweep_phase(same_config)

    def test_cached_arrays_are_read_only(self, fast_config):
        with pytest.raises(ValueError):
            cached_base_upchirp(fast_config)[0] = 0.0


class TestAicBatch:
    def test_batch_of_one_is_bitwise_identical(self, captures):
        detector = AicDetector()
        trace = captures[0].trace
        single_curve = detector.aic_curve(trace.i)
        batch_curve = detector.aic_curve_batch(trace.i[np.newaxis, :])[0]
        np.testing.assert_array_equal(single_curve, batch_curve)

        batch = CaptureBatch.from_traces([trace])
        (onset,) = detector.detect_batch(batch)
        reference = detector.detect(trace)
        assert onset.index == reference.index
        assert onset.time_s == reference.time_s
        assert onset.diagnostics == reference.diagnostics

    def test_every_batch_row_matches_single(self, captures):
        detector = AicDetector()
        batch = CaptureBatch.from_traces([c.trace for c in captures])
        for result, capture in zip(detector.detect_batch(batch), captures):
            reference = detector.detect(capture.trace)
            assert result.index == reference.index
            assert result.time_s == reference.time_s

    def test_minimum_length_batch(self, rng):
        # The shortest trace with an admissible split point: the edge
        # guards blank min_segment samples at each end, so 2*min_segment+1
        # leaves exactly one candidate.  A whole batch at that length must
        # pick it, agreeing with the single-capture path.
        detector = AicDetector(min_segment=8)
        n = 2 * detector.min_segment + 1
        stack = np.concatenate(
            [
                0.01 * rng.standard_normal((4, n // 2)),
                rng.standard_normal((4, n - n // 2)) + 1.0,
            ],
            axis=1,
        )
        indices = detector.pick_batch(stack)
        assert list(indices) == [detector.min_segment] * 4
        for row in range(len(stack)):
            trace = IQTrace(stack[row] + 0j, 1e6)
            assert int(indices[row]) == detector.detect(trace, component="i").index

    def test_below_minimum_length_rejected(self, rng):
        detector = AicDetector(min_segment=8)
        with pytest.raises(EstimationError):
            detector.aic_curve_batch(rng.standard_normal((3, 2 * detector.min_segment - 1)))
        # 2*min_segment parses but the guards blank every split point --
        # identical all-NaN behaviour to the single-capture curve.
        curves = detector.aic_curve_batch(rng.standard_normal((3, 2 * detector.min_segment)))
        assert np.all(np.isnan(curves))

    def test_non_2d_batch_rejected(self, rng):
        with pytest.raises(EstimationError):
            AicDetector().aic_curve_batch(rng.standard_normal(64))


class TestFbBatch:
    def test_batch_of_one_is_bitwise_identical(self, fast_config, rng):
        estimator = LeastSquaresFbEstimator(fast_config)
        chirp = upchirp(fast_config, fb_hz=-21e3, phase=1.1) + complex_awgn(
            fast_config.samples_per_chirp, 0.05, rng
        )
        single = estimator.estimate(chirp)
        (batched,) = estimator.estimate_batch(chirp[np.newaxis, :])
        assert single.fb_hz == batched.fb_hz
        assert single.phase == batched.phase
        assert single.diagnostics == batched.diagnostics

    def test_every_batch_row_matches_single(self, fast_config, rng):
        estimator = LeastSquaresFbEstimator(fast_config)
        spc = fast_config.samples_per_chirp
        stack = np.stack(
            [
                upchirp(fast_config, fb_hz=fb, phase=p) + complex_awgn(spc, 0.02, rng)
                for fb, p in [(-24e3, 0.3), (-19e3, 2.0), (-17e3, 5.1), (8e3, 1.0)]
            ]
        )
        for row, batched in enumerate(estimator.estimate_batch(stack)):
            single = estimator.estimate(stack[row])
            assert single.fb_hz == batched.fb_hz
            assert single.phase == batched.phase

    def test_list_input_accepted(self, fast_config):
        estimator = LeastSquaresFbEstimator(fast_config)
        chirps = [upchirp(fast_config, fb_hz=-20e3), upchirp(fast_config, fb_hz=-18e3)]
        estimates = estimator.estimate_batch(chirps)
        assert estimates[0].fb_hz == pytest.approx(-20e3, abs=0.5)
        assert estimates[1].fb_hz == pytest.approx(-18e3, abs=0.5)

    def test_short_rows_rejected(self, fast_config):
        estimator = LeastSquaresFbEstimator(fast_config)
        with pytest.raises(EstimationError):
            estimator.estimate_batch(np.zeros((2, fast_config.samples_per_chirp - 1), complex))

    def test_de_batch_falls_back_to_row_loop(self, rng):
        config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.25e6)
        de = LeastSquaresFbEstimator(config, search_range_hz=(-20e3, 20e3), method="de")
        chirp = upchirp(config, fb_hz=-7.5e3, phase=2.0)
        (batched,) = de.estimate_batch(chirp[np.newaxis, :])
        assert batched.fb_hz == pytest.approx(-7.5e3, abs=5.0)


class TestTimestamperBatch:
    def test_batch_of_one_is_bitwise_identical(self):
        stamper = SyncFreeTimestamper(tx_latency_s=3e-3)
        single = stamper.reconstruct(100.0, [5, 250, 4000], [1.0, 2.0, 3.0])
        (batched,) = stamper.reconstruct_batch([100.0], [[5, 250, 4000]], [[1.0, 2.0, 3.0]])
        assert batched == single

    def test_arrays_match_scalar_reconstruction(self):
        stamper = SyncFreeTimestamper(tx_latency_s=3e-3)
        arrivals = np.array([10.0, 55.5, 100.25])
        ticks = np.array([[0, 100], [20, 3000], [7, 1]])
        times = stamper.reconstruct_arrays(arrivals, ticks)
        for frame in range(3):
            readings = stamper.reconstruct(float(arrivals[frame]), list(ticks[frame]))
            for k, reading in enumerate(readings):
                assert times[frame, k] == reading.global_time_s

    def test_shape_and_range_validation(self):
        stamper = SyncFreeTimestamper()
        with pytest.raises(ConfigurationError):
            stamper.reconstruct_arrays(np.array([1.0]), np.array([1, 2]))
        with pytest.raises(ConfigurationError):
            stamper.reconstruct_arrays(np.array([1.0]), np.array([[-1]]))
        with pytest.raises(ConfigurationError):
            stamper.reconstruct_batch([1.0, 2.0], [[1]])


class TestCaptureBatch:
    def test_from_traces_requires_uniform_shape(self, fast_config, rng):
        a = IQTrace(complex_awgn(100, 1.0, rng), 1e6)
        b = IQTrace(complex_awgn(101, 1.0, rng), 1e6)
        with pytest.raises(ConfigurationError):
            CaptureBatch.from_traces([a, b])
        c = IQTrace(complex_awgn(100, 1.0, rng), 2e6)
        with pytest.raises(ConfigurationError):
            CaptureBatch.from_traces([a, c])

    def test_round_trip_preserves_timing(self, captures):
        batch = CaptureBatch.from_traces([c.trace for c in captures])
        for row, capture in enumerate(captures):
            trace = batch.trace(row)
            assert trace.start_time_s == capture.trace.start_time_s
            np.testing.assert_array_equal(trace.samples, capture.trace.samples)

    def test_slice_each_matches_python_slices(self, captures):
        batch = CaptureBatch.from_traces([c.trace for c in captures])
        starts = np.arange(len(batch)) * 3
        window = batch.slice_each(starts, 32)
        for row in range(len(batch)):
            np.testing.assert_array_equal(
                window[row], batch.samples[row, starts[row] : starts[row] + 32]
            )

    def test_slice_each_bounds_checked(self, captures):
        batch = CaptureBatch.from_traces([c.trace for c in captures])
        with pytest.raises(ConfigurationError):
            batch.slice_each(np.full(len(batch), batch.n_samples - 1), 2)


class TestBatchPipeline:
    def test_stages_match_single_capture_chain(self, fast_config, captures):
        engine = BatchPipeline(config=fast_config)
        batch = CaptureBatch.from_traces([c.trace for c in captures])
        result = engine.run(batch)
        detector = AicDetector()
        estimator = LeastSquaresFbEstimator(fast_config)
        spc = fast_config.samples_per_chirp
        for capture, outcome in zip(captures, result.outcomes):
            onset = detector.detect(capture.trace, component="i")
            assert outcome.onset.index == onset.index
            assert outcome.phy_timestamp_s == onset.time_s
            reference = estimator.estimate(
                capture.trace.samples[onset.index + spc : onset.index + 2 * spc]
            )
            assert outcome.fb_estimate.fb_hz == reference.fb_hz

    def test_short_tail_rows_carry_error_not_crash(self, fast_config, rng):
        # A capture whose preamble starts so late that no second chirp
        # fits must skip FB estimation but keep its onset/timestamp.
        spc = fast_config.samples_per_chirp
        quiet = 0.01 * complex_awgn(3 * spc, 1.0, rng)
        late = np.concatenate(
            [quiet[: 2 * spc + spc // 2], upchirp(fast_config)[: spc // 2]]
        )
        good = synthesize_capture(fast_config, rng, snr_db=25.0, n_chirps=4).trace
        batch = CaptureBatch.from_traces(
            [IQTrace(late, fast_config.sample_rate_hz), good.slice_samples(0, len(late))]
        )
        result = BatchPipeline(config=fast_config).run(batch)
        assert not result.ok[0]
        assert result.outcomes[0].fb_estimate is None
        error = result.outcomes[0].error
        assert "FB estimation" in error or "full chirp" in error
        assert np.isnan(result.fb_hz[0])

    def test_node_ids_require_detector(self, fast_config, captures):
        engine = BatchPipeline(config=fast_config)
        batch = CaptureBatch.from_traces([c.trace for c in captures])
        with pytest.raises(ConfigurationError):
            engine.run(batch, node_ids=["n"] * len(batch))

    def test_replay_stage_flags_outlier(self, fast_config, rng):
        from repro.core.detector import FbDatabase, ReplayDetector

        spec = ScenarioSpec(fast_config, snr_db=25.0, fb_hz=-20e3)
        batch, _ = spec.synthesize_batch(rng, 4)
        outlier_spec = ScenarioSpec(fast_config, snr_db=25.0, fb_hz=-15e3)
        outlier, _ = outlier_spec.synthesize_batch(rng, 1)
        full = CaptureBatch(
            samples=np.concatenate([batch.samples, outlier.samples]),
            sample_rate_hz=batch.sample_rate_hz,
            start_times_s=np.concatenate([batch.start_times_s, outlier.start_times_s]),
        )
        detector = ReplayDetector(database=FbDatabase(), min_history=3)
        result = BatchPipeline(config=fast_config).run(
            full, node_ids=["node"] * 5, replay_detector=detector
        )
        verdicts = [o.replay_check.is_replay for o in result.outcomes]
        assert verdicts == [False, False, False, False, True]
