"""Tests for MAC frames, duty cycle, and regional parameters."""

import pytest

from repro.errors import ConfigurationError, DecodeError, DutyCycleError, MicError
from repro.lorawan.duty_cycle import DutyCycleLimiter
from repro.lorawan.mac import (
    FrameCounterValidator,
    MType,
    build_uplink,
    parse_mac_frame,
    verify_and_decrypt,
)
from repro.lorawan.regional import EU868
from repro.lorawan.security import SessionKeys

DEV = 0x26010203
KEYS = SessionKeys.derive_for_test(DEV)


class TestMacFrames:
    def test_build_parse_roundtrip(self):
        raw = build_uplink(KEYS, DEV, 7, b"payload!", fport=2)
        frame = parse_mac_frame(raw)
        assert frame.mtype is MType.UNCONFIRMED_UP
        assert frame.dev_addr == DEV
        assert frame.fcnt == 7
        assert frame.fport == 2
        assert len(frame.mic) == 4

    def test_payload_is_encrypted_on_wire(self):
        raw = build_uplink(KEYS, DEV, 7, b"secret sensor data")
        frame = parse_mac_frame(raw)
        assert frame.frm_payload != b"secret sensor data"

    def test_verify_and_decrypt(self):
        raw = build_uplink(KEYS, DEV, 9, b"plaintext here")
        frame = verify_and_decrypt(raw, KEYS)
        assert frame.frm_payload == b"plaintext here"

    def test_confirmed_uplink_type(self):
        raw = build_uplink(KEYS, DEV, 1, b"x", confirmed=True)
        assert parse_mac_frame(raw).mtype is MType.CONFIRMED_UP

    def test_fopts_carried(self):
        raw = build_uplink(KEYS, DEV, 1, b"x", fopts=b"\x02\x30")
        frame = parse_mac_frame(raw)
        assert frame.fopts == b"\x02\x30"

    def test_tampered_frame_fails_mic(self):
        raw = bytearray(build_uplink(KEYS, DEV, 3, b"data"))
        raw[-6] ^= 0xFF  # flip payload bits, keep MIC
        with pytest.raises(MicError):
            verify_and_decrypt(bytes(raw), KEYS)

    def test_replayed_bytes_still_verify(self):
        # The frame delay attack's central premise: an untouched replay
        # passes MIC verification.
        raw = build_uplink(KEYS, DEV, 4, b"data")
        assert verify_and_decrypt(raw, KEYS).frm_payload == b"data"
        assert verify_and_decrypt(raw, KEYS).frm_payload == b"data"

    def test_short_frame_rejected(self):
        with pytest.raises(DecodeError):
            parse_mac_frame(b"\x40\x01\x02")

    def test_downlink_type_rejected(self):
        raw = bytearray(build_uplink(KEYS, DEV, 1, b"x"))
        raw[0] = MType.UNCONFIRMED_DOWN << 5
        with pytest.raises(DecodeError):
            parse_mac_frame(bytes(raw))

    def test_wrong_keys_fail(self):
        raw = build_uplink(KEYS, DEV, 1, b"x")
        with pytest.raises(MicError):
            verify_and_decrypt(raw, SessionKeys.derive_for_test(0xDEAD))


class TestFrameCounter:
    def test_monotone_accepted(self):
        validator = FrameCounterValidator()
        assert validator.validate(DEV, 1)
        assert validator.validate(DEV, 2)
        assert validator.validate(DEV, 10)

    def test_replay_of_old_counter_rejected(self):
        validator = FrameCounterValidator()
        validator.validate(DEV, 5)
        assert not validator.validate(DEV, 5)
        assert not validator.validate(DEV, 4)

    def test_delayed_frame_with_fresh_counter_accepted(self):
        # The frame delay attack: the original frame never arrived, so
        # its counter is still "fresh" when the replay shows up late.
        validator = FrameCounterValidator()
        validator.validate(DEV, 7)
        assert validator.validate(DEV, 8)

    def test_gap_limit(self):
        validator = FrameCounterValidator(max_gap=100)
        validator.validate(DEV, 1)
        assert not validator.validate(DEV, 200)

    def test_per_device_isolation(self):
        validator = FrameCounterValidator()
        validator.validate(1, 50)
        assert validator.validate(2, 1)
        assert validator.last_seen(1) == 50
        assert validator.last_seen(3) is None


class TestDutyCycle:
    def test_off_time_enforced(self):
        limiter = DutyCycleLimiter(duty_cycle=0.01)
        limiter.register(0.0, 1.0)
        # 1 s airtime at 1% -> 99 s off time.
        assert not limiter.can_transmit(50.0)
        assert limiter.can_transmit(100.0)
        assert limiter.next_allowed_s("g2") == pytest.approx(100.0)

    def test_violation_raises(self):
        limiter = DutyCycleLimiter(duty_cycle=0.01)
        limiter.register(0.0, 1.0)
        with pytest.raises(DutyCycleError):
            limiter.register(10.0, 1.0)

    def test_sub_bands_independent(self):
        limiter = DutyCycleLimiter(duty_cycle=0.01)
        limiter.register(0.0, 1.0, sub_band="g1")
        limiter.register(0.0, 1.0, sub_band="g2")  # no error
        assert limiter.airtime_spent_s("g1") == 1.0
        assert limiter.transmissions("g2") == 1

    def test_hourly_budget_matches_paper(self):
        # 24 SF12 30-byte frames back-to-back fit one hour at 1%.
        limiter = DutyCycleLimiter(duty_cycle=0.01)
        airtime = 1.4828
        t, sent = 0.0, 0
        while t < 3600.0:
            if limiter.can_transmit(t):
                limiter.register(t, airtime)
                sent += 1
            t = limiter.next_allowed_s("g2")
        assert 23 <= sent <= 25

    def test_invalid_duty_cycle(self):
        with pytest.raises(ConfigurationError):
            DutyCycleLimiter(duty_cycle=0.0)

    def test_invalid_airtime(self):
        with pytest.raises(ConfigurationError):
            DutyCycleLimiter().register(0.0, 0.0)


class TestRegional:
    def test_data_rate_lookup(self):
        dr = EU868.data_rate_for_sf(12)
        assert dr.index == 0
        assert dr.max_mac_payload == 51

    def test_unknown_sf_rejected(self):
        with pytest.raises(ConfigurationError):
            EU868.data_rate_for_sf(6)

    def test_payload_cap_enforced(self):
        EU868.validate_uplink(7, 200)  # fine at DR5
        with pytest.raises(ConfigurationError):
            EU868.validate_uplink(12, 60)  # over DR0's 51-byte cap

    def test_channel_plan_contains_paper_channel(self):
        channel = EU868.channel(869.75e6)
        assert channel.sub_band == "g2"

    def test_unknown_channel(self):
        with pytest.raises(ConfigurationError):
            EU868.channel(900e6)

    def test_data_rate_names(self):
        assert "SF12" in EU868.DATA_RATES[0].name
