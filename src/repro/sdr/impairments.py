"""Front-end impairments of cheap SDR receivers.

The RTL-SDR class of dongles exhibits three well-known analog warts that
a defense keying on sub-ppm frequency features must tolerate:

* **DC offset** -- a spurious spike at 0 Hz from LO leakage,
* **IQ imbalance** -- gain/phase mismatch between the I and Q paths,
  creating an image of the signal mirrored across DC,
* **phase noise** -- a random walk of the LO phase, spreading every
  tone's skirt.

These transforms are applied to captures in the robustness tests: the
least-squares FB estimator must hold its resolution under realistic
impairment levels, because the replay detector's guard band is sized
from that resolution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def apply_dc_offset(samples: np.ndarray, offset: complex) -> np.ndarray:
    """Add a constant complex DC term (LO leakage)."""
    return np.asarray(samples, dtype=complex) + offset


def apply_iq_imbalance(
    samples: np.ndarray,
    gain_mismatch_db: float = 0.5,
    phase_mismatch_deg: float = 2.0,
) -> np.ndarray:
    """Apply gain/phase mismatch between the I and Q paths.

    Standard model: ``y = α·x + β·conj(x)`` with

        α = (1 + g·e^{jφ}) / 2,   β = (1 − g·e^{jφ}) / 2

    where ``g`` is the linear gain ratio and φ the phase error.  β sets
    the image-rejection ratio; perfect balance gives β = 0.
    """
    samples = np.asarray(samples, dtype=complex)
    g = 10.0 ** (gain_mismatch_db / 20.0)
    phi = np.deg2rad(phase_mismatch_deg)
    alpha = (1.0 + g * np.exp(1j * phi)) / 2.0
    beta = (1.0 - g * np.exp(1j * phi)) / 2.0
    return alpha * samples + beta * np.conj(samples)


def image_rejection_ratio_db(
    gain_mismatch_db: float, phase_mismatch_deg: float
) -> float:
    """IRR implied by an imbalance setting: ``|α|²/|β|²`` in dB."""
    g = 10.0 ** (gain_mismatch_db / 20.0)
    phi = np.deg2rad(phase_mismatch_deg)
    alpha = (1.0 + g * np.exp(1j * phi)) / 2.0
    beta = (1.0 - g * np.exp(1j * phi)) / 2.0
    if abs(beta) == 0:
        return float("inf")
    return float(20.0 * np.log10(abs(alpha) / abs(beta)))


def apply_phase_noise(
    samples: np.ndarray,
    sample_rate_hz: float,
    linewidth_hz: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Multiply by a Wiener-process LO phase (Lorentzian line shape).

    ``linewidth_hz`` is the -3 dB two-sided linewidth; the per-sample
    phase increment variance is ``2π·linewidth/fs``.
    """
    if linewidth_hz < 0:
        raise ConfigurationError(f"linewidth must be >= 0, got {linewidth_hz}")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    samples = np.asarray(samples, dtype=complex)
    if linewidth_hz == 0:
        return samples.copy()
    sigma = np.sqrt(2.0 * np.pi * linewidth_hz / sample_rate_hz)
    phase_walk = np.cumsum(rng.normal(0.0, sigma, len(samples)))
    return samples * np.exp(1j * phase_walk)


def apply_rtl_sdr_impairments(
    samples: np.ndarray,
    sample_rate_hz: float,
    rng: np.random.Generator,
    dc_offset: complex = 0.02 + 0.015j,
    gain_mismatch_db: float = 0.4,
    phase_mismatch_deg: float = 1.5,
    linewidth_hz: float = 30.0,
) -> np.ndarray:
    """A representative RTL-SDR impairment stack at typical levels."""
    out = apply_iq_imbalance(samples, gain_mismatch_db, phase_mismatch_deg)
    out = apply_phase_noise(out, sample_rate_hz, linewidth_hz, rng)
    return apply_dc_offset(out, dc_offset)
