"""SDR receiver substrate: I/Q capture, mixer bias, ADC, and noise models.

Models the RTL-SDR receive chain of Fig. 5 in the paper at complex
baseband: the self-generated carriers' frequency bias (δRx) and phase
(θRx) become a complex rotation of the incoming waveform, the low-pass
filters select the baseband term, and the ADCs sample (and, optionally,
quantize to the dongle's 8 bits).
"""

from repro.sdr.iq import IQTrace
from repro.sdr.noise import (
    RealNoiseModel,
    add_noise_for_snr,
    complex_awgn,
    noise_power_for_snr,
)
from repro.sdr.receiver import SdrReceiver

__all__ = [
    "IQTrace",
    "RealNoiseModel",
    "SdrReceiver",
    "add_noise_for_snr",
    "complex_awgn",
    "noise_power_for_snr",
]
