"""Receiver-side digital filtering.

The RTL-SDR digitizes a band much wider than one LoRa channel (2.4 Msps
against 125 kHz); band-limiting the capture to the channel before onset
detection removes out-of-band noise -- at 2.4 Msps roughly a 12.8 dB
in-band SNR gain -- mirroring the low-pass selection stage of the
receiver chain in the paper's Fig. 5.  Zero-phase filtering keeps the
onset position unbiased, which matters because the filtered trace feeds
the PHY timestamper.
"""

from __future__ import annotations

from scipy import signal as sp_signal

from repro.errors import ConfigurationError
from repro.sdr.iq import IQTrace

#: Default channel-selection cutoff: half the LoRa bandwidth plus margin
#: for oscillator biases of tens of ppm (|δ| up to ~25 kHz at 869.75 MHz).
DEFAULT_CHANNEL_CUTOFF_HZ = 100e3


def bandlimit_trace(
    trace: IQTrace,
    cutoff_hz: float = DEFAULT_CHANNEL_CUTOFF_HZ,
    order: int = 6,
) -> IQTrace:
    """Zero-phase low-pass the capture to the LoRa channel.

    Returns a new trace; timing metadata is preserved (filtfilt adds no
    group delay).
    """
    nyquist = trace.sample_rate_hz / 2.0
    if not 0 < cutoff_hz < nyquist:
        raise ConfigurationError(
            f"cutoff must be in (0, {nyquist:.0f}) Hz, got {cutoff_hz}"
        )
    if order < 1:
        raise ConfigurationError(f"filter order must be >= 1, got {order}")
    if len(trace.samples) < 3 * (order + 1):
        raise ConfigurationError(
            f"trace too short ({len(trace.samples)} samples) for an order-{order} filtfilt"
        )
    b, a = sp_signal.butter(order, cutoff_hz / nyquist)
    filtered = sp_signal.filtfilt(b, a, trace.samples)
    return IQTrace(
        samples=filtered,
        sample_rate_hz=trace.sample_rate_hz,
        start_time_s=trace.start_time_s,
        metadata={**trace.metadata, "bandlimited_hz": cutoff_hz},
    )
