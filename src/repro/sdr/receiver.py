"""The SDR receiver model: mixer bias, low-pass selection, ADC capture.

Following the paper's Fig. 5 analysis, the receive chain reduces at
complex baseband to::

    z_rx(t) = z_tx(t) · e^{−j(2π δRx t + θRx)} + noise

followed by sampling and (for an RTL-SDR) 8-bit quantization.  The
transmitter's bias δTx lives inside ``z_tx`` (see
:class:`repro.phy.frame.PhyTransmitter`), so the captured trace carries
the net bias ``δ = δTx − δRx`` exactly as in paper Eq. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import RTL_SDR_ADC_BITS, RTL_SDR_SAMPLE_RATE_HZ
from repro.errors import ConfigurationError
from repro.sdr.iq import IQTrace
from repro.sdr.noise import RealNoiseModel, complex_awgn


@dataclass
class SdrReceiver:
    """A low-cost listen-only SDR receiver (RTL-SDR class).

    Parameters
    ----------
    sample_rate_hz:
        ADC rate; 2.4 Msps for the paper's dongle.
    fb_hz:
        Receiver oscillator frequency bias δRx (Hz at the carrier).
    phase:
        Mixer phase θRx.
    noise_power:
        Mean power of the receiver's own noise floor added to every
        capture (0 disables).
    adc_bits:
        When set, I and Q are quantized to this many bits over
        ``adc_full_scale``; ``None`` keeps ideal samples.
    adc_full_scale:
        Clipping amplitude of the ADC input.
    """

    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ
    fb_hz: float = 0.0
    phase: float = 0.0
    noise_power: float = 0.0
    adc_bits: int | None = None
    adc_full_scale: float = 4.0
    noise_model: RealNoiseModel | None = None

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError(f"sample rate must be positive, got {self.sample_rate_hz}")
        if self.noise_power < 0:
            raise ConfigurationError(f"noise power must be >= 0, got {self.noise_power}")
        if self.adc_bits is not None and not 1 <= self.adc_bits <= 16:
            raise ConfigurationError(f"ADC bits must be in [1, 16], got {self.adc_bits}")

    def _mix(self, waveform: np.ndarray, start_time_s: float) -> np.ndarray:
        """Apply the receiver LO offset −(2πδRx·t + θRx).

        The LO runs continuously, so the rotation depends on absolute
        capture time, not on time since capture start.
        """
        if self.fb_hz == 0.0 and self.phase == 0.0:
            return np.asarray(waveform, dtype=complex)
        t = start_time_s + np.arange(len(waveform)) / self.sample_rate_hz
        return waveform * np.exp(-1j * (2 * np.pi * self.fb_hz * t + self.phase))

    def _quantize(self, samples: np.ndarray) -> np.ndarray:
        if self.adc_bits is None:
            return samples
        levels = (1 << (self.adc_bits - 1)) - 1
        scale = self.adc_full_scale
        i = np.clip(samples.real, -scale, scale)
        q = np.clip(samples.imag, -scale, scale)
        i = np.round(i / scale * levels) / levels * scale
        q = np.round(q / scale * levels) / levels * scale
        return i + 1j * q

    def capture(
        self,
        waveform: np.ndarray,
        start_time_s: float = 0.0,
        rng: np.random.Generator | None = None,
        metadata: dict | None = None,
    ) -> IQTrace:
        """Capture a waveform already sampled at this receiver's rate.

        Adds mixer rotation, the receiver noise floor, and optional ADC
        quantization; returns an :class:`IQTrace` stamped with the capture
        start time.
        """
        mixed = self._mix(np.asarray(waveform, dtype=complex), start_time_s)
        if self.noise_power > 0:
            if rng is None:
                raise ConfigurationError("a random generator is required to add receiver noise")
            if self.noise_model is None:
                mixed = mixed + complex_awgn(len(mixed), self.noise_power, rng)
            else:
                mixed = mixed + self.noise_model.generate(len(mixed), self.noise_power, rng)
        quantized = self._quantize(mixed)
        return IQTrace(
            samples=quantized,
            sample_rate_hz=self.sample_rate_hz,
            start_time_s=start_time_s,
            metadata=metadata or {},
        )

    @classmethod
    def rtl_sdr(
        cls,
        fb_hz: float = 0.0,
        phase: float = 0.0,
        noise_power: float = 0.0,
        noise_model: RealNoiseModel | None = None,
    ) -> "SdrReceiver":
        """Factory configured like the paper's RTL2832U dongle."""
        return cls(
            sample_rate_hz=RTL_SDR_SAMPLE_RATE_HZ,
            fb_hz=fb_hz,
            phase=phase,
            noise_power=noise_power,
            adc_bits=RTL_SDR_ADC_BITS,
            noise_model=noise_model,
        )
