"""I/Q trace container used by every signal-processing stage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class IQTrace:
    """A capture of complex baseband samples with absolute timing.

    Attributes
    ----------
    samples:
        Complex samples; ``I = samples.real`` and ``Q = samples.imag``
        follow the paper's conventions.
    sample_rate_hz:
        ADC rate of the capture.
    start_time_s:
        Global (gateway GPS) time of sample 0 -- the anchor that turns a
        detected onset *index* into a PHY-layer *timestamp*.
    metadata:
        Free-form annotations (node id, channel, capture conditions).
    """

    samples: np.ndarray
    sample_rate_hz: float
    start_time_s: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError(f"sample rate must be positive, got {self.sample_rate_hz}")
        self.samples = np.asarray(self.samples, dtype=complex)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def i(self) -> np.ndarray:
        """In-phase component."""
        return self.samples.real

    @property
    def q(self) -> np.ndarray:
        """Quadrature component."""
        return self.samples.imag

    @property
    def duration_s(self) -> float:
        return len(self.samples) / self.sample_rate_hz

    @property
    def sample_period_s(self) -> float:
        return 1.0 / self.sample_rate_hz

    def times(self) -> np.ndarray:
        """Absolute time of every sample."""
        return self.start_time_s + np.arange(len(self.samples)) / self.sample_rate_hz

    def time_of_index(self, index: int) -> float:
        """Absolute time of sample ``index``."""
        return self.start_time_s + index / self.sample_rate_hz

    def index_of_time(self, time_s: float) -> int:
        """Nearest sample index for an absolute time."""
        return int(round((time_s - self.start_time_s) * self.sample_rate_hz))

    def slice_samples(self, start: int, stop: int | None = None) -> "IQTrace":
        """Sub-trace by sample indices, preserving absolute timing."""
        stop = len(self.samples) if stop is None else stop
        if not 0 <= start <= len(self.samples):
            raise ConfigurationError(f"slice start {start} out of range")
        return IQTrace(
            samples=self.samples[start:stop],
            sample_rate_hz=self.sample_rate_hz,
            start_time_s=self.time_of_index(start),
            metadata=dict(self.metadata),
        )

    def power(self) -> float:
        """Mean power ``E[|z|²]`` of the trace."""
        if len(self.samples) == 0:
            raise ConfigurationError("cannot measure power of an empty trace")
        return float(np.mean(np.abs(self.samples) ** 2))
