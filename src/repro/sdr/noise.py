"""Noise generation: AWGN and a "real environment" surrogate.

The paper evaluates its estimators against two noise types (Sec. 7.1.2,
Fig. 14): randomly generated zero-mean Gaussian noise, and *real noise
traces captured with an SDR receiver in a multistory building*, scaled to
each target SNR.  Since we have no building, :class:`RealNoiseModel`
synthesizes the qualitative features of measured ISM-band noise floors --
a colored (low-pass tilted) Gaussian floor plus sporadic wideband impulse
bursts from other ISM users -- which is the stressor that separates the
robust least-squares estimator from plain phase regression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError


def complex_awgn(n: int, power: float, rng: np.random.Generator) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with mean power ``power``.

    Power splits evenly between I and Q, matching the paper's practice of
    adding zero-mean Gaussian noise to both components.
    """
    if n < 0:
        raise ConfigurationError(f"sample count must be >= 0, got {n}")
    if power < 0:
        raise ConfigurationError(f"noise power must be >= 0, got {power}")
    sigma = np.sqrt(power / 2.0)
    return sigma * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise power that produces ``snr_db`` for a given signal power."""
    if signal_power <= 0:
        raise ConfigurationError(f"signal power must be positive, got {signal_power}")
    return signal_power / (10.0 ** (snr_db / 10.0))


@dataclass
class RealNoiseModel:
    """Synthetic stand-in for SDR noise captured in a building.

    Parameters
    ----------
    color_pole:
        Pole of the one-tap IIR coloring filter in (0, 1); larger values
        tilt more energy into low frequencies.
    impulse_rate:
        Expected impulses per sample (Poisson); each impulse is a short
        burst of elevated wideband noise.
    impulse_duration:
        Burst length in samples.
    impulse_gain:
        Amplitude multiplier of burst samples over the floor.
    """

    color_pole: float = 0.7
    impulse_rate: float = 2e-4
    impulse_duration: int = 40
    impulse_gain: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.color_pole < 1.0:
            raise ConfigurationError(f"color pole must be in [0, 1), got {self.color_pole}")
        if self.impulse_rate < 0:
            raise ConfigurationError(f"impulse rate must be >= 0, got {self.impulse_rate}")
        if self.impulse_duration < 1:
            raise ConfigurationError(
                f"impulse duration must be >= 1 sample, got {self.impulse_duration}"
            )

    def generate(self, n: int, power: float, rng: np.random.Generator) -> np.ndarray:
        """A noise trace of ``n`` samples normalized to mean power ``power``."""
        if n <= 0:
            return np.zeros(0, dtype=complex)
        white = complex_awgn(n, 1.0, rng)
        colored = sp_signal.lfilter([1.0], [1.0, -self.color_pole], white)
        envelope = np.ones(n)
        n_impulses = rng.poisson(self.impulse_rate * n)
        for _ in range(n_impulses):
            start = int(rng.integers(0, n))
            stop = min(start + self.impulse_duration, n)
            envelope[start:stop] *= self.impulse_gain
        trace = colored * envelope
        measured = np.mean(np.abs(trace) ** 2)
        if measured <= 0:
            return np.zeros(n, dtype=complex)
        return trace * np.sqrt(power / measured)


def add_noise_for_snr(
    signal: np.ndarray,
    snr_db: float,
    rng: np.random.Generator,
    model: RealNoiseModel | None = None,
) -> np.ndarray:
    """Add noise scaled so the returned trace has the requested SNR.

    ``model=None`` adds white Gaussian noise; otherwise the "real" noise
    model is used, mirroring Fig. 14's two noise conditions.
    """
    signal = np.asarray(signal, dtype=complex)
    sig_power = float(np.mean(np.abs(signal) ** 2))
    power = noise_power_for_snr(sig_power, snr_db)
    if model is None:
        noise = complex_awgn(len(signal), power, rng)
    else:
        noise = model.generate(len(signal), power, rng)
    return signal + noise
