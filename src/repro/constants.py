"""Physical and protocol constants used throughout the reproduction.

The numbers here come from three sources, all cited in the paper:

* the LoRaWAN 1.0.2 regional parameters for the EU 868 MHz band,
* the Semtech SX1276 datasheet (demodulation SNR floors, sensitivity),
* the RTL-SDR receiver used by the SoftLoRa prototype (sample rate).
"""

from __future__ import annotations

SPEED_OF_LIGHT_M_S = 299_792_458.0

# ---------------------------------------------------------------------------
# LoRa channel used in all of the paper's numerical examples and experiments.
# ---------------------------------------------------------------------------

#: Central frequency of the LoRaWAN channel used throughout the paper (Hz).
EU868_CENTER_FREQUENCY_HZ = 869.75e6

#: LoRa channel bandwidth used throughout the paper (Hz).
LORA_BANDWIDTH_HZ = 125e3

#: Spreading factors supported by LoRa.  ``S`` is an integer in [6, 12].
MIN_SPREADING_FACTOR = 6
MAX_SPREADING_FACTOR = 12

#: Default uplink preamble length (number of programmed preamble chirps).
DEFAULT_PREAMBLE_CHIRPS = 8

#: Number of additional sync symbols appended to the programmed preamble by
#: the LoRa modem (2 sync-word symbols + 2.25 downchirp SFD symbols).
SYNC_SYMBOLS = 4.25

# ---------------------------------------------------------------------------
# RTL-SDR receiver (SoftLoRa's SDR front end).
# ---------------------------------------------------------------------------

#: Stable continuous sample rate of the RTL2832U dongle (samples/second).
RTL_SDR_SAMPLE_RATE_HZ = 2.4e6

#: Sampling resolution quoted in the paper: 1 / 2.4 Msps.
RTL_SDR_SAMPLE_PERIOD_S = 1.0 / RTL_SDR_SAMPLE_RATE_HZ

#: Tuning range of the RTL2832U (Hz) -- covers all LoRaWAN bands.
RTL_SDR_TUNING_RANGE_HZ = (24e6, 1766e6)

#: RTL-SDR ADC resolution (bits per I/Q component).
RTL_SDR_ADC_BITS = 8

# ---------------------------------------------------------------------------
# SX1276 demodulation limits (datasheet, quoted in paper Sec. 7.1.2).
# ---------------------------------------------------------------------------

#: Minimum SNR (dB) for reliable demodulation, per spreading factor.
SX1276_DEMOD_SNR_FLOOR_DB = {
    6: -5.0,
    7: -7.5,
    8: -10.0,
    9: -12.5,
    10: -15.0,
    11: -17.5,
    12: -20.0,
}

#: Receiver noise figure assumed for the SX1276 front end (dB).
SX1276_NOISE_FIGURE_DB = 6.0

#: Thermal noise density (dBm/Hz) at T = 290 K.
THERMAL_NOISE_DBM_PER_HZ = -174.0

# ---------------------------------------------------------------------------
# Regulatory / MAC constants.
# ---------------------------------------------------------------------------

#: ETSI duty-cycle limit for the EU 868 MHz sub-bands used by LoRaWAN.
EU868_DUTY_CYCLE_LIMIT = 0.01

#: Typical crystal-oscillator drift range for microcontrollers (ppm); the
#: paper adopts 40 ppm for its Sec. 3.2 overhead analysis.
TYPICAL_CRYSTAL_DRIFT_PPM = (30.0, 50.0)
PAPER_ANALYSIS_DRIFT_PPM = 40.0

#: Elapsed-time field used by sync-free timestamping (Sec. 3.2): 18 bits at
#: 1 ms resolution covers a buffer window of about 4.37 minutes.
ELAPSED_TIME_BITS = 18
ELAPSED_TIME_RESOLUTION_S = 1e-3

# ---------------------------------------------------------------------------
# Attack-related constants measured by the paper.
# ---------------------------------------------------------------------------

#: The gateway's LoRa chip locks onto a preamble at this chirp index; jamming
#: that starts before chirp 5 re-locks the (stronger) jamming preamble.
PREAMBLE_LOCK_CHIRP = 5

#: Net additional frequency bias introduced by a single-USRP replay chain
#: (Hz); the paper measures -543 to -743 Hz (Fig. 13).
SINGLE_USRP_REPLAY_FB_RANGE_HZ = (-743.0, -543.0)

#: Net additional FB with two distinct USRPs (eavesdropper + replayer)
#: whose biases superimpose (Sec. 8.1.4): about -2 kHz.
DUAL_USRP_REPLAY_FB_HZ = -2000.0

#: FB estimation resolution the paper achieves at SNR down to -25 dB (Hz).
FB_ESTIMATION_RESOLUTION_HZ = 120.0

#: The same resolution expressed in ppm of the 869.75 MHz carrier.
FB_ESTIMATION_RESOLUTION_PPM = FB_ESTIMATION_RESOLUTION_HZ / EU868_CENTER_FREQUENCY_HZ * 1e6


def ppm_to_hz(ppm: float, carrier_hz: float = EU868_CENTER_FREQUENCY_HZ) -> float:
    """Convert a parts-per-million bias at ``carrier_hz`` into Hz."""
    return ppm * 1e-6 * carrier_hz


def hz_to_ppm(hz: float, carrier_hz: float = EU868_CENTER_FREQUENCY_HZ) -> float:
    """Convert a frequency offset in Hz into ppm of ``carrier_hz``."""
    return hz / carrier_hz * 1e6
