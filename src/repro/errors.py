"""Exception hierarchy for the SoftLoRa reproduction.

All library-specific failures derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler while
still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter is outside its legal domain (bad SF, bandwidth, ...)."""


class ModulationError(ReproError):
    """Raised when a symbol stream cannot be modulated or demodulated."""


class DecodeError(ReproError):
    """Raised when a PHY or MAC frame fails to decode."""


class CrcError(DecodeError):
    """Payload or header CRC check failed."""


class MicError(DecodeError):
    """LoRaWAN message integrity code verification failed."""


class FrameCounterError(DecodeError):
    """Replayed or out-of-window LoRaWAN frame counter."""


class FrameSizeError(ConfigurationError):
    """A frame would exceed the data rate's regional MAC-payload cap.

    Raised at frame-*build* time (before any device state mutates), so a
    fleet whose ADR loop pushed a device to SF11/SF12 fails loudly on an
    oversized buffer instead of emitting an illegal frame.
    """


class DutyCycleError(ReproError):
    """A transmission would violate the regional duty-cycle budget."""


class EstimationError(ReproError):
    """A signal-processing estimator could not produce a result."""


class SimulationError(ReproError):
    """Inconsistent discrete-event simulation state."""
