"""Semtech LoRa time-on-air model.

Airtime drives three parts of the reproduction:

* the jamming window model (Table 1: w3 tracks the legitimate frame time),
* the duty-cycle budget (Sec. 3.2: 24 thirty-byte frames per hour at SF12),
* the discrete-event simulator's transmission scheduling.

Formulas follow the SX1276 datasheet (also used by the LoRaWAN regional
parameters): a frame is ``n_preamble + 4.25`` preamble symbols followed by
``8 + max(ceil((8·PL − 4·SF + 28 + 16·CRC − 20·IH) / (4·(SF − 2·DE))) ·
(CR + 4), 0)`` payload symbols.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.constants import (
    LORA_BANDWIDTH_HZ,
    MAX_SPREADING_FACTOR,
    MIN_SPREADING_FACTOR,
    SYNC_SYMBOLS,
)
from repro.errors import ConfigurationError


def _check_sf(spreading_factor: int) -> None:
    if not MIN_SPREADING_FACTOR <= spreading_factor <= MAX_SPREADING_FACTOR:
        raise ConfigurationError(
            f"spreading factor must be in [{MIN_SPREADING_FACTOR}, "
            f"{MAX_SPREADING_FACTOR}], got {spreading_factor}"
        )


def symbol_time_s(spreading_factor: int, bandwidth_hz: float = LORA_BANDWIDTH_HZ) -> float:
    """Duration of one CSS symbol (= one chirp), ``2^S / W`` seconds."""
    _check_sf(spreading_factor)
    return (1 << spreading_factor) / bandwidth_hz


def low_data_rate_optimize(
    spreading_factor: int, bandwidth_hz: float = LORA_BANDWIDTH_HZ
) -> bool:
    """Whether the LowDataRateOptimize flag is mandated (symbol > 16 ms)."""
    return symbol_time_s(spreading_factor, bandwidth_hz) > 16e-3


def preamble_time_s(
    spreading_factor: int,
    bandwidth_hz: float = LORA_BANDWIDTH_HZ,
    n_preamble: int = 8,
) -> float:
    """Time of the full preamble including the 4.25 sync symbols."""
    if n_preamble < 1:
        raise ConfigurationError(f"preamble length must be >= 1, got {n_preamble}")
    return (n_preamble + SYNC_SYMBOLS) * symbol_time_s(spreading_factor, bandwidth_hz)


def n_payload_symbols(
    payload_len: int,
    spreading_factor: int,
    coding_rate: int = 1,
    explicit_header: bool = True,
    crc: bool = True,
    ldro: bool | None = None,
    bandwidth_hz: float = LORA_BANDWIDTH_HZ,
) -> int:
    """Number of symbols in the payload part of a LoRa frame.

    ``coding_rate`` is the CR index 1..4 meaning 4/5 .. 4/8.  ``ldro=None``
    selects the flag automatically from the symbol time.
    """
    _check_sf(spreading_factor)
    if payload_len < 0:
        raise ConfigurationError(f"payload length must be >= 0, got {payload_len}")
    if not 1 <= coding_rate <= 4:
        raise ConfigurationError(f"coding rate index must be in [1, 4], got {coding_rate}")
    if ldro is None:
        ldro = low_data_rate_optimize(spreading_factor, bandwidth_hz)
    de = 2 if ldro else 0
    ih = 0 if explicit_header else 1
    numerator = 8 * payload_len - 4 * spreading_factor + 28 + 16 * (1 if crc else 0) - 20 * ih
    denominator = 4 * (spreading_factor - de)
    extra = max(math.ceil(numerator / denominator) * (coding_rate + 4), 0)
    return 8 + extra


@dataclass(frozen=True)
class AirtimeBreakdown:
    """Per-segment timing of one LoRa frame, all in seconds."""

    preamble_s: float
    header_s: float
    payload_s: float
    symbol_s: float
    n_payload_symbols: int

    @property
    def total_s(self) -> float:
        return self.preamble_s + self.header_s + self.payload_s

    @property
    def header_end_s(self) -> float:
        """Offset from frame start to the end of the PHY header region."""
        return self.preamble_s + self.header_s


@lru_cache(maxsize=4096)
def airtime_breakdown(
    payload_len: int,
    spreading_factor: int,
    bandwidth_hz: float = LORA_BANDWIDTH_HZ,
    coding_rate: int = 1,
    n_preamble: int = 8,
    explicit_header: bool = True,
    crc: bool = True,
    ldro: bool | None = None,
) -> AirtimeBreakdown:
    """Time on air split into preamble / header / payload segments.

    The PHY header occupies the first 8 payload-block symbols (they carry
    the header at CR 4/8 together with the first payload nibbles); we
    attribute those 8 symbols to the header segment, which is the region
    whose corruption the RN2483 drops silently (paper Sec. 4.3).

    Memoized: the hot paths (one call per transmitted frame, two per ADR
    command) see only a handful of distinct (payload_len, SF, ...) keys
    per run, and the returned breakdown is frozen, so sharing one
    instance across callers is safe.
    """
    t_sym = symbol_time_s(spreading_factor, bandwidth_hz)
    n_sym = n_payload_symbols(
        payload_len,
        spreading_factor,
        coding_rate=coding_rate,
        explicit_header=explicit_header,
        crc=crc,
        ldro=ldro,
        bandwidth_hz=bandwidth_hz,
    )
    header_symbols = 8 if explicit_header else 0
    payload_symbols = n_sym - header_symbols
    return AirtimeBreakdown(
        preamble_s=preamble_time_s(spreading_factor, bandwidth_hz, n_preamble),
        header_s=header_symbols * t_sym,
        payload_s=payload_symbols * t_sym,
        symbol_s=t_sym,
        n_payload_symbols=n_sym,
    )


def airtime_s(
    payload_len: int,
    spreading_factor: int,
    bandwidth_hz: float = LORA_BANDWIDTH_HZ,
    coding_rate: int = 1,
    n_preamble: int = 8,
    explicit_header: bool = True,
    crc: bool = True,
    ldro: bool | None = None,
) -> float:
    """Total time on air of one LoRa frame, in seconds."""
    return airtime_breakdown(
        payload_len,
        spreading_factor,
        bandwidth_hz,
        coding_rate=coding_rate,
        n_preamble=n_preamble,
        explicit_header=explicit_header,
        crc=crc,
        ldro=ldro,
    ).total_s
