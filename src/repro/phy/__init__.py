"""LoRa physical layer substrate: CSS chirps, coding chain, frames, airtime.

This package implements the complex-baseband LoRa PHY the paper's
algorithms operate on (paper Secs. 5.2, 6.1.1, 7.1):

* :mod:`repro.phy.chirp` -- closed-form chirp synthesis with frequency bias,
* :mod:`repro.phy.modulation` -- CSS symbol modulation and dechirp-FFT
  demodulation,
* :mod:`repro.phy.encoding` -- whitening, Hamming FEC, interleaving, Gray
  mapping,
* :mod:`repro.phy.frame` -- PHY frame assembly (preamble/sync/header/payload)
  and the end-to-end transmitter/receiver pair,
* :mod:`repro.phy.airtime` -- the Semtech time-on-air model,
* :mod:`repro.phy.spectrum` -- spectrogram / envelope / power utilities.
"""

from repro.phy.airtime import (
    AirtimeBreakdown,
    airtime_s,
    low_data_rate_optimize,
    n_payload_symbols,
    preamble_time_s,
    symbol_time_s,
)
from repro.phy.chirp import (
    ChirpConfig,
    cached_base_downchirp,
    cached_base_upchirp,
    cached_dechirp_template,
    cached_sample_times,
    cached_sweep_phase,
    chirp_waveform,
    downchirp,
    instantaneous_frequency,
    instantaneous_phase,
    preamble_waveform,
    upchirp,
)
from repro.phy.encoding import (
    gray_decode,
    gray_encode,
    hamming_decode,
    hamming_encode,
    PayloadCodec,
    whiten,
)
from repro.phy.frame import (
    PhyFrame,
    PhyHeader,
    PhyReceiver,
    PhyTransmitter,
    crc16_ccitt,
)
from repro.phy.modulation import CssDemodulator, CssModulator
from repro.phy.spectrum import (
    hilbert_envelope,
    measure_snr_db,
    signal_power,
    spectrogram,
)

__all__ = [
    "AirtimeBreakdown",
    "ChirpConfig",
    "CssDemodulator",
    "CssModulator",
    "PayloadCodec",
    "PhyFrame",
    "PhyHeader",
    "PhyReceiver",
    "PhyTransmitter",
    "airtime_s",
    "cached_base_downchirp",
    "cached_base_upchirp",
    "cached_dechirp_template",
    "cached_sample_times",
    "cached_sweep_phase",
    "chirp_waveform",
    "crc16_ccitt",
    "downchirp",
    "gray_decode",
    "gray_encode",
    "hamming_decode",
    "hamming_encode",
    "hilbert_envelope",
    "instantaneous_frequency",
    "instantaneous_phase",
    "low_data_rate_optimize",
    "measure_snr_db",
    "n_payload_symbols",
    "preamble_time_s",
    "preamble_waveform",
    "signal_power",
    "spectrogram",
    "symbol_time_s",
    "upchirp",
    "whiten",
]
