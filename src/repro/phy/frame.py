"""LoRa PHY frame assembly and the end-to-end transmitter / receiver pair.

A LoRa PHY frame is, on air::

    [ preamble: N base up chirps ]
    [ sync word: 2 modulated up chirps ]
    [ SFD: 2.25 down chirps ]
    [ PHY header: 8 symbols at CR 4/8 (explicit mode) ]
    [ payload (+ CRC16) symbols at the frame's CR ]

The transmitter keeps phase continuity across all segments (the phase a
chirp accumulates over a full sweep is exactly ``2πδT``, see
:mod:`repro.phy.chirp`).  The receiver is deliberately factored the way the
SoftLoRa gateway uses it: frame-start sample index and frequency-bias
estimate are *inputs* (produced by the paper's onset detector and FB
estimators), after which demodulation is deterministic dechirp-FFT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, CrcError, DecodeError
from repro.phy.chirp import (
    ChirpConfig,
    chirp_end_phase,
    downchirp,
    instantaneous_phase,
    upchirp,
)
from repro.phy.encoding import PayloadCodec
from repro.phy.modulation import CssDemodulator, CssModulator

#: Number of down chirps in the start-of-frame delimiter.
SFD_CHIRPS = 2.25

#: Default LoRaWAN public sync word.
DEFAULT_SYNC_WORD = 0x34

#: The PHY header always uses the strongest coding rate.
HEADER_CODING_RATE = 4


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over ``data`` (polynomial 0x1021)."""
    crc = initial
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


@dataclass(frozen=True)
class PhyHeader:
    """Explicit-mode PHY header: length, coding rate, CRC presence."""

    payload_len: int
    coding_rate: int = 1
    has_crc: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.payload_len <= 255:
            raise ConfigurationError(f"payload length must fit a byte, got {self.payload_len}")
        if not 1 <= self.coding_rate <= 4:
            raise ConfigurationError(f"coding rate index must be in [1, 4], got {self.coding_rate}")

    def to_bytes(self) -> bytes:
        """Pack into 3 bytes: length, flags, checksum."""
        flags = (self.coding_rate << 1) | (1 if self.has_crc else 0)
        checksum = (self.payload_len ^ (flags << 3) ^ 0x5A) & 0xFF
        return bytes([self.payload_len, flags, checksum])

    @classmethod
    def from_bytes(cls, raw: bytes) -> "PhyHeader":
        """Unpack and verify the header checksum."""
        if len(raw) < 3:
            raise DecodeError(f"PHY header needs 3 bytes, got {len(raw)}")
        payload_len, flags, checksum = raw[0], raw[1], raw[2]
        if checksum != ((payload_len ^ (flags << 3) ^ 0x5A) & 0xFF):
            raise CrcError("PHY header checksum mismatch")
        coding_rate = (flags >> 1) & 0x7
        if not 1 <= coding_rate <= 4:
            raise DecodeError(f"PHY header carries invalid coding rate {coding_rate}")
        return cls(payload_len=payload_len, coding_rate=coding_rate, has_crc=bool(flags & 1))


@dataclass(frozen=True)
class PhyFrame:
    """A LoRa PHY frame ready for modulation."""

    payload: bytes
    coding_rate: int = 1
    has_crc: bool = True
    n_preamble: int = 8
    sync_word: int = DEFAULT_SYNC_WORD

    def __post_init__(self) -> None:
        if len(self.payload) > 255:
            raise ConfigurationError(f"payload too long ({len(self.payload)} > 255 bytes)")
        if not 0 <= self.sync_word <= 0xFF:
            raise ConfigurationError(f"sync word must fit a byte, got {self.sync_word}")
        if self.n_preamble < 1:
            raise ConfigurationError(f"preamble length must be >= 1, got {self.n_preamble}")

    @property
    def header(self) -> PhyHeader:
        return PhyHeader(
            payload_len=len(self.payload), coding_rate=self.coding_rate, has_crc=self.has_crc
        )

    def sync_symbols(self, config: ChirpConfig) -> list[int]:
        """The two sync-word chirp shifts (nibbles scaled by 8, like SX127x)."""
        hi = ((self.sync_word >> 4) << 3) % config.n_symbols
        lo = ((self.sync_word & 0xF) << 3) % config.n_symbols
        return [hi, lo]

    def payload_with_crc(self) -> bytes:
        if not self.has_crc:
            return self.payload
        crc = crc16_ccitt(self.payload)
        return self.payload + bytes([crc >> 8, crc & 0xFF])


def sfd_n_samples(config: ChirpConfig) -> int:
    """Samples occupied by the 2.25-chirp SFD."""
    return int(round(SFD_CHIRPS * config.samples_per_chirp))


@dataclass(frozen=True)
class FrameLayout:
    """Sample-index layout of a frame within its waveform."""

    preamble_start: int
    sync_start: int
    sfd_start: int
    header_start: int
    payload_start: int
    end: int

    def shifted(self, offset: int) -> "FrameLayout":
        return FrameLayout(
            preamble_start=self.preamble_start + offset,
            sync_start=self.sync_start + offset,
            sfd_start=self.sfd_start + offset,
            header_start=self.header_start + offset,
            payload_start=self.payload_start + offset,
            end=self.end + offset,
        )


def frame_layout(frame: PhyFrame, config: ChirpConfig, codec_factory=PayloadCodec) -> FrameLayout:
    """Compute where each frame segment starts, in samples from frame start."""
    spc = config.samples_per_chirp
    preamble_start = 0
    sync_start = frame.n_preamble * spc
    sfd_start = sync_start + 2 * spc
    header_start = sfd_start + sfd_n_samples(config)
    header_codec = codec_factory(config.spreading_factor, HEADER_CODING_RATE)
    n_header_symbols = header_codec.n_symbols(len(frame.header.to_bytes()))
    payload_start = header_start + n_header_symbols * spc
    payload_codec = codec_factory(config.spreading_factor, frame.coding_rate)
    n_payload_symbols = payload_codec.n_symbols(len(frame.payload_with_crc()))
    end = payload_start + n_payload_symbols * spc
    return FrameLayout(
        preamble_start=preamble_start,
        sync_start=sync_start,
        sfd_start=sfd_start,
        header_start=header_start,
        payload_start=payload_start,
        end=end,
    )


class PhyTransmitter:
    """Modulates :class:`PhyFrame` objects into complex baseband waveforms.

    ``fb_hz`` models the transmitter oscillator's frequency bias (δTx in
    the paper); every waveform it emits carries that bias.
    """

    def __init__(self, config: ChirpConfig, fb_hz: float = 0.0):
        self.config = config
        self.fb_hz = fb_hz
        self._modulator = CssModulator(config)

    def _sfd_waveform(self, phase: float, amplitude: float) -> tuple[np.ndarray, float]:
        """The 2.25 down chirps; returns (waveform, end phase)."""
        config = self.config
        full = downchirp(config, fb_hz=self.fb_hz, phase=phase, amplitude=amplitude)
        phase = chirp_end_phase(config, fb_hz=self.fb_hz, phase=phase)
        full2 = downchirp(config, fb_hz=self.fb_hz, phase=phase, amplitude=amplitude)
        phase = chirp_end_phase(config, fb_hz=self.fb_hz, phase=phase)
        quarter_len = sfd_n_samples(config) - 2 * config.samples_per_chirp
        t = np.arange(quarter_len) / config.sample_rate_hz
        theta = instantaneous_phase(t, config, fb_hz=self.fb_hz, phase=phase, down=True)
        quarter = amplitude * np.exp(1j * theta)
        end_t = quarter_len / config.sample_rate_hz
        end_phase = float(
            instantaneous_phase(
                np.array([end_t]), config, fb_hz=self.fb_hz, phase=phase, down=True
            )[0]
        )
        return np.concatenate([full, full2, quarter]), end_phase

    def modulate(self, frame: PhyFrame, phase: float = 0.0, amplitude: float = 1.0) -> np.ndarray:
        """Full frame waveform at complex baseband."""
        config = self.config
        chunks: list[np.ndarray] = []
        current = phase
        for _ in range(frame.n_preamble):
            chunks.append(
                upchirp(config, fb_hz=self.fb_hz, phase=current, amplitude=amplitude)
            )
            current = chirp_end_phase(config, fb_hz=self.fb_hz, phase=current)
        for symbol in frame.sync_symbols(config):
            chunks.append(
                upchirp(
                    config, fb_hz=self.fb_hz, phase=current, amplitude=amplitude, symbol=symbol
                )
            )
            current = chirp_end_phase(config, fb_hz=self.fb_hz, phase=current)
        sfd, current = self._sfd_waveform(current, amplitude)
        chunks.append(sfd)
        header_codec = PayloadCodec(config.spreading_factor, HEADER_CODING_RATE)
        header_symbols = header_codec.encode(frame.header.to_bytes())
        chunks.append(
            self._modulator.modulate(
                header_symbols, fb_hz=self.fb_hz, phase=current, amplitude=amplitude
            )
        )
        current = chirp_end_phase(config, fb_hz=self.fb_hz, phase=current)
        for _ in range(len(header_symbols) - 1):
            current = chirp_end_phase(config, fb_hz=self.fb_hz, phase=current)
        payload_codec = PayloadCodec(config.spreading_factor, frame.coding_rate)
        payload_symbols = payload_codec.encode(frame.payload_with_crc())
        chunks.append(
            self._modulator.modulate(
                payload_symbols, fb_hz=self.fb_hz, phase=current, amplitude=amplitude
            )
        )
        return np.concatenate(chunks)


@dataclass
class PhyDecodeResult:
    """Outcome of a successful PHY decode."""

    header: PhyHeader
    payload: bytes
    crc_ok: bool
    corrected_codewords: int = 0
    sync_symbols: list[int] = field(default_factory=list)


class PhyReceiver:
    """Demodulates frame waveforms given onset index and FB estimate.

    This mirrors the SoftLoRa split of concerns: the gateway's commodity
    LoRa chip does hardware demodulation, while the SDR path provides the
    onset timestamp and the FB.  For the simulator we reuse the FB-corrected
    dechirp demodulator as the "hardware" decode.
    """

    def __init__(self, config: ChirpConfig, sync_tolerance_bins: int = 2):
        self.config = config
        self.sync_tolerance_bins = sync_tolerance_bins
        self._demodulator = CssDemodulator(config)

    def _expect_sync(self, observed: list[int], frame_sync_word: int) -> bool:
        expected_hi = ((frame_sync_word >> 4) << 3) % self.config.n_symbols
        expected_lo = ((frame_sync_word & 0xF) << 3) % self.config.n_symbols
        tol = self.sync_tolerance_bins
        n = self.config.n_symbols

        def close(a: int, b: int) -> bool:
            d = abs(a - b)
            return min(d, n - d) <= tol

        return close(observed[0], expected_hi) and close(observed[1], expected_lo)

    def decode(
        self,
        iq: np.ndarray,
        onset_index: int,
        fb_hz: float = 0.0,
        n_preamble: int = 8,
        sync_word: int = DEFAULT_SYNC_WORD,
        check_sync: bool = True,
    ) -> PhyDecodeResult:
        """Decode a frame whose preamble starts at ``onset_index``.

        Raises :class:`DecodeError` / :class:`CrcError` on failure, the
        same conditions under which a commodity gateway raises (or
        silently drops, see the jamming model) a reception.
        """
        spc = self.config.samples_per_chirp
        sync_start = onset_index + n_preamble * spc
        sync_obs = self._demodulator.symbols(iq[sync_start:], 2, fb_hz=fb_hz)
        if check_sync and not self._expect_sync(sync_obs, sync_word):
            raise DecodeError(f"sync word mismatch: observed symbols {sync_obs}")
        header_start = sync_start + 2 * spc + sfd_n_samples(self.config)
        header_codec = PayloadCodec(self.config.spreading_factor, HEADER_CODING_RATE)
        n_header_symbols = header_codec.n_symbols(3)
        header_syms = self._demodulator.symbols(iq[header_start:], n_header_symbols, fb_hz=fb_hz)
        header_decoded = header_codec.decode(header_syms, 3)
        header = PhyHeader.from_bytes(header_decoded.data)
        payload_codec = PayloadCodec(self.config.spreading_factor, header.coding_rate)
        n_bytes = header.payload_len + (2 if header.has_crc else 0)
        n_payload_symbols = payload_codec.n_symbols(n_bytes)
        payload_start = header_start + n_header_symbols * spc
        payload_syms = self._demodulator.symbols(
            iq[payload_start:], n_payload_symbols, fb_hz=fb_hz
        )
        decoded = payload_codec.decode(payload_syms, n_bytes)
        if header.has_crc:
            payload, crc_bytes = decoded.data[:-2], decoded.data[-2:]
            expected = crc16_ccitt(payload)
            observed = (crc_bytes[0] << 8) | crc_bytes[1]
            if expected != observed:
                raise CrcError(
                    f"payload CRC mismatch: expected {expected:#06x}, got {observed:#06x}"
                )
            crc_ok = True
        else:
            payload, crc_ok = decoded.data, False
        return PhyDecodeResult(
            header=header,
            payload=payload,
            crc_ok=crc_ok,
            corrected_codewords=decoded.corrected_codewords + header_decoded.corrected_codewords,
            sync_symbols=sync_obs,
        )
