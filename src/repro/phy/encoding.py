"""LoRa PHY bit-level coding chain: whitening, Hamming FEC, interleaving, Gray.

LoRa encodes payload bytes through four stages before chirp modulation:

1. **whitening** with an LFSR sequence to balance the bit stream,
2. **Hamming forward error correction** on nibbles: coding rate index
   ``CR ∈ [1, 4]`` produces ``4 + CR``-bit codewords (4/5 parity-detect up
   to 4/8 single-error-correct / double-error-detect),
3. **diagonal interleaving** over blocks of ``SF`` codewords, spreading each
   codeword across ``4 + CR`` consecutive symbols so a burst hit on one
   symbol damages at most one bit per codeword,
4. **Gray mapping** between bit groups and chirp shift indices so adjacent
   demodulation bins differ in a single bit.

Semtech's exact scrambler polynomial is undocumented; this chain is
self-consistent (decode inverts encode) and has the same burst-resilience
structure, which is what the jamming experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DecodeError

#: Generator matrix rows for Hamming(7,4); bit i of the codeword is the
#: parity of data bits selected by the mask.  Data bits are d3..d0.
_HAMMING74_PARITY_MASKS = (0b1101, 0b1011, 0b0111)


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of a non-negative integer."""
    if value < 0:
        raise ConfigurationError(f"gray_encode needs a non-negative value, got {value}")
    return value ^ (value >> 1)


def gray_decode(value: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if value < 0:
        raise ConfigurationError(f"gray_decode needs a non-negative value, got {value}")
    result = 0
    while value:
        result ^= value
        value >>= 1
    return result


def _whitening_sequence(n_bytes: int, seed: int = 0xFF) -> np.ndarray:
    """Bytes of the whitening LFSR stream (x^8 + x^6 + x^5 + x^4 + 1)."""
    state = seed & 0xFF
    out = np.empty(n_bytes, dtype=np.uint8)
    for i in range(n_bytes):
        out[i] = state
        # Galois LFSR step, tap mask chosen for a maximal-length sequence.
        feedback = ((state >> 7) ^ (state >> 5) ^ (state >> 4) ^ (state >> 3)) & 1
        state = ((state << 1) | feedback) & 0xFF
    return out


def whiten(data: bytes, seed: int = 0xFF) -> bytes:
    """XOR-whiten a byte string; applying it twice returns the input."""
    if not data:
        return b""
    stream = _whitening_sequence(len(data), seed)
    return bytes(np.bitwise_xor(np.frombuffer(data, dtype=np.uint8), stream))


def hamming_encode(nibble: int, coding_rate: int) -> int:
    """Encode a 4-bit nibble into a ``4 + coding_rate``-bit codeword.

    Layout: data nibble in the low 4 bits, parity bits above it.
    """
    if not 0 <= nibble <= 0xF:
        raise ConfigurationError(f"nibble must be in [0, 15], got {nibble}")
    if not 1 <= coding_rate <= 4:
        raise ConfigurationError(f"coding rate index must be in [1, 4], got {coding_rate}")
    parities = [bin(nibble & mask).count("1") & 1 for mask in _HAMMING74_PARITY_MASKS]
    if coding_rate == 1:
        # 4/5: single even-parity bit over the nibble.
        return nibble | ((bin(nibble).count("1") & 1) << 4)
    if coding_rate == 2:
        # 4/6: two parity bits (detect-only).
        return nibble | (parities[0] << 4) | (parities[1] << 5)
    codeword = nibble | (parities[0] << 4) | (parities[1] << 5) | (parities[2] << 6)
    if coding_rate == 3:
        return codeword  # 4/7: Hamming(7,4), corrects one bit.
    overall = bin(codeword).count("1") & 1
    return codeword | (overall << 7)  # 4/8: extended Hamming, SEC-DED.


def _hamming74_syndrome_correct(codeword: int) -> tuple[int, bool]:
    """Correct a single-bit error in a Hamming(7,4) codeword.

    Returns ``(corrected_codeword, was_corrected)``.
    """
    nibble = codeword & 0xF
    syndrome = 0
    for i, mask in enumerate(_HAMMING74_PARITY_MASKS):
        expected = bin(nibble & mask).count("1") & 1
        actual = (codeword >> (4 + i)) & 1
        if expected != actual:
            syndrome |= 1 << i
    if syndrome == 0:
        return codeword, False
    # Locate the flipped bit: each bit position has a unique syndrome
    # signature (data bit d: the set of parity masks containing d; parity
    # bit p_i: just {i}).
    for bit in range(7):
        if bit < 4:
            signature = sum(
                1 << i for i, mask in enumerate(_HAMMING74_PARITY_MASKS) if mask & (1 << bit)
            )
        else:
            signature = 1 << (bit - 4)
        if signature == syndrome:
            return codeword ^ (1 << bit), True
    # Unreachable for 7-bit codewords: every syndrome maps to a position.
    raise DecodeError(f"uncorrectable Hamming(7,4) syndrome {syndrome:#05b}")


def hamming_decode(codeword: int, coding_rate: int) -> tuple[int, bool]:
    """Decode a codeword back to its nibble.

    Returns ``(nibble, error_detected_or_corrected)``.  CR 4/5 and 4/6 can
    only detect; CR 4/7 corrects one bit; CR 4/8 corrects one bit and
    raises :class:`DecodeError` on detected double errors.
    """
    if not 1 <= coding_rate <= 4:
        raise ConfigurationError(f"coding rate index must be in [1, 4], got {coding_rate}")
    nibble = codeword & 0xF
    if coding_rate == 1:
        expected = bin(nibble).count("1") & 1
        return nibble, expected != ((codeword >> 4) & 1)
    if coding_rate == 2:
        flagged = False
        for i, mask in enumerate(_HAMMING74_PARITY_MASKS[:2]):
            if (bin(nibble & mask).count("1") & 1) != ((codeword >> (4 + i)) & 1):
                flagged = True
        return nibble, flagged
    if coding_rate == 3:
        corrected, changed = _hamming74_syndrome_correct(codeword & 0x7F)
        return corrected & 0xF, changed
    # CR 4/8: use the overall parity to separate single from double errors.
    inner = codeword & 0x7F
    overall_ok = (bin(codeword & 0xFF).count("1") & 1) == 0
    corrected, changed = _hamming74_syndrome_correct(inner)
    if changed and overall_ok:
        raise DecodeError("double-bit error detected in Hamming(8,4) codeword")
    if not changed and not overall_ok:
        # The overall parity bit itself flipped; data is intact.
        return inner & 0xF, True
    return corrected & 0xF, changed


def interleave_block(codewords: list[int], spreading_factor: int, coding_rate: int) -> list[int]:
    """Diagonally interleave ``SF`` codewords into ``4 + CR`` symbols.

    Symbol ``j`` collects bit ``j`` of every codeword, with codeword ``i``
    rotated by ``i`` positions so bits move diagonally (burst resilience).
    """
    width = 4 + coding_rate
    if len(codewords) != spreading_factor:
        raise ConfigurationError(
            f"interleaver block needs {spreading_factor} codewords, got {len(codewords)}"
        )
    symbols = []
    for j in range(width):
        value = 0
        for i in range(spreading_factor):
            bit = (codewords[i] >> ((j + i) % width)) & 1
            value |= bit << i
        symbols.append(value)
    return symbols


def deinterleave_block(symbols: list[int], spreading_factor: int, coding_rate: int) -> list[int]:
    """Invert :func:`interleave_block`."""
    width = 4 + coding_rate
    if len(symbols) != width:
        raise ConfigurationError(
            f"deinterleaver block needs {width} symbols, got {len(symbols)}"
        )
    codewords = [0] * spreading_factor
    for j, value in enumerate(symbols):
        for i in range(spreading_factor):
            bit = (value >> i) & 1
            codewords[i] |= bit << ((j + i) % width)
    return codewords


@dataclass(frozen=True)
class DecodedPayload:
    """Result of :meth:`PayloadCodec.decode`."""

    data: bytes
    corrected_codewords: int
    flagged_codewords: int


class PayloadCodec:
    """End-to-end bit-level codec: bytes <-> CSS symbol indices.

    The symbol indices returned by :meth:`encode` are the chirp shifts fed
    to :class:`repro.phy.modulation.CssModulator`.
    """

    def __init__(self, spreading_factor: int, coding_rate: int = 1, whitening: bool = True):
        if not 1 <= coding_rate <= 4:
            raise ConfigurationError(f"coding rate index must be in [1, 4], got {coding_rate}")
        if not 6 <= spreading_factor <= 12:
            raise ConfigurationError(
                f"spreading factor must be in [6, 12], got {spreading_factor}"
            )
        self.spreading_factor = spreading_factor
        self.coding_rate = coding_rate
        self.whitening = whitening

    @property
    def block_symbols(self) -> int:
        """Symbols per interleaver block."""
        return 4 + self.coding_rate

    @property
    def block_nibbles(self) -> int:
        """Data nibbles per interleaver block."""
        return self.spreading_factor

    def n_blocks(self, n_bytes: int) -> int:
        """Interleaver blocks needed to carry ``n_bytes``."""
        nibbles = 2 * n_bytes
        return -(-nibbles // self.block_nibbles) if nibbles else 0

    def n_symbols(self, n_bytes: int) -> int:
        """Symbols produced when encoding ``n_bytes``."""
        return self.n_blocks(n_bytes) * self.block_symbols

    def encode(self, data: bytes) -> list[int]:
        """Encode bytes into Gray-mapped CSS symbol indices."""
        if self.whitening:
            data = whiten(data)
        nibbles: list[int] = []
        for byte in data:
            nibbles.append(byte >> 4)
            nibbles.append(byte & 0xF)
        while len(nibbles) % self.block_nibbles:
            nibbles.append(0)
        symbols: list[int] = []
        for start in range(0, len(nibbles), self.block_nibbles):
            block = nibbles[start : start + self.block_nibbles]
            codewords = [hamming_encode(n, self.coding_rate) for n in block]
            for raw in interleave_block(codewords, self.spreading_factor, self.coding_rate):
                symbols.append(gray_encode(raw))
        return symbols

    def decode(self, symbols: list[int], n_bytes: int) -> DecodedPayload:
        """Decode symbol indices back into ``n_bytes`` of payload.

        Raises :class:`DecodeError` on uncorrectable codewords (CR 4/8) or
        when too few symbols are supplied.
        """
        needed = self.n_symbols(n_bytes)
        if len(symbols) < needed:
            raise DecodeError(
                f"need {needed} symbols to decode {n_bytes} bytes, got {len(symbols)}"
            )
        nibbles: list[int] = []
        corrected = 0
        flagged = 0
        for start in range(0, needed, self.block_symbols):
            block = [gray_decode(s) for s in symbols[start : start + self.block_symbols]]
            codewords = deinterleave_block(block, self.spreading_factor, self.coding_rate)
            for codeword in codewords:
                nibble, changed = hamming_decode(codeword, self.coding_rate)
                if changed:
                    if self.coding_rate >= 3:
                        corrected += 1
                    else:
                        flagged += 1
                nibbles.append(nibble)
        data = bytearray()
        for i in range(n_bytes):
            data.append((nibbles[2 * i] << 4) | nibbles[2 * i + 1])
        payload = bytes(data)
        if self.whitening:
            payload = whiten(payload)
        return DecodedPayload(
            data=payload, corrected_codewords=corrected, flagged_codewords=flagged
        )
