"""Closed-form LoRa CSS chirp synthesis at complex baseband.

The paper models the received up chirp as ``I(t) = (A/2) cos Θ(t)`` and
``Q(t) = (A/2) sin Θ(t)`` with the instantaneous angle (paper Eq. 5)::

    Θ(t) = π W² / 2^S · t² − π W t + 2π δ t + θ,   δ = δTx − δRx

where ``W`` is the channel bandwidth, ``S`` the spreading factor, ``δ`` the
net frequency bias between transmitter and SDR receiver, and ``θ`` the
unknown phase difference.  We synthesize the equivalent complex envelope
``z(t) = A · e^{jΘ(t)}`` (so that ``I = Re z`` and ``Q = Im z`` carry the
amplitude convention of the chosen ``A``) and sample it at the SDR rate.

Data chirps (symbol ``k``) start at frequency ``−W/2 + k·W/2^S`` and wrap
from ``+W/2`` back to ``−W/2`` once during the chirp; the phase is kept
continuous across the wrap and across consecutive chirps.  A useful closed
form used by :func:`preamble_waveform`: the phase accumulated over one full
base chirp is exactly ``2π δ T`` (the quadratic and linear sweep terms
cancel at ``t = T = 2^S / W``), so chirp-to-chirp phase advances only by
the frequency-bias term.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constants import (
    LORA_BANDWIDTH_HZ,
    MAX_SPREADING_FACTOR,
    MIN_SPREADING_FACTOR,
    RTL_SDR_SAMPLE_RATE_HZ,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChirpConfig:
    """Static parameters of a LoRa channel as seen by the SDR receiver.

    Parameters
    ----------
    spreading_factor:
        LoRa spreading factor ``S``; an integer in [6, 12].
    bandwidth_hz:
        Channel bandwidth ``W``; the paper uses 125 kHz throughout.
    sample_rate_hz:
        Complex sample rate of the capture device; the RTL-SDR runs at
        2.4 Msps.  Tests may use lower rates for speed.
    """

    spreading_factor: int
    bandwidth_hz: float = LORA_BANDWIDTH_HZ
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ

    def __post_init__(self) -> None:
        if not MIN_SPREADING_FACTOR <= self.spreading_factor <= MAX_SPREADING_FACTOR:
            raise ConfigurationError(
                f"spreading factor must be in [{MIN_SPREADING_FACTOR}, "
                f"{MAX_SPREADING_FACTOR}], got {self.spreading_factor}"
            )
        if self.bandwidth_hz <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {self.bandwidth_hz}")
        if self.sample_rate_hz < self.bandwidth_hz:
            raise ConfigurationError(
                "sample rate must be at least the channel bandwidth "
                f"({self.sample_rate_hz} < {self.bandwidth_hz})"
            )

    @property
    def n_symbols(self) -> int:
        """Number of distinct CSS symbols, ``2^S``."""
        return 1 << self.spreading_factor

    @property
    def chirp_time_s(self) -> float:
        """Duration of one chirp, ``2^S / W`` (paper Sec. 6.1.1)."""
        return self.n_symbols / self.bandwidth_hz

    @property
    def samples_per_chirp(self) -> int:
        """Number of complex samples covering one chirp."""
        return int(round(self.chirp_time_s * self.sample_rate_hz))

    @property
    def symbol_bandwidth_hz(self) -> float:
        """Frequency spacing between adjacent CSS symbols, ``W / 2^S``."""
        return self.bandwidth_hz / self.n_symbols

    def sample_times(self, n_chirps: float = 1.0) -> np.ndarray:
        """Sample instants covering ``n_chirps`` chirps, starting at 0."""
        n = int(round(self.samples_per_chirp * n_chirps))
        return np.arange(n) / self.sample_rate_hz


# -- reference-chirp cache ----------------------------------------------------
#
# Every receive-side stage needs the same per-config reference arrays: the
# sample instants of one chirp, the known quadratic sweep phase, and the
# base up/down chirps used as dechirp templates.  :class:`ChirpConfig` is
# frozen (hashable), so these are memoized per config; a fleet gateway
# processing thousands of captures synthesizes each reference exactly once.
# Cached arrays are returned read-only -- callers must copy before mutating.


def _read_only(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


@lru_cache(maxsize=None)
def cached_sample_times(config: ChirpConfig) -> np.ndarray:
    """Memoized :meth:`ChirpConfig.sample_times` for one chirp (read-only)."""
    return _read_only(config.sample_times())


@lru_cache(maxsize=None)
def cached_sweep_phase(config: ChirpConfig) -> np.ndarray:
    """The known sweep phase ``πW²/2^S·t² − πWt`` at the sample instants.

    This is the quadratic part of the paper's Eq. 5 -- what the FB
    estimators subtract (or conjugate away) to expose the linear ``2πδt``
    term.  Read-only.
    """
    t = cached_sample_times(config)
    w = config.bandwidth_hz
    rate = w * w / config.n_symbols
    return _read_only(np.pi * rate * t * t - np.pi * w * t)


@lru_cache(maxsize=None)
def cached_dechirp_template(config: ChirpConfig) -> np.ndarray:
    """Memoized dechirp reference ``e^{−j·sweep(t)}`` (read-only).

    Multiplying a received chirp by this conjugate sweep collapses it to
    the tone ``A·e^{j(2πδt+θ)}`` -- the first stage of the least-squares
    FB reduction and of CSS demodulation.
    """
    return _read_only(np.exp(-1j * cached_sweep_phase(config)))


@lru_cache(maxsize=None)
def cached_base_upchirp(config: ChirpConfig) -> np.ndarray:
    """Memoized unbiased base up chirp (``δ=0, θ=0, A=1``), read-only."""
    return _read_only(upchirp(config))


@lru_cache(maxsize=None)
def cached_base_downchirp(config: ChirpConfig) -> np.ndarray:
    """Memoized unbiased base down chirp, read-only."""
    return _read_only(downchirp(config))


def instantaneous_phase(
    t: np.ndarray,
    config: ChirpConfig,
    fb_hz: float = 0.0,
    phase: float = 0.0,
    symbol: int = 0,
    down: bool = False,
) -> np.ndarray:
    """Instantaneous angle ``Θ(t)`` of a chirp at times ``t`` (seconds).

    For ``symbol == 0`` and ``down=False`` this is exactly the paper's
    Eq. 5.  For a data symbol ``k`` the start frequency is raised by
    ``k·W/2^S`` and the sweep wraps once from ``+W/2`` to ``−W/2``; phase
    continuity is preserved across the wrap.
    """
    w = config.bandwidth_hz
    rate = w * w / config.n_symbols  # sweep rate W²/2^S, Hz per second
    if down:
        if symbol:
            raise ConfigurationError("down chirps carry no data symbol in this model")
        theta = -np.pi * rate * t * t + np.pi * w * t + 2 * np.pi * fb_hz * t + phase
        return theta
    k = int(symbol) % config.n_symbols
    f0 = -w / 2.0 + k * config.symbol_bandwidth_hz
    theta = 2 * np.pi * (f0 * t + 0.5 * rate * t * t + fb_hz * t) + phase
    if k:
        # Frequency reaches +W/2 at the fold instant; afterwards the sweep
        # continues from −W/2, i.e. the instantaneous frequency drops by W.
        t_fold = (config.n_symbols - k) / w
        late = t >= t_fold
        theta = np.where(late, theta - 2 * np.pi * w * (t - t_fold), theta)
    return theta


def instantaneous_frequency(
    t: np.ndarray,
    config: ChirpConfig,
    fb_hz: float = 0.0,
    symbol: int = 0,
    down: bool = False,
) -> np.ndarray:
    """Instantaneous baseband frequency ``f(t)`` of a chirp (Hz)."""
    w = config.bandwidth_hz
    rate = w * w / config.n_symbols
    if down:
        return w / 2.0 - rate * t + fb_hz
    k = int(symbol) % config.n_symbols
    f0 = -w / 2.0 + k * config.symbol_bandwidth_hz
    freq = f0 + rate * t + fb_hz
    if k:
        t_fold = (config.n_symbols - k) / w
        freq = np.where(t >= t_fold, freq - w, freq)
    return freq


def chirp_waveform(
    config: ChirpConfig,
    fb_hz: float = 0.0,
    phase: float = 0.0,
    amplitude: float = 1.0,
    symbol: int = 0,
    down: bool = False,
) -> np.ndarray:
    """One sampled chirp as a complex envelope ``A·e^{jΘ(t)}``.

    ``I(t)`` and ``Q(t)`` as defined by the paper are the real and
    imaginary parts of the returned array.
    """
    t = config.sample_times()
    theta = instantaneous_phase(t, config, fb_hz=fb_hz, phase=phase, symbol=symbol, down=down)
    return amplitude * np.exp(1j * theta)


def upchirp(
    config: ChirpConfig,
    fb_hz: float = 0.0,
    phase: float = 0.0,
    amplitude: float = 1.0,
    symbol: int = 0,
) -> np.ndarray:
    """A single up chirp carrying ``symbol`` (0 for a preamble chirp)."""
    return chirp_waveform(
        config, fb_hz=fb_hz, phase=phase, amplitude=amplitude, symbol=symbol, down=False
    )


def downchirp(
    config: ChirpConfig,
    fb_hz: float = 0.0,
    phase: float = 0.0,
    amplitude: float = 1.0,
) -> np.ndarray:
    """A single down chirp (used by the SFD and as the dechirp template)."""
    return chirp_waveform(config, fb_hz=fb_hz, phase=phase, amplitude=amplitude, down=True)


def chirp_end_phase(config: ChirpConfig, fb_hz: float = 0.0, phase: float = 0.0) -> float:
    """Phase at the end of one full base chirp.

    The quadratic and linear sweep terms of Θ(t) cancel exactly at
    ``t = T = 2^S/W``, leaving ``Θ(T) = 2π δ T + θ``.
    """
    return 2 * np.pi * fb_hz * config.chirp_time_s + phase


def preamble_waveform(
    config: ChirpConfig,
    n_chirps: int = 8,
    fb_hz: float = 0.0,
    phase: float = 0.0,
    amplitude: float = 1.0,
) -> np.ndarray:
    """``n_chirps`` phase-continuous base up chirps (the LoRa preamble).

    Phase continuity matters to the frequency-bias estimators: the second
    preamble chirp starts at phase ``θ + 2πδT`` rather than at ``θ``.
    """
    if n_chirps < 1:
        raise ConfigurationError(f"preamble needs at least one chirp, got {n_chirps}")
    chunks = []
    current_phase = phase
    for _ in range(n_chirps):
        chunks.append(upchirp(config, fb_hz=fb_hz, phase=current_phase, amplitude=amplitude))
        current_phase = chirp_end_phase(config, fb_hz=fb_hz, phase=current_phase)
    return np.concatenate(chunks)


def preamble_at_times(
    t: np.ndarray,
    config: ChirpConfig,
    n_chirps: int = 8,
    fb_hz: float = 0.0,
    phase: float = 0.0,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Evaluate a phase-continuous preamble at arbitrary times (seconds).

    ``t`` is measured from the preamble onset; samples outside
    ``[0, n_chirps·T)`` are zero.  Because the base chirp's sweep phase
    accumulates exactly ``2πδT`` per period, the whole preamble reduces
    to ``A·exp(j(Θ_base(t mod T) + 2πδt + θ))`` -- which is what this
    evaluates.  Used to synthesize captures whose true onset lies
    *between* ADC samples, the situation the paper's error-upper-bound
    metric is defined for.
    """
    t = np.asarray(t, dtype=float)
    w = config.bandwidth_hz
    rate = w * w / config.n_symbols
    period = config.chirp_time_s
    u = np.mod(t, period)
    theta = np.pi * rate * u * u - np.pi * w * u + 2 * np.pi * fb_hz * t + phase
    waveform = amplitude * np.exp(1j * theta)
    active = (t >= 0) & (t < n_chirps * period)
    return np.where(active, waveform, 0.0 + 0.0j)
