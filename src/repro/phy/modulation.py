"""CSS symbol modulation and dechirp-FFT demodulation.

Modulation shifts the start frequency of each up chirp by the symbol value;
demodulation multiplies each received chirp by the conjugate base up chirp
(a down chirp), which collapses the chirp into a tone whose frequency
encodes the symbol, then locates the tone with an FFT.

At the SDR's oversampled rate the dechirped tone for symbol ``k`` appears
at frequency ``k·W/2^S`` before the intra-chirp frequency fold and at
``k·W/2^S − W`` after it; the demodulator sums the two candidate bins.
A residual carrier frequency bias shifts every tone by ``δ``; the
demodulator accepts an externally-estimated ``fb_hz`` (from the paper's
estimators) and pre-corrects the trace with it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModulationError
from repro.phy.chirp import ChirpConfig, cached_base_upchirp, chirp_end_phase, upchirp


@dataclass(frozen=True)
class DemodulatedSymbol:
    """One demodulated CSS symbol with its decision metadata."""

    value: int
    magnitude: float
    second_magnitude: float

    @property
    def decision_margin(self) -> float:
        """Ratio of winning to runner-up bin magnitude (>= 1)."""
        if self.second_magnitude <= 0:
            return float("inf")
        return self.magnitude / self.second_magnitude


class CssModulator:
    """Generates phase-continuous chirp trains for symbol sequences."""

    def __init__(self, config: ChirpConfig):
        self.config = config

    def modulate(
        self,
        symbols: list[int],
        fb_hz: float = 0.0,
        phase: float = 0.0,
        amplitude: float = 1.0,
    ) -> np.ndarray:
        """Concatenated chirps for ``symbols``, phase-continuous."""
        n_sym = self.config.n_symbols
        chunks = []
        current_phase = phase
        for symbol in symbols:
            if not 0 <= symbol < n_sym:
                raise ModulationError(f"symbol {symbol} out of range [0, {n_sym})")
            chunk = upchirp(
                self.config,
                fb_hz=fb_hz,
                phase=current_phase,
                amplitude=amplitude,
                symbol=symbol,
            )
            chunks.append(chunk)
            # A modulated chirp also sweeps one full period of the base
            # ramp, so its end phase advances by the same 2πδT as the base
            # chirp (the symbol offset contributes a multiple of 2π over
            # the folded sweep at the sampling instants we use).
            current_phase = chirp_end_phase(self.config, fb_hz=fb_hz, phase=current_phase)
        if not chunks:
            return np.zeros(0, dtype=complex)
        return np.concatenate(chunks)


class CssDemodulator:
    """Dechirp-and-FFT CSS demodulator."""

    def __init__(self, config: ChirpConfig):
        self.config = config
        # The cached reference is shared across demodulator instances; a
        # gateway processing thousands of captures dechirps against one
        # precomputed array.
        self._base_downchirp = np.conj(cached_base_upchirp(config))

    def _bin_for_frequency(self, freq_hz: float, n_fft: int) -> int:
        """FFT bin index (0..n_fft-1) closest to ``freq_hz``."""
        fs = self.config.sample_rate_hz
        return int(round(freq_hz / fs * n_fft)) % n_fft

    def demodulate_chirp(self, iq: np.ndarray, fb_hz: float = 0.0) -> DemodulatedSymbol:
        """Demodulate one chirp-length window of complex samples."""
        n = self.config.samples_per_chirp
        if len(iq) < n:
            raise ModulationError(f"need {n} samples for one chirp, got {len(iq)}")
        window = np.asarray(iq[:n], dtype=complex)
        if fb_hz:
            t = np.arange(n) / self.config.sample_rate_hz
            window = window * np.exp(-2j * np.pi * fb_hz * t)
        dechirped = window * self._base_downchirp
        spectrum = np.abs(np.fft.fft(dechirped))
        step = self.config.symbol_bandwidth_hz
        w = self.config.bandwidth_hz
        scores = np.empty(self.config.n_symbols)
        for k in range(self.config.n_symbols):
            lo = self._bin_for_frequency(k * step, n)
            hi = self._bin_for_frequency(k * step - w, n)
            scores[k] = spectrum[lo] + (spectrum[hi] if hi != lo else 0.0)
        order = np.argsort(scores)
        best = int(order[-1])
        return DemodulatedSymbol(
            value=best,
            magnitude=float(scores[best]),
            second_magnitude=float(scores[order[-2]]) if len(scores) > 1 else 0.0,
        )

    def demodulate(
        self, iq: np.ndarray, n_chirps: int, fb_hz: float = 0.0
    ) -> list[DemodulatedSymbol]:
        """Demodulate ``n_chirps`` consecutive chirps from sample 0."""
        n = self.config.samples_per_chirp
        if len(iq) < n * n_chirps:
            raise ModulationError(
                f"need {n * n_chirps} samples for {n_chirps} chirps, got {len(iq)}"
            )
        return [
            self.demodulate_chirp(iq[i * n : (i + 1) * n], fb_hz=fb_hz) for i in range(n_chirps)
        ]

    def symbols(self, iq: np.ndarray, n_chirps: int, fb_hz: float = 0.0) -> list[int]:
        """Convenience wrapper returning bare symbol values."""
        return [d.value for d in self.demodulate(iq, n_chirps, fb_hz=fb_hz)]
