"""Spectral and envelope utilities for LoRa baseband traces.

Implements the two signal views the paper uses in Sec. 6:

* the **spectrogram** of Fig. 6 (short-time FFT with a ``2^S``-point Kaiser
  window and 16-point overlap), whose coarse ~50 µs time resolution is why
  the spectrogram cannot serve as a high-resolution timestamping method,
* the **Hilbert amplitude envelope** driving the envelope onset detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpConfig


@dataclass(frozen=True)
class Spectrogram:
    """STFT power result: ``power[f, t]`` with axis vectors in Hz / s."""

    power: np.ndarray
    frequencies_hz: np.ndarray
    times_s: np.ndarray

    @property
    def time_resolution_s(self) -> float:
        """Spacing between STFT frames; ~50 µs in the paper's Fig. 6."""
        if len(self.times_s) < 2:
            return float("nan")
        return float(self.times_s[1] - self.times_s[0])


def spectrogram(
    iq: np.ndarray,
    config: ChirpConfig,
    nperseg: int | None = None,
    noverlap: int = 16,
    kaiser_beta: float = 8.0,
) -> Spectrogram:
    """Short-time FFT spectrogram of a complex baseband trace.

    Defaults follow the paper's Fig. 6 settings: a ``2^S``-point Kaiser
    window with 16-point overlap between neighbouring windows.
    """
    if nperseg is None:
        nperseg = config.n_symbols
    if nperseg < 2:
        raise ConfigurationError(f"nperseg must be >= 2, got {nperseg}")
    if not 0 <= noverlap < nperseg:
        raise ConfigurationError(f"noverlap must be in [0, {nperseg}), got {noverlap}")
    freqs, times, sxx = sp_signal.spectrogram(
        iq,
        fs=config.sample_rate_hz,
        window=("kaiser", kaiser_beta),
        nperseg=nperseg,
        noverlap=noverlap,
        return_onesided=False,
        mode="psd",
    )
    order = np.argsort(freqs)
    return Spectrogram(power=sxx[order], frequencies_hz=freqs[order], times_s=times)


def hilbert_envelope(x: np.ndarray) -> np.ndarray:
    """Amplitude envelope of a real trace via the Hilbert transform.

    Complex input is accepted for convenience: its magnitude is already the
    envelope, so it is returned directly.
    """
    x = np.asarray(x)
    if np.iscomplexobj(x):
        return np.abs(x)
    return np.abs(sp_signal.hilbert(x))


def signal_power(x: np.ndarray) -> float:
    """Mean power of a trace: ``E[|x|²]``."""
    x = np.asarray(x)
    if x.size == 0:
        raise ConfigurationError("cannot measure power of an empty trace")
    return float(np.mean(np.abs(x) ** 2))


def snr_db(signal_power_value: float, noise_power_value: float) -> float:
    """``10·log10(signal power / noise power)`` (paper Sec. 6.2)."""
    if signal_power_value <= 0 or noise_power_value <= 0:
        raise ConfigurationError("powers must be positive to form an SNR")
    return 10.0 * np.log10(signal_power_value / noise_power_value)


def snr_from_db(snr_db_value: float) -> float:
    """Inverse of :func:`snr_db`: linear power ratio for a dB value."""
    return float(10.0 ** (snr_db_value / 10.0))


def measure_snr_db(noisy: np.ndarray, noise_power_value: float) -> float:
    """SNR of a noisy trace given a separately-profiled noise power.

    Mirrors the paper's building-survey method (Sec. 8.1): profile the
    noise power first, then measure total power while the node transmits;
    the signal power is the difference.
    """
    total = signal_power(noisy)
    sig = total - noise_power_value
    if sig <= 0:
        return float("-inf")
    return snr_db(sig, noise_power_value)
