"""repro.server: the multi-gateway network-server layer.

Everything above the gateways: forwarding records
(:class:`GatewayForward`), cross-gateway deduplication
(:class:`UplinkDeduplicator`), FB/timestamp fusion policies
(:class:`FusionPolicy`), sharded per-device FB state
(:class:`ShardedFbDatabase`), the closed-loop data-rate controller
(:class:`AdrController`), and the :class:`NetworkServer` that ties them
into one replay verdict per over-the-air transmission.
"""

from repro.server.adr import AdrCommand, AdrController
from repro.server.dedup import DeduplicatedUplink, UplinkDeduplicator, UplinkKey
from repro.server.forwarding import (
    GatewayForward,
    forward_from_event,
    forward_from_reception,
)
from repro.server.fusion import (
    FusedFb,
    FusionPolicy,
    best_snr_contribution,
    fuse_fb,
    fuse_timestamp_s,
)
from repro.server.network_server import NetworkServer, ServerStatus, ServerVerdict
from repro.server.sharding import ShardedFbDatabase

__all__ = [
    "AdrCommand",
    "AdrController",
    "DeduplicatedUplink",
    "FusedFb",
    "FusionPolicy",
    "GatewayForward",
    "NetworkServer",
    "ServerStatus",
    "ServerVerdict",
    "ShardedFbDatabase",
    "UplinkDeduplicator",
    "UplinkKey",
    "best_snr_contribution",
    "forward_from_event",
    "forward_from_reception",
    "fuse_fb",
    "fuse_timestamp_s",
]
