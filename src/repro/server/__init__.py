"""repro.server: the multi-gateway network-server layer.

Everything above the gateways: forwarding records
(:class:`GatewayForward`), cross-gateway deduplication
(:class:`UplinkDeduplicator`), FB/timestamp fusion policies
(:class:`FusionPolicy`), sharded per-device FB state
(:class:`ShardedFbDatabase`), the closed-loop data-rate controller
(:class:`AdrController`), and the :class:`NetworkServer` that ties them
into one replay verdict per over-the-air transmission.

:mod:`repro.server.store` adds durable drop-in FB stores behind the
same :class:`~repro.core.detector.FbStore` protocol: WAL-mode SQLite
(:class:`SqliteFbStore`), optional LMDB, a write-through LRU hot-cache
(:class:`LruCachedStore`), and CRC32-sharded per-shard store files with
offline rebalancing (:class:`PersistentShardedFbDatabase`); build one
from an operator spec string with :func:`open_store`.
"""

from repro.server.adr import AdrCommand, AdrController
from repro.server.dedup import DeduplicatedUplink, UplinkDeduplicator, UplinkKey
from repro.server.forwarding import (
    GatewayForward,
    forward_from_event,
    forward_from_reception,
)
from repro.server.fusion import (
    FusedFb,
    FusionPolicy,
    best_snr_contribution,
    fuse_fb,
    fuse_timestamp_s,
)
from repro.server.network_server import NetworkServer, ServerStatus, ServerVerdict
from repro.server.sharding import ShardedFbDatabase
from repro.server.store import (
    CacheStats,
    LmdbFbStore,
    LruCachedStore,
    PersistentShardedFbDatabase,
    SqliteFbStore,
    open_store,
    store_batch,
    store_stats,
)

__all__ = [
    "AdrCommand",
    "AdrController",
    "CacheStats",
    "DeduplicatedUplink",
    "FusedFb",
    "FusionPolicy",
    "GatewayForward",
    "LmdbFbStore",
    "LruCachedStore",
    "NetworkServer",
    "PersistentShardedFbDatabase",
    "ServerStatus",
    "ServerVerdict",
    "ShardedFbDatabase",
    "SqliteFbStore",
    "UplinkDeduplicator",
    "UplinkKey",
    "best_snr_contribution",
    "forward_from_event",
    "forward_from_reception",
    "fuse_fb",
    "fuse_timestamp_s",
    "open_store",
    "store_batch",
    "store_stats",
]
