"""Adaptive Data Rate: the network server's closed-loop SF controller.

Real LoRaWAN network servers continuously retune device spreading
factors: each deduplicated uplink contributes its best-gateway SNR to a
per-device history, and once the link margin supports a faster data
rate the server sends a ``LinkADRReq`` MAC command through the class-A
downlink machinery.  The loop changes exactly the quantities the
paper's replay defense depends on -- airtime (collision odds), SNR
margin (delivery), and FB-estimation noise -- which is why the
reproduction models it end to end:

1. :meth:`AdrController.observe` ingests one accepted uplink's
   (SNR, SF) evidence per over-the-air transmission;
2. once ``min_history`` samples accumulate, the Semtech-style margin
   rule (``SNRmax - demod_floor(SF) - margin_db`` in ``step_db``
   steps) picks a target data rate;
3. a differing target queues one :class:`AdrCommand`; the
   :class:`~repro.sim.runtime.FleetRuntime` drains the queue after each
   delivery window and schedules the command through the gateway's
   :class:`~repro.lorawan.downlink.DownlinkScheduler` into the
   answering device's RX1/RX2 window (duty-cycle permitting);
4. the device applies the commanded :class:`~repro.lorawan.regional
   .DataRate` and answers ``LinkADRAns`` on its next uplink's FOpts,
   closing the loop at the controller.

One command is in flight per device at a time: the controller re-arms
when it sees the device transmit at the commanded SF, when the answer
arrives, or when the runtime reports the downlink was dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.constants import SX1276_DEMOD_SNR_FLOOR_DB
from repro.errors import ConfigurationError
from repro.lorawan.mac import LinkADRAns, LinkADRReq
from repro.lorawan.regional import EU868

#: The slowest/fastest spreading factors ADR will command (EU868 DR0/DR5).
ADR_MAX_SF = 12
ADR_MIN_SF = 7


@dataclass
class _AdrDeviceState:
    """Per-device loop state: SNR evidence and the in-flight command."""

    snr_history: deque
    last_sf: int | None = None
    inflight_sf: int | None = None
    inflight_power_only: bool = False
    power_index: int = 0
    prev_power_index: int | None = None
    fcnt_down: int = 0
    commands_issued: int = 0
    answers_seen: int = 0


@dataclass(frozen=True)
class AdrCommand:
    """One queued ``LinkADRReq``, awaiting a class-A downlink window.

    Attributes:
        dev_addr: The addressed device.
        request: The MAC command to deliver.
        issued_at_s: Server time of the decision (the anchoring uplink's
            fused timestamp).
    """

    dev_addr: int
    request: LinkADRReq
    issued_at_s: float


@dataclass
class AdrController:
    """Closed-loop ADR decision engine (Semtech recommended algorithm).

    Margin rule: with at least ``min_history`` accepted uplinks on
    record, ``margin = max(SNR history) - demod_floor(current SF) -
    margin_db`` and every full ``step_db`` of positive margin steps the
    data rate up (SF down, toward SF7).  A negative margin steps the SF
    up by one per decision.  A decision that changes the data rate
    queues exactly one :class:`AdrCommand`; further decisions for that
    device wait until the command resolves (applied, answered, or
    dropped).

    Attributes:
        margin_db: Installation margin subtracted from the link margin
            (the LoRaWAN-recommended device margin, default 10 dB).
        step_db: SNR headroom consumed per data-rate step (3 dB: one SF
            halves the chirp duration and costs ~2.5 dB of sensitivity).
        history_len: SNR samples retained per device.
        min_history: Samples required before the first decision.
        adjust_tx_power: When True, margin left over at SF7 lowers the
            commanded TX power 2 dB per remaining step.
        pending: Commands queued for the downlink path, oldest first.
    """

    margin_db: float = 10.0
    step_db: float = 3.0
    history_len: int = 8
    min_history: int = 4
    adjust_tx_power: bool = False
    pending: list[AdrCommand] = field(default_factory=list)
    _devices: dict[int, _AdrDeviceState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate the margin/history configuration."""
        if self.step_db <= 0:
            raise ConfigurationError(f"step must be positive, got {self.step_db}")
        if self.history_len < 1 or self.min_history < 1:
            raise ConfigurationError(
                f"history lengths must be >= 1, got {self.history_len}/{self.min_history}"
            )
        if self.min_history > self.history_len:
            raise ConfigurationError(
                f"min_history {self.min_history} exceeds history_len {self.history_len}"
            )

    # -- evidence ingestion -----------------------------------------------------

    def observe(
        self, dev_addr: int, snr_db: float, spreading_factor: int, time_s: float
    ) -> AdrCommand | None:
        """Ingest one accepted uplink's link evidence; maybe queue a command.

        Args:
            dev_addr: The transmitting device.
            snr_db: Best-gateway SNR of the deduplicated uplink.
            spreading_factor: The SF the frame was transmitted at -- the
                device's *current* data rate, which also confirms (and
                clears) a matching in-flight command.
            time_s: The uplink's fused timestamp.

        Returns:
            The queued :class:`AdrCommand` when this observation
            triggered a retune decision, else ``None``.
        """
        state = self._devices.setdefault(
            dev_addr, _AdrDeviceState(snr_history=deque(maxlen=self.history_len))
        )
        if (
            state.inflight_sf is not None
            and spreading_factor == state.inflight_sf
            and not state.inflight_power_only
        ):
            # Command confirmed by the air interface.  A power-only
            # command cannot be confirmed this way (the SF was already
            # the commanded one); it resolves via the LinkADRAns or a
            # drop instead.
            state.inflight_sf = None
            state.prev_power_index = None
        state.last_sf = spreading_factor
        state.snr_history.append(float(snr_db))
        if state.inflight_sf is not None or len(state.snr_history) < self.min_history:
            return None
        target_sf, power_index = self._decide(spreading_factor, max(state.snr_history))
        if target_sf == spreading_factor and power_index == state.power_index:
            return None
        command = AdrCommand(
            dev_addr=dev_addr,
            request=LinkADRReq(
                data_rate_index=EU868.data_rate_index_for_sf(target_sf),
                tx_power_index=power_index,
            ),
            issued_at_s=time_s,
        )
        state.inflight_sf = target_sf
        state.inflight_power_only = target_sf == spreading_factor
        state.prev_power_index = state.power_index
        state.power_index = power_index
        state.commands_issued += 1
        self.pending.append(command)
        return command

    def _decide(self, current_sf: int, snr_max_db: float) -> tuple[int, int]:
        """The margin rule: (target SF, TXPower index) for one device."""
        floor = SX1276_DEMOD_SNR_FLOOR_DB[current_sf]
        margin = snr_max_db - floor - self.margin_db
        steps = int(margin // self.step_db)
        if steps < 0:
            return min(current_sf + 1, ADR_MAX_SF), 0
        target = current_sf
        while steps > 0 and target > ADR_MIN_SF:
            target -= 1
            steps -= 1
        power_index = min(steps, 7) if self.adjust_tx_power else 0
        return target, power_index

    # -- loop resolution --------------------------------------------------------

    def acknowledge(self, dev_addr: int, ans: LinkADRAns) -> None:
        """Record a device's ``LinkADRAns`` and re-arm its decision loop."""
        state = self._devices.get(dev_addr)
        if state is None:
            return
        state.answers_seen += 1
        state.inflight_sf = None
        state.inflight_power_only = False
        state.prev_power_index = None

    def command_dropped(self, dev_addr: int) -> None:
        """The downlink never made a receive window: re-arm for a retry.

        The optimistically-committed power index rolls back too, so a
        dropped power-only retune is re-decided on the next uplink
        instead of being presumed applied.
        """
        state = self._devices.get(dev_addr)
        if state is not None:
            state.inflight_sf = None
            state.inflight_power_only = False
            if state.prev_power_index is not None:
                state.power_index = state.prev_power_index
                state.prev_power_index = None

    def take_pending(self) -> list[AdrCommand]:
        """Drain the queued commands (the runtime's per-window pickup)."""
        commands, self.pending = self.pending, []
        return commands

    def next_fcnt_down(self, dev_addr: int) -> int:
        """Allocate the next downlink frame counter for a device."""
        state = self._devices.setdefault(
            dev_addr, _AdrDeviceState(snr_history=deque(maxlen=self.history_len))
        )
        fcnt = state.fcnt_down
        state.fcnt_down += 1
        return fcnt

    # -- queries ----------------------------------------------------------------

    def last_sf(self, dev_addr: int) -> int | None:
        """The SF of the device's most recent accepted uplink, if any."""
        state = self._devices.get(dev_addr)
        return None if state is None else state.last_sf

    def commands_issued(self, dev_addr: int) -> int:
        """Total LinkADRReq commands queued for a device so far."""
        state = self._devices.get(dev_addr)
        return 0 if state is None else state.commands_issued

    def converged(self, dev_addr: int) -> bool:
        """True when the device has evidence on file and no command in flight."""
        state = self._devices.get(dev_addr)
        return (
            state is not None
            and state.inflight_sf is None
            and len(state.snr_history) >= self.min_history
            and state.last_sf is not None
            and self._decide(state.last_sf, max(state.snr_history))[0] == state.last_sf
        )
