"""Cross-gateway fusion of FB measurements and sync-free timestamps.

Each gateway estimates the same frame's frequency bias independently,
with estimation noise set by its own link SNR (the paper's Fig. 14
calibration).  The server fuses the per-gateway estimates under one of
two policies:

* **best-SNR** -- trust the gateway with the strongest link outright;
  the fused error equals that gateway's error by construction.
* **inverse-variance** -- the minimum-variance unbiased combination
  ``fb = Σ(fb_i/σ_i²) / Σ(1/σ_i²)`` with ``σ_i`` from a calibrated
  noise model; with N comparable gateways the fused σ shrinks ~√N below
  the best single link.

Timestamps fuse by *earliest arrival*: every gateway stamps the same
emission plus its own propagation delay and timestamping noise, so the
minimum is the tightest upper bound on the emission time available
without gateway clock sync.
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.errors import ConfigurationError
from repro.server.forwarding import GatewayForward


class FbNoiseModel(Protocol):
    """Anything mapping link SNR to FB-estimation noise (1 sigma, Hz).

    Implementations may honor the optional ``spreading_factor`` to model
    per-SF estimator resolution (the chirp the FB is estimated from is
    ``2^SF`` samples long); ignoring it reproduces the SF7 calibration.
    """

    def sigma_hz(self, snr_db: float, spreading_factor: int | None = None) -> float:
        """One-sigma FB estimation noise at a link SNR (optionally per SF)."""
        ...


class FusionPolicy(enum.Enum):
    """How per-gateway FB measurements combine into one number."""

    BEST_SNR = "best_snr"
    INVERSE_VARIANCE = "inverse_variance"


@dataclass(frozen=True)
class FusedFb:
    """One FB for one uplink, distilled from every reporting gateway."""

    fb_hz: float
    sigma_hz: float
    policy: FusionPolicy
    best_gateway_id: str
    best_snr_db: float
    n_gateways: int

    def as_dict(self) -> dict:
        """JSON-safe form for the service control plane (exact floats)."""
        return {
            "fb_hz": self.fb_hz,
            "sigma_hz": self.sigma_hz,
            "policy": self.policy.value,
            "best_gateway_id": self.best_gateway_id,
            "best_snr_db": self.best_snr_db,
            "n_gateways": self.n_gateways,
        }


_SF_AWARE_MODELS: dict[type, bool] = {}


def _model_sigma_hz(
    noise_model: FbNoiseModel, snr_db: float, spreading_factor: int
) -> float:
    """Call ``sigma_hz`` with the SF, tolerating pre-SF one-arg models.

    Arity is probed once per model type via the signature (cached), so
    a genuine ``TypeError`` raised *inside* an SF-aware implementation
    propagates instead of being silently retried one-argument.
    """
    sf_aware = _SF_AWARE_MODELS.get(type(noise_model))
    if sf_aware is None:
        try:
            inspect.signature(noise_model.sigma_hz).bind(snr_db, spreading_factor)
            sf_aware = True
        except TypeError:
            sf_aware = False
        _SF_AWARE_MODELS[type(noise_model)] = sf_aware
    if sf_aware:
        return noise_model.sigma_hz(snr_db, spreading_factor)
    return noise_model.sigma_hz(snr_db)


def best_snr_contribution(contributions: Sequence[GatewayForward]) -> GatewayForward:
    """The contribution from the strongest link (ties: highest gateway id)."""
    if not contributions:
        raise ConfigurationError("cannot fuse zero contributions")
    return max(contributions, key=lambda c: (c.snr_db, c.gateway_id))


def fuse_fb(
    contributions: Sequence[GatewayForward],
    policy: FusionPolicy,
    noise_model: FbNoiseModel,
) -> FusedFb:
    """Fuse per-gateway FB measurements under the chosen policy.

    The result depends only on the *set* of contributions: the best-SNR
    pick breaks ties deterministically and the weighted sum is computed
    over contributions sorted by gateway id.
    """
    best = best_snr_contribution(contributions)
    ordered = sorted(contributions, key=lambda c: c.gateway_id)
    if policy is FusionPolicy.BEST_SNR:
        fb = best.fb_hz
        sigma = _model_sigma_hz(noise_model, best.snr_db, best.spreading_factor)
    else:
        weight_sum = 0.0
        weighted_fb = 0.0
        for contribution in ordered:
            sigma_i = _model_sigma_hz(
                noise_model, contribution.snr_db, contribution.spreading_factor
            )
            if sigma_i <= 0:
                raise ConfigurationError(
                    f"noise model returned sigma {sigma_i} <= 0 at "
                    f"{contribution.snr_db} dB SNR"
                )
            weight = 1.0 / (sigma_i * sigma_i)
            weight_sum += weight
            weighted_fb += weight * contribution.fb_hz
        fb = weighted_fb / weight_sum
        sigma = (1.0 / weight_sum) ** 0.5
    return FusedFb(
        fb_hz=float(fb),
        sigma_hz=float(sigma),
        policy=policy,
        best_gateway_id=best.gateway_id,
        best_snr_db=float(best.snr_db),
        n_gateways=len(contributions),
    )


def fuse_timestamp_s(contributions: Sequence[GatewayForward]) -> float:
    """Earliest PHY timestamp across gateways (least propagation + noise)."""
    if not contributions:
        raise ConfigurationError("cannot fuse zero contributions")
    return min(c.arrival_time_s for c in contributions)
