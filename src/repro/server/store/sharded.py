"""CRC32-sharded FB state over per-shard durable store files.

:class:`PersistentShardedFbDatabase` is the durable twin of
:class:`repro.server.ShardedFbDatabase`: the same stable CRC32 routing
(``zlib.crc32(node_id) % n_shards``) over ``n_shards`` independent
stores, except each shard is a :class:`~repro.server.store.sqlite.SqliteFbStore`
(or :class:`~repro.server.store.lmdb.LmdbFbStore`) file inside one
directory.  A ``store_meta.json`` sidecar records the shard count,
history depth, and backend so reopening the directory -- the daemon's
reload-on-boot path -- reconstructs exactly the layout that wrote it,
and a mismatched explicit shard count fails loudly instead of silently
routing nodes to the wrong files.

:meth:`PersistentShardedFbDatabase.rebalance` is the offline gateway-
scaling step: it streams every node's ``(time_s, fb_hz)`` history out
of the old shard files (in sorted node order, so the migration is
deterministic byte for byte), rewrites the directory under the new
shard count, and updates the sidecar.  ``known_nodes()`` and every
per-node interval are preserved exactly -- pinned by the property
suite in ``tests/test_store_properties.py``.
"""

from __future__ import annotations

import json
import zlib
from contextlib import ExitStack, contextmanager
from pathlib import Path
from typing import Iterator

from repro.core.detector import FbInterval, FbStore
from repro.errors import ConfigurationError

#: Sidecar file naming the directory's layout.
META_FILE = "store_meta.json"

_BACKENDS = ("sqlite", "lmdb")


def _open_backend(backend: str, path: Path, history_len: int) -> FbStore:
    """One shard store of the named backend kind."""
    if backend == "sqlite":
        from repro.server.store.sqlite import SqliteFbStore

        return SqliteFbStore(path, history_len=history_len)
    if backend == "lmdb":
        from repro.server.store.lmdb import LmdbFbStore

        return LmdbFbStore(path, history_len=history_len)
    raise ConfigurationError(
        f"unknown shard backend {backend!r}; expected one of {_BACKENDS}"
    )


class PersistentShardedFbDatabase:
    """CRC32-routed shard files behind the :class:`FbStore` interface.

    Attributes:
        directory: The shard-file directory (created if missing).
        n_shards: Live shard count (from the sidecar when reopening).
        history_len: Bounded per-node history depth.
        backend: Shard file backend, ``"sqlite"`` or ``"lmdb"``.
    """

    def __init__(
        self,
        directory: str | Path,
        n_shards: int | None = None,
        history_len: int = 50,
        backend: str = "sqlite",
    ):
        """Open (creating or reloading) a sharded store directory.

        Args:
            directory: Where the shard files and sidecar live.
            n_shards: Shard count for a *new* directory (default 16).
                Reopening an existing directory takes the count from
                the sidecar; passing a different explicit count raises
                (use :meth:`rebalance` to change the layout).
            history_len: Per-node history depth for a new directory.
            backend: ``"sqlite"`` (default) or ``"lmdb"``.
        """
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        meta_path = self.directory / META_FILE
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if n_shards is not None and n_shards != meta["n_shards"]:
                raise ConfigurationError(
                    f"store at {self.directory} has {meta['n_shards']} shards; "
                    f"asked for {n_shards} -- run rebalance({n_shards}) instead"
                )
            self.n_shards = int(meta["n_shards"])
            self.history_len = int(meta["history_len"])
            self.backend = str(meta["backend"])
        else:
            if n_shards is None:
                n_shards = 16
            if n_shards < 1:
                raise ConfigurationError(f"need at least one shard, got {n_shards}")
            if history_len < 1:
                raise ConfigurationError(
                    f"history length must be >= 1, got {history_len}"
                )
            if backend not in _BACKENDS:
                raise ConfigurationError(
                    f"unknown shard backend {backend!r}; expected one of {_BACKENDS}"
                )
            self.n_shards = n_shards
            self.history_len = history_len
            self.backend = backend
            self._write_meta()
        self._shards = [
            _open_backend(self.backend, self._shard_path(i), self.history_len)
            for i in range(self.n_shards)
        ]

    def _write_meta(self) -> None:
        meta = {
            "n_shards": self.n_shards,
            "history_len": self.history_len,
            "backend": self.backend,
        }
        (self.directory / META_FILE).write_text(json.dumps(meta, indent=2) + "\n")

    def _shard_path(self, index: int) -> Path:
        suffix = "sqlite" if self.backend == "sqlite" else "lmdb"
        return self.directory / f"shard-{index:04d}.{suffix}"

    # -- routing (identical to ShardedFbDatabase) -------------------------------

    def shard_index(self, node_id: str) -> int:
        """Stable shard routing: CRC32 of the node id, modulo the count."""
        return zlib.crc32(node_id.encode()) % self.n_shards

    def shard_for(self, node_id: str) -> FbStore:
        """The shard store owning a node's entire FB history."""
        return self._shards[self.shard_index(node_id)]

    # -- FbStore interface, delegated to the owning shard -----------------------

    def record(self, node_id: str, fb_hz: float, time_s: float = 0.0) -> None:
        """Store an accepted FB estimate in the node's shard."""
        self.shard_for(node_id).record(node_id, fb_hz, time_s)

    def sample_count(self, node_id: str) -> int:
        """Recorded estimates for one node."""
        return self.shard_for(node_id).sample_count(node_id)

    def estimates(self, node_id: str) -> list[float]:
        """The node's recorded FB values, oldest first."""
        return self.shard_for(node_id).estimates(node_id)

    def history(self, node_id: str) -> list[tuple[float, float]]:
        """The node's recorded ``(time_s, fb_hz)`` pairs, oldest first."""
        return self.shard_for(node_id).history(node_id)

    def interval(self, node_id: str, guard_hz: float) -> FbInterval | None:
        """The node's guarded acceptance interval (``None`` if unknown)."""
        return self.shard_for(node_id).interval(node_id, guard_hz)

    def forget(self, node_id: str) -> None:
        """Drop one node's history from its shard."""
        self.shard_for(node_id).forget(node_id)

    def known_nodes(self) -> list[str]:
        """Every tracked node id, across all shards, sorted."""
        return sorted(node for shard in self._shards for node in shard.known_nodes())

    def node_count(self) -> int:
        """Total tracked nodes across all shards."""
        return sum(shard.node_count() for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Tracked-node count per shard (the balance diagnostic)."""
        return [shard.node_count() for shard in self._shards]

    # -- transactions / durability ----------------------------------------------

    @contextmanager
    def batch(self) -> Iterator["PersistentShardedFbDatabase"]:
        """One transaction per shard around a whole dedup window.

        Each shard commits independently (a node's history lives wholly
        inside one shard, so per-shard atomicity is per-node atomicity);
        an exception rolls back every still-open shard transaction.
        """
        with ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.batch())
            yield self

    def flush(self) -> None:
        """Flush every shard store."""
        for shard in self._shards:
            shard.flush()

    def close(self) -> None:
        """Close every shard store (idempotent)."""
        for shard in self._shards:
            shard.close()
        self._shards = []

    # -- offline rebalancing ----------------------------------------------------

    def rebalance(self, n_shards: int) -> None:
        """Migrate the directory to a new shard count, deterministically.

        The offline procedure when gateways (and their shard workers)
        are added or removed:

        1. stream every node's full ``(time_s, fb_hz)`` history out of
           the current shard files, in sorted node order;
        2. close and delete the old shard files;
        3. recreate the directory under ``n_shards`` CRC32-routed
           shards, replaying each node's history in order (so per-node
           ``seq`` numbering restarts dense from 0);
        4. rewrite the sidecar.

        Every node keeps its exact history -- ``known_nodes()`` and
        every per-node interval are unchanged -- and the result is a
        pure function of (content, n_shards): two identical stores
        rebalanced to the same count produce identical directories.
        """
        if n_shards < 1:
            raise ConfigurationError(f"need at least one shard, got {n_shards}")
        histories = {
            node: shard.history(node)
            for shard in self._shards
            for node in shard.known_nodes()
        }
        self.close()
        for index in range(self.n_shards):
            path = self._shard_path(index)
            if path.is_dir():  # lmdb environments are directories
                for child in sorted(path.iterdir()):
                    child.unlink()
                path.rmdir()
            elif path.exists():
                path.unlink()
            # WAL sidecars of a sqlite shard, if a crash left them.
            for sidecar in (path.with_suffix(".sqlite-wal"), path.with_suffix(".sqlite-shm")):
                if sidecar.exists():
                    sidecar.unlink()
        self.n_shards = n_shards
        self._write_meta()
        self._shards = [
            _open_backend(self.backend, self._shard_path(i), self.history_len)
            for i in range(self.n_shards)
        ]
        with self.batch():
            for node in sorted(histories):
                store = self.shard_for(node)
                for time_s, fb_hz in histories[node]:
                    store.record(node, fb_hz, time_s)
        self.flush()

    def __repr__(self) -> str:
        """Directory and layout, for operator logs."""
        return (
            f"PersistentShardedFbDatabase(directory={str(self.directory)!r}, "
            f"n_shards={self.n_shards}, backend={self.backend!r})"
        )
