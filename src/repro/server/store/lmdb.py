"""Optional LMDB-backed durable FB store.

LMDB gives the same durability contract as the SQLite backend (one
write transaction per dedup window, committed windows survive a crash)
with memory-mapped reads -- attractive when the hot path is lookups
over a store too big for the LRU cache.  The binding is optional: the
module always imports, :data:`LMDB_AVAILABLE` says whether the backend
is usable, and constructing :class:`LmdbFbStore` without the ``lmdb``
package raises a clear :class:`~repro.errors.ConfigurationError`
(tests skip instead of failing).

Layout: history rows live under ``h\\x00<node>\\x00<seq:8-byte-be>`` keys
holding a packed ``(time_s, fb_hz)`` double pair, and a per-node
``m\\x00<node>`` meta key holds the next insertion ``seq`` -- the same
``(node_id, seq, time_s, fb_hz)`` model as the SQLite table, so the
two backends are state-equivalent row for row.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.core.detector import FbInterval
from repro.errors import ConfigurationError

try:  # pragma: no cover - exercised only where lmdb is installed
    import lmdb

    LMDB_AVAILABLE = True
except ImportError:  # pragma: no cover - the common container case
    lmdb = None
    LMDB_AVAILABLE = False

#: Value packing for one history row: (time_s, fb_hz) as IEEE doubles.
_ROW = struct.Struct("<dd")
_META = struct.Struct("<q")


def _history_key(node_id: str, seq: int) -> bytes:
    return b"h\x00" + node_id.encode() + b"\x00" + seq.to_bytes(8, "big")


def _history_prefix(node_id: str) -> bytes:
    return b"h\x00" + node_id.encode() + b"\x00"


def _meta_key(node_id: str) -> bytes:
    return b"m\x00" + node_id.encode()


class LmdbFbStore:
    """Durable :class:`~repro.core.detector.FbStore` in an LMDB environment.

    Attributes:
        path: The LMDB environment directory.
        history_len: Bounded per-node history depth.
    """

    def __init__(
        self,
        path: str | Path,
        history_len: int = 50,
        map_size: int = 1 << 30,
    ):
        """Open (creating if needed) the LMDB environment.

        Args:
            path: Environment directory; created if missing.
            history_len: How many recent estimates shape each node's
                acceptance interval.
            map_size: Maximum environment size in bytes (sparse file).
        """
        if not LMDB_AVAILABLE:
            raise ConfigurationError(
                "LmdbFbStore requires the 'lmdb' package, which is not installed; "
                "use the sqlite backend instead"
            )
        if history_len < 1:
            raise ConfigurationError(f"history length must be >= 1, got {history_len}")
        self.history_len = history_len
        self.path = str(path)
        Path(self.path).mkdir(parents=True, exist_ok=True)
        self._env = lmdb.open(self.path, map_size=map_size, max_dbs=1)
        self._txn = None  # open write txn while inside batch()

    # -- transactions -----------------------------------------------------------

    @contextmanager
    def _write(self) -> Iterator:
        """One write transaction; joins the open :meth:`batch` if any."""
        if self._txn is not None:
            yield self._txn
            return
        with self._env.begin(write=True) as txn:
            yield txn

    @contextmanager
    def _read(self) -> Iterator:
        """One read view; sees the open batch's writes when inside one."""
        if self._txn is not None:
            yield self._txn
            return
        with self._env.begin(write=False) as txn:
            yield txn

    @contextmanager
    def batch(self) -> Iterator["LmdbFbStore"]:
        """One write transaction around a whole dedup window (atomic)."""
        if self._txn is not None:
            yield self
            return
        txn = self._env.begin(write=True)
        self._txn = txn
        try:
            yield self
        except BaseException:
            txn.abort()
            raise
        else:
            txn.commit()
        finally:
            self._txn = None

    # -- FbStore interface ------------------------------------------------------

    def record(self, node_id: str, fb_hz: float, time_s: float = 0.0) -> None:
        """Append one accepted FB estimate, pruning beyond ``history_len``."""
        with self._write() as txn:
            raw = txn.get(_meta_key(node_id))
            seq = 0 if raw is None else _META.unpack(raw)[0]
            txn.put(_history_key(node_id, seq), _ROW.pack(float(time_s), float(fb_hz)))
            txn.put(_meta_key(node_id), _META.pack(seq + 1))
            stale = seq - self.history_len
            if stale >= 0:
                txn.delete(_history_key(node_id, stale))

    def _rows(self, txn, node_id: str) -> list[tuple[float, float]]:
        prefix = _history_prefix(node_id)
        rows = []
        with txn.cursor() as cursor:
            if cursor.set_range(prefix):
                for key, value in cursor:
                    if not key.startswith(prefix):
                        break
                    rows.append(_ROW.unpack(value))
        return rows

    def sample_count(self, node_id: str) -> int:
        """Recorded estimates for one node."""
        with self._read() as txn:
            return len(self._rows(txn, node_id))

    def estimates(self, node_id: str) -> list[float]:
        """The node's recorded FB values, oldest first."""
        with self._read() as txn:
            return [fb for _, fb in self._rows(txn, node_id)]

    def history(self, node_id: str) -> list[tuple[float, float]]:
        """The node's recorded ``(time_s, fb_hz)`` pairs, oldest first."""
        with self._read() as txn:
            return self._rows(txn, node_id)

    def interval(self, node_id: str, guard_hz: float) -> FbInterval | None:
        """[min - guard, max + guard] over the node's recorded history."""
        with self._read() as txn:
            values = [fb for _, fb in self._rows(txn, node_id)]
        if not values:
            return None
        return FbInterval(low_hz=min(values) - guard_hz, high_hz=max(values) + guard_hz)

    def known_nodes(self) -> list[str]:
        """Every tracked node id, sorted."""
        nodes = []
        with self._read() as txn, txn.cursor() as cursor:
            if cursor.set_range(b"m\x00"):
                for key, _ in cursor:
                    if not key.startswith(b"m\x00"):
                        break
                    node = key[2:].decode()
                    if self._rows(txn, node):
                        nodes.append(node)
        return sorted(nodes)

    def node_count(self) -> int:
        """Total tracked nodes."""
        return len(self.known_nodes())

    def forget(self, node_id: str) -> None:
        """Drop one node's history."""
        with self._write() as txn:
            prefix = _history_prefix(node_id)
            with txn.cursor() as cursor:
                if cursor.set_range(prefix):
                    while cursor.key().startswith(prefix):
                        if not cursor.delete():
                            break
            txn.delete(_meta_key(node_id))

    # -- durability / lifecycle -------------------------------------------------

    def flush(self) -> None:
        """Force the environment's buffers to disk."""
        if self._txn is not None:
            raise ConfigurationError("cannot flush inside an open batch")
        self._env.sync()

    def close(self) -> None:
        """Flush and close the environment (idempotent)."""
        if self._env is not None:
            self._env.sync()
            self._env.close()
            self._env = None

    def __repr__(self) -> str:
        """Path and depth, for operator logs."""
        return f"LmdbFbStore(path={self.path!r}, history_len={self.history_len})"
