"""Bounded write-through LRU hot-cache over any durable FB store.

The replay hot path touches a node's history three times per verdict
(``interval``, ``sample_count``, then ``record`` on accept); against a
file-backed store that is three round trips for state that almost never
leaves a small working set.  :class:`LruCachedStore` keeps the most
recently touched ``max_nodes`` node histories in memory as bounded
deques (exactly the :class:`~repro.core.detector.FbDatabase`
representation) and serves interval/count/estimate reads from them,
while every ``record`` is **written through** to the backing store
before the cache is updated -- the cache can always be dropped (or the
process killed) without losing an accepted estimate.

Hit/miss/eviction counters feed the daemon's ``/metrics`` store series.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from contextlib import nullcontext
from dataclasses import dataclass

from repro.core.detector import FbInterval, FbStore
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheStats:
    """One snapshot of the cache's effectiveness counters.

    Attributes:
        hits: Node lookups served from the in-memory history.
        misses: Node lookups that loaded the history from the backing
            store first.
        evictions: Cached node histories dropped to respect
            ``max_nodes``.
        cached_nodes: Node histories currently held in memory.
    """

    hits: int
    misses: int
    evictions: int
    cached_nodes: int

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 before any traffic)."""
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def as_dict(self) -> dict:
        """JSON-safe form for bench artifacts and the control plane."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cached_nodes": self.cached_nodes,
            "hit_rate": self.hit_rate,
        }


class LruCachedStore:
    """Write-through LRU cache in front of a backing FB store.

    Attributes:
        backing: The durable store of record.
        max_nodes: Most-recently-used node histories kept in memory.
        history_len: Mirrored from the backing store.
    """

    def __init__(self, backing: FbStore, max_nodes: int = 4096):
        """Wrap a backing store with a bounded node-history cache.

        Args:
            backing: Any :class:`~repro.core.detector.FbStore`; must
                expose ``history_len`` so cached deques evict exactly
                like the backing rows prune.
            max_nodes: How many node histories stay hot.
        """
        if max_nodes < 1:
            raise ConfigurationError(f"cache must hold >= 1 node, got {max_nodes}")
        self.backing = backing
        self.max_nodes = max_nodes
        self.history_len = int(getattr(backing, "history_len", 50))
        self._cache: OrderedDict[str, deque[tuple[float, float]]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- cache mechanics --------------------------------------------------------

    def _entry(self, node_id: str) -> deque[tuple[float, float]]:
        """The node's hot history, loading it from the backing on a miss."""
        entry = self._cache.get(node_id)
        if entry is not None:
            self._hits += 1
            self._cache.move_to_end(node_id)
            return entry
        self._misses += 1
        entry = deque(self.backing.history(node_id), maxlen=self.history_len)
        self._cache[node_id] = entry
        while len(self._cache) > self.max_nodes:
            self._cache.popitem(last=False)
            self._evictions += 1
        return entry

    def invalidate(self) -> None:
        """Drop every hot copy (e.g. after a rolled-back batch).

        The cache applies writes optimistically inside :meth:`batch`;
        if the surrounding transaction rolls back, the backing store
        forgets the window but the hot copies would not -- dropping
        them forces clean reloads from the store of record.
        """
        self._cache.clear()

    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            cached_nodes=len(self._cache),
        )

    # -- FbStore interface ------------------------------------------------------

    def record(self, node_id: str, fb_hz: float, time_s: float = 0.0) -> None:
        """Write through to the backing store, then update the hot copy."""
        entry = self._entry(node_id)
        self.backing.record(node_id, fb_hz, time_s)
        entry.append((float(time_s), float(fb_hz)))

    def sample_count(self, node_id: str) -> int:
        """Recorded estimates for one node (served from the hot copy)."""
        return len(self._entry(node_id))

    def estimates(self, node_id: str) -> list[float]:
        """The node's recorded FB values, oldest first."""
        return [fb for _, fb in self._entry(node_id)]

    def history(self, node_id: str) -> list[tuple[float, float]]:
        """The node's recorded ``(time_s, fb_hz)`` pairs, oldest first."""
        return list(self._entry(node_id))

    def interval(self, node_id: str, guard_hz: float) -> FbInterval | None:
        """[min - guard, max + guard] over the node's recorded history."""
        values = [fb for _, fb in self._entry(node_id)]
        if not values:
            return None
        return FbInterval(low_hz=min(values) - guard_hz, high_hz=max(values) + guard_hz)

    def known_nodes(self) -> list[str]:
        """Every tracked node id (from the backing store of record)."""
        return self.backing.known_nodes()

    def node_count(self) -> int:
        """Total tracked nodes (from the backing store of record)."""
        return self.backing.node_count()

    def forget(self, node_id: str) -> None:
        """Drop one node's history from the backing store and the cache."""
        self.backing.forget(node_id)
        self._cache.pop(node_id, None)

    # -- durability passthrough -------------------------------------------------

    def batch(self):
        """Delegate transactional batching to the backing store.

        A backing store without transactions (the in-memory databases)
        gets a no-op context: every record is immediately final there,
        so "commit at window close" is trivially true.
        """
        batch = getattr(self.backing, "batch", None)
        if batch is None:
            return nullcontext(self)
        return batch()

    def flush(self) -> None:
        """Flush the backing store (the cache itself is write-through)."""
        flush = getattr(self.backing, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Drop the cache and close the backing store."""
        self._cache.clear()
        close = getattr(self.backing, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:
        """Backing store and bound, for operator logs."""
        return f"LruCachedStore(backing={self.backing!r}, max_nodes={self.max_nodes})"
