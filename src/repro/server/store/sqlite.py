"""SQLite-backed durable FB store.

One :class:`SqliteFbStore` holds every node's accepted-FB history in a
single WAL-mode SQLite file: one ``fb_history`` table of ``(node_id,
seq, time_s, fb_hz)`` rows, where ``seq`` is a per-node monotonic
insertion counter and rows older than ``history_len`` per node are
pruned on insert -- exactly the bounded-deque semantics of the
in-memory :class:`repro.core.detector.FbDatabase`.

Durability contract:

* SQLite stores ``REAL`` values as 8-byte IEEE-754 doubles, so every
  Python float round-trips **bit-exactly** -- acceptance intervals (and
  therefore replay verdicts) computed from a reloaded store are
  bitwise identical to the live in-memory ones;
* WAL journal mode with ``synchronous=NORMAL`` means a committed
  transaction survives a process kill (the crash-recovery tests reopen
  the file *without* closing the writer to simulate exactly that);
* :meth:`SqliteFbStore.batch` opens one transaction around a whole
  dedup window's read-modify-write traffic, so either every verdict of
  the window commits or none does -- a crash can lose the uncommitted
  window wholesale but can never leave a half-written history behind.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.core.detector import FbInterval
from repro.errors import ConfigurationError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS fb_history (
    node_id TEXT    NOT NULL,
    seq     INTEGER NOT NULL,
    time_s  REAL    NOT NULL,
    fb_hz   REAL    NOT NULL,
    PRIMARY KEY (node_id, seq)
) WITHOUT ROWID
"""


class SqliteFbStore:
    """Durable :class:`~repro.core.detector.FbStore` in one SQLite file.

    Attributes:
        path: The database file (``":memory:"`` for an ephemeral store).
        history_len: Bounded per-node history depth, as in
            :class:`~repro.core.detector.FbDatabase`.
    """

    def __init__(self, path: str | Path = ":memory:", history_len: int = 50):
        """Open (creating if needed) the store file and its schema.

        Args:
            path: SQLite file path; parents are created.  ``":memory:"``
                gives a process-private ephemeral store (no WAL).
            history_len: How many recent estimates shape each node's
                acceptance interval.
        """
        if history_len < 1:
            raise ConfigurationError(f"history length must be >= 1, got {history_len}")
        self.history_len = history_len
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        # Autocommit connection: transactions are opened explicitly by
        # _tx()/batch() so the commit boundary is always the one the
        # durability contract names, never an implicit driver one.
        self._conn = sqlite3.connect(self.path, isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(_SCHEMA)
        self._in_batch = False

    # -- transactions -----------------------------------------------------------

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        """One write transaction; a no-op inside an open :meth:`batch`."""
        if self._in_batch:
            yield self._conn
            return
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")

    @contextmanager
    def batch(self) -> Iterator["SqliteFbStore"]:
        """Group every store operation in the block into one transaction.

        The daemon wraps each dedup window's ``process_step`` in a
        batch, so all the window's verdict-driven read-modify-writes
        commit atomically.  Nested batches join the outer transaction.
        An exception rolls the whole batch back.
        """
        if self._in_batch:
            yield self
            return
        self._conn.execute("BEGIN IMMEDIATE")
        self._in_batch = True
        try:
            yield self
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")
        finally:
            self._in_batch = False

    # -- FbStore interface ------------------------------------------------------

    def record(self, node_id: str, fb_hz: float, time_s: float = 0.0) -> None:
        """Append one accepted FB estimate, pruning beyond ``history_len``."""
        with self._tx() as conn:
            row = conn.execute(
                "SELECT COALESCE(MAX(seq), -1) + 1 FROM fb_history WHERE node_id = ?",
                (node_id,),
            ).fetchone()
            seq = int(row[0])
            conn.execute(
                "INSERT INTO fb_history (node_id, seq, time_s, fb_hz) VALUES (?, ?, ?, ?)",
                (node_id, seq, float(time_s), float(fb_hz)),
            )
            conn.execute(
                "DELETE FROM fb_history WHERE node_id = ? AND seq <= ?",
                (node_id, seq - self.history_len),
            )

    def sample_count(self, node_id: str) -> int:
        """Recorded estimates for one node."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM fb_history WHERE node_id = ?", (node_id,)
        ).fetchone()
        return int(row[0])

    def estimates(self, node_id: str) -> list[float]:
        """The node's recorded FB values, oldest first."""
        rows = self._conn.execute(
            "SELECT fb_hz FROM fb_history WHERE node_id = ? ORDER BY seq", (node_id,)
        ).fetchall()
        return [row[0] for row in rows]

    def history(self, node_id: str) -> list[tuple[float, float]]:
        """The node's recorded ``(time_s, fb_hz)`` pairs, oldest first."""
        rows = self._conn.execute(
            "SELECT time_s, fb_hz FROM fb_history WHERE node_id = ? ORDER BY seq",
            (node_id,),
        ).fetchall()
        return [(row[0], row[1]) for row in rows]

    def interval(self, node_id: str, guard_hz: float) -> FbInterval | None:
        """[min - guard, max + guard] over the node's recorded history."""
        row = self._conn.execute(
            "SELECT MIN(fb_hz), MAX(fb_hz) FROM fb_history WHERE node_id = ?",
            (node_id,),
        ).fetchone()
        if row[0] is None:
            return None
        return FbInterval(low_hz=row[0] - guard_hz, high_hz=row[1] + guard_hz)

    def known_nodes(self) -> list[str]:
        """Every tracked node id, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT node_id FROM fb_history ORDER BY node_id"
        ).fetchall()
        return [row[0] for row in rows]

    def node_count(self) -> int:
        """Total tracked nodes."""
        row = self._conn.execute(
            "SELECT COUNT(DISTINCT node_id) FROM fb_history"
        ).fetchone()
        return int(row[0])

    def forget(self, node_id: str) -> None:
        """Drop one node's history."""
        with self._tx() as conn:
            conn.execute("DELETE FROM fb_history WHERE node_id = ?", (node_id,))

    # -- durability / lifecycle -------------------------------------------------

    def flush(self) -> None:
        """Checkpoint the WAL into the main database file.

        Committed transactions are already crash-safe in the WAL; the
        checkpoint folds them into the main file so a plain copy of
        ``path`` is complete -- the daemon's graceful-shutdown step.
        """
        if self._in_batch:
            raise ConfigurationError("cannot flush inside an open batch")
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        """Flush and close the connection (idempotent)."""
        if self._conn is not None:
            try:
                self.flush()
            except sqlite3.Error:  # pragma: no cover - already-broken handle
                pass
            self._conn.close()
            self._conn = None

    def __repr__(self) -> str:
        """Path and depth, for operator logs."""
        return f"SqliteFbStore(path={self.path!r}, history_len={self.history_len})"
