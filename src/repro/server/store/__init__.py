"""Pluggable persistence for per-device FB histories.

Every backend here implements the same
:class:`repro.core.detector.FbStore` protocol the in-memory
:class:`~repro.core.detector.FbDatabase` defines, so a
:class:`~repro.core.detector.ReplayDetector` (and therefore a
:class:`~repro.server.NetworkServer`) takes any of them unchanged --
the persistence layer is protocol-only and verdict-bitwise-equal to
the in-memory reference, including across a crash and restart:

* :class:`~repro.server.store.sqlite.SqliteFbStore` -- one WAL-mode
  SQLite file; dedup windows commit in one transaction;
* :class:`~repro.server.store.lmdb.LmdbFbStore` -- optional LMDB
  environment (:data:`~repro.server.store.lmdb.LMDB_AVAILABLE` gates
  it cleanly when the binding is absent);
* :class:`~repro.server.store.cache.LruCachedStore` -- bounded
  write-through hot-cache with hit/miss/eviction counters;
* :class:`~repro.server.store.sharded.PersistentShardedFbDatabase` --
  the CRC32 sharding of :class:`~repro.server.ShardedFbDatabase` over
  per-shard store files, with offline :meth:`rebalance
  <repro.server.store.sharded.PersistentShardedFbDatabase.rebalance>`
  when gateways are added.

:func:`open_store` turns an operator-facing spec string (the daemon's
``--store`` flag) into a configured store.  The backend matrix,
durability contract, and rebalance procedure live in ``docs/store.md``.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.core.detector import FbDatabase, FbStore
from repro.errors import ConfigurationError
from repro.server.sharding import ShardedFbDatabase
from repro.server.store.cache import CacheStats, LruCachedStore
from repro.server.store.lmdb import LMDB_AVAILABLE, LmdbFbStore
from repro.server.store.sharded import PersistentShardedFbDatabase
from repro.server.store.sqlite import SqliteFbStore

__all__ = [
    "CacheStats",
    "LMDB_AVAILABLE",
    "LmdbFbStore",
    "LruCachedStore",
    "PersistentShardedFbDatabase",
    "SqliteFbStore",
    "open_store",
    "store_batch",
    "store_stats",
]

#: Default file/directory names when a spec omits the path.
_DEFAULT_PATHS = {
    "sqlite": "fb_store.sqlite",
    "lmdb": "fb_store.lmdb",
    "sharded-sqlite": "fb_store.d",
    "sharded-lmdb": "fb_store.d",
}


def _parse_options(query: str, spec: str) -> dict[str, int]:
    """``cache=N&shards=N&history=N`` -> validated int options."""
    options: dict[str, int] = {}
    if not query:
        return options
    for pair in query.split("&"):
        name, sep, value = pair.partition("=")
        if not sep or name not in ("cache", "shards", "history"):
            raise ConfigurationError(
                f"bad store option {pair!r} in spec {spec!r}; "
                "expected cache=N, shards=N, or history=N"
            )
        try:
            options[name] = int(value)
        except ValueError:
            raise ConfigurationError(
                f"store option {name!r} in spec {spec!r} must be an integer, "
                f"got {value!r}"
            ) from None
    return options


def open_store(spec: str, history_len: int = 50) -> FbStore:
    """Build an FB store from an operator spec string.

    The grammar is ``backend[:path][?option=value&...]``:

    * ``memory`` -- the in-memory :class:`FbDatabase` (dies with the
      process; the pre-persistence default);
    * ``sharded`` -- the in-memory :class:`ShardedFbDatabase`
      (``?shards=N``, default 16);
    * ``sqlite:PATH`` -- one durable WAL SQLite file (``sqlite:`` alone
      uses ``fb_store.sqlite`` in the working directory);
    * ``lmdb:PATH`` -- one durable LMDB environment (requires the
      optional ``lmdb`` package);
    * ``sharded-sqlite:DIR`` / ``sharded-lmdb:DIR`` -- a
      :class:`PersistentShardedFbDatabase` directory (``?shards=N``
      for a new directory, default 16).

    Any durable backend takes ``?cache=N`` to wrap it in an
    :class:`LruCachedStore` holding ``N`` hot node histories;
    ``?history=N`` overrides ``history_len``.

    Args:
        spec: The spec string, e.g. ``"sqlite:/var/lib/repro/fb.sqlite?cache=4096"``.
        history_len: Per-node history depth when the spec does not
            carry ``?history=N``.

    Returns:
        A configured store satisfying :class:`FbStore`.

    Raises:
        ConfigurationError: On an unknown backend, a malformed option,
            or an unavailable LMDB binding.
    """
    backend, sep, rest = spec.partition(":")
    if not sep and "?" in backend:
        backend, _, rest = spec.partition("?")
        rest = "?" + rest
    path, query = (rest.split("?", 1) + [""])[:2] if "?" in rest else (rest, "")
    options = _parse_options(query, spec)
    history = options.get("history", history_len)
    cache = options.get("cache", 0)
    shards = options.get("shards")

    store: FbStore
    if backend == "memory":
        store = FbDatabase(history_len=history)
    elif backend == "sharded":
        store = ShardedFbDatabase(n_shards=shards or 16, history_len=history)
    elif backend in ("sqlite", "lmdb"):
        target = path or _DEFAULT_PATHS[backend]
        if backend == "sqlite":
            store = SqliteFbStore(target, history_len=history)
        else:
            store = LmdbFbStore(target, history_len=history)
    elif backend in ("sharded-sqlite", "sharded-lmdb"):
        store = PersistentShardedFbDatabase(
            path or _DEFAULT_PATHS[backend],
            n_shards=shards,
            history_len=history,
            backend=backend.removeprefix("sharded-"),
        )
    else:
        raise ConfigurationError(
            f"unknown store backend {backend!r} in spec {spec!r}; expected one of "
            "memory, sharded, sqlite, lmdb, sharded-sqlite, sharded-lmdb"
        )
    if cache:
        store = LruCachedStore(store, max_nodes=cache)
    return store


def store_batch(store: FbStore):
    """A dedup-window transaction on any store (no-op when unsupported).

    The daemon wraps every ``process_step`` call in this, so durable
    backends commit a whole window's verdicts atomically while the
    in-memory databases -- which have no transactions to speak of --
    cost nothing.
    """
    batch = getattr(store, "batch", None)
    if callable(batch):
        return batch()
    return nullcontext(store)


def store_stats(store: FbStore) -> dict:
    """JSON-safe operational snapshot of any store (the /metrics feed).

    Always reports ``node_count`` and the store's type name; adds the
    LRU cache counters when the store (or, for a cached store, its
    write-through wrapper) exposes them.
    """
    stats: dict = {"backend": type(store).__name__, "node_count": store.node_count()}
    cache = getattr(store, "stats", None)
    if callable(cache):
        stats["cache"] = cache().as_dict()
    return stats
