"""Sharded per-device FB state for fleet-scale deployments.

A network server fronting thousands of devices keeps its FB histories in
``n_shards`` independent :class:`repro.core.detector.FbDatabase` shards,
routed by a stable hash of the node id.  Each device's history lives
wholly inside one shard, so every :class:`~repro.core.detector.FbDatabase`
operation delegates to exactly one shard and detection semantics are
identical to a single flat database -- the sharding only bounds the
per-structure working set and gives a drop-in seam for moving shards
onto separate processes or stores later.

The class is duck-type compatible with ``FbDatabase`` (it satisfies
:class:`repro.core.detector.FbStore`), so a
:class:`repro.core.detector.ReplayDetector` accepts it unchanged.
"""

from __future__ import annotations

import zlib

from repro.core.detector import FbDatabase, FbInterval
from repro.errors import ConfigurationError


class ShardedFbDatabase:
    """``n_shards`` FbDatabase shards behind the FbDatabase interface."""

    def __init__(self, n_shards: int = 16, history_len: int = 50):
        """Create ``n_shards`` independent shards of ``history_len`` depth."""
        if n_shards < 1:
            raise ConfigurationError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self.history_len = history_len
        self._shards = [FbDatabase(history_len=history_len) for _ in range(n_shards)]

    def shard_index(self, node_id: str) -> int:
        """Stable shard routing: CRC32 of the node id, modulo the shard count."""
        return zlib.crc32(node_id.encode()) % self.n_shards

    def shard_for(self, node_id: str) -> FbDatabase:
        """The shard owning a node's entire FB history."""
        return self._shards[self.shard_index(node_id)]

    # -- FbStore interface, delegated to the owning shard -----------------------

    def record(self, node_id: str, fb_hz: float, time_s: float = 0.0) -> None:
        """Store an accepted FB estimate in the node's shard."""
        self.shard_for(node_id).record(node_id, fb_hz, time_s)

    def sample_count(self, node_id: str) -> int:
        """Recorded estimates for one node."""
        return self.shard_for(node_id).sample_count(node_id)

    def estimates(self, node_id: str) -> list[float]:
        """The node's recorded FB values, oldest first."""
        return self.shard_for(node_id).estimates(node_id)

    def history(self, node_id: str) -> list[tuple[float, float]]:
        """The node's recorded ``(time_s, fb_hz)`` pairs, oldest first."""
        return self.shard_for(node_id).history(node_id)

    def interval(self, node_id: str, guard_hz: float) -> FbInterval | None:
        """The node's guarded acceptance interval (``None`` if unknown)."""
        return self.shard_for(node_id).interval(node_id, guard_hz)

    def forget(self, node_id: str) -> None:
        """Drop one node's history from its shard."""
        self.shard_for(node_id).forget(node_id)

    def known_nodes(self) -> list[str]:
        """Every tracked node id, across all shards, sorted."""
        return sorted(node for shard in self._shards for node in shard.known_nodes())

    # -- shard introspection -----------------------------------------------------

    def node_count(self) -> int:
        """Total tracked nodes across all shards."""
        return sum(shard.node_count() for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Tracked-node count per shard (the balance diagnostic)."""
        return [shard.node_count() for shard in self._shards]
