"""Uplink deduplication across gateways.

Every gateway in range hears (and forwards) the same uplink, so the
network server's first job is grouping forwards into *uplinks*.  The
grouping key is ``(DevAddr, FCnt)`` read from the unencrypted frame
header -- no crypto needed -- refined by an airtime window: forwards with
the same key whose arrival times fall within ``window_s`` of the
earliest belong to one transmission, while a same-key forward far
outside the window (a 16-bit counter reuse after wrap, or a crude
replay) opens a new group.

Grouping is performed at :meth:`UplinkDeduplicator.resolve` time over
*all* collected forwards of a key, sorted by arrival: the result is
invariant under the order gateways happened to deliver their forwards,
and ingesting the same forward twice changes nothing.  Both properties
are pinned by hypothesis tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.lorawan.mac import parse_mac_frame
from repro.server.forwarding import GatewayForward

#: Dedup key: the claimed source and its 16-bit frame counter.
UplinkKey = tuple[int, int]


@dataclass(frozen=True)
class DeduplicatedUplink:
    """One over-the-air transmission, as heard by every reporting gateway."""

    dev_addr: int
    fcnt: int
    contributions: tuple[GatewayForward, ...]
    duplicates_dropped: int = 0

    @property
    def key(self) -> UplinkKey:
        """The (DevAddr, FCnt) grouping key."""
        return (self.dev_addr, self.fcnt)

    @property
    def n_gateways(self) -> int:
        """How many distinct gateways contributed a copy."""
        return len(self.contributions)

    @property
    def first_arrival_s(self) -> float:
        """Earliest PHY timestamp across the contributing gateways."""
        return min(c.arrival_time_s for c in self.contributions)

    @property
    def gateway_ids(self) -> tuple[str, ...]:
        """Contributing gateway ids, in contribution order."""
        return tuple(c.gateway_id for c in self.contributions)


@dataclass
class UplinkDeduplicator:
    """Groups gateway forwards into deduplicated uplinks.

    ``window_s`` bounds the arrival spread of one transmission across
    gateways: propagation differences are microseconds, PHY-timestamp
    noise is milliseconds, so the default of two seconds is generous
    while still separating counter reuse (duty-cycled devices are
    minutes apart between uplinks).
    """

    window_s: float = 2.0
    _collected: dict[UplinkKey, list[GatewayForward]] = field(default_factory=dict)
    malformed: int = 0

    def __post_init__(self) -> None:
        """Validate the dedup window."""
        if self.window_s <= 0:
            raise ConfigurationError(f"dedup window must be positive, got {self.window_s}")

    def offer(self, forward: GatewayForward) -> UplinkKey | None:
        """Collect one forward; returns its key, or ``None`` if unparseable."""
        try:
            frame = parse_mac_frame(forward.mac_bytes)
        except Exception:
            self.malformed += 1
            return None
        key = (frame.dev_addr, frame.fcnt)
        self._collected.setdefault(key, []).append(forward)
        return key

    @property
    def pending(self) -> int:
        """Number of keys with collected, unresolved forwards."""
        return len(self._collected)

    def resolve(self) -> list[DeduplicatedUplink]:
        """Group every collected forward; clears the pending state.

        Within a key, forwards are sorted by arrival time (ties broken by
        gateway id) and clustered greedily from the earliest: a forward
        joins the open cluster while it arrives within ``window_s`` of
        the cluster's first arrival.  Within a cluster, one contribution
        per gateway survives (the earliest); the rest count as dropped
        duplicates.  Uplinks come back ordered by (first arrival, key) --
        the order server-side state must observe them in.
        """
        uplinks: list[DeduplicatedUplink] = []
        for (dev_addr, fcnt), forwards in self._collected.items():
            ordered = sorted(forwards, key=lambda f: (f.arrival_time_s, f.gateway_id))
            cluster: list[GatewayForward] = []
            for forward in ordered:
                if cluster and forward.arrival_time_s - cluster[0].arrival_time_s > self.window_s:
                    uplinks.append(self._finish(dev_addr, fcnt, cluster))
                    cluster = []
                cluster.append(forward)
            if cluster:
                uplinks.append(self._finish(dev_addr, fcnt, cluster))
        self._collected.clear()
        uplinks.sort(key=lambda u: (u.first_arrival_s, u.dev_addr, u.fcnt))
        return uplinks

    @staticmethod
    def _finish(dev_addr: int, fcnt: int, cluster: list[GatewayForward]) -> DeduplicatedUplink:
        seen: dict[str, GatewayForward] = {}
        dropped = 0
        for forward in cluster:
            if forward.gateway_id in seen:
                dropped += 1
            else:
                seen[forward.gateway_id] = forward
        contributions = tuple(
            sorted(seen.values(), key=lambda f: (f.arrival_time_s, f.gateway_id))
        )
        return DeduplicatedUplink(
            dev_addr=dev_addr,
            fcnt=fcnt,
            contributions=contributions,
            duplicates_dropped=dropped,
        )
