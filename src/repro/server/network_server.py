"""The LoRaWAN network server: the layer above N SoftLoRa gateways.

The paper evaluates one SoftLoRa gateway; a deployment hears every
uplink at several.  This module adds the resolution point such a
deployment needs (mirroring a real LoRaWAN network server, which is
where MIC checks, counter tracking, and dedup actually live):

1. **ingest** -- gateways forward :class:`repro.server.GatewayForward`
   records: raw PHYPayload + PHY timestamp + FB estimate + SNR;
2. **deduplicate** -- forwards group into uplinks by (DevAddr, FCnt)
   within an airtime window (:class:`repro.server.UplinkDeduplicator`);
3. **verify once** -- MIC + frame counter are checked a single time per
   uplink, against the *fused* (earliest) timestamp;
4. **fuse** -- per-gateway FB estimates combine under a
   :class:`repro.server.FusionPolicy`; per-gateway timestamps fuse to
   the earliest arrival;
5. **one verdict** -- the fused FB runs through one
   :class:`repro.core.detector.ReplayDetector` whose history is shared
   across gateways in a :class:`repro.server.ShardedFbDatabase`, so a
   replay is flagged (and the benign drift tracked) exactly once per
   over-the-air transmission, with evidence from every receiving
   gateway.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.detector import DetectionResult, ReplayDetector
from repro.errors import ConfigurationError, DecodeError
from repro.lorawan.gateway import CommodityGateway, GatewayReception, ReceiveStatus
from repro.lorawan.mac import LinkADRAns, parse_mac_commands
from repro.lorawan.security import SessionKeys
from repro.server.adr import AdrController
from repro.server.dedup import DeduplicatedUplink, UplinkDeduplicator
from repro.server.forwarding import GatewayForward, forward_from_event
from repro.server.fusion import (
    FbNoiseModel,
    FusedFb,
    FusionPolicy,
    best_snr_contribution,
    fuse_fb,
    fuse_timestamp_s,
)
from repro.server.sharding import ShardedFbDatabase

if TYPE_CHECKING:
    from repro.core.timestamping import TimestampedReading
    from repro.sim.network import WorldEvent


class ServerStatus(enum.Enum):
    """Final disposition of one deduplicated uplink at the network server."""

    ACCEPTED = "accepted"
    REPLAY_DETECTED = "replay_detected"
    MAC_REJECTED = "mac_rejected"


@dataclass(frozen=True)
class ServerVerdict:
    """The single, fused outcome of one over-the-air transmission."""

    status: ServerStatus
    node_id: str
    dev_addr: int
    fcnt: int
    timestamp_s: float
    fused: FusedFb | None = None
    detection: DetectionResult | None = None
    reception: GatewayReception | None = None
    gateway_ids: tuple[str, ...] = ()
    gateway_fbs_hz: tuple[float, ...] = ()
    gateway_snrs_db: tuple[float, ...] = ()
    duplicates_dropped: int = 0
    detail: str = ""

    @property
    def accepted(self) -> bool:
        """True when the uplink passed MAC and replay checks."""
        return self.status is ServerStatus.ACCEPTED

    @property
    def attack_detected(self) -> bool:
        """True when the fused FB flagged the uplink as a replay."""
        return self.status is ServerStatus.REPLAY_DETECTED

    @property
    def n_gateways(self) -> int:
        """How many gateways contributed evidence to this verdict."""
        return len(self.gateway_ids)

    @property
    def fused_fb_hz(self) -> float | None:
        """The fused FB estimate, when the uplink got as far as fusion."""
        return None if self.fused is None else self.fused.fb_hz

    @property
    def readings(self) -> "list[TimestampedReading]":
        """Sync-free reconstructed sensor readings of the accepted frame."""
        return [] if self.reception is None else self.reception.readings

    def as_dict(self) -> dict:
        """JSON-safe form of the verdict for the service control plane.

        Floats are carried verbatim (JSON round-trips Python floats
        exactly), so two verdict streams agree field for field iff they
        agree bit for bit -- the property the daemon's golden tests
        compare through.  The in-process-only ``reception`` object is
        reduced to its reconstructed reading timestamps.
        """
        return {
            "status": self.status.value,
            "node_id": self.node_id,
            "dev_addr": self.dev_addr,
            "fcnt": self.fcnt,
            "timestamp_s": self.timestamp_s,
            "fused": None if self.fused is None else self.fused.as_dict(),
            "detection": None if self.detection is None else self.detection.as_dict(),
            "gateway_ids": list(self.gateway_ids),
            "gateway_fbs_hz": list(self.gateway_fbs_hz),
            "gateway_snrs_db": list(self.gateway_snrs_db),
            "duplicates_dropped": self.duplicates_dropped,
            "detail": self.detail,
            "readings": [
                {"value": r.value, "timestamp_s": r.global_time_s} for r in self.readings
            ],
        }


def _default_noise_model():
    """The calibrated Fig. 14 noise model (late import: avoids a cycle)."""
    from repro.sim.network import FbMeasurementModel

    return FbMeasurementModel()


@dataclass
class NetworkServer:
    """Deduplicating, FB-fusing resolution point for N SoftLoRa gateways.

    Attributes:
        mac: The MAC back end: session keys, MIC verification,
            per-device frame counters, and sync-free timestamp
            reconstruction.  One :meth:`CommodityGateway.receive_frame`
            call per *deduplicated* uplink, never per gateway copy.
        detector: The cross-gateway replay detector.  Defaults to a
            :class:`ShardedFbDatabase`-backed detector so per-device FB
            state scales to fleet sizes.
        fusion: FB fusion policy (best-SNR or inverse-variance
            weighting).
        fb_noise: Calibrated SNR -> sigma model used to weight (and
            report confidence for) per-gateway FB estimates.
        window_s: Dedup airtime window, see :class:`UplinkDeduplicator`.
        adr: Optional :class:`~repro.server.adr.AdrController`.  When
            set, every *accepted* uplink feeds its best-gateway
            (SNR, SF) evidence to the controller, LinkADRAns answers
            found in uplink FOpts close the loop, and retune commands
            queue on ``adr.pending`` for the runtime's class-A downlink
            path.
        verdicts: Every verdict issued so far, in resolution order.
    """

    mac: CommodityGateway = field(
        default_factory=lambda: CommodityGateway(name="network-server")
    )
    detector: ReplayDetector = field(
        default_factory=lambda: ReplayDetector(database=ShardedFbDatabase())
    )
    fusion: FusionPolicy = FusionPolicy.INVERSE_VARIANCE
    fb_noise: FbNoiseModel = field(default_factory=_default_noise_model)
    window_s: float = 2.0
    adr: AdrController | None = None
    verdicts: list[ServerVerdict] = field(default_factory=list)
    _dedup: UplinkDeduplicator = field(init=False)

    def __post_init__(self) -> None:
        """Build the dedup stage from the configured airtime window."""
        self._dedup = UplinkDeduplicator(window_s=self.window_s)

    # -- provisioning -----------------------------------------------------------

    def register_device(self, dev_addr: int, keys: SessionKeys) -> None:
        """Provision a device's session keys (ABP)."""
        self.mac.register_device(dev_addr, keys)

    def bootstrap_fb_profile(self, dev_addr: int, fb_estimates: list[float]) -> None:
        """Load an offline FB profile for a device (paper Sec. 7.2)."""
        self.detector.bootstrap(f"{dev_addr:08x}", fb_estimates)

    # -- ingestion --------------------------------------------------------------

    def ingest(self, forward: GatewayForward) -> None:
        """Collect one gateway forward for the next resolution pass."""
        self._dedup.offer(forward)

    def ingest_event(self, gateway_id: str, event: "WorldEvent") -> None:
        """Collect a frame-level world event heard by one gateway."""
        self.ingest(forward_from_event(gateway_id, event))

    @property
    def malformed(self) -> int:
        """Forwards whose PHYPayload would not even parse."""
        return self._dedup.malformed

    # -- resolution -------------------------------------------------------------

    def resolve(self) -> list[ServerVerdict]:
        """Deduplicate, fuse, and judge every collected forward.

        Uplinks resolve in (fused timestamp, DevAddr, FCnt) order --
        independent of the order gateways delivered their forwards -- so
        the frame counters and the FB histories observe transmissions in
        air order.  Returns (and records) one verdict per uplink.
        """
        fresh = [self._judge(uplink) for uplink in self._dedup.resolve()]
        self.verdicts.extend(fresh)
        return fresh

    def process_step(self, forwards: Iterable[GatewayForward]) -> list[ServerVerdict]:
        """Ingest one batch of forwards and resolve it: the fleet-step entry."""
        if self._dedup.pending:
            raise ConfigurationError(
                "process_step on a server with unresolved forwards; call resolve() first"
            )
        for forward in forwards:
            self.ingest(forward)
        return self.resolve()

    def _judge(self, uplink: DeduplicatedUplink) -> ServerVerdict:
        contributions = uplink.contributions
        timestamp = fuse_timestamp_s(contributions)
        best = best_snr_contribution(contributions)
        evidence = {
            "gateway_ids": uplink.gateway_ids,
            "gateway_fbs_hz": tuple(c.fb_hz for c in contributions),
            "gateway_snrs_db": tuple(c.snr_db for c in contributions),
            "duplicates_dropped": uplink.duplicates_dropped,
        }
        # MAC once per uplink, on the best copy's bytes (all copies carry
        # the same frame; a gateway-side corruption fails the MIC here).
        reception = self.mac.receive_frame(best.mac_bytes, timestamp)
        if reception.status is not ReceiveStatus.OK:
            return ServerVerdict(
                status=ServerStatus.MAC_REJECTED,
                node_id=f"{uplink.dev_addr:08x}",
                dev_addr=uplink.dev_addr,
                fcnt=uplink.fcnt,
                timestamp_s=timestamp,
                reception=reception,
                detail=f"MAC layer rejected: {reception.status.value}",
                **evidence,
            )
        fused = fuse_fb(contributions, self.fusion, self.fb_noise)
        node_id = f"{reception.mac_frame.dev_addr:08x}"
        check = self.detector.check(node_id, fused.fb_hz, time_s=timestamp)
        if self.adr is not None and not check.is_replay:
            self._feed_adr(uplink, best, reception, timestamp)
        return ServerVerdict(
            status=(
                ServerStatus.REPLAY_DETECTED if check.is_replay else ServerStatus.ACCEPTED
            ),
            node_id=node_id,
            dev_addr=uplink.dev_addr,
            fcnt=uplink.fcnt,
            timestamp_s=timestamp,
            fused=fused,
            detection=check,
            reception=reception,
            detail=check.reason,
            **evidence,
        )

    def _feed_adr(
        self,
        uplink: DeduplicatedUplink,
        best: GatewayForward,
        reception: GatewayReception,
        timestamp: float,
    ) -> None:
        """Close the ADR loop on one accepted uplink.

        LinkADRAns answers riding the frame's FOpts re-arm the
        controller first, then the uplink's best-gateway (SNR, SF)
        evidence feeds the margin rule (possibly queueing the next
        command).  Replays never reach here: an attacker's replay chain
        must not steer a victim's data rate.
        """
        fopts = reception.mac_frame.fopts if reception.mac_frame is not None else b""
        if fopts:
            try:
                answers = parse_mac_commands(fopts, uplink=True)
            except DecodeError:
                answers = []  # non-command FOpts: not ours to interpret
            for answer in answers:
                if isinstance(answer, LinkADRAns):
                    self.adr.acknowledge(uplink.dev_addr, answer)
        self.adr.observe(
            uplink.dev_addr, best.snr_db, best.spreading_factor, time_s=timestamp
        )

    # -- queries ----------------------------------------------------------------

    def verdicts_of(self, status: ServerStatus) -> list[ServerVerdict]:
        """Every recorded verdict with one final status."""
        return [v for v in self.verdicts if v.status is status]

    def device_state(self, dev_addr: int) -> dict | None:
        """One device's server-side state, JSON-safe (the REST ``/devices`` body).

        Collects the learned FB profile (sample count plus the guarded
        acceptance interval the detector currently enforces), the ADR
        loop's view of the device (last observed SF, commands issued)
        when a controller is attached, and the most recent verdict.
        Returns ``None`` for a device that was never registered.
        """
        if dev_addr not in self.mac._keys:
            return None
        node_id = f"{dev_addr:08x}"
        database = self.detector.database
        interval = database.interval(node_id, self.detector.guard_hz)
        last = next((v for v in reversed(self.verdicts) if v.dev_addr == dev_addr), None)
        state: dict = {
            "dev_addr": dev_addr,
            "node_id": node_id,
            "fb_profile": {
                "sample_count": database.sample_count(node_id),
                "guard_hz": self.detector.guard_hz,
                "interval": None if interval is None else interval.as_dict(),
            },
            "last_verdict": None if last is None else last.as_dict(),
        }
        if self.adr is not None:
            state["adr"] = {
                "last_sf": self.adr.last_sf(dev_addr),
                "commands_issued": self.adr.commands_issued(dev_addr),
                "converged": self.adr.converged(dev_addr),
            }
        return state

    @property
    def dedup_rate(self) -> float:
        """Mean gateway copies per resolved uplink (1.0 = no diversity)."""
        if not self.verdicts:
            return 0.0
        copies = sum(v.n_gateways + v.duplicates_dropped for v in self.verdicts)
        return copies / len(self.verdicts)
