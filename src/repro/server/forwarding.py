"""The gateway -> network-server forwarding contract.

Real LoRaWAN gateways are packet forwarders: they hold no session keys
and run no application logic.  A SoftLoRa gateway in a multi-gateway
deployment therefore ships, per uplink it hears, exactly what its SDR
front end measured -- the raw PHYPayload, the AIC PHY timestamp, the
estimated frequency bias, and the link SNR -- and leaves MAC
verification, deduplication, FB fusion, and the replay verdict to the
:class:`repro.server.NetworkServer`.

Two constructors cover the repo's two abstraction levels:

* :func:`forward_from_reception` lifts a fully processed
  :class:`repro.core.softlora.SoftLoRaReception` (waveform or frame
  path) into a forward;
* :func:`forward_from_event` does the same for a frame-level
  :class:`repro.sim.network.WorldEvent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.softlora import SoftLoRaReception
    from repro.sim.network import WorldEvent


@dataclass(frozen=True)
class GatewayForward:
    """One uplink as heard by one gateway, en route to the network server.

    Attributes:
        gateway_id: Stable identifier of the reporting gateway.
        mac_bytes: The demodulated PHYPayload, untouched: the forwarding
            gateway has no session keys, so MIC verification happens at
            the server.
        arrival_time_s: The gateway's sync-free PHY timestamp of the
            frame onset.
        fb_hz: The gateway's own least-squares FB estimate for this
            frame.
        snr_db: Link SNR at this gateway -- the fusion weight.
        spreading_factor: The SF the frame was demodulated at.  The FB
            estimator works on one preamble chirp whose duration doubles
            per SF step, so the fusion noise model weights (and the
            detector enrolls) each estimate at its own SF.
    """

    gateway_id: str
    mac_bytes: bytes
    arrival_time_s: float
    fb_hz: float
    snr_db: float
    spreading_factor: int = 7

    def __post_init__(self) -> None:
        """Reject forwards missing an id or payload."""
        if not self.gateway_id:
            raise ConfigurationError("a forward needs a non-empty gateway id")
        if not self.mac_bytes:
            raise ConfigurationError("a forward needs a non-empty PHYPayload")


def forward_from_reception(
    gateway_id: str,
    reception: "SoftLoRaReception",
    snr_db: float,
    mac_bytes: bytes,
    spreading_factor: int = 7,
) -> GatewayForward:
    """Lift a processed SoftLoRa reception into a server forward.

    ``mac_bytes`` must be supplied by the caller: a reception keeps the
    parsed frame, not the wire bytes, and the server re-verifies the MIC
    itself rather than trusting a gateway-side verdict.
    ``spreading_factor`` should name the SF the capture was demodulated
    at so fusion weights the estimate with the right per-SF noise.
    """
    return GatewayForward(
        gateway_id=gateway_id,
        mac_bytes=mac_bytes,
        arrival_time_s=reception.phy_timestamp_s,
        fb_hz=float(reception.fb_hz) if reception.fb_hz is not None else 0.0,
        snr_db=snr_db,
        spreading_factor=spreading_factor,
    )


def forward_from_event(gateway_id: str, event: "WorldEvent") -> GatewayForward:
    """Lift a frame-level world event into a server forward."""
    if event.transmission is None or event.reception is None:
        raise ConfigurationError(
            f"event {event.kind.value!r} carries no delivered frame to forward"
        )
    fb = event.reception.fb_hz
    return GatewayForward(
        gateway_id=gateway_id,
        mac_bytes=event.transmission.mac_bytes,
        arrival_time_s=event.reception.phy_timestamp_s,
        fb_hz=float(fb) if fb is not None else 0.0,
        snr_db=event.snr_db,
        spreading_factor=event.transmission.spreading_factor,
    )
