"""Command-line entry point: ``python -m repro.service``.

Boots a :class:`~repro.service.daemon.NetworkServerDaemon` around a
fresh :class:`~repro.server.NetworkServer` and runs until interrupted.
Devices can be pre-provisioned from a JSON file (see ``--devices``);
without one the daemon starts empty and every uplink is rejected as
coming from an unknown device -- fine for wire-level smoke tests.

The ``--devices`` file maps hex DevAddrs to session key material::

    {"26000000": {"nwk_skey": "<32 hex>", "app_skey": "<32 hex>",
                  "fb_profile": [-20.0, 5.0, 30.0]}}

``--store`` selects the FB-history backend
(:func:`repro.server.store.open_store` specs): the default ``memory``
dies with the process, while ``sqlite:PATH`` (or ``lmdb:PATH`` /
``sharded-sqlite:DIR``) persists every enrolled fingerprint across
restarts -- on boot the daemon reloads the store and skips
``fb_profile`` bootstraps for devices that already have history, so a
restart never re-opens the replay window or double-records a profile.

See ``docs/service.md`` for the full operator guide and ``docs/store.md``
for the backend matrix.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.core.detector import ReplayDetector
from repro.lorawan.security import SessionKeys
from repro.server.network_server import NetworkServer
from repro.server.store import open_store, store_stats
from repro.service.config import ServiceConfig
from repro.service.daemon import NetworkServerDaemon


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the SoftLoRa network-server daemon.",
    )
    parser.add_argument("--udp-host", default="0.0.0.0", help="Semtech UDP bind host")
    parser.add_argument("--udp-port", type=int, default=1700, help="Semtech UDP bind port")
    parser.add_argument("--http-host", default="0.0.0.0", help="control-plane bind host")
    parser.add_argument("--http-port", type=int, default=8080, help="control-plane bind port")
    parser.add_argument(
        "--queue-limit", type=int, default=10_000, help="bounded ingest queue, in forwards"
    )
    parser.add_argument(
        "--linger-s", type=float, default=0.05, help="idle time that closes a batch (s)"
    )
    parser.add_argument(
        "--max-hold-s", type=float, default=2.0, help="hard batching bound (s)"
    )
    parser.add_argument(
        "--devices", default=None, help="JSON file of devices to provision (see module docs)"
    )
    parser.add_argument(
        "--store",
        default="memory",
        help="FB-history store spec: memory (default), sqlite:PATH, lmdb:PATH, "
        "sharded-sqlite:DIR; add ?cache=N for an LRU hot-cache (see docs/store.md)",
    )
    return parser.parse_args(argv)


def _provision(server: NetworkServer, path: str) -> int:
    """Register devices; bootstrap FB profiles only for unseen nodes.

    A persistent store already holds the histories learned before a
    restart -- re-recording the offline profile on top of them would
    shift every acceptance interval, so profiles apply only when the
    store has no samples for the node (reload-on-boot).
    """
    with open(path, encoding="utf-8") as handle:
        table = json.load(handle)
    for addr_text, entry in table.items():
        dev_addr = int(addr_text, 16)
        keys = SessionKeys(
            nwk_skey=bytes.fromhex(entry["nwk_skey"]),
            app_skey=bytes.fromhex(entry["app_skey"]),
        )
        server.register_device(dev_addr, keys)
        profile = entry.get("fb_profile")
        if profile and server.detector.database.sample_count(f"{dev_addr:08x}") == 0:
            server.bootstrap_fb_profile(dev_addr, [float(v) for v in profile])
    return len(table)


async def _serve(args: argparse.Namespace) -> None:
    store = open_store(args.store)
    server = NetworkServer(detector=ReplayDetector(database=store))
    stats = store_stats(store)
    print(
        f"fb store: {args.store} ({stats['backend']}, "
        f"{stats['node_count']} nodes reloaded)"
    )
    if args.devices:
        count = _provision(server, args.devices)
        print(f"provisioned {count} devices from {args.devices}")
    config = ServiceConfig(
        udp_host=args.udp_host,
        udp_port=args.udp_port,
        http_host=args.http_host,
        http_port=args.http_port,
        queue_limit=args.queue_limit,
        linger_s=args.linger_s,
        max_hold_s=args.max_hold_s,
    )
    daemon = NetworkServerDaemon(server=server, config=config)
    await daemon.start()
    print(
        f"network-server daemon up: Semtech UDP on {args.udp_host}:{daemon.udp_port}, "
        f"control plane on http://{args.http_host}:{daemon.http_port}"
    )
    try:
        await asyncio.Event().wait()
    finally:
        await daemon.stop()


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the daemon until interrupted."""
    args = _parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("daemon stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
