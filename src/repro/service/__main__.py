"""Command-line entry point: ``python -m repro.service``.

Boots a :class:`~repro.service.daemon.NetworkServerDaemon` around a
fresh :class:`~repro.server.NetworkServer` and runs until interrupted.
Devices can be pre-provisioned from a JSON file (see ``--devices``);
without one the daemon starts empty and every uplink is rejected as
coming from an unknown device -- fine for wire-level smoke tests.

The ``--devices`` file maps hex DevAddrs to session key material::

    {"26000000": {"nwk_skey": "<32 hex>", "app_skey": "<32 hex>",
                  "fb_profile": [-20.0, 5.0, 30.0]}}

See ``docs/service.md`` for the full operator guide.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.lorawan.security import SessionKeys
from repro.server.network_server import NetworkServer
from repro.service.config import ServiceConfig
from repro.service.daemon import NetworkServerDaemon


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the SoftLoRa network-server daemon.",
    )
    parser.add_argument("--udp-host", default="0.0.0.0", help="Semtech UDP bind host")
    parser.add_argument("--udp-port", type=int, default=1700, help="Semtech UDP bind port")
    parser.add_argument("--http-host", default="0.0.0.0", help="control-plane bind host")
    parser.add_argument("--http-port", type=int, default=8080, help="control-plane bind port")
    parser.add_argument(
        "--queue-limit", type=int, default=10_000, help="bounded ingest queue, in forwards"
    )
    parser.add_argument(
        "--linger-s", type=float, default=0.05, help="idle time that closes a batch (s)"
    )
    parser.add_argument(
        "--max-hold-s", type=float, default=2.0, help="hard batching bound (s)"
    )
    parser.add_argument(
        "--devices", default=None, help="JSON file of devices to provision (see module docs)"
    )
    return parser.parse_args(argv)


def _provision(server: NetworkServer, path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        table = json.load(handle)
    for addr_text, entry in table.items():
        dev_addr = int(addr_text, 16)
        keys = SessionKeys(
            nwk_skey=bytes.fromhex(entry["nwk_skey"]),
            app_skey=bytes.fromhex(entry["app_skey"]),
        )
        server.register_device(dev_addr, keys)
        profile = entry.get("fb_profile")
        if profile:
            server.bootstrap_fb_profile(dev_addr, [float(v) for v in profile])
    return len(table)


async def _serve(args: argparse.Namespace) -> None:
    server = NetworkServer()
    if args.devices:
        count = _provision(server, args.devices)
        print(f"provisioned {count} devices from {args.devices}")
    config = ServiceConfig(
        udp_host=args.udp_host,
        udp_port=args.udp_port,
        http_host=args.http_host,
        http_port=args.http_port,
        queue_limit=args.queue_limit,
        linger_s=args.linger_s,
        max_hold_s=args.max_hold_s,
    )
    daemon = NetworkServerDaemon(server=server, config=config)
    await daemon.start()
    print(
        f"network-server daemon up: Semtech UDP on {args.udp_host}:{daemon.udp_port}, "
        f"control plane on http://{args.http_host}:{daemon.http_port}"
    )
    try:
        await asyncio.Event().wait()
    finally:
        await daemon.stop()


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the daemon until interrupted."""
    args = _parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("daemon stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
