"""The network-server daemon: Semtech UDP in, fused replay verdicts out.

:class:`NetworkServerDaemon` turns the in-process
:class:`~repro.server.NetworkServer` into a long-running asyncio service
with the shape real LoRaWAN network servers have:

1. **front end** -- an asyncio datagram endpoint speaks the Semtech UDP
   packet-forwarder protocol (:mod:`repro.service.semtech`): every
   ``PUSH_DATA`` is acknowledged immediately with a token-echoing
   ``PUSH_ACK``, ``PULL_DATA`` keep-alives register the gateway's
   downlink address, and per-EUI :class:`GatewaySession` records track
   who is forwarding;
2. **bounded ingest** -- decoded forwards enter a bounded queue
   (``queue_limit``); overload sheds forwards (counted, never blocking
   the receive path) instead of growing memory without bound;
3. **batched workers** -- a worker task groups queued forwards and runs
   each batch through :meth:`NetworkServer.process_step` within the
   dedup airtime window: a batch closes on a gateway ``stat`` beacon
   (the load generator's window tick), after ``linger_s`` of ingest
   silence, or at the ``max_hold_s`` wall-clock bound, whichever comes
   first -- so cross-gateway copies of one transmission always resolve
   together and verdicts are bit-identical to driving the wrapped
   server in process (golden-pinned in ``tests/test_service_daemon.py``);
4. **control plane** -- the REST/SSE endpoints of
   :mod:`repro.service.rest` ride on top: device state, paged verdicts,
   health, Prometheus ``/metrics``, and a live ``/alerts`` stream fed by
   this module's :class:`AlertBroker` on every ``attack_detected``
   verdict;
5. **downlink path** -- when the wrapped server runs an
   :class:`~repro.server.adr.AdrController`, queued ``LinkADRReq``
   commands leave as ``PULL_RESP`` datagrams through a polling gateway's
   registered downlink address, with in-flight commands gauged on
   ``/metrics``.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import ExitStack
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, DecodeError
from repro.lorawan.downlink import build_downlink
from repro.server.forwarding import GatewayForward
from repro.server.network_server import NetworkServer, ServerStatus
from repro.server.store import store_batch, store_stats
from repro.service.config import ServiceConfig
from repro.service.metrics import MetricsRegistry
from repro.service.rest import ControlPlane
from repro.service.semtech import (
    PacketType,
    PullAck,
    PullData,
    PullResp,
    PushAck,
    PushData,
    TxAck,
    decode_datagram,
    encode_datagram,
    txpk_for_downlink,
)


@dataclass
class GatewaySession:
    """Liveness and addressing state of one forwarding gateway EUI."""

    eui: bytes
    gateway_id: str
    push_addr: tuple[str, int] | None = None
    pull_addr: tuple[str, int] | None = None
    last_seen_s: float = 0.0
    push_count: int = 0
    pull_count: int = 0
    forward_count: int = 0

    def as_dict(self) -> dict:
        """JSON-safe session summary for ``/healthz``."""
        return {
            "gateway_id": self.gateway_id,
            "eui": self.eui.hex(),
            "push_count": self.push_count,
            "pull_count": self.pull_count,
            "forward_count": self.forward_count,
            "downlink_ready": self.pull_addr is not None,
            "last_seen_s": self.last_seen_s,
        }


class AlertBroker:
    """Fan-out of detection alerts to ``/alerts`` SSE subscribers.

    Publishing never blocks the worker: a subscriber whose buffer is
    full loses the event (counted by the caller), exactly like a slow
    Prometheus scraper loses samples rather than stalling the service.
    """

    def __init__(self, queue_limit: int):
        """Create a broker whose subscribers buffer ``queue_limit`` alerts."""
        self.queue_limit = queue_limit
        self._subscribers: list[asyncio.Queue] = []

    def subscribe(self) -> asyncio.Queue:
        """Register one subscriber; returns its buffered alert queue."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_limit)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Drop one subscriber (idempotent)."""
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    @property
    def subscriber_count(self) -> int:
        """Currently connected subscribers."""
        return len(self._subscribers)

    def publish(self, alert: dict) -> int:
        """Offer one alert to every subscriber; returns how many were dropped."""
        dropped = 0
        for queue in self._subscribers:
            try:
                queue.put_nowait(alert)
            except asyncio.QueueFull:
                dropped += 1
        return dropped


class _SemtechProtocol(asyncio.DatagramProtocol):
    """Datagram glue: hand every received packet to the daemon."""

    def __init__(self, daemon: "NetworkServerDaemon"):
        """Bind the protocol to its daemon."""
        self.daemon = daemon
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:
        """Remember the transport so the daemon can send replies."""
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        """Forward one raw datagram to the daemon's handler."""
        self.daemon.handle_datagram(data, addr)


@dataclass
class NetworkServerDaemon:
    """Asyncio service wrapping one :class:`NetworkServer` (see module docs).

    Attributes:
        server: The wrapped resolution point; its ``verdicts`` list is
            the source of truth the control plane pages through.
        config: Operational knobs (:class:`ServiceConfig`).
        metrics: The Prometheus registry behind ``GET /metrics``.
        alerts: The ``/alerts`` fan-out broker.
        sessions: Per-EUI gateway sessions, keyed by the wire EUI.
    """

    server: NetworkServer
    config: ServiceConfig = field(default_factory=ServiceConfig)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    alerts: AlertBroker = field(init=False)
    sessions: dict[bytes, GatewaySession] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Register the metric families and the internal ingest state."""
        self.alerts = AlertBroker(self.config.alert_queue_limit)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._queued_forwards = 0
        self._pending: list[GatewayForward] = []
        self._pending_since: float | None = None
        self._transport: asyncio.DatagramTransport | None = None
        self._control: ControlPlane | None = None
        self._worker_task: asyncio.Task | None = None
        self._started_s: float | None = None
        self._idle = asyncio.Event()
        self._idle.set()
        m = self.metrics
        self._m_datagrams = m.counter(
            "repro_service_datagrams_total", "UDP datagrams received, by packet type."
        )
        self._m_malformed = m.counter(
            "repro_service_malformed_datagrams_total",
            "Datagrams or rxpk entries rejected by the Semtech codec.",
        )
        self._m_uplinks = m.counter(
            "repro_service_uplinks_total", "Gateway forwards accepted into the ingest queue."
        )
        self._m_overflow = m.counter(
            "repro_service_queue_overflow_total",
            "Forwards shed because the bounded ingest queue was full.",
        )
        self._m_depth = m.gauge(
            "repro_service_queue_depth", "Forwards currently queued or awaiting resolution."
        )
        self._m_batches = m.counter(
            "repro_service_batches_total", "Worker batches resolved through process_step."
        )
        self._m_verdicts = m.counter(
            "repro_service_verdicts_total", "Fused verdicts issued, by final status."
        )
        self._m_dedup = m.gauge(
            "repro_service_dedup_copies_per_uplink",
            "Mean gateway copies per resolved uplink (server-lifetime).",
        )
        self._m_uplink_rate = m.gauge(
            "repro_service_uplinks_per_s",
            "Forward ingest rate since daemon start (wall-clock mean).",
        )
        self._m_verdict_rate = m.gauge(
            "repro_service_verdicts_per_s",
            "Verdict issue rate since daemon start (wall-clock mean).",
        )
        self._m_gateways = m.gauge(
            "repro_service_gateways_seen", "Distinct gateway EUIs with a live session."
        )
        self._m_adr_inflight = m.gauge(
            "repro_service_adr_commands_in_flight",
            "LinkADRReq commands dispatched as PULL_RESP and not yet TX_ACKed.",
        )
        self._m_adr_sent = m.counter(
            "repro_service_adr_pull_resp_total",
            "LinkADRReq downlinks dispatched as PULL_RESP datagrams.",
        )
        self._m_adr_undeliverable = m.counter(
            "repro_service_adr_undeliverable_total",
            "ADR commands dropped for lack of a polling gateway or session keys.",
        )
        self._m_alerts = m.counter(
            "repro_service_alerts_total", "attack_detected alerts published to /alerts."
        )
        self._m_alerts_dropped = m.counter(
            "repro_service_alerts_dropped_total",
            "Alerts lost to full subscriber buffers on /alerts.",
        )
        self._m_subscribers = m.gauge(
            "repro_service_alert_subscribers", "Currently connected /alerts subscribers."
        )
        self._m_store_nodes = m.gauge(
            "repro_service_store_nodes",
            "Devices with recorded FB history in the detector's store.",
        )
        self._m_store_hit_rate = m.gauge(
            "repro_service_store_cache_hit_rate",
            "LRU hot-cache hit rate of the FB store (1 when uncached).",
        )
        self._m_store_flush = m.gauge(
            "repro_service_store_flush_seconds",
            "Commit (flush) latency of the last store-wrapped batch.",
        )
        self._m_store_batches = m.counter(
            "repro_service_store_batches_total",
            "Dedup-window transactions committed to the FB store.",
        )

    # -- lifecycle ----------------------------------------------------------------

    @property
    def udp_port(self) -> int:
        """The bound UDP port (resolves ``udp_port=0`` after :meth:`start`)."""
        if self._transport is None:
            raise ConfigurationError("daemon not started")
        return self._transport.get_extra_info("sockname")[1]

    @property
    def http_port(self) -> int:
        """The bound control-plane port (resolves ``http_port=0`` after start)."""
        if self._control is None:
            raise ConfigurationError("daemon not started")
        return self._control.port

    @property
    def uptime_s(self) -> float:
        """Wall-clock seconds since :meth:`start` (0.0 before)."""
        return 0.0 if self._started_s is None else time.monotonic() - self._started_s

    async def start(self) -> None:
        """Bind the UDP front end and control plane; spawn the worker."""
        if self._transport is not None:
            raise ConfigurationError("daemon already started")
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _SemtechProtocol(self),
            local_addr=(self.config.udp_host, self.config.udp_port),
        )
        self._control = ControlPlane(self)
        await self._control.start()
        self._worker_task = loop.create_task(self._worker())
        self._started_s = time.monotonic()
        # A durable store reloads its nodes before any batch flows;
        # publish them immediately so a freshly booted daemon's gauges
        # reflect the reloaded state, not zero.
        self._update_store_metrics()

    async def stop(self) -> None:
        """Flush pending work, sync the FB store, and tear endpoints down.

        A durable store gets a final ``flush()`` (e.g. a WAL checkpoint)
        so the on-disk file is complete at shutdown; the store stays
        open -- whoever built it owns closing it -- and a restarted
        daemon pointed at the same store resumes verdict-bit-identically.
        """
        if self._worker_task is not None:
            self._queue.put_nowait(("stop", None))
            await self._worker_task
            self._worker_task = None
        if self._control is not None:
            await self._control.stop()
            self._control = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        flush = getattr(self.server.detector.database, "flush", None)
        if callable(flush):
            flush()

    async def drain(self, timeout_s: float = 30.0) -> None:
        """Wait until every queued forward has been resolved to a verdict."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._queued_forwards == 0 and not self._pending and self._queue.empty():
                return
            await asyncio.sleep(0.005)
        raise TimeoutError(f"daemon did not drain within {timeout_s} s")

    # -- UDP front end ------------------------------------------------------------

    def handle_datagram(self, data: bytes, addr: tuple[str, int]) -> None:
        """Decode and dispatch one datagram (malformed input only counts)."""
        try:
            message = decode_datagram(data)
        except DecodeError:
            self._m_malformed.inc()
            return
        if isinstance(message, PushData):
            self._m_datagrams.inc(labels={"type": PacketType.PUSH_DATA.name})
            self._send(PushAck(token=message.token), addr)
            self._on_push_data(message, addr)
        elif isinstance(message, PullData):
            self._m_datagrams.inc(labels={"type": PacketType.PULL_DATA.name})
            self._send(PullAck(token=message.token), addr)
            session = self._session(message.gateway_eui)
            session.pull_addr = addr
            session.pull_count += 1
            session.last_seen_s = time.monotonic()
        elif isinstance(message, TxAck):
            self._m_datagrams.inc(labels={"type": PacketType.TX_ACK.name})
            self._m_adr_inflight.inc(-1.0)
        else:
            # PUSH_ACK / PULL_ACK / PULL_RESP are server-to-gateway
            # messages; arriving here they are protocol misuse.
            self._m_malformed.inc()

    def _on_push_data(self, message: PushData, addr: tuple[str, int]) -> None:
        session = self._session(message.gateway_eui)
        session.push_addr = addr
        session.push_count += 1
        session.last_seen_s = time.monotonic()
        for rxpk in message.rxpks:
            try:
                forward = _forward_of(message, rxpk)
            except DecodeError:
                self._m_malformed.inc()
                continue
            if self._queued_forwards >= self.config.queue_limit:
                self._m_overflow.inc()
                continue
            self._queued_forwards += 1
            session.forward_count += 1
            self._m_uplinks.inc()
            self._idle.clear()
            self._queue.put_nowait(("forward", forward))
        if message.stat is not None:
            # A gateway status beacon doubles as the ingest stream's
            # window tick: everything forwarded before it resolves now.
            self._queue.put_nowait(("tick", None))
        self._m_depth.set(self._queued_forwards + len(self._pending))

    def _session(self, eui: bytes) -> GatewaySession:
        session = self.sessions.get(eui)
        if session is None:
            session = GatewaySession(eui=bytes(eui), gateway_id=_gateway_id(eui))
            self.sessions[eui] = session
            self._m_gateways.set(len(self.sessions))
        return session

    def _send(self, message, addr: tuple[str, int]) -> None:
        if self._transport is not None:
            self._transport.sendto(encode_datagram(message), addr)

    # -- the batching worker --------------------------------------------------------

    async def _worker(self) -> None:
        """Group queued forwards into dedup-window batches and resolve them."""
        while True:
            timeout = None
            if self._pending:
                held = time.monotonic() - (self._pending_since or time.monotonic())
                timeout = max(min(self.config.linger_s, self.config.max_hold_s - held), 0.0)
            try:
                kind, payload = await asyncio.wait_for(self._queue.get(), timeout)
            except asyncio.TimeoutError:
                self._flush()
                continue
            if kind == "forward":
                self._queued_forwards -= 1
                if not self._pending:
                    self._pending_since = time.monotonic()
                self._pending.append(payload)
                if time.monotonic() - self._pending_since >= self.config.max_hold_s:
                    self._flush()
            elif kind == "tick":
                self._flush()
            else:  # "stop"
                self._flush()
                return

    def _flush(self) -> None:
        """Resolve the pending batch through the wrapped server.

        The resolution runs inside one FB-store transaction
        (:func:`repro.server.store.store_batch`), so a durable store
        commits the whole dedup window's verdicts atomically -- a crash
        between windows never leaves a half-written history -- and the
        commit latency lands on ``/metrics``.
        """
        batch, self._pending = self._pending, []
        self._pending_since = None
        if batch:
            store = self.server.detector.database
            with ExitStack() as stack:
                stack.enter_context(store_batch(store))
                verdicts = self.server.process_step(batch)
                commit_start = time.perf_counter()
            self._m_store_flush.set(time.perf_counter() - commit_start)
            self._m_store_batches.inc()
            self._update_store_metrics()
            self._m_batches.inc()
            for verdict in verdicts:
                self._m_verdicts.inc(labels={"status": verdict.status.value})
                if verdict.status is ServerStatus.REPLAY_DETECTED:
                    self._publish_alert(verdict)
            self._m_dedup.set(self.server.dedup_rate)
            elapsed = self.uptime_s
            if elapsed > 0:
                self._m_uplink_rate.set(self._m_uplinks.total() / elapsed)
                self._m_verdict_rate.set(self._m_verdicts.total() / elapsed)
        if self.server.adr is not None:
            self._dispatch_adr()
        self._m_depth.set(self._queued_forwards)
        if self._queued_forwards == 0:
            self._idle.set()

    def _update_store_metrics(self) -> None:
        """Refresh the FB-store gauges from a live store snapshot."""
        stats = store_stats(self.server.detector.database)
        self._m_store_nodes.set(stats["node_count"])
        cache = stats.get("cache")
        self._m_store_hit_rate.set(1.0 if cache is None else cache["hit_rate"])

    def _publish_alert(self, verdict) -> None:
        alert = verdict.as_dict()
        alert["uptime_s"] = self.uptime_s
        self._m_alerts.inc()
        dropped = self.alerts.publish(alert)
        if dropped:
            self._m_alerts_dropped.inc(dropped)
        self._m_subscribers.set(self.alerts.subscriber_count)

    # -- ADR downlink dispatch ------------------------------------------------------

    def _dispatch_adr(self) -> None:
        """Ship queued LinkADRReq commands as PULL_RESP downlink orders.

        The command leaves through a gateway that polled for downlinks
        (``PULL_DATA``); without one -- or without session keys for the
        device -- the command is returned to the controller as dropped so
        it re-arms, mirroring the simulator's duty-cycle drop path.
        """
        commands = self.server.adr.take_pending()
        if not commands:
            return
        pollers = [s for s in self.sessions.values() if s.pull_addr is not None]
        for index, command in enumerate(commands):
            keys = self.server.mac._keys.get(command.dev_addr)
            if not pollers or keys is None:
                self._m_adr_undeliverable.inc()
                self.server.adr.command_dropped(command.dev_addr)
                continue
            session = pollers[index % len(pollers)]
            raw = build_downlink(
                keys,
                command.dev_addr,
                self.server.adr.next_fcnt_down(command.dev_addr),
                payload=command.request.encode(),
                fport=0,
            )
            sf = self.server.adr.last_sf(command.dev_addr) or 12
            resp = PullResp(token=index & 0xFFFF, txpk=txpk_for_downlink(raw, sf))
            self._send(resp, session.pull_addr)
            self._m_adr_sent.inc()
            self._m_adr_inflight.inc()

    # -- control-plane queries ------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` body: liveness plus ingest/session/store summary."""
        return {
            "status": "ok",
            "uptime_s": self.uptime_s,
            "queue_depth": self._queued_forwards + len(self._pending),
            "uplinks_total": int(self._m_uplinks.total()),
            "verdicts_total": len(self.server.verdicts),
            "gateways": [s.as_dict() for s in self.sessions.values()],
            "store": store_stats(self.server.detector.database),
        }


def _gateway_id(eui: bytes) -> str:
    from repro.service.semtech import gateway_id_from_eui

    return gateway_id_from_eui(eui)


def _forward_of(message: PushData, rxpk: dict) -> GatewayForward:
    from repro.service.semtech import forward_from_rxpk

    return forward_from_rxpk(message.gateway_id, rxpk)
