"""Semtech UDP packet-forwarder codec (protocol version 2).

Real LoRaWAN gateways run Semtech's reference ``packet_forwarder``: every
uplink a gateway hears is shipped to the network server as a ``PUSH_DATA``
UDP datagram carrying a JSON ``rxpk`` array, and the downlink path is
pulled by the gateway through ``PULL_DATA`` keep-alives answered with
``PULL_RESP`` datagrams.  This module implements the wire format the
:class:`~repro.service.daemon.NetworkServerDaemon` speaks::

    byte 0     protocol version (0x02)
    bytes 1-2  random token, echoed verbatim by the matching ACK
    byte 3     packet identifier (PUSH_DATA .. TX_ACK)
    bytes 4-11 gateway EUI (PUSH_DATA / PULL_DATA / TX_ACK only)
    bytes 12-  JSON object (PUSH_DATA / PULL_RESP / TX_ACK)

Two SoftLoRa extension fields ride inside each ``rxpk`` object so the
daemon reconstructs exactly the evidence an in-process
:class:`~repro.server.GatewayForward` carries:

* ``atime`` -- the gateway's sync-free PHY timestamp in float seconds
  (the standard ``tmst`` microsecond counter wraps at 2^32 and cannot
  round-trip a float timestamp bit-exactly);
* ``fbhz`` -- the gateway's own least-squares frequency-bias estimate.

JSON float literals round-trip Python floats exactly (``repr`` precision
both ways), so a forward encoded on the gateway side decodes to the very
same floats at the server -- the property the daemon's golden
bit-identical verdict tests rely on, pinned by the hypothesis round-trip
suite in ``tests/test_semtech_codec.py``.
"""

from __future__ import annotations

import base64
import binascii
import enum
import json
import math
import re
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, DecodeError
from repro.server.forwarding import GatewayForward

#: The protocol version every datagram opens with.
PROTOCOL_VERSION = 2

#: Smallest possible datagram: version + token + identifier.
_MIN_LEN = 4
_EUI_LEN = 8

#: EU868 default uplink channel reported in ``rxpk.freq`` (MHz).
DEFAULT_FREQ_MHZ = 868.1


class PacketType(enum.IntEnum):
    """Datagram identifiers of the Semtech UDP protocol (byte 3)."""

    PUSH_DATA = 0x00
    PUSH_ACK = 0x01
    PULL_DATA = 0x02
    PULL_RESP = 0x03
    PULL_ACK = 0x04
    TX_ACK = 0x05


def eui_from_gateway_id(gateway_id: str) -> bytes:
    """Encode a repo gateway id (``"gw-0"``) as an 8-byte EUI, losslessly.

    The UTF-8 bytes are zero-padded to eight; ids longer than eight bytes
    do not fit the wire field and are rejected rather than truncated
    (truncation would break the daemon's id round-trip and with it the
    bit-identical verdict guarantee).
    """
    raw = gateway_id.encode("utf-8")
    if not raw:
        raise ConfigurationError("gateway id must be non-empty")
    if len(raw) > _EUI_LEN:
        raise ConfigurationError(
            f"gateway id {gateway_id!r} exceeds the 8-byte EUI field"
        )
    if raw[-1] == 0:
        raise ConfigurationError("gateway id must not end in a NUL byte")
    return raw.ljust(_EUI_LEN, b"\x00")


def gateway_id_from_eui(eui: bytes) -> str:
    """Invert :func:`eui_from_gateway_id`; hex string for foreign EUIs.

    An EUI produced by a real gateway (raw MAC-derived bytes) is not
    valid padded UTF-8; those render as 16 hex digits, which is also the
    conventional LoRaWAN presentation.
    """
    if len(eui) != _EUI_LEN:
        raise DecodeError(f"gateway EUI must be 8 bytes, got {len(eui)}")
    stripped = eui.rstrip(b"\x00")
    try:
        decoded = stripped.decode("utf-8")
    except UnicodeDecodeError:
        return eui.hex()
    if decoded and decoded.isprintable() and "\x00" not in decoded:
        return decoded
    return eui.hex()


_DATR_RE = re.compile(r"^SF(?P<sf>\d+)BW(?P<bw>\d+)$")


def encode_datr(spreading_factor: int, bandwidth_khz: int = 125) -> str:
    """The ``rxpk.datr`` LoRa datarate string, e.g. ``"SF7BW125"``."""
    return f"SF{spreading_factor}BW{bandwidth_khz}"


def parse_datr(datr: str) -> int:
    """Spreading factor out of a ``datr`` string; raises on malformed input."""
    match = _DATR_RE.match(datr)
    if match is None:
        raise DecodeError(f"malformed datr {datr!r}")
    sf = int(match.group("sf"))
    if not 7 <= sf <= 12:
        raise DecodeError(f"spreading factor {sf} outside 7..12")
    return sf


def rxpk_from_forward(forward: GatewayForward) -> dict:
    """One ``rxpk`` JSON object for a gateway forward.

    Standard packet-forwarder fields (``tmst``, ``freq``, ``datr``,
    ``lsnr``, ``size``, ``data``) are filled for protocol fidelity; the
    ``atime``/``fbhz`` SoftLoRa extensions carry the float evidence
    exactly (see the module docstring).
    """
    micros = forward.arrival_time_s * 1e6
    rssi = forward.snr_db - 120.0
    return {
        # tmst/rssi are cosmetic protocol-fidelity fields; atime/lsnr
        # carry the authoritative floats, so extremes just clamp here.
        "tmst": int(micros) % 2**32 if math.isfinite(micros) else 0,
        "atime": forward.arrival_time_s,
        "chan": 0,
        "rfch": 0,
        "freq": DEFAULT_FREQ_MHZ,
        "stat": 1,
        "modu": "LORA",
        "datr": encode_datr(forward.spreading_factor),
        "codr": "4/5",
        "rssi": int(rssi) if math.isfinite(rssi) else -120,
        "lsnr": forward.snr_db,
        "fbhz": forward.fb_hz,
        "size": len(forward.mac_bytes),
        "data": base64.b64encode(forward.mac_bytes).decode("ascii"),
    }


def _require_number(rxpk: dict, key: str) -> float:
    value = rxpk.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DecodeError(f"rxpk field {key!r} missing or non-numeric")
    return float(value)


def forward_from_rxpk(gateway_id: str, rxpk: dict) -> GatewayForward:
    """Rebuild the :class:`GatewayForward` a received ``rxpk`` describes.

    ``atime`` falls back to the wrapped ``tmst`` microsecond counter and
    ``fbhz`` to 0.0 when a non-SoftLoRa forwarder omits the extensions;
    a malformed ``data``/``datr`` field raises :class:`DecodeError`.
    """
    if not isinstance(rxpk, dict):
        raise DecodeError("rxpk entry is not a JSON object")
    data = rxpk.get("data")
    if not isinstance(data, str) or not data:
        raise DecodeError("rxpk field 'data' missing or empty")
    try:
        mac_bytes = base64.b64decode(data, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise DecodeError(f"rxpk field 'data' is not valid base64: {exc}") from None
    if not mac_bytes:
        raise DecodeError("rxpk field 'data' decodes to an empty payload")
    datr = rxpk.get("datr")
    if not isinstance(datr, str):
        raise DecodeError("rxpk field 'datr' missing")
    if "atime" in rxpk:
        arrival = _require_number(rxpk, "atime")
    else:
        arrival = _require_number(rxpk, "tmst") * 1e-6
    fb_hz = _require_number(rxpk, "fbhz") if "fbhz" in rxpk else 0.0
    return GatewayForward(
        gateway_id=gateway_id,
        mac_bytes=mac_bytes,
        arrival_time_s=arrival,
        fb_hz=fb_hz,
        snr_db=_require_number(rxpk, "lsnr") if "lsnr" in rxpk else 0.0,
        spreading_factor=parse_datr(datr),
    )


# -- datagram dataclasses ---------------------------------------------------------


@dataclass(frozen=True)
class PushData:
    """An uplink report: ``rxpk`` forwards and/or a ``stat`` beacon."""

    token: int
    gateway_eui: bytes
    rxpks: tuple[dict, ...] = ()
    stat: dict | None = None

    @property
    def gateway_id(self) -> str:
        """The forwarding gateway's repo-side identifier."""
        return gateway_id_from_eui(self.gateway_eui)

    def forwards(self) -> list[GatewayForward]:
        """Every rxpk decoded into a server forward (raises on malformed)."""
        gateway_id = self.gateway_id
        return [forward_from_rxpk(gateway_id, rxpk) for rxpk in self.rxpks]


@dataclass(frozen=True)
class PushAck:
    """Acknowledges a ``PUSH_DATA``, echoing its token."""

    token: int


@dataclass(frozen=True)
class PullData:
    """A gateway's downlink keep-alive: 'send my PULL_RESPs here'."""

    token: int
    gateway_eui: bytes

    @property
    def gateway_id(self) -> str:
        """The polling gateway's repo-side identifier."""
        return gateway_id_from_eui(self.gateway_eui)


@dataclass(frozen=True)
class PullAck:
    """Acknowledges a ``PULL_DATA``, echoing its token."""

    token: int


@dataclass(frozen=True)
class PullResp:
    """A downlink order: one ``txpk`` JSON object to put on the air."""

    token: int
    txpk: dict = field(default_factory=dict)

    def payload_bytes(self) -> bytes:
        """The raw downlink PHYPayload carried in ``txpk.data``."""
        data = self.txpk.get("data")
        if not isinstance(data, str) or not data:
            raise DecodeError("txpk field 'data' missing or empty")
        try:
            return base64.b64decode(data, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise DecodeError(f"txpk field 'data' is not valid base64: {exc}") from None


@dataclass(frozen=True)
class TxAck:
    """The gateway's outcome report for one ``PULL_RESP``."""

    token: int
    gateway_eui: bytes
    error: str = "NONE"


Datagram = PushData | PushAck | PullData | PullAck | PullResp | TxAck


def txpk_for_downlink(raw: bytes, spreading_factor: int, *, immediate: bool = True) -> dict:
    """A minimal ``txpk`` object ordering one downlink transmission."""
    return {
        "imme": immediate,
        "freq": DEFAULT_FREQ_MHZ,
        "rfch": 0,
        "powe": 14,
        "modu": "LORA",
        "datr": encode_datr(spreading_factor),
        "codr": "4/5",
        "ipol": True,
        "size": len(raw),
        "data": base64.b64encode(raw).decode("ascii"),
    }


def _check_token(token: int) -> int:
    if not 0 <= token <= 0xFFFF:
        raise ConfigurationError(f"token must fit 16 bits, got {token}")
    return token


def encode_datagram(message: Datagram) -> bytes:
    """Serialize one protocol message to its UDP wire form."""
    head = bytes([PROTOCOL_VERSION]) + _check_token(message.token).to_bytes(2, "big")
    if isinstance(message, PushData):
        body: dict = {}
        if message.rxpks:
            body["rxpk"] = list(message.rxpks)
        if message.stat is not None:
            body["stat"] = message.stat
        return (
            head
            + bytes([PacketType.PUSH_DATA])
            + message.gateway_eui
            + json.dumps(body, separators=(",", ":")).encode("utf-8")
        )
    if isinstance(message, PushAck):
        return head + bytes([PacketType.PUSH_ACK])
    if isinstance(message, PullData):
        return head + bytes([PacketType.PULL_DATA]) + message.gateway_eui
    if isinstance(message, PullAck):
        return head + bytes([PacketType.PULL_ACK])
    if isinstance(message, PullResp):
        return (
            head
            + bytes([PacketType.PULL_RESP])
            + json.dumps({"txpk": message.txpk}, separators=(",", ":")).encode("utf-8")
        )
    if isinstance(message, TxAck):
        body = {} if message.error == "NONE" else {"txpk_ack": {"error": message.error}}
        return (
            head
            + bytes([PacketType.TX_ACK])
            + message.gateway_eui
            + json.dumps(body, separators=(",", ":")).encode("utf-8")
        )
    raise ConfigurationError(f"cannot encode {type(message).__name__}")


def _parse_json_object(raw: bytes, context: str) -> dict:
    try:
        parsed = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DecodeError(f"{context} carries invalid JSON: {exc}") from None
    if not isinstance(parsed, dict):
        raise DecodeError(f"{context} JSON is not an object")
    return parsed


def _split_eui(data: bytes, context: str) -> tuple[bytes, bytes]:
    if len(data) < _MIN_LEN + _EUI_LEN:
        raise DecodeError(f"{context} truncated before the gateway EUI")
    return data[_MIN_LEN : _MIN_LEN + _EUI_LEN], data[_MIN_LEN + _EUI_LEN :]


def decode_datagram(data: bytes) -> Datagram:
    """Parse one UDP datagram; raises :class:`DecodeError` on malformed input.

    Every reject path raises (never crashes): the daemon counts the
    rejects and keeps serving, which the hypothesis suite pins by
    feeding arbitrary byte strings through this function.
    """
    if len(data) < _MIN_LEN:
        raise DecodeError(f"datagram too short: {len(data)} bytes")
    if data[0] != PROTOCOL_VERSION:
        raise DecodeError(f"unsupported protocol version {data[0]}")
    token = int.from_bytes(data[1:3], "big")
    try:
        ptype = PacketType(data[3])
    except ValueError:
        raise DecodeError(f"unknown packet identifier {data[3]:#04x}") from None
    if ptype is PacketType.PUSH_DATA:
        eui, body = _split_eui(data, "PUSH_DATA")
        parsed = _parse_json_object(body, "PUSH_DATA")
        rxpk = parsed.get("rxpk", [])
        if not isinstance(rxpk, list) or not all(isinstance(p, dict) for p in rxpk):
            raise DecodeError("PUSH_DATA 'rxpk' is not an array of objects")
        stat = parsed.get("stat")
        if stat is not None and not isinstance(stat, dict):
            raise DecodeError("PUSH_DATA 'stat' is not an object")
        return PushData(token=token, gateway_eui=eui, rxpks=tuple(rxpk), stat=stat)
    if ptype is PacketType.PUSH_ACK:
        return PushAck(token=token)
    if ptype is PacketType.PULL_DATA:
        eui, trailing = _split_eui(data, "PULL_DATA")
        if trailing:
            raise DecodeError("PULL_DATA carries trailing bytes")
        return PullData(token=token, gateway_eui=eui)
    if ptype is PacketType.PULL_ACK:
        return PullAck(token=token)
    if ptype is PacketType.PULL_RESP:
        parsed = _parse_json_object(data[_MIN_LEN:], "PULL_RESP")
        txpk = parsed.get("txpk")
        if not isinstance(txpk, dict):
            raise DecodeError("PULL_RESP 'txpk' missing or not an object")
        return PullResp(token=token, txpk=txpk)
    eui, body = _split_eui(data, "TX_ACK")
    error = "NONE"
    if body:
        parsed = _parse_json_object(body, "TX_ACK")
        ack = parsed.get("txpk_ack", {})
        if not isinstance(ack, dict):
            raise DecodeError("TX_ACK 'txpk_ack' is not an object")
        value = ack.get("error", "NONE")
        if not isinstance(value, str):
            raise DecodeError("TX_ACK 'error' is not a string")
        error = value
    return TxAck(token=token, gateway_eui=eui, error=error)
