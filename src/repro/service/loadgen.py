"""Fleet-driven load generator for the network-server daemon.

Replays a simulated fleet's gateway traffic over a *real* UDP socket so
the daemon can be exercised -- and benchmarked -- end to end:

1. :func:`build_plan` runs a scheduled fleet
   (:func:`~repro.sim.scenarios.build_fleet` +
   :class:`~repro.sim.runtime.FleetRuntime`) against a
   :class:`RecordingNetworkServer`, capturing every
   :meth:`~repro.server.NetworkServer.process_step` forward batch *and*
   the verdicts the in-process server issued for it -- the oracle a
   daemon fed the same stream must match bit for bit;
2. :meth:`LoadPlan.provision` re-registers the same devices and FB
   bootstrap profiles on a fresh server (the daemon's), so both judges
   start from identical state;
3. :func:`replay` ships the recorded batches through the Semtech UDP
   codec -- one ``PUSH_DATA`` per gateway per batch, closed by a
   ``stat`` beacon that marks the delivery-window boundary -- awaiting
   each ``PUSH_ACK`` so datagrams cannot reorder in flight.

The ``stat`` beacon is the load generator's stand-in for wall-clock
batching: it tells the daemon "this delivery window is complete", the
exact boundary :class:`~repro.sim.runtime.FleetRuntime` used in
process.  Against real forwarders the daemon falls back to its
``linger_s`` / ``max_hold_s`` timers instead.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.core.softlora import SoftLoRaGateway
from repro.errors import DecodeError
from repro.lorawan.gateway import CommodityGateway
from repro.lorawan.security import SessionKeys
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server.forwarding import GatewayForward
from repro.server.network_server import NetworkServer, ServerVerdict
from repro.service.semtech import (
    PullAck,
    PullData,
    PushAck,
    PushData,
    decode_datagram,
    encode_datagram,
    eui_from_gateway_id,
    rxpk_from_forward,
)
from repro.sim.network import LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import build_fleet
from repro.sim.traffic import PeriodicTrafficModel

#: Max rxpk entries packed into one PUSH_DATA (keeps datagrams small).
RXPK_CHUNK = 16


class RecordingNetworkServer(NetworkServer):
    """A :class:`NetworkServer` that remembers every forward batch it judged.

    The recorded ``batches`` are the exact inputs (and implicit batch
    boundaries) the simulation fed ``process_step``; replaying them into
    another identically-provisioned server must reproduce ``verdicts``
    exactly.
    """

    def __post_init__(self) -> None:
        """Initialize the wrapped server and the batch log."""
        super().__post_init__()
        self.batches: list[list[GatewayForward]] = []

    def process_step(self, forwards) -> list[ServerVerdict]:
        """Record the batch, then judge it normally."""
        batch = list(forwards)
        self.batches.append(batch)
        return super().process_step(batch)


@dataclass(frozen=True)
class LoadPlan:
    """A recorded fleet run, ready to replay against a daemon.

    Attributes:
        registrations: ``(dev_addr, keys)`` pairs to provision.
        profiles: ``(dev_addr, fb_estimates)`` offline FB bootstraps.
        batches: Forward batches in delivery-window order.
        oracle_verdicts: The in-process verdicts, serialized
            (:meth:`~repro.server.network_server.ServerVerdict.as_dict`),
            in issue order -- the golden stream.
        gateway_ids: Every gateway id appearing in the batches.
    """

    registrations: tuple[tuple[int, SessionKeys], ...]
    profiles: tuple[tuple[int, tuple[float, ...]], ...]
    batches: tuple[tuple[GatewayForward, ...], ...]
    oracle_verdicts: tuple[dict, ...]
    gateway_ids: tuple[str, ...]

    @property
    def n_forwards(self) -> int:
        """Total gateway forwards across every batch."""
        return sum(len(batch) for batch in self.batches)

    def provision(self, server: NetworkServer) -> None:
        """Give a fresh server the same devices and FB profiles.

        Profiles bootstrap only nodes whose store has no samples yet:
        when the server sits on a persistent FB store that survived a
        restart, the history already contains these estimates (plus
        everything learned since) and recording them again would shift
        the acceptance intervals.
        """
        for dev_addr, keys in self.registrations:
            server.register_device(dev_addr, keys)
        database = server.detector.database
        for dev_addr, estimates in self.profiles:
            if database.sample_count(f"{dev_addr:08x}") == 0:
                server.bootstrap_fb_profile(dev_addr, list(estimates))


def new_server(adr=None) -> NetworkServer:
    """A network server in the canonical daemon configuration.

    Args:
        adr: Optional :class:`~repro.server.adr.AdrController` to close
            the rate-adaptation loop over the daemon's PULL_RESP path.
    """
    return NetworkServer(adr=adr)


def build_plan(
    n_devices: int = 20,
    n_gateways: int = 2,
    seed: int = 7,
    period_s: float = 60.0,
    clean_s: float = 120.0,
    attack_s: float = 120.0,
    n_attacked: int = 3,
    attack_delay_s: float = 90.0,
) -> LoadPlan:
    """Run a scheduled fleet in process and record its forward stream.

    The run has a clean phase followed by a frame-delay-attack phase
    against ``n_attacked`` devices, so the replayed stream exercises
    every verdict path: accepted uplinks, gateway dedup, and FB-flagged
    replays.
    """
    from repro.attack import FrameDelayAttack, Replayer, StealthyJammer

    streams = RngStreams(seed)
    devices = build_fleet(n_devices=n_devices, streams=streams, ring_radius_m=300.0)
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(
            config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
            commodity=CommodityGateway(),
        ),
        gateway_position=Position(200.0, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    for extra in range(1, n_gateways):
        world.add_gateway(Position(-200.0 * extra, 0.0, 15.0))
    for device in devices:
        world.add_device(device)
    recording = RecordingNetworkServer()
    world.attach_server(recording)

    profile_rng = streams.stream("profiles")
    profiles = []
    for device in devices:
        estimates = tuple(
            device.fb_hz + float(e) for e in profile_rng.normal(0.0, 15.0, 5)
        )
        recording.bootstrap_fb_profile(device.dev_addr, list(estimates))
        profiles.append((device.dev_addr, estimates))

    runtime = FleetRuntime(
        world,
        PeriodicTrafficModel(
            period_s=period_s, jitter_s=period_s / 4.0, rng=streams.stream("traffic")
        ),
        window_s=2.0,
    )
    runtime.run(clean_s)
    if n_attacked > 0 and attack_s > 0:
        attack = FrameDelayAttack(
            jammer=StealthyJammer(),
            replayer=Replayer.single_usrp(streams.stream("replayer")),
        )
        targets = [d.name for d in devices[:n_attacked]]
        world.arm_attack(attack, targets, delay_s=attack_delay_s)
        runtime.run(attack_s)

    return LoadPlan(
        registrations=tuple((d.dev_addr, d.keys) for d in devices),
        profiles=tuple(profiles),
        batches=tuple(tuple(batch) for batch in recording.batches),
        oracle_verdicts=tuple(v.as_dict() for v in recording.verdicts),
        gateway_ids=tuple(site.gateway_id for site in world.sites),
    )


@dataclass
class ReplayStats:
    """What one :func:`replay` call put on the wire."""

    batches_sent: int = 0
    datagrams_sent: int = 0
    forwards_sent: int = 0
    acks_received: int = 0
    gateway_ids: tuple[str, ...] = ()


class _ClientProtocol(asyncio.DatagramProtocol):
    """Collects daemon responses (acks) into a queue."""

    def __init__(self):
        """Start with an empty inbox."""
        self.inbox: asyncio.Queue = asyncio.Queue()

    def datagram_received(self, data: bytes, addr) -> None:
        """Decode and enqueue one daemon response; drop undecodable noise."""
        try:
            self.inbox.put_nowait(decode_datagram(data))
        except DecodeError:
            pass


async def replay(
    plan: LoadPlan,
    host: str,
    port: int,
    ack_timeout_s: float = 5.0,
) -> ReplayStats:
    """Ship a plan's batches to a daemon over UDP; returns wire stats.

    Every ``PUSH_DATA`` is awaited for its ``PUSH_ACK`` before the next
    datagram goes out, so the daemon observes batches in plan order even
    though UDP itself promises nothing.  Each batch is closed with a
    ``stat``-bearing beacon marking the delivery-window boundary.
    """
    loop = asyncio.get_running_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        _ClientProtocol, remote_addr=(host, port)
    )
    stats = ReplayStats(gateway_ids=plan.gateway_ids)
    token = 0
    try:
        for gateway_id in plan.gateway_ids:
            eui = eui_from_gateway_id(gateway_id)
            transport.sendto(encode_datagram(PullData(token=token, gateway_eui=eui)))
            stats.datagrams_sent += 1
            await _await_ack(protocol, token, ack_timeout_s, want=PullAck)
            stats.acks_received += 1
            token = (token + 1) % 65536
        tick_eui = eui_from_gateway_id(plan.gateway_ids[0])
        for batch in plan.batches:
            by_gateway: dict[str, list] = {}
            for forward in batch:
                by_gateway.setdefault(forward.gateway_id, []).append(forward)
            for gateway_id, forwards in by_gateway.items():
                eui = eui_from_gateway_id(gateway_id)
                for start in range(0, len(forwards), RXPK_CHUNK):
                    chunk = forwards[start : start + RXPK_CHUNK]
                    push = PushData(
                        token=token,
                        gateway_eui=eui,
                        rxpks=tuple(rxpk_from_forward(f) for f in chunk),
                    )
                    transport.sendto(encode_datagram(push))
                    stats.datagrams_sent += 1
                    stats.forwards_sent += len(chunk)
                    await _await_ack(protocol, token, ack_timeout_s)
                    stats.acks_received += 1
                    token = (token + 1) % 65536
            beacon = PushData(
                token=token,
                gateway_eui=tick_eui,
                rxpks=(),
                stat={"rxnb": len(batch)},
            )
            transport.sendto(encode_datagram(beacon))
            stats.datagrams_sent += 1
            await _await_ack(protocol, token, ack_timeout_s)
            stats.acks_received += 1
            token = (token + 1) % 65536
            stats.batches_sent += 1
    finally:
        transport.close()
    return stats


async def _await_ack(
    protocol: _ClientProtocol, token: int, timeout_s: float, want=PushAck
) -> None:
    """Wait for the token-matching ack, skipping unrelated daemon traffic."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        remaining = deadline - asyncio.get_running_loop().time()
        if remaining <= 0:
            raise TimeoutError(f"no ack within {timeout_s} s (token {token})")
        message = await asyncio.wait_for(protocol.inbox.get(), remaining)
        if isinstance(message, want) and message.token == token:
            return
