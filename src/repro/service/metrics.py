"""Tiny dependency-free Prometheus metrics registry.

The daemon exposes its operational counters on ``GET /metrics`` in the
Prometheus text exposition format.  Only the two instrument kinds the
service needs are implemented -- monotonic counters and set-on-update
gauges, both with optional labels -- rendered deterministically (metrics
in registration order, label sets in sorted order) so tests can assert
on exact scrape output.  The full metric-name table lives in
``docs/service.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: One label set, normalized to a sorted tuple of (name, value) pairs.
LabelSet = tuple[tuple[str, str], ...]


def _normalize(labels: dict[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


@dataclass
class Metric:
    """One named instrument: a counter or a gauge, per label set."""

    name: str
    help: str
    kind: str
    values: dict[LabelSet, float] = field(default_factory=dict)

    def inc(self, amount: float = 1.0, labels: dict[str, str] | None = None) -> None:
        """Add to a counter (or shift a gauge) for one label set."""
        key = _normalize(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def set(self, value: float, labels: dict[str, str] | None = None) -> None:
        """Set a gauge's current value for one label set."""
        self.values[_normalize(labels)] = float(value)

    def get(self, labels: dict[str, str] | None = None) -> float:
        """Current value for one label set (0.0 when never touched)."""
        return self.values.get(_normalize(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set (the scrape-side aggregate)."""
        return sum(self.values.values())

    def render(self) -> str:
        """This metric's lines of the text exposition format."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        values = self.values or {(): 0.0}
        for labels in sorted(values):
            lines.append(f"{self.name}{_render_labels(labels)} {_format_value(values[labels])}")
        return "\n".join(lines)


@dataclass
class MetricsRegistry:
    """Ordered collection of metrics behind one ``/metrics`` scrape."""

    _metrics: dict[str, Metric] = field(default_factory=dict)

    def counter(self, name: str, help_text: str) -> Metric:
        """Register (or fetch) a monotonic counter."""
        return self._register(name, help_text, "counter")

    def gauge(self, name: str, help_text: str) -> Metric:
        """Register (or fetch) a gauge."""
        return self._register(name, help_text, "gauge")

    def _register(self, name: str, help_text: str, kind: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = Metric(name=name, help=help_text, kind=kind)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Metric:
        """Look up a registered metric by name."""
        try:
            return self._metrics[name]
        except KeyError:
            raise ConfigurationError(f"unknown metric {name!r}") from None

    def render(self) -> str:
        """The whole registry as one Prometheus text scrape."""
        return "\n".join(m.render() for m in self._metrics.values()) + "\n"
