"""Configuration for the network-server daemon.

One :class:`ServiceConfig` travels from the CLI (``python -m
repro.service``) through the daemon into the control plane, so every
operational knob -- bind addresses, ingest bounds, batching cadence --
is named, validated, and documented in one place (the full reference
table lives in ``docs/service.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of the :class:`~repro.service.daemon.NetworkServerDaemon`.

    Attributes:
        udp_host: Bind address of the Semtech UDP front end.
        udp_port: UDP port gateways push to (0 picks a free port; the
            bound port is exposed as ``daemon.udp_port`` after start).
        http_host: Bind address of the REST control plane.
        http_port: Control-plane TCP port (0 picks a free port).
        queue_limit: Bounded ingest depth in *forwards*: a PUSH_DATA
            whose rxpks would push the queue past this limit has those
            forwards dropped (and counted) instead of growing memory
            without bound -- backpressure by shedding, never by
            blocking the UDP receive path.
        linger_s: Idle flush timeout.  When the ingest stream goes quiet
            for this long the worker resolves whatever is pending rather
            than waiting for a window tick; copies of one transmission
            arrive within microseconds of each other, so a few
            milliseconds of linger keeps cross-gateway copies grouped.
        max_hold_s: Hard wall-clock bound on how long any forward may sit
            unresolved, whatever the traffic pattern.  This is the
            daemon-side analogue of the dedup airtime window: batches
            always close within it.
        verdict_page_limit: Hard cap on one ``GET /verdicts`` page.
        alert_queue_limit: Per-subscriber buffered alerts before the
            slowest ``/alerts`` client starts losing events (each loss is
            counted, never blocks the worker).
    """

    udp_host: str = "0.0.0.0"
    udp_port: int = 1700
    http_host: str = "0.0.0.0"
    http_port: int = 8080
    queue_limit: int = 10_000
    linger_s: float = 0.05
    max_hold_s: float = 2.0
    verdict_page_limit: int = 500
    alert_queue_limit: int = 256

    def __post_init__(self) -> None:
        """Validate ports, bounds, and timers."""
        for name, port in (("udp_port", self.udp_port), ("http_port", self.http_port)):
            if not 0 <= port <= 0xFFFF:
                raise ConfigurationError(f"{name} must be in 0..65535, got {port}")
        if self.queue_limit < 1:
            raise ConfigurationError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.linger_s <= 0:
            raise ConfigurationError(f"linger_s must be positive, got {self.linger_s}")
        if self.max_hold_s < self.linger_s:
            raise ConfigurationError(
                f"max_hold_s {self.max_hold_s} must be >= linger_s {self.linger_s}"
            )
        if self.verdict_page_limit < 1:
            raise ConfigurationError(
                f"verdict_page_limit must be >= 1, got {self.verdict_page_limit}"
            )
        if self.alert_queue_limit < 1:
            raise ConfigurationError(
                f"alert_queue_limit must be >= 1, got {self.alert_queue_limit}"
            )
