"""Stdlib-asyncio REST control plane for the network-server daemon.

A deliberately small HTTP/1.1 server (``asyncio.start_server``; no web
framework, the container ships none) exposing the read-only operator
surface of :class:`~repro.service.daemon.NetworkServerDaemon`:

* ``GET /healthz`` -- liveness, uptime, queue depth, gateway sessions;
* ``GET /devices/{addr}`` -- one device's FB profile, ADR state, and
  last verdict (``addr`` in hex, e.g. ``26000000``);
* ``GET /verdicts?offset=0&limit=100`` -- the verdict log, paged;
* ``GET /metrics`` -- Prometheus text exposition;
* ``GET /alerts`` -- a ``text/event-stream`` that emits one SSE event
  per ``attack_detected`` verdict, as it happens.

Every JSON body serializes floats via :func:`json.dumps` (repr-exact),
so the control plane reports the very numbers the server computed.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.daemon import NetworkServerDaemon

_MAX_REQUEST_LINE = 8192


class _HttpError(Exception):
    """An error that maps directly onto an HTTP error response."""

    def __init__(self, status: int, reason: str, detail: str):
        """Capture the HTTP status line pieces and a JSON detail string."""
        super().__init__(detail)
        self.status = status
        self.reason = reason
        self.detail = detail


class ControlPlane:
    """The daemon's HTTP listener; one instance per daemon."""

    def __init__(self, daemon: "NetworkServerDaemon"):
        """Bind the control plane to its daemon (listen on :meth:`start`)."""
        self.daemon = daemon
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``http_port=0`` after start)."""
        if self._server is None:
            raise ConfigurationError("control plane not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Start listening on the configured host/port."""
        config = self.daemon.config
        self._server = await asyncio.start_server(
            self._handle, host=config.http_host, port=config.http_port
        )

    async def stop(self) -> None:
        """Stop listening and close open connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            method, path = await self._read_request(reader)
            await self._route(method, path, writer)
        except _HttpError as error:
            self._write_json(
                writer, error.status, error.reason, {"error": error.detail}
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Daemon shutdown with the connection (e.g. an SSE stream)
            # still open: close quietly instead of logging a traceback.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> tuple[str, str]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HttpError(431, "Request Header Fields Too Large", "request line too long")
        if len(request_line) > _MAX_REQUEST_LINE:
            raise _HttpError(431, "Request Header Fields Too Large", "request line too long")
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) != 3:
            raise _HttpError(400, "Bad Request", "malformed request line")
        # Drain headers; the control plane is GET-only and ignores them.
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return parts[0].upper(), parts[1]

    async def _route(self, method: str, target: str, writer: asyncio.StreamWriter) -> None:
        if method != "GET":
            raise _HttpError(405, "Method Not Allowed", f"{method} not supported")
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        if path == "/healthz":
            self._write_json(writer, 200, "OK", self.daemon.health())
        elif path == "/metrics":
            body = self.daemon.metrics.render().encode()
            self._write_raw(writer, 200, "OK", "text/plain; version=0.0.4", body)
        elif path == "/verdicts":
            self._write_json(writer, 200, "OK", self._verdicts(parse_qs(url.query)))
        elif path.startswith("/devices/"):
            self._write_json(writer, 200, "OK", self._device(path[len("/devices/") :]))
        elif path == "/alerts":
            await self._stream_alerts(writer)
        else:
            raise _HttpError(404, "Not Found", f"no route for {path}")

    def _device(self, addr_text: str) -> dict:
        try:
            dev_addr = int(addr_text, 16)
        except ValueError:
            raise _HttpError(400, "Bad Request", f"device address {addr_text!r} is not hex")
        state = self.daemon.server.device_state(dev_addr)
        if state is None:
            raise _HttpError(404, "Not Found", f"device {addr_text} not registered")
        return state

    def _verdicts(self, query: dict[str, list[str]]) -> dict:
        offset = _query_int(query, "offset", 0)
        page_cap = self.daemon.config.verdict_page_limit
        limit = min(_query_int(query, "limit", page_cap), page_cap)
        if offset < 0 or limit < 0:
            raise _HttpError(400, "Bad Request", "offset and limit must be >= 0")
        verdicts = self.daemon.server.verdicts
        page = verdicts[offset : offset + limit]
        return {
            "total": len(verdicts),
            "offset": offset,
            "limit": limit,
            "verdicts": [v.as_dict() for v in page],
        }

    async def _stream_alerts(self, writer: asyncio.StreamWriter) -> None:
        queue = self.daemon.alerts.subscribe()
        self.daemon.metrics.get("repro_service_alert_subscribers").set(
            self.daemon.alerts.subscriber_count
        )
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
                b": stream open\n\n"
            )
            await writer.drain()
            while True:
                alert = await queue.get()
                payload = json.dumps(alert, separators=(",", ":"))
                writer.write(f"event: attack_detected\ndata: {payload}\n\n".encode())
                await writer.drain()
        finally:
            self.daemon.alerts.unsubscribe(queue)
            self.daemon.metrics.get("repro_service_alert_subscribers").set(
                self.daemon.alerts.subscriber_count
            )

    def _write_json(
        self, writer: asyncio.StreamWriter, status: int, reason: str, body: dict
    ) -> None:
        raw = json.dumps(body, separators=(",", ":")).encode()
        self._write_raw(writer, status, reason, "application/json", raw)

    def _write_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        reason: str,
        content_type: str,
        body: bytes,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)


def _query_int(query: dict[str, list[str]], name: str, default: int) -> int:
    values = query.get(name)
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError:
        raise _HttpError(400, "Bad Request", f"query param {name!r} must be an integer")
