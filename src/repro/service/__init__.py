"""The network-server daemon layer: UDP ingest, REST control plane, loadgen.

This package turns the in-process :class:`~repro.server.NetworkServer`
into a deployable service:

* :mod:`repro.service.semtech` -- the Semtech UDP packet-forwarder
  codec (PUSH_DATA/PUSH_ACK/PULL_DATA/PULL_RESP/TX_ACK);
* :mod:`repro.service.daemon` -- the asyncio daemon: bounded ingest,
  dedup-window batching, alerts, ADR downlink dispatch;
* :mod:`repro.service.rest` -- the stdlib HTTP control plane
  (``/healthz``, ``/devices/{addr}``, ``/verdicts``, ``/metrics``,
  ``/alerts`` SSE);
* :mod:`repro.service.metrics` -- the dependency-free Prometheus
  registry behind ``/metrics``;
* :mod:`repro.service.loadgen` -- a fleet-replay load generator with a
  recorded in-process oracle for bit-identical verdict checks;
* :mod:`repro.service.config` -- the daemon's operational knobs.

Operator documentation lives in ``docs/service.md``; start a daemon
from the command line with ``python -m repro.service``.
"""

from repro.service.config import ServiceConfig
from repro.service.daemon import AlertBroker, GatewaySession, NetworkServerDaemon
from repro.service.loadgen import (
    LoadPlan,
    RecordingNetworkServer,
    ReplayStats,
    build_plan,
    new_server,
    replay,
)
from repro.service.metrics import Metric, MetricsRegistry
from repro.service.rest import ControlPlane

__all__ = [
    "AlertBroker",
    "ControlPlane",
    "GatewaySession",
    "LoadPlan",
    "Metric",
    "MetricsRegistry",
    "NetworkServerDaemon",
    "RecordingNetworkServer",
    "ReplayStats",
    "ServiceConfig",
    "build_plan",
    "new_server",
    "replay",
]
