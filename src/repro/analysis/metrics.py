"""Evaluation metrics used across the reproduction.

The central one is the paper's **timing error upper bound** (Sec. 6.2):
signal timestamping resolution is limited by the ADC sampling grid; when
the true onset falls between two consecutive samples its exact position is
unknown, so the paper reports the worst-case error consistent with the
grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def timing_error_s(detected_time_s: float, true_time_s: float) -> float:
    """Plain absolute timing error."""
    return abs(detected_time_s - true_time_s)


def timing_error_upper_bound_s(
    detected_time_s: float, true_time_s: float, sample_period_s: float
) -> float:
    """The paper's upper-bound metric for sampled onset detection.

    The detector reports a sample instant; the true onset is only known to
    lie inside one sampling interval.  The upper bound is the largest
    distance from the detected instant to any point of the interval
    ``[floor(t_true), floor(t_true) + Ts]``.
    """
    if sample_period_s <= 0:
        raise ConfigurationError(f"sample period must be positive, got {sample_period_s}")
    interval_start = math.floor(true_time_s / sample_period_s) * sample_period_s
    interval_end = interval_start + sample_period_s
    return max(abs(detected_time_s - interval_start), abs(detected_time_s - interval_end))


def fb_error_hz(estimated_fb_hz: float, true_fb_hz: float) -> float:
    """Absolute frequency-bias estimation error."""
    return abs(estimated_fb_hz - true_fb_hz)


@dataclass(frozen=True)
class DetectionStats:
    """Binary detection quality over a labelled evaluation set."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
        )

    @property
    def detection_rate(self) -> float:
        """True positive rate (recall)."""
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else float("nan")

    @property
    def false_alarm_rate(self) -> float:
        """False positive rate."""
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else float("nan")

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else float("nan")

    @property
    def accuracy(self) -> float:
        if not self.total:
            return float("nan")
        return (self.true_positives + self.true_negatives) / self.total


def detection_stats(labels: list[bool], predictions: list[bool]) -> DetectionStats:
    """Tally detection statistics; ``labels[i]`` is True for real attacks."""
    if len(labels) != len(predictions):
        raise ConfigurationError(
            f"{len(labels)} labels do not match {len(predictions)} predictions"
        )
    tp = fp = tn = fn = 0
    for label, prediction in zip(labels, predictions):
        if label and prediction:
            tp += 1
        elif label and not prediction:
            fn += 1
        elif not label and prediction:
            fp += 1
        else:
            tn += 1
    return DetectionStats(
        true_positives=tp, false_positives=fp, true_negatives=tn, false_negatives=fn
    )
