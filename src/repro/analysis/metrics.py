"""Evaluation metrics used across the reproduction.

The central one is the paper's **timing error upper bound** (Sec. 6.2):
signal timestamping resolution is limited by the ADC sampling grid; when
the true onset falls between two consecutive samples its exact position is
unknown, so the paper reports the worst-case error consistent with the
grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConfigurationError


def timing_error_s(detected_time_s: float, true_time_s: float) -> float:
    """Plain absolute timing error."""
    return abs(detected_time_s - true_time_s)


def timing_error_upper_bound_s(
    detected_time_s: float, true_time_s: float, sample_period_s: float
) -> float:
    """The paper's upper-bound metric for sampled onset detection.

    The detector reports a sample instant; the true onset is only known to
    lie inside one sampling interval.  The upper bound is the largest
    distance from the detected instant to any point of the interval
    ``[floor(t_true), floor(t_true) + Ts]``.
    """
    if sample_period_s <= 0:
        raise ConfigurationError(f"sample period must be positive, got {sample_period_s}")
    interval_start = math.floor(true_time_s / sample_period_s) * sample_period_s
    interval_end = interval_start + sample_period_s
    return max(abs(detected_time_s - interval_start), abs(detected_time_s - interval_end))


def fb_error_hz(estimated_fb_hz: float, true_fb_hz: float) -> float:
    """Absolute frequency-bias estimation error."""
    return abs(estimated_fb_hz - true_fb_hz)


@dataclass(frozen=True)
class DetectionStats:
    """Binary detection quality over a labelled evaluation set."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
        )

    @property
    def detection_rate(self) -> float:
        """True positive rate (recall)."""
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else float("nan")

    @property
    def false_alarm_rate(self) -> float:
        """False positive rate."""
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else float("nan")

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else float("nan")

    @property
    def accuracy(self) -> float:
        if not self.total:
            return float("nan")
        return (self.true_positives + self.true_negatives) / self.total


@dataclass(frozen=True)
class ContentionStats:
    """Channel-contention accounting for one event-driven runtime phase.

    ``attempts`` counts frames actually put on the air (duty-cycle
    deferrals never transmit, so they are not attempts); the other
    counters partition those attempts by fate.  Replays are the
    *attacker's* frames and count separately from genuine deliveries.
    """

    attempts: int
    delivered: int
    collided: int
    lost_low_snr: int
    suppressed: int = 0
    replays_delivered: int = 0

    @classmethod
    def from_kind_counts(cls, attempts: int, counts: Mapping[str, int]) -> "ContentionStats":
        """Build the partition from a one-pass tally of event-kind values.

        ``counts`` maps :class:`~repro.sim.network.EventKind` *values*
        (the wire strings, so this module stays import-light) to
        occurrence counts -- typically a ``collections.Counter`` built
        in a single scan over a phase's events.  Missing kinds count as
        zero.
        """
        return cls(
            attempts=attempts,
            delivered=int(counts.get("delivered", 0)),
            collided=int(counts.get("lost_collision", 0)),
            lost_low_snr=int(counts.get("lost_low_snr", 0)),
            suppressed=int(counts.get("suppressed_by_jamming", 0)),
            replays_delivered=int(counts.get("replay_delivered", 0)),
        )

    def merge(self, other: "ContentionStats") -> "ContentionStats":
        """Field-wise sum: combine the partitions of consecutive phases."""
        return ContentionStats(
            attempts=self.attempts + other.attempts,
            delivered=self.delivered + other.delivered,
            collided=self.collided + other.collided,
            lost_low_snr=self.lost_low_snr + other.lost_low_snr,
            suppressed=self.suppressed + other.suppressed,
            replays_delivered=self.replays_delivered + other.replays_delivered,
        )

    @property
    def delivery_rate(self) -> float:
        """Fraction of transmitted frames that resolved as genuine deliveries."""
        return self.delivered / self.attempts if self.attempts else float("nan")

    @property
    def collision_rate(self) -> float:
        """Fraction of transmitted frames lost to co-SF collisions."""
        return self.collided / self.attempts if self.attempts else float("nan")

    def goodput_frames_per_s(self, duration_s: float) -> float:
        """Genuine deliveries per second of simulated time."""
        return goodput_frames_per_s(self.delivered, duration_s)


def goodput_frames_per_s(n_delivered: int, duration_s: float) -> float:
    """Application-level throughput: frames that made it, per second."""
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s}")
    return n_delivered / duration_s


def detection_latency_s(armed_at_s: float, detection_times_s: Iterable[float]) -> float:
    """Delay from arming an attack to its first detection.

    ``detection_times_s`` are the instants the defense flagged a replay;
    detections predating the arming instant are ignored (they belong to
    an earlier attack).  Returns ``inf`` when the attack was never
    detected -- a finite mean over cells therefore only aggregates
    detected attacks.
    """
    after = [t for t in detection_times_s if t >= armed_at_s]
    if not after:
        return float("inf")
    return min(after) - armed_at_s


def detection_stats(labels: list[bool], predictions: list[bool]) -> DetectionStats:
    """Tally detection statistics; ``labels[i]`` is True for real attacks."""
    if len(labels) != len(predictions):
        raise ConfigurationError(
            f"{len(labels)} labels do not match {len(predictions)} predictions"
        )
    tp = fp = tn = fn = 0
    for label, prediction in zip(labels, predictions):
        if label and prediction:
            tp += 1
        elif label and not prediction:
            fn += 1
        elif not label and prediction:
            fp += 1
        else:
            tn += 1
    return DetectionStats(
        true_positives=tp, false_positives=fp, true_negatives=tn, false_negatives=fn
    )
