"""Metrics and report formatting shared by tests, benches, and examples."""

from repro.analysis.metrics import (
    ContentionStats,
    DetectionStats,
    detection_latency_s,
    detection_stats,
    fb_error_hz,
    goodput_frames_per_s,
    timing_error_s,
    timing_error_upper_bound_s,
)
from repro.analysis.report import format_series, format_table

__all__ = [
    "ContentionStats",
    "DetectionStats",
    "detection_latency_s",
    "detection_stats",
    "fb_error_hz",
    "format_series",
    "format_table",
    "goodput_frames_per_s",
    "timing_error_s",
    "timing_error_upper_bound_s",
]
