"""Metrics and report formatting shared by tests, benches, and examples."""

from repro.analysis.metrics import (
    DetectionStats,
    detection_stats,
    fb_error_hz,
    timing_error_s,
    timing_error_upper_bound_s,
)
from repro.analysis.report import format_series, format_table

__all__ = [
    "DetectionStats",
    "detection_stats",
    "fb_error_hz",
    "format_series",
    "format_table",
    "timing_error_s",
    "timing_error_upper_bound_s",
]
