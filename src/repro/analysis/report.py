"""Plain-text table and series formatting for benches and EXPERIMENTS.md.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ConfigurationError


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    rendered = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells but the table has {len(headers)} columns"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[Any, Any]],
    title: str = "",
) -> str:
    """Render an (x, y) series as a two-column table (one per figure axis)."""
    return format_table([x_label, y_label], [list(p) for p in points], title=title)
