"""Experiment drivers: one per paper table / figure.

Each module exposes a ``run_*`` function returning a structured result
object with a ``format()`` method that prints the same rows/series the
paper reports.  Benchmarks time these drivers and assert the paper's
qualitative shape; EXPERIMENTS.md records paper-vs-measured values.

Every driver declares its capture conditions as
:class:`repro.experiments.common.ScenarioSpec` sweeps executed by the
shared :func:`repro.experiments.common.run_sweep` runner -- no driver
hand-rolls a synthesize-and-sweep loop.

Index (see DESIGN.md Sec. 4 for the full mapping):

=========  ==========================================================
T1         ``table1_jamming.run_table1``
T2         ``table2_onset.run_table2``
Fig 6-8,11 ``waveforms.run_*``
Fig 9      ``fig09_detectors.run_fig09``
Fig 10     ``fig10_onset_snr.run_fig10``
Fig 12     ``fig12_fb_pipeline.run_fig12``
Fig 13     ``fig13_fleet_fb.run_fig13``
Fig 14     ``fig14_ls_snr.run_fig14``
Fig 15     ``fig15_building.run_fig15``
Fig 16     ``fig16_txpower.run_fig16``
Sec 8.2    ``campus.run_campus``
Sec 3.2    ``overhead.run_overhead``
Sec 8.1.1  ``attack_e2e.run_attack_e2e``
Sec 7.2    ``detection.run_detection``
(beyond)   ``fleet_scale.run_fleet_scale`` -- gateways × devices sweep
           over the multi-gateway network-server layer
(beyond)   ``adr_convergence.run_adr_convergence`` -- closed-loop ADR
           over multi-SF fleets: convergence, goodput payoff, and
           detection quality before/after the retune
=========  ==========================================================
"""
