"""Sec. 8.1.1: the full frame delay attack, end to end, in the building.

End device in Section A / 3rd floor; gateway in Section C / 6th floor;
the link needs SF >= 8 (SF7 sits below its demodulation floor).  USRP
eavesdropper next to the device, USRP replayer next to the gateway.  The
driver demonstrates each claim:

1. the jamming onset falls in the stealthy window -> the gateway silently
   drops the original frame,
2. the jamming signal is weak at the eavesdropper after crossing the
   building, so its recording replays cleanly,
3. the replayed frame passes MIC and frame-counter checks at the
   commodity gateway (crypto does not help),
4. every timestamp reconstructed from the replayed frame is shifted by τ,
5. keeping the replayer's power low (<= 7 dBm in the paper) the replay
   reaches the gateway yet stays undetectable by more distant observers,
6. the SoftLoRa FB check flags the replay.

On top of the per-frame claims, the driver replays the scenario on the
event-driven :class:`~repro.sim.runtime.FleetRuntime`: the device keeps
reporting on its periodic schedule, the attack arms mid-run, and the
measured **detection latency** -- arming to the first flagged replay --
lands in :attr:`AttackE2EResult.detection_latency_s`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import detection_latency_s
from repro.analysis.report import format_table
from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import JammingOutcome, StealthyJammer
from repro.attack.replayer import Replayer
from repro.clock.clocks import DriftingClock
from repro.clock.oscillator import Oscillator
from repro.constants import SX1276_DEMOD_SNR_FLOOR_DB
from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.experiments.common import SweepPoint, run_sweep
from repro.lorawan.device import EndDevice
from repro.lorawan.gateway import CommodityGateway
from repro.lorawan.security import SessionKeys
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import noise_floor_dbm
from repro.radio.geometry import Position
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import build_pinned_link_world
from repro.sim.traffic import PeriodicTrafficModel


@dataclass
class AttackE2EResult:
    link_snr_db: float
    min_viable_sf: int
    jam_outcome: JammingOutcome
    commodity_accepted_replay: bool
    timestamp_shift_s: float
    injected_delay_s: float
    softlora_status: SoftLoRaStatus
    replay_rx_power_dbm: float
    replay_within_linear_range: bool
    replay_snr_at_monitor_db: float
    monitor_can_hear_replay: bool
    replay_power_dbm: float
    detection_latency_s: float

    def format(self) -> str:
        return format_table(
            ["claim", "paper", "measured"],
            [
                ["min SF for the A3F->C6F link", 8, self.min_viable_sf],
                ["jamming outcome", "silent drop", self.jam_outcome.value],
                [
                    "commodity gateway accepts replay",
                    "yes",
                    "yes" if self.commodity_accepted_replay else "no",
                ],
                [
                    "timestamp shift == injected τ (s)",
                    self.injected_delay_s,
                    round(self.timestamp_shift_s, 3),
                ],
                ["replay power (dBm)", "<= 7", self.replay_power_dbm],
                [
                    "replay RX power in gateway linear range",
                    "yes (no anomaly)",
                    "yes" if self.replay_within_linear_range else "no",
                ],
                [
                    "distant observers hear the replay",
                    "no",
                    "yes" if self.monitor_can_hear_replay else "no",
                ],
                ["SoftLoRa verdict", "replay detected", self.softlora_status.value],
                [
                    "detection latency after arming (s)",
                    "-",
                    round(self.detection_latency_s, 1),
                ],
            ],
            title="Sec. 8.1.1 -- full frame delay attack in the building",
        )


def min_viable_spreading_factor(link_snr_db: float) -> int:
    """Smallest LoRaWAN SF (7..12) whose demodulation floor the link clears."""
    for sf in range(7, 13):
        if link_snr_db >= SX1276_DEMOD_SNR_FLOOR_DB[sf]:
            return sf
    raise ValueError(f"link SNR {link_snr_db} dB is below even SF12's floor")


def run_attack_e2e(
    link_snr_db: float = -9.0,
    injected_delay_s: float = 60.0,
    replay_power_dbm: float = 7.0,
    replayer_to_gateway_loss_db: float = 31.6,
    monitor_loss_db: float = 150.0,
    sample_rate_hz: float = 0.5e6,
    seed: int = 81,
) -> AttackE2EResult:
    """Execute the complete Sec. 8.1.1 scenario.

    ``link_snr_db`` defaults to −9 dB: below SF7's −7.5 dB floor and
    above SF8's −10 dB floor, reproducing the paper's "minimum spreading
    factor of 8" observation for the cross-building link.

    The driver is a single-point, spec-less sweep: the scenario is
    frame-level end to end (no captures synthesized), so the sweep
    declares one point whose measurement executes the whole attack.
    """

    def measure(point, trial, capture, prng):
        return _execute_scenario(
            link_snr_db=link_snr_db,
            injected_delay_s=injected_delay_s,
            replay_power_dbm=replay_power_dbm,
            replayer_to_gateway_loss_db=replayer_to_gateway_loss_db,
            monitor_loss_db=monitor_loss_db,
            sample_rate_hz=sample_rate_hz,
            seed=seed,
        )

    return run_sweep([SweepPoint(key="sec811")], measure).first("sec811")


def _measure_detection_latency(
    streams: RngStreams,
    spreading_factor: int,
    link_snr_db: float,
    injected_delay_s: float,
    sample_rate_hz: float,
    period_s: float = 120.0,
    clean_periods: int = 3,
    attack_periods: int = 3,
) -> float:
    """Sec. 8.1.1 on the event-driven runtime: arming -> first detection.

    The cross-building link is pinned at the measured SNR
    (:func:`build_pinned_link_world`); the device reports every
    ``period_s`` on the runtime's traffic schedule, the attack arms
    after the clean phase, and the latency is the gap to the first
    replay the FB check flags.
    """
    world, device = build_pinned_link_world(
        streams,
        spreading_factor,
        link_snr_db,
        dev_addr=0x26011BDB,
        gateway_position=Position(190.0, 0.0, 18.0),
        sample_rate_hz=sample_rate_hz,
    )
    world.gateway.bootstrap_fb_profile(
        device.dev_addr,
        [device.fb_hz + float(e) for e in streams.stream("runtime-profile").normal(0, 15, 5)],
    )
    runtime = FleetRuntime(
        world,
        PeriodicTrafficModel(
            period_s=period_s, jitter_s=10.0, rng=streams.stream("runtime-traffic")
        ),
    )
    runtime.run(clean_periods * period_s)
    armed_at_s = world.simulator.now_s
    world.arm_attack(
        FrameDelayAttack(
            jammer=StealthyJammer(),
            replayer=Replayer.dual_usrp(streams.stream("runtime-replayer")),
            rng=streams.stream("runtime-attack"),
        ),
        [device.name],
        delay_s=injected_delay_s,
    )
    report = runtime.run(attack_periods * period_s)
    return detection_latency_s(armed_at_s, report.replay_detection_times_s)


def _execute_scenario(
    link_snr_db: float,
    injected_delay_s: float,
    replay_power_dbm: float,
    replayer_to_gateway_loss_db: float,
    monitor_loss_db: float,
    sample_rate_hz: float,
    seed: int,
) -> AttackE2EResult:
    """The Sec. 8.1.1 scenario body (one sweep-point measurement)."""
    streams = RngStreams(seed)
    sf = min_viable_spreading_factor(link_snr_db)
    config = ChirpConfig(spreading_factor=sf, sample_rate_hz=sample_rate_hz)

    dev_addr = 0x26011BDA
    keys = SessionKeys.derive_for_test(dev_addr)
    device = EndDevice(
        name="end-device",
        dev_addr=dev_addr,
        keys=keys,
        radio_oscillator=Oscillator.lora_end_device(streams.stream("osc")),
        clock=DriftingClock(drift_ppm=40.0),
        spreading_factor=sf,
        rng=streams.stream("device"),
    )
    commodity = CommodityGateway()
    commodity.register_device(dev_addr, keys)
    gateway = SoftLoRaGateway(
        config=config,
        commodity=commodity,
        replay_detector=ReplayDetector(database=FbDatabase()),
    )
    gateway.bootstrap_fb_profile(
        dev_addr, [device.fb_hz + float(e) for e in streams.stream("profile").normal(0, 15, 5)]
    )

    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.dual_usrp(streams.stream("replayer")),
        rng=streams.stream("attack"),
    )

    # One sensed reading, then the attacked uplink.
    t0 = 1000.0
    device.take_reading(215.0, t0)
    uplink = device.transmit(t0 + 3.0)
    outcome = attack.execute(uplink, delay_s=injected_delay_s)

    # The commodity gateway view: the replayed frame passes MIC + counter.
    plain_commodity = CommodityGateway()
    plain_commodity.register_device(dev_addr, keys)
    commodity_view = plain_commodity.receive_frame(
        outcome.replayed.mac_bytes, outcome.replayed.arrival_time_s
    )
    shift = 0.0
    if commodity_view.accepted and commodity_view.readings:
        shift = commodity_view.readings[0].global_time_s - t0

    # The SoftLoRa view: FB check flags the replay.
    softlora_view = gateway.process_frame(
        outcome.replayed.mac_bytes, outcome.replayed.arrival_time_s, outcome.replayed.fb_hz
    )

    # Replay power budget: the replayer sits ~1 m from the gateway
    # (free-space loss ~31.6 dB at 868 MHz).  Keeping its TX power at or
    # below 7 dBm (paper Sec. 8.1.1) holds the received power inside the
    # gateway's linear range -- well above sensitivity, below the
    # SX127x's ~0 dBm input ceiling, and not anomalously hot -- while a
    # distant observer (outside the building; ~150 dB total loss) stays
    # below even SF12's demodulation floor and never hears the replay.
    floor = noise_floor_dbm()
    replay_rx_power = replay_power_dbm - replayer_to_gateway_loss_db
    sensitivity = floor + SX1276_DEMOD_SNR_FLOOR_DB[sf]
    within_linear = sensitivity <= replay_rx_power <= 0.0
    monitor_snr = replay_power_dbm - monitor_loss_db - floor
    monitor_hears = monitor_snr >= SX1276_DEMOD_SNR_FLOOR_DB[12]

    latency_s = _measure_detection_latency(
        streams, sf, link_snr_db, injected_delay_s, sample_rate_hz
    )

    return AttackE2EResult(
        link_snr_db=link_snr_db,
        min_viable_sf=sf,
        jam_outcome=outcome.jam_outcome,
        commodity_accepted_replay=commodity_view.accepted,
        timestamp_shift_s=shift,
        injected_delay_s=injected_delay_s,
        softlora_status=softlora_view.status,
        replay_rx_power_dbm=replay_rx_power,
        replay_within_linear_range=within_linear,
        replay_snr_at_monitor_db=monitor_snr,
        monitor_can_hear_replay=monitor_hears,
        replay_power_dbm=replay_power_dbm,
        detection_latency_s=latency_s,
    )
