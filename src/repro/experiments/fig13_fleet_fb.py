"""Fig. 13: FBs of 16 nodes -- original transmissions vs USRP replays.

For each node, 20 frames are captured and the FB estimated; the same
waveforms replayed through a single-USRP chain show a consistently lower
FB (the paper measures additional offsets of −543 to −743 Hz, i.e.
0.62-0.85 ppm -- several times SoftLoRa's 0.14 ppm resolution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.attack.replayer import Replayer
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.core.freq_bias import LeastSquaresFbEstimator
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep
from repro.phy.chirp import ChirpConfig
from repro.sdr.iq import IQTrace
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class FbSummary:
    """Mean/min/max of FB estimates over a node's frames (the error bar)."""

    mean_hz: float
    min_hz: float
    max_hz: float

    @classmethod
    def of(cls, values: list[float]) -> "FbSummary":
        return cls(mean_hz=float(np.mean(values)), min_hz=min(values), max_hz=max(values))


@dataclass
class Fig13Result:
    node_fbs_true_hz: list[float]
    original: list[FbSummary]
    replayed: list[FbSummary]
    chain_offset_hz: float

    @property
    def mean_additional_fb_hz(self) -> list[float]:
        return [r.mean_hz - o.mean_hz for o, r in zip(self.original, self.replayed)]

    def format(self) -> str:
        rows = []
        for node, (orig, rep) in enumerate(zip(self.original, self.replayed)):
            rows.append(
                [
                    node,
                    orig.mean_hz / 1e3,
                    rep.mean_hz / 1e3,
                    rep.mean_hz - orig.mean_hz,
                ]
            )
        return format_table(
            ["node", "original FB (kHz)", "replayed FB (kHz)", "added FB (Hz)"],
            rows,
            title="Fig. 13 -- per-node FB, original vs single-USRP replay",
        )


def run_fig13(
    n_nodes: int = 16,
    frames_per_node: int = 20,
    snr_db: float = 15.0,
    spreading_factor: int = 7,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 13,
) -> Fig13Result:
    """Estimate per-node FBs from original and replayed captures."""
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    streams = RngStreams(seed)
    setup_rng = streams.stream("setup")
    node_fbs = [float(setup_rng.uniform(-25e3, -17e3)) for _ in range(n_nodes)]
    replayer = Replayer.single_usrp(streams.stream("replayer"))
    estimator = LeastSquaresFbEstimator(config)
    spc = config.samples_per_chirp

    def measure(point, trial, capture, prng):
        # Sliced exactly at the onset: a slicing offset ε would bias
        # the FB estimate by (W²/2^S)·ε, see fig14's docstring.
        onset = int(round(capture.true_onset_index_float))
        chirp = capture.trace.samples[onset : onset + spc]
        original_hz = estimator.estimate(chirp).fb_hz
        replay_trace = replayer.replay(
            IQTrace(chirp, config.sample_rate_hz, start_time_s=0.0), delay_s=5.0
        )
        return original_hz, estimator.estimate(replay_trace.samples).fb_hz

    sweep = run_sweep(
        [
            SweepPoint(
                key=node,
                spec=ScenarioSpec(
                    config, snr_db=snr_db, fb_hz=fb, n_chirps=2, fractional_onset=False
                ),
                n_trials=frames_per_node,
            )
            for node, fb in enumerate(node_fbs)
        ],
        measure,
        rng_factory=lambda point: streams.stream(f"node-{point.key}"),
    )
    return Fig13Result(
        node_fbs_true_hz=node_fbs,
        original=[
            FbSummary.of([orig for orig, _ in sweep.trials(node)])
            for node in range(n_nodes)
        ],
        replayed=[
            FbSummary.of([rep for _, rep in sweep.trials(node)])
            for node in range(n_nodes)
        ],
        chain_offset_hz=replayer.chain_fb_offset_hz,
    )
