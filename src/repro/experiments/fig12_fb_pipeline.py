"""Fig. 12: the linear-regression FB extraction pipeline, stage by stage.

Regenerates the four panels on a realistic capture: (a) the I/Q traces of
one up chirp, (b) the wrapped ``atan2(Q, I)``, (c) the 2kπ-rectified
Θ(t), (d) the residual after removing the quadratic sweep -- a straight
line whose slope is ``2πδ``.  The paper's example estimates
δ ≈ −22.8 kHz (26 ppm of 869.75 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.constants import EU868_CENTER_FREQUENCY_HZ, RTL_SDR_SAMPLE_RATE_HZ, hz_to_ppm
from repro.core.freq_bias import LinearRegressionFbEstimator
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep
from repro.phy.chirp import ChirpConfig


@dataclass
class Fig12Result:
    i_trace: np.ndarray
    q_trace: np.ndarray
    wrapped_phase: np.ndarray
    rectified_phase: np.ndarray
    linear_residual: np.ndarray
    true_fb_hz: float
    estimated_fb_hz: float
    estimated_ppm: float
    residual_linearity_rmse: float

    def format(self) -> str:
        return format_table(
            ["quantity", "paper", "measured"],
            [
                ["estimated δ (kHz)", -22.8, self.estimated_fb_hz / 1e3],
                ["δ as ppm of 869.75 MHz", "~26", abs(self.estimated_ppm)],
                ["true δ (kHz)", "-", self.true_fb_hz / 1e3],
                ["line-fit RMSE (rad)", "-", self.residual_linearity_rmse],
            ],
            title="Fig. 12 -- FB extraction by phase regression",
        )


def run_fig12(
    fb_hz: float = -22.8e3,
    snr_db: float = 25.0,
    spreading_factor: int = 7,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 12,
) -> Fig12Result:
    """The Fig. 12 pipeline on a capture with the paper's example bias."""
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    estimator = LinearRegressionFbEstimator(config)
    spc = config.samples_per_chirp

    def measure(point, trial, capture, prng):
        onset = int(round(capture.true_onset_index_float))
        chirp = capture.trace.samples[onset : onset + spc]
        estimate = estimator.estimate(chirp)
        return Fig12Result(
            i_trace=chirp.real,
            q_trace=chirp.imag,
            wrapped_phase=np.arctan2(chirp.imag, chirp.real),
            rectified_phase=estimator.rectified_phase(chirp),
            linear_residual=estimator.linear_residual(chirp),
            true_fb_hz=fb_hz,
            estimated_fb_hz=estimate.fb_hz,
            estimated_ppm=hz_to_ppm(estimate.fb_hz, EU868_CENTER_FREQUENCY_HZ),
            residual_linearity_rmse=estimate.diagnostics["fit_rmse_rad"],
        )

    sweep = run_sweep(
        [
            SweepPoint(
                key="fig12",
                spec=ScenarioSpec(
                    config, snr_db=snr_db, fb_hz=fb_hz, n_chirps=2, fractional_onset=False
                ),
            )
        ],
        measure,
        rng=np.random.default_rng(seed),
    )
    return sweep.first("fig12")
