"""One-shot reproduction report: run every experiment, print every table.

``python -m repro.experiments.report_all`` regenerates the full
evaluation (the same drivers the benchmarks use) and prints the
paper-vs-measured tables in paper order.  ``--fast`` shrinks trial
counts and sample rates for a quick smoke pass.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable

from repro.experiments.attack_e2e import run_attack_e2e
from repro.experiments.campus import run_campus
from repro.experiments.detection import run_detection
from repro.experiments.fig09_detectors import run_fig9
from repro.experiments.fig10_onset_snr import run_fig10
from repro.experiments.fig12_fb_pipeline import run_fig12
from repro.experiments.fig13_fleet_fb import run_fig13
from repro.experiments.fig14_ls_snr import run_fig14
from repro.experiments.fig15_building import run_fig15
from repro.experiments.fig16_txpower import run_fig16
from repro.experiments.overhead import run_overhead
from repro.experiments.rtt_baseline import run_rtt_baseline
from repro.experiments.table1_jamming import run_table1
from repro.experiments.table2_onset import run_table2
from repro.experiments.waveforms import run_fig6, run_fig7, run_fig8, run_fig11


def _experiment_plan(fast: bool) -> list[tuple[str, Callable[[], object]]]:
    """(name, thunk) for every experiment, sized by the fast flag."""
    fs_fast = 1e6
    return [
        ("Sec 3.2  overhead", run_overhead),
        ("Table 1  jamming windows", run_table1),
        ("Fig 6    chirp + spectrogram", run_fig6),
        ("Fig 7    phase ambiguity", run_fig7),
        ("Fig 8    FB dip shift", run_fig8),
        ("Table 2  onset accuracy", lambda: run_table2(n_runs=4 if fast else 10)),
        ("Fig 9    onset detectors", run_fig9),
        (
            "Fig 10   AIC error vs SNR",
            lambda: run_fig10(
                n_trials=3 if fast else 10,
                sample_rate_hz=fs_fast if fast else 2.4e6,
            ),
        ),
        ("Fig 11   dip for ±25 kHz", run_fig11),
        ("Fig 12   FB pipeline", run_fig12),
        (
            "Fig 13   fleet FBs",
            lambda: run_fig13(
                n_nodes=4 if fast else 16,
                frames_per_node=4 if fast else 20,
                sample_rate_hz=fs_fast if fast else 2.4e6,
            ),
        ),
        (
            "Fig 14   LS error vs SNR",
            lambda: run_fig14(n_trials=2 if fast else 8, sample_rate_hz=0.5e6),
        ),
        (
            "Fig 15   building survey",
            lambda: run_fig15(
                sample_rate_hz=fs_fast,
                max_cells=8 if fast else None,
                frames_per_cell=1 if fast else 3,
            ),
        ),
        (
            "Fig 16   FB vs TX power",
            lambda: run_fig16(
                frames_per_point=3 if fast else 6,
                sample_rate_hz=fs_fast if fast else 2.4e6,
            ),
        ),
        (
            "Sec 8.2  campus link",
            lambda: run_campus(sample_rate_hz=fs_fast if fast else 2.4e6),
        ),
        ("Sec 8.1  full attack", run_attack_e2e),
        (
            "Sec 7.2  fleet detection",
            lambda: run_detection(rounds=8 if fast else 16),
        ),
        ("Sec 4.4  RTT baseline", run_rtt_baseline),
    ]


def generate_report(fast: bool = True) -> str:
    """Run every experiment and return the consolidated report text."""
    sections = []
    for name, thunk in _experiment_plan(fast):
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
        sections.append(f"===== {name}  [{elapsed:.1f}s] =====\n{result.format()}")
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-size runs (2.4 Msps, full trial counts); default is fast",
    )
    args = parser.parse_args(argv)
    print(generate_report(fast=not args.full))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
