"""Sec. 4.4: the round-trip-timing strawman vs SoftLoRa.

The simple defense -- acknowledge every uplink and let the device time
the round trip -- *does* detect frame delays.  The paper rejects it
because it fights LoRaWAN's uplink/downlink asymmetry:

* the gateway decodes many uplinks concurrently but owns a single
  downlink chain with its own duty-cycle budget,
* acking every uplink roughly doubles the airtime per datum,
* the cost is paid continuously although attacks are rare events.

This driver measures all three and contrasts them with SoftLoRa's
zero-airtime FB monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.rtt_detector import RttCostModel, RttDetector, RttObservation
from repro.phy.airtime import airtime_s


@dataclass
class RttBaselineResult:
    detects_delay: bool
    detects_loss: bool
    airtime_overhead_ratio: float
    max_fleet_size_acked: int
    ack_service_fraction: dict[int, float]
    softlora_airtime_overhead: float = 0.0

    def format(self) -> str:
        rows = [
            ["detects a 60 s frame delay", "yes", "yes" if self.detects_delay else "no"],
            ["detects suppressed uplink (no ack)", "yes", "yes" if self.detects_loss else "no"],
            [
                "downlink airtime per uplink",
                "~1x uplink (doubled)",
                f"{self.airtime_overhead_ratio:.2f}x",
            ],
            [
                "max fleet (60 s reports, acked)",
                "bounded by one TX chain",
                self.max_fleet_size_acked,
            ],
        ]
        for n, fraction in sorted(self.ack_service_fraction.items()):
            rows.append([f"acks served with {n} devices", "-", f"{fraction:.0%}"])
        rows.append(["SoftLoRa airtime overhead", 0, self.softlora_airtime_overhead])
        return format_table(
            ["quantity", "paper argument", "measured"],
            rows,
            title="Sec. 4.4 -- round-trip timing baseline vs SoftLoRa",
        )


def run_rtt_baseline(
    spreading_factor: int = 7,
    uplink_payload_bytes: int = 20,
    reporting_period_s: float = 60.0,
    fleet_sizes: tuple[int, ...] = (10, 50, 200),
    injected_delay_s: float = 60.0,
) -> RttBaselineResult:
    """Exercise the RTT detector and tally its fleet-level costs."""
    uplink_airtime = airtime_s(uplink_payload_bytes, spreading_factor)
    cost = RttCostModel(spreading_factor=spreading_factor)
    detector = RttDetector(
        uplink_airtime_s=uplink_airtime, ack_airtime_s=cost.ack_airtime_s()
    )

    # Normal round trip: uplink airtime + RX1 delay + ack airtime.
    normal = RttObservation(
        uplink_sent_local_s=100.0,
        ack_received_local_s=100.0 + detector.expected_rtt_s + 0.01,
    )
    assert not detector.check(normal)

    # Frame delay attack: the gateway acks the *replayed* frame, so the
    # ack returns τ late relative to the original transmission.
    delayed = RttObservation(
        uplink_sent_local_s=200.0,
        ack_received_local_s=200.0 + detector.expected_rtt_s + injected_delay_s,
    )
    detects_delay = detector.check(delayed)

    # Jam-only (no replay): the ack never comes.
    lost = RttObservation(uplink_sent_local_s=300.0, ack_received_local_s=None)
    detects_loss = detector.check(lost)

    service = {
        n: cost.simulate_ack_service(n, reporting_period_s, duration_s=20 * reporting_period_s)
        for n in fleet_sizes
    }
    return RttBaselineResult(
        detects_delay=detects_delay,
        detects_loss=detects_loss,
        airtime_overhead_ratio=cost.airtime_overhead_ratio(uplink_payload_bytes),
        max_fleet_size_acked=cost.max_fleet_size(reporting_period_s),
        ack_service_fraction=service,
    )
