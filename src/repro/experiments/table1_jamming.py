"""Table 1: jamming attack time windows for the RN2483 gateway.

For every (SF, payload) row of the paper's Table 1 the driver reports the
measured windows alongside the mechanistic model's prediction, plus the
derived invariants the paper highlights:

* ``w1`` stays at roughly 5 chirps across spreading factors (the chip's
  preamble lock point),
* ``w2`` grows with the spreading factor (roughly doubling per SF step)
  and with payload size,
* ``w3`` tracks the legitimate frame time plus a constant reporting
  latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.attack.jammer import (
    JammingWindowModel,
    JammingWindows,
    RN2483_MEASURED_WINDOWS,
)
from repro.experiments.common import SweepPoint, run_sweep
from repro.phy.airtime import symbol_time_s


@dataclass(frozen=True)
class Table1Row:
    spreading_factor: int
    payload_bytes: int
    chirp_time_ms: float
    measured: JammingWindows
    modelled: JammingWindows

    @property
    def w1_in_chirps_measured(self) -> float:
        return self.measured.w1_s / (self.chirp_time_ms * 1e-3)


@dataclass
class Table1Result:
    rows: list[Table1Row]
    model: JammingWindowModel

    def format(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.spreading_factor,
                    row.payload_bytes,
                    row.measured.w1_s * 1e3,
                    row.modelled.w1_s * 1e3,
                    row.measured.w2_s * 1e3,
                    row.modelled.w2_s * 1e3,
                    row.measured.w3_s * 1e3,
                    row.modelled.w3_s * 1e3,
                ]
            )
        return format_table(
            [
                "SF",
                "payload",
                "w1 paper",
                "w1 model",
                "w2 paper",
                "w2 model",
                "w3 paper",
                "w3 model",
            ],
            table_rows,
            title="Table 1 -- jamming windows (ms), paper-measured vs model",
        )

    def max_relative_error(self, window: str) -> float:
        """Worst |model − measured| / measured across rows for w1/w2/w3."""
        errors = []
        for row in self.rows:
            measured = getattr(row.measured, f"{window}_s")
            modelled = getattr(row.modelled, f"{window}_s")
            errors.append(abs(modelled - measured) / measured)
        return max(errors)


def run_table1(model: JammingWindowModel | None = None) -> Table1Result:
    """Model every Table 1 row and pair it with the paper's measurement.

    A spec-less sweep: each point is one paper-measured (SF, payload)
    row, no captures are synthesized.
    """
    model = model or JammingWindowModel()

    def measure(point, trial, capture, prng):
        sf, payload = point.key
        return Table1Row(
            spreading_factor=sf,
            payload_bytes=payload,
            chirp_time_ms=symbol_time_s(sf) * 1e3,
            measured=point.metadata["measured"],
            modelled=model.windows(sf, payload),
        )

    sweep = run_sweep(
        [
            SweepPoint(key=(sf, payload), metadata={"measured": measured})
            for (sf, payload), measured in sorted(RN2483_MEASURED_WINDOWS.items())
        ],
        measure,
    )
    return Table1Result(rows=sweep.flat(), model=model)
