"""Sec. 7.2: replay detection quality over a simulated fleet.

Runs the 16-node fleet through many uplink rounds with the frame delay
attack armed against a subset of nodes, and tallies detection statistics
at the SoftLoRa gateway.  With the paper's numbers -- estimation
resolution 0.14 ppm (120 Hz) versus replay offsets of at least 0.62 ppm
(543 Hz) -- detection should be perfect and false alarms absent, even
while benign temperature drift slowly moves every node's true FB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import DetectionStats, detection_stats
from repro.analysis.report import format_table
from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.detector import FbDatabase, ReplayDetector
from repro.core.softlora import SoftLoRaGateway, SoftLoRaStatus
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.scenarios import build_fleet


@dataclass
class DetectionResultSummary:
    stats: DetectionStats
    rounds: int
    n_devices: int
    attacked_devices: list[str]
    statuses: dict[str, int]

    def format(self) -> str:
        return format_table(
            ["metric", "paper expectation", "measured"],
            [
                [
                    "attacked frames detected",
                    "all",
                    f"{self.stats.true_positives}/"
                    f"{self.stats.true_positives + self.stats.false_negatives}",
                ],
                ["detection rate", 1.0, round(self.stats.detection_rate, 4)],
                ["false alarm rate", 0.0, round(self.stats.false_alarm_rate, 4)],
                ["legit frames accepted", "all", self.stats.true_negatives],
            ],
            title="Sec. 7.2 -- fleet replay detection",
        )


def run_detection(
    n_devices: int = 16,
    rounds: int = 12,
    attacked: int = 4,
    warmup_rounds: int = 4,
    attack_delay_s: float = 45.0,
    temperature_drift_c_per_round: float = 0.4,
    seed: int = 72,
) -> DetectionResultSummary:
    """Fleet simulation with attacks on a subset of devices.

    ``warmup_rounds`` of clean traffic let the gateway learn each node's
    FB profile at run time (the paper's online bootstrapping); attacks
    start afterwards.  Node temperatures drift each round, exercising the
    database's benign-drift tracking.
    """
    streams = RngStreams(seed)
    devices = build_fleet(n_devices=n_devices, streams=streams)
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6)
    commodity = CommodityGateway()
    gateway = SoftLoRaGateway(
        config=config,
        commodity=commodity,
        replay_detector=ReplayDetector(database=FbDatabase()),
    )
    world = LoRaWanWorld(
        gateway=gateway,
        gateway_position=Position(0.0, 0.0, 1.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=2.0)),
        rng=streams.stream("world"),
    )
    for device in devices:
        world.add_device(device)

    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.single_usrp(streams.stream("replayer")),
        rng=streams.stream("attack"),
    )
    attacked_names = [d.name for d in devices[:attacked]]

    labels: list[bool] = []
    predictions: list[bool] = []
    period = 60.0
    for round_index in range(rounds):
        if round_index == warmup_rounds:
            world.arm_attack(attack, attacked_names, attack_delay_s)
        for device in devices:
            device.temperature_c = 25.0 + temperature_drift_c_per_round * round_index
            device.take_reading(
                float(100 + round_index), 10.0 + round_index * period
            )
            event = world.uplink(device.name, 12.0 + round_index * period)
            if event.reception is None:
                continue
            is_attack = event.kind is EventKind.REPLAY_DELIVERED
            flagged = event.reception.status is SoftLoRaStatus.REPLAY_DETECTED
            # Only frames past the learning phase count toward the stats.
            if round_index >= warmup_rounds:
                labels.append(is_attack)
                predictions.append(flagged)

    statuses: dict[str, int] = {}
    for reception in gateway.receptions:
        statuses[reception.status.value] = statuses.get(reception.status.value, 0) + 1
    return DetectionResultSummary(
        stats=detection_stats(labels, predictions),
        rounds=rounds,
        n_devices=n_devices,
        attacked_devices=attacked_names,
        statuses=statuses,
    )
