"""Fig. 15: the multistory-building SNR survey and timing-error heat map.

A fixed node transmits from Section A, 3rd floor; the mobile SoftLoRa
receiver measures, at every accessible survey position, (a) the SNR --
profiled noise power first, then total power, exactly the Sec. 7.1.2
method -- and (b) the signal-timestamping error upper bound, which stays
below 10 µs everywhere in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import timing_error_upper_bound_s
from repro.analysis.report import format_table
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.core.onset import AicDetector
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep, uniform_fb
from repro.phy.chirp import ChirpConfig
from repro.phy.spectrum import measure_snr_db
from repro.sdr.filters import bandlimit_trace
from repro.sim.scenarios import BuildingScenario, build_building_scenario


@dataclass
class SurveyCell:
    column: str
    floor: int
    link_snr_db: float
    measured_snr_db: float
    timing_error_us: float


@dataclass
class Fig15Result:
    cells: list[SurveyCell]
    tx_column: str
    tx_floor: int

    def snr_range_db(self) -> tuple[float, float]:
        values = [c.link_snr_db for c in self.cells]
        return (min(values), max(values))

    def max_timing_error_us(self) -> float:
        return max(c.timing_error_us for c in self.cells)

    def format(self) -> str:
        rows = [
            [
                c.column,
                c.floor,
                round(c.link_snr_db, 1),
                round(c.measured_snr_db, 1),
                round(c.timing_error_us, 2),
            ]
            for c in self.cells
        ]
        return format_table(
            ["column", "floor", "link SNR (dB)", "measured SNR (dB)", "timing err UB (µs)"],
            rows,
            title=(
                f"Fig. 15 -- building survey (fixed node at {self.tx_column}/F{self.tx_floor}); "
                "paper: SNR −1..13 dB, errors < 10 µs"
            ),
        )


def run_fig15(
    scenario: BuildingScenario | None = None,
    spreading_factor: int = 12,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 15,
    max_cells: int | None = None,
    frames_per_cell: int = 3,
) -> Fig15Result:
    """Survey every accessible position: SNR + AIC timing error.

    ``max_cells`` limits the survey for quick runs (tests); ``None``
    covers all 51 positions like the paper.  Each cell's timing number is
    the *average* error upper bound over ``frames_per_cell`` captured
    frames, matching the paper's per-position measurement practice.
    """
    scenario = scenario or build_building_scenario()
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    detector = AicDetector()
    survey = scenario.survey_points()
    if max_cells is not None:
        survey = survey[:max_cells]

    def measure(point, frame, capture, prng):
        measured_snr = None
        if frame == 0:
            # The paper's SNR measurement: profile the noise power,
            # then measure total power while the fixed node transmits.
            onset_idx = int(np.floor(capture.true_onset_index_float))
            signal_region = capture.trace.samples[
                onset_idx : onset_idx + 4 * config.samples_per_chirp
            ]
            measured_snr = measure_snr_db(signal_region, capture.noise_power)
        # The production SoftLoRa pipeline band-limits the capture to
        # the LoRa channel before the AIC pick (see sdr.filters).
        filtered = bandlimit_trace(capture.trace)
        onset = detector.detect(filtered, component="magnitude")
        error_us = (
            timing_error_upper_bound_s(
                onset.time_s, capture.true_onset_time_s, capture.trace.sample_period_s
            )
            * 1e6
        )
        return error_us, measured_snr

    sweep = run_sweep(
        [
            SweepPoint(
                key=(column, floor),
                spec=ScenarioSpec(
                    config,
                    snr_db=scenario.snr_db(column, floor),
                    fb_hz=uniform_fb(),
                    n_chirps=8,
                ),
                n_trials=frames_per_cell,
            )
            for column, floor in survey
        ],
        measure,
        rng=np.random.default_rng(seed),
    )
    cells = []
    for point in sweep.points:
        column, floor = point.key
        trials = sweep.trials(point.key)
        cells.append(
            SurveyCell(
                column=column,
                floor=floor,
                link_snr_db=point.spec.snr_db,
                measured_snr_db=trials[0][1],
                timing_error_us=float(np.mean([error for error, _ in trials])),
            )
        )
    return Fig15Result(cells=cells, tx_column=scenario.tx_column, tx_floor=scenario.tx_floor)
