"""Sec. 8.2: the 1.07 km campus deployment.

One end device on a rooftop, the SoftLoRa gateway in an open staircase
1.07 km away; one-way propagation is 3.57 µs.  Four trials during heavy
rain gave timing error upper bounds of 3.52, 2.27, 6.43, and 0.23 µs --
microsecond accuracy at a kilometer, which guarantees the FB estimator
gets correctly-sliced chirps.

Alongside the waveform-level timestamping trials, the driver runs the
campus link as *traffic* on the event-driven
:class:`~repro.sim.runtime.FleetRuntime`: one SF12 reporter on a
periodic schedule over the rain-calibrated budget, yielding the link's
sustainable goodput under the ETSI duty-cycle budget
(:attr:`CampusResult.runtime_goodput_fph`) and its delivery rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import timing_error_upper_bound_s
from repro.analysis.report import format_table
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.core.onset import AicDetector
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep, uniform_fb
from repro.phy.chirp import ChirpConfig
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import (
    CampusScenario,
    build_campus_scenario,
    build_pinned_link_world,
)
from repro.sim.traffic import PeriodicTrafficModel

#: The paper's four measured error upper bounds (µs).
PAPER_CAMPUS_ERRORS_US = (3.52, 2.27, 6.43, 0.23)


@dataclass
class CampusResult:
    distance_m: float
    propagation_delay_us: float
    link_snr_db: float
    trial_errors_us: list[float]
    runtime_goodput_fph: float = 0.0
    runtime_delivery_rate: float = 0.0
    runtime_duty_deferrals: int = 0

    def format(self) -> str:
        rows = [
            ["distance (km)", 1.07, self.distance_m / 1e3],
            ["one-way propagation (µs)", 3.57, round(self.propagation_delay_us, 2)],
            ["link SNR (dB)", "-", round(self.link_snr_db, 1)],
        ]
        for i, err in enumerate(self.trial_errors_us):
            paper = PAPER_CAMPUS_ERRORS_US[i] if i < len(PAPER_CAMPUS_ERRORS_US) else "-"
            rows.append([f"trial {i + 1} error UB (µs)", paper, round(err, 2)])
        rows.append(["runtime goodput (frames/h)", "-", round(self.runtime_goodput_fph, 1)])
        rows.append(["runtime delivery rate", "-", round(self.runtime_delivery_rate, 3)])
        return format_table(
            ["quantity", "paper", "measured"],
            rows,
            title="Sec. 8.2 -- campus long-distance deployment",
        )

    def max_error_us(self) -> float:
        return max(self.trial_errors_us)


def _campus_runtime_stats(
    scenario: CampusScenario,
    spreading_factor: int,
    seed: int,
    duration_s: float = 3600.0,
    period_s: float = 180.0,
) -> dict:
    """The campus link as scheduled traffic on the event-driven runtime.

    One SF12 device reports every ``period_s`` over a link pinned at the
    scenario's rain-calibrated SNR; the runtime accounts duty-cycle
    backoff and delivery, so the reported goodput is what the real link
    could sustain -- not what the radio could emit.
    """
    streams = RngStreams(seed + 8209)
    world, _ = build_pinned_link_world(
        streams,
        spreading_factor,
        scenario.snr_db(),
        dev_addr=0x26082000,
        device_position=scenario.link_geometry.site_a,
        gateway_position=scenario.link_geometry.site_b,
        device_name="rooftop-node",
    )
    runtime = FleetRuntime(
        world,
        PeriodicTrafficModel(period_s=period_s, jitter_s=20.0, rng=streams.stream("traffic")),
    )
    report = runtime.run(duration_s)
    return {
        "runtime_goodput_fph": report.goodput_fps * 3600.0,
        "runtime_delivery_rate": report.contention.delivery_rate,
        "runtime_duty_deferrals": report.deferrals,
    }


def run_campus(
    scenario: CampusScenario | None = None,
    n_trials: int = 4,
    spreading_factor: int = 12,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 82,
) -> CampusResult:
    """Four signal-timestamping trials over the 1.07 km link."""
    scenario = scenario or build_campus_scenario()
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    detector = AicDetector()
    snr = scenario.snr_db()

    def measure(point, trial, capture, prng):
        onset = detector.detect(capture.trace, component="i")
        return (
            timing_error_upper_bound_s(
                onset.time_s, capture.true_onset_time_s, capture.trace.sample_period_s
            )
            * 1e6
        )

    sweep = run_sweep(
        [
            SweepPoint(
                key="campus",
                spec=ScenarioSpec(
                    config,
                    snr_db=snr,
                    fb_hz=uniform_fb(),
                    n_chirps=8,
                    start_time_s=scenario.propagation_delay_s(),
                ),
                n_trials=n_trials,
            )
        ],
        measure,
        rng=np.random.default_rng(seed),
    )
    return CampusResult(
        distance_m=scenario.link_geometry.distance_m,
        propagation_delay_us=scenario.propagation_delay_s() * 1e6,
        link_snr_db=snr,
        trial_errors_us=sweep.trials("campus"),
        **_campus_runtime_stats(scenario, spreading_factor, seed),
    )
