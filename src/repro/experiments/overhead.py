"""Sec. 3.2: the overhead analysis motivating sync-free timestamping.

Reproduces every number in the paper's cost example, then *simulates* the
sync-based baseline to verify its arithmetic:

* a 40 ppm clock needs ~14 sync sessions/hour to hold sub-10 ms error,
* an SF12 device can only send ~24 thirty-byte frames per hour under the
  1 % duty cycle (airtime computed without LowDataRateOptimize, matching
  the paper's arithmetic),
* an 8-byte timestamp in a 30-byte payload spends 27 % of the bandwidth,
* under 40 ppm drift a 10 ms budget allows ~4.1 min of buffering, and 18
  bits suffice for a 1 ms-resolution elapsed time over that window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.clock.clocks import DriftingClock
from repro.clock.sync import (
    SyncBasedTimestamping,
    duty_cycle_frame_budget,
    elapsed_time_bits_needed,
    max_buffer_time_s,
    required_sync_interval_s,
    sync_sessions_per_hour,
    timestamp_payload_overhead,
)
from repro.constants import PAPER_ANALYSIS_DRIFT_PPM
from repro.phy.airtime import airtime_s


@dataclass
class OverheadResult:
    sync_sessions_per_hour: float
    sf12_airtime_s: float
    frames_per_hour: int
    timestamp_overhead: float
    buffer_time_s: float
    elapsed_bits: int
    simulated_max_sync_error_s: float
    simulated_sync_count: int

    def format(self) -> str:
        return format_table(
            ["quantity", "paper", "measured"],
            [
                ["sync sessions/hour (40 ppm, <10 ms)", 14, round(self.sync_sessions_per_hour, 1)],
                ["SF12 30-byte airtime (s)", "~1.5", round(self.sf12_airtime_s, 3)],
                ["frames/hour at 1% duty cycle", 24, self.frames_per_hour],
                ["timestamp payload overhead", "27%", f"{self.timestamp_overhead:.0%}"],
                ["max buffer time (min)", 4.1, round(self.buffer_time_s / 60, 2)],
                ["elapsed-time bits (1 ms res)", 18, self.elapsed_bits],
                [
                    "simulated sync-based max error (ms)",
                    "<10",
                    round(self.simulated_max_sync_error_s * 1e3, 2),
                ],
                ["simulated syncs in 1 h", "~14", self.simulated_sync_count],
            ],
            title="Sec. 3.2 -- synchronization overhead analysis",
        )


def run_overhead(
    drift_ppm: float = PAPER_ANALYSIS_DRIFT_PPM,
    error_bound_s: float = 10e-3,
    payload_bytes: int = 30,
    timestamp_bytes: int = 8,
    seed: int = 32,
) -> OverheadResult:
    """All Sec. 3.2 quantities, closed-form plus a one-hour simulation."""
    airtime = airtime_s(payload_bytes, 12, ldro=False)
    interval = required_sync_interval_s(error_bound_s, drift_ppm)
    clock = DriftingClock(drift_ppm=drift_ppm)
    # The paper's arithmetic assumes ideal sync sessions; a per-session
    # residual would add on top of the drift bound.
    baseline = SyncBasedTimestamping(
        clock=clock,
        sync_interval_s=interval,
        sync_accuracy_s=0.0,
        rng=np.random.default_rng(seed),
    )
    for t in np.arange(0.0, 3600.0, 30.0):
        baseline.timestamp(float(t))
    return OverheadResult(
        sync_sessions_per_hour=sync_sessions_per_hour(error_bound_s, drift_ppm),
        sf12_airtime_s=airtime,
        frames_per_hour=duty_cycle_frame_budget(airtime),
        timestamp_overhead=timestamp_payload_overhead(timestamp_bytes, payload_bytes),
        buffer_time_s=max_buffer_time_s(error_bound_s, drift_ppm),
        elapsed_bits=elapsed_time_bits_needed(max_buffer_time_s(error_bound_s, drift_ppm)),
        simulated_max_sync_error_s=baseline.max_abs_error_s(),
        simulated_sync_count=clock.sync_count,
    )
