"""Fig. 9: the envelope-ratio and AIC onset pickers in action.

Regenerates both panels on one synthesized capture: (a) the Hilbert
envelope with its ratio curve peaking at the onset, (b) the AIC curve
whose minimum marks the onset sample.  Also runs the two methods the
paper rejects (matched filter, spectrogram) to document their failure
modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import timing_error_s
from repro.analysis.report import format_table
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.core.onset import (
    AicDetector,
    EnvelopeDetector,
    MatchedFilterDetector,
    SpectrogramOnsetDetector,
)
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep
from repro.phy.chirp import ChirpConfig
from repro.phy.spectrum import hilbert_envelope


@dataclass
class Fig9Result:
    true_onset_time_s: float
    envelope: np.ndarray
    ratio_curve: np.ndarray
    aic_curve: np.ndarray
    errors_us: dict[str, float]

    def format(self) -> str:
        rows = [[name, round(err, 2)] for name, err in sorted(self.errors_us.items())]
        return format_table(
            ["detector", "onset error (µs)"],
            rows,
            title="Fig. 9 -- onset detection on one capture (all four candidates)",
        )


def run_fig9(
    snr_db: float = 20.0,
    spreading_factor: int = 7,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 9,
) -> Fig9Result:
    """One capture, four detectors, plus the plotted curves."""
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    aic_detector = AicDetector()
    detectors = {
        "envelope": EnvelopeDetector(),
        "aic": aic_detector,
        "matched_filter": MatchedFilterDetector(config),
        "spectrogram": SpectrogramOnsetDetector(config),
    }

    def measure(point, trial, capture, prng):
        trace = capture.trace
        envelope = hilbert_envelope(trace.i)
        eps = max(float(envelope.max()) * 1e-12, 1e-300)
        errors_us = {
            name: timing_error_s(
                detector.detect(trace, component="i").time_s, capture.true_onset_time_s
            )
            * 1e6
            for name, detector in detectors.items()
        }
        return Fig9Result(
            true_onset_time_s=capture.true_onset_time_s,
            envelope=envelope,
            ratio_curve=envelope[1:] / np.maximum(envelope[:-1], eps),
            aic_curve=aic_detector.aic_curve(trace.i),
            errors_us=errors_us,
        )

    sweep = run_sweep(
        [SweepPoint(key="fig9", spec=ScenarioSpec(config, snr_db=snr_db, fb_hz=-21e3))],
        measure,
        rng=np.random.default_rng(seed),
    )
    return sweep.first("fig9")
