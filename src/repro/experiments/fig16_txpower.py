"""Fig. 16: estimated FB versus the end device's transmission power.

Three observers, as in the paper's building deployment:

* the **eavesdropper** (a USRP next to the device) estimates
  ``δTx − δRx_eve``,
* the **SoftLoRa gateway** estimates ``δTx − δRx_gw`` from the direct
  uplink (no attack),
* the gateway estimates ``δTx + δ_chain − δRx_gw`` from the **replayed**
  waveform (two distinct USRPs; their offsets superimpose to ≈ +2 kHz of
  separation from the direct row -- the paper measures about 2 kHz,
  2.3 ppm).

The paper's takeaways, which the driver verifies: transmission power has
little effect on any row; the eavesdropper and gateway rows differ (their
receivers' biases differ); the replayed row is offset from the direct row
by far more than the estimation resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.attack.replayer import Replayer
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.core.freq_bias import LeastSquaresFbEstimator
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep
from repro.phy.chirp import ChirpConfig
from repro.sim.rng import RngStreams

#: The end-device transmission powers the paper sweeps (dBm).
PAPER_TX_POWERS_DBM = (3.6, 4.7, 5.8, 6.9, 8.1, 9.3, 10.4)


@dataclass(frozen=True)
class BoxStats:
    """Min / 25% / median / 75% / max, matching the paper's box plots."""

    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    @classmethod
    def of(cls, values: list[float]) -> "BoxStats":
        arr = np.asarray(values)
        return cls(
            minimum=float(arr.min()),
            q25=float(np.percentile(arr, 25)),
            median=float(np.percentile(arr, 50)),
            q75=float(np.percentile(arr, 75)),
            maximum=float(arr.max()),
        )


@dataclass
class Fig16Result:
    tx_powers_dbm: list[float]
    eavesdropper: list[BoxStats]
    gateway_direct: list[BoxStats]
    gateway_replayed: list[BoxStats]

    def format(self) -> str:
        rows = []
        for i, power in enumerate(self.tx_powers_dbm):
            rows.append(
                [
                    power,
                    round(self.eavesdropper[i].median / 1e3, 2),
                    round(self.gateway_direct[i].median / 1e3, 2),
                    round(self.gateway_replayed[i].median / 1e3, 2),
                ]
            )
        return format_table(
            [
                "TX power (dBm)",
                "eavesdropper (kHz)",
                "gateway direct (kHz)",
                "gateway replayed (kHz)",
            ],
            rows,
            title="Fig. 16 -- median estimated FB vs device TX power",
        )

    def replay_separation_hz(self) -> float:
        """Mean separation between replayed and direct gateway rows."""
        pairs = zip(self.gateway_replayed, self.gateway_direct)
        return float(np.mean([r.median - d.median for r, d in pairs]))

    def power_sensitivity_hz(self, row: str = "gateway_direct") -> float:
        """Spread of a row's medians across the power sweep."""
        medians = [s.median for s in getattr(self, row)]
        return max(medians) - min(medians)


def run_fig16(
    tx_powers_dbm: tuple[float, ...] = PAPER_TX_POWERS_DBM,
    frames_per_point: int = 6,
    device_fb_hz: float = -22e3,
    eavesdropper_rx_fb_hz: float = +600.0,
    base_snr_db: float = 5.0,
    spreading_factor: int = 8,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 16,
) -> Fig16Result:
    """Sweep the device TX power and collect the three FB box-plot rows.

    Received SNR tracks TX power dB-for-dB; the estimators should be
    insensitive to it in this regime, which is the figure's point.
    """
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    streams = RngStreams(seed)
    estimator = LeastSquaresFbEstimator(config)
    replayer = Replayer.dual_usrp(streams.stream("replayer"))
    spc = config.samples_per_chirp
    reference_power = tx_powers_dbm[0]

    def measure(point, trial, capture, prng):
        onset = int(round(capture.true_onset_index_float))
        chirp = capture.trace.samples[onset + spc : onset + 2 * spc]
        t = np.arange(len(chirp)) / config.sample_rate_hz
        # Gateway's direct estimate (its own RX bias is the reference 0);
        # the eavesdropper sees the same chirp through its own biased LO;
        # the replay adds the dual-USRP chain offset.
        eave_chirp = chirp * np.exp(-2j * np.pi * eavesdropper_rx_fb_hz * t)
        replay_chirp = chirp * np.exp(2j * np.pi * replayer.chain_fb_offset_hz * t)
        return {
            "direct": estimator.estimate(chirp).fb_hz,
            "eavesdropper": estimator.estimate(eave_chirp).fb_hz,
            "replayed": estimator.estimate(replay_chirp).fb_hz,
        }

    sweep = run_sweep(
        [
            SweepPoint(
                key=power,
                spec=ScenarioSpec(
                    config,
                    snr_db=base_snr_db + (power - reference_power),
                    fb_hz=device_fb_hz,
                    n_chirps=2,
                    fractional_onset=False,
                ),
                n_trials=frames_per_point,
            )
            for power in tx_powers_dbm
        ],
        measure,
        rng_factory=lambda point: streams.stream(f"power-{point.key}"),
    )

    def row(observer: str) -> list[BoxStats]:
        return [
            BoxStats.of([trial[observer] for trial in sweep.trials(power)])
            for power in tx_powers_dbm
        ]

    return Fig16Result(
        tx_powers_dbm=list(tx_powers_dbm),
        eavesdropper=row("eavesdropper"),
        gateway_direct=row("direct"),
        gateway_replayed=row("replayed"),
    )
