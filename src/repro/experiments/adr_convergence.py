"""ADR convergence: closed-loop data-rate control over multi-SF fleets.

The paper evaluates the replay defense on fleets pinned at one data
rate; a real network server retunes every device's spreading factor via
ADR, changing airtime, collision odds, SNR margins, and FB-estimation
noise -- everything the defense feeds on.  This driver sweeps fleet
size x initial SF mix (x gateway count) through the closed loop of
:class:`~repro.server.adr.AdrController` +
:class:`~repro.sim.runtime.FleetRuntime` and reports, per cell:

* **convergence** -- median/max time from cold start to each device's
  last commanded SF change, the final SF histogram, and the LinkADRReq
  budget (sent / duty-cycle-dropped / applied);
* **throughput payoff** -- goodput and collision rate of the converged
  fleet against an ADR-disabled baseline fleet left at the initial mix
  (the acceptance bar: an all-SF12 start must at least double its
  goodput after converging);
* **detection quality** -- frame-delay-attack TPR/FPR measured on the
  ADR-disabled baseline (*before* convergence) and again on the
  converged heterogeneous fleet (*after*), so the loop's effect on the
  paper's defense is explicit.

Cells are independent worlds derived from per-cell rng streams (the
``fleet_scale`` pattern), so the grid fans out over
:class:`~repro.experiments.common.SweepExecutor` workers unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.analysis.report import format_table
from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.softlora import SoftLoRaGateway
from repro.errors import ConfigurationError
from repro.experiments.common import SweepExecutor, SweepPoint
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import AdrController, NetworkServer
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import build_fleet
from repro.sim.traffic import PeriodicTrafficModel

#: Initial spreading-factor mixes a cell can start from.
SF_MIXES = ("sf12", "mixed", "sf7")


@dataclass(frozen=True)
class AdrConvergenceParams:
    """Everything one cell measurement needs, picklable for spawn workers."""

    baseline_rounds: int
    max_adr_rounds: int
    measure_rounds: int
    attack_rounds: int
    attack_fraction: float
    attack_delay_s: float
    adr_margin_db: float
    adr_min_history: int
    area_radius_m: float
    gateway_ring_m: float
    pathloss_exponent: float
    seed: int
    period_s: float
    jitter_s: float
    window_s: float


@dataclass(frozen=True)
class AdrConvergenceCell:
    """Measurements for one (gateways, devices, initial mix) sweep point."""

    n_gateways: int
    n_devices: int
    sf_mix: str
    median_initial_sf: float
    median_final_sf: float
    converged_fraction: float
    median_convergence_s: float
    max_convergence_s: float
    commands_sent: int
    commands_dropped: int
    commands_applied: int
    baseline_goodput_fps: float
    converged_goodput_fps: float
    baseline_collision_rate: float
    converged_collision_rate: float
    tpr_before: float
    fpr_before: float
    tpr_after: float
    fpr_after: float
    wall_s: float

    @property
    def goodput_gain(self) -> float:
        """Converged over baseline goodput (>1 means the loop paid off)."""
        if self.baseline_goodput_fps == 0:
            return float("inf")
        return self.converged_goodput_fps / self.baseline_goodput_fps


@dataclass
class AdrConvergenceResult:
    """All measured cells of one sweep, with the usual table formatter."""

    cells: list[AdrConvergenceCell]

    def cell(self, n_gateways: int, n_devices: int, sf_mix: str) -> AdrConvergenceCell:
        """Look up one cell by its (gateways, devices, mix) key."""
        for cell in self.cells:
            if (cell.n_gateways, cell.n_devices, cell.sf_mix) == (
                n_gateways,
                n_devices,
                sf_mix,
            ):
                return cell
        raise KeyError((n_gateways, n_devices, sf_mix))

    def format(self) -> str:
        """The sweep as an aligned text table (one row per cell)."""
        rows = []
        for c in self.cells:
            rows.append(
                [
                    c.n_gateways,
                    c.n_devices,
                    c.sf_mix,
                    c.median_initial_sf,
                    c.median_final_sf,
                    round(c.converged_fraction, 2),
                    round(c.median_convergence_s, 0),
                    f"{c.commands_sent}/{c.commands_dropped}",
                    round(c.baseline_goodput_fps, 3),
                    round(c.converged_goodput_fps, 3),
                    round(c.goodput_gain, 2),
                    round(c.converged_collision_rate, 3),
                    f"{c.tpr_before:.2f}/{c.fpr_before:.3f}",
                    f"{c.tpr_after:.2f}/{c.fpr_after:.3f}",
                ]
            )
        return format_table(
            [
                "gateways",
                "devices",
                "mix",
                "SF0",
                "SF*",
                "conv frac",
                "conv (s)",
                "cmds ok/drop",
                "base (f/s)",
                "adr (f/s)",
                "gain",
                "collisions",
                "TPR/FPR pre",
                "TPR/FPR post",
            ],
            rows,
            title="ADR convergence -- closed-loop multi-SF fleet sweep",
        )


def _initial_sfs(mix: str, n_devices: int, rng: np.random.Generator) -> list[int]:
    """Per-device starting spreading factors for one mix label."""
    if mix == "sf12":
        return [12] * n_devices
    if mix == "sf7":
        return [7] * n_devices
    if mix == "mixed":
        return [int(sf) for sf in rng.integers(7, 13, size=n_devices)]
    raise ConfigurationError(f"unknown SF mix {mix!r}; pick one of {SF_MIXES}")


def _build_world(
    n_gateways: int,
    n_devices: int,
    sf_mix: str,
    streams: RngStreams,
    params: AdrConvergenceParams,
    adr: AdrController | None,
) -> LoRaWanWorld:
    """One cell world: scattered fleet, gateway ring, optional ADR server.

    The baseline and ADR worlds of a cell are built from *identical*
    stream derivations (device FBs, positions, initial SFs, traffic
    seeds), so their measurements differ only by the control loop.
    """
    devices = build_fleet(n_devices=n_devices, streams=streams)
    layout = streams.stream("layout")
    for device in devices:
        radius = params.area_radius_m * float(np.sqrt(layout.uniform(0.0, 1.0)))
        angle = float(layout.uniform(0.0, 2 * np.pi))
        device.position = Position(
            x=radius * float(np.cos(angle)), y=radius * float(np.sin(angle)), z=1.0
        )
    for device, sf in zip(devices, _initial_sfs(sf_mix, n_devices, streams.stream("sfmix"))):
        device.spreading_factor = sf
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(
            config=ChirpConfig(spreading_factor=7, sample_rate_hz=0.5e6),
            commodity=CommodityGateway(),
        ),
        gateway_position=Position(params.gateway_ring_m, 0.0, 15.0),
        link=LinkBudget(pathloss=LogDistancePathLoss(exponent=params.pathloss_exponent)),
        rng=streams.stream("world"),
    )
    for index in range(1, n_gateways):
        angle = 2 * np.pi * index / n_gateways
        world.add_gateway(
            Position(
                x=params.gateway_ring_m * float(np.cos(angle)),
                y=params.gateway_ring_m * float(np.sin(angle)),
                z=15.0,
            )
        )
    for device in devices:
        world.add_device(device)
    world.attach_server(NetworkServer(adr=adr))
    return world


def _attack_phase(
    world: LoRaWanWorld, runtime: FleetRuntime, streams: RngStreams, params: AdrConvergenceParams
) -> tuple[float, float]:
    """Arm the frame-delay attack on a reachable slice; return (TPR, FPR)."""
    devices = list(world.devices.values())
    n_attacked = max(1, int(round(params.attack_fraction * len(devices))))
    heard = {verdict.node_id for verdict in world.server.verdicts}
    reachable = [d for d in devices if f"{d.dev_addr:08x}" in heard] or devices
    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.single_usrp(streams.stream("replayer")),
        rng=streams.stream("attack"),
    )
    world.arm_attack(
        attack, [d.name for d in reachable[:n_attacked]], delay_s=params.attack_delay_s
    )
    report = runtime.run(params.attack_rounds * params.period_s)
    world.disarm_attack()
    replays = hits = clean = false_alarms = 0
    for event in report.events:
        verdict = event.verdict
        if verdict is None:
            continue
        if event.kind is EventKind.REPLAY_DELIVERED:
            replays += 1
            hits += verdict.attack_detected
        elif event.kind is EventKind.DELIVERED:
            clean += 1
            false_alarms += verdict.attack_detected
    return (
        hits / replays if replays else 0.0,
        false_alarms / clean if clean else 0.0,
    )


def measure_adr_cell(point, trial, captures, prng, params: AdrConvergenceParams):
    """One sweep-point measurement: baseline world, ADR world, attack both.

    Module-level (driven purely by ``point.key`` + ``params``) so
    :class:`SweepExecutor` can ship it to spawn workers.  Keys are
    ``(n_gateways, n_devices, sf_mix)`` with an optional replicate salt.
    """
    key = tuple(point.key)
    n_gateways, n_devices, sf_mix = int(key[0]), int(key[1]), str(key[2])
    replicate = int(key[3]) if len(key) > 3 else 0
    seed = params.seed + 7919 * n_gateways + n_devices + 104_729 * replicate
    t0 = time.perf_counter()

    # Baseline: identical fleet, ADR disabled, pinned at the initial mix.
    streams = RngStreams(seed)
    baseline_world = _build_world(n_gateways, n_devices, sf_mix, streams, params, adr=None)
    baseline_runtime = FleetRuntime(
        baseline_world,
        PeriodicTrafficModel(
            period_s=params.period_s, jitter_s=params.jitter_s, rng=streams.stream("traffic")
        ),
        window_s=params.window_s,
    )
    base_report = baseline_runtime.run(params.baseline_rounds * params.period_s)
    tpr_before, fpr_before = _attack_phase(baseline_world, baseline_runtime, streams, params)

    # The closed loop: same fleet derivation, ADR on.
    streams = RngStreams(seed)
    adr = AdrController(margin_db=params.adr_margin_db, min_history=params.adr_min_history)
    world = _build_world(n_gateways, n_devices, sf_mix, streams, params, adr=adr)
    devices = list(world.devices.values())
    runtime = FleetRuntime(
        world,
        PeriodicTrafficModel(
            period_s=params.period_s, jitter_s=params.jitter_s, rng=streams.stream("traffic")
        ),
        window_s=params.window_s,
    )
    start_s = world.simulator.now_s
    sent = dropped = applied = 0
    for _ in range(params.max_adr_rounds):
        report = runtime.run(params.period_s)
        sent += report.adr_commands_sent
        dropped += report.adr_commands_dropped
        applied += report.adr_commands_applied
        if report.adr_commands_sent == 0 and report.adr_commands_dropped == 0 and sent > 0:
            break  # the loop went quiet: nothing left to retune
    convergence_times = [
        (device.sf_changes[-1][0] - start_s) if device.sf_changes else 0.0
        for device in devices
    ]
    converged_fraction = float(
        np.mean([adr.converged(device.dev_addr) for device in devices])
    )
    post_report = runtime.run(params.measure_rounds * params.period_s)
    tpr_after, fpr_after = _attack_phase(world, runtime, streams, params)

    return AdrConvergenceCell(
        n_gateways=n_gateways,
        n_devices=n_devices,
        sf_mix=sf_mix,
        median_initial_sf=float(
            np.median(_initial_sfs(sf_mix, n_devices, RngStreams(seed).stream("sfmix")))
        ),
        median_final_sf=float(np.median([d.spreading_factor for d in devices])),
        converged_fraction=converged_fraction,
        median_convergence_s=float(np.median(convergence_times)),
        max_convergence_s=float(np.max(convergence_times)),
        commands_sent=sent,
        commands_dropped=dropped,
        commands_applied=applied,
        baseline_goodput_fps=base_report.goodput_fps,
        converged_goodput_fps=post_report.goodput_fps,
        baseline_collision_rate=base_report.contention.collision_rate,
        converged_collision_rate=post_report.contention.collision_rate,
        tpr_before=tpr_before,
        fpr_before=fpr_before,
        tpr_after=tpr_after,
        fpr_after=fpr_after,
        wall_s=time.perf_counter() - t0,
    )


def run_adr_convergence(
    gateway_counts: tuple[int, ...] = (2,),
    fleet_sizes: tuple[int, ...] = (100, 500),
    sf_mixes: tuple[str, ...] = SF_MIXES,
    baseline_rounds: int = 3,
    max_adr_rounds: int = 14,
    measure_rounds: int = 2,
    attack_rounds: int = 2,
    attack_fraction: float = 0.05,
    attack_delay_s: float = 120.0,
    adr_margin_db: float = 10.0,
    adr_min_history: int = 4,
    area_radius_m: float = 900.0,
    gateway_ring_m: float = 500.0,
    pathloss_exponent: float = 3.0,
    seed: int = 520,
    period_s: float = 600.0,
    jitter_s: float = 60.0,
    window_s: float = 30.0,
    n_workers: int = 1,
    backend: str = "process",
    replicates: int = 1,
) -> AdrConvergenceResult:
    """Sweep gateway count x fleet size x initial SF mix through the loop.

    Each cell builds two bit-identical fleets -- one pinned at the
    initial mix (baseline), one under the closed ADR loop -- runs both
    to steady state, and attacks both, so every row is a before/after
    pair.  ``n_workers > 1`` fans cells out across a persistent worker
    pool (``backend="process"`` or ``"thread"``) with identical
    results; ``replicates > 1`` salts the keys for independent copies
    (benchmark workloads).
    """
    params = AdrConvergenceParams(
        baseline_rounds=baseline_rounds,
        max_adr_rounds=max_adr_rounds,
        measure_rounds=measure_rounds,
        attack_rounds=attack_rounds,
        attack_fraction=attack_fraction,
        attack_delay_s=attack_delay_s,
        adr_margin_db=adr_margin_db,
        adr_min_history=adr_min_history,
        area_radius_m=area_radius_m,
        gateway_ring_m=gateway_ring_m,
        pathloss_exponent=pathloss_exponent,
        seed=seed,
        period_s=period_s,
        jitter_s=jitter_s,
        window_s=window_s,
    )
    if replicates < 1:
        raise ConfigurationError(f"need >= 1 replicate, got {replicates}")
    keys: list[tuple] = [
        (g, n, mix) if replicates == 1 else (g, n, mix, rep)
        for g in gateway_counts
        for n in fleet_sizes
        for mix in sf_mixes
        for rep in range(replicates)
    ]
    sweep = SweepExecutor(n_workers=n_workers, backend=backend).run(
        [SweepPoint(key=key) for key in keys],
        partial(measure_adr_cell, params=params),
    )
    return AdrConvergenceResult(cells=[sweep.first(key) for key in sweep.keys()])


if __name__ == "__main__":
    print(run_adr_convergence(fleet_sizes=(100,), max_adr_rounds=6).format())
