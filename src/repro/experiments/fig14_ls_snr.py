"""Fig. 14: least-squares FB estimation error vs SNR, two noise types.

The paper scales Gaussian noise and *real captured* building noise onto
high-SNR traces and sweeps the SNR from −25 to +10 dB; the estimation
error stays below 120 Hz (0.14 ppm of the carrier) throughout -- below
the demodulation limit of −20 dB.  Our "real" noise is the synthetic
colored+impulsive surrogate (see :class:`repro.sdr.noise.RealNoiseModel`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import fb_error_hz
from repro.analysis.report import format_table
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.core.freq_bias import LeastSquaresFbEstimator
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep
from repro.phy.chirp import ChirpConfig
from repro.sdr.noise import RealNoiseModel


@dataclass
class Fig14Result:
    snrs_db: list[float]
    gaussian_errors_hz: list[float]
    real_errors_hz: list[float]

    def format(self) -> str:
        rows = [
            [snr, round(g, 1), round(r, 1)]
            for snr, g, r in zip(self.snrs_db, self.gaussian_errors_hz, self.real_errors_hz)
        ]
        return format_table(
            ["SNR (dB)", "Gaussian noise err (Hz)", "real noise err (Hz)"],
            rows,
            title="Fig. 14 -- least-squares FB error vs SNR",
        )

    def max_error_hz(self) -> float:
        return max(self.gaussian_errors_hz + self.real_errors_hz)


def run_fig14(
    snrs_db: list[float] | None = None,
    n_trials: int = 8,
    fb_hz: float = -22e3,
    spreading_factor: int = 12,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 14,
) -> Fig14Result:
    """Mean FB estimation error per SNR for both noise models.

    SF12 (the paper's default experimental setting) gives the chirp the
    coherent integration length that keeps the estimate under 120 Hz down
    to −25 dB.  The chirp is sliced exactly at its onset: a slicing
    offset of ε seconds would bias the estimate by ``(W²/2^S)·ε`` -- the
    reason microsecond PHY timestamping is a prerequisite of FB
    estimation (paper Sec. 5.3).
    """
    if snrs_db is None:
        snrs_db = [-25.0, -20.0, -15.0, -10.0, -5.0, 0.0, 5.0, 10.0]
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    estimator = LeastSquaresFbEstimator(config)
    spc = config.samples_per_chirp
    real_model = RealNoiseModel()

    def spec(snr: float, model: RealNoiseModel | None) -> ScenarioSpec:
        return ScenarioSpec(
            config,
            snr_db=snr,
            fb_hz=fb_hz,
            n_chirps=2,
            fractional_onset=False,
            noise_model=model,
        )

    def measure(point, trial, captures, prng):
        errors = {}
        for label, capture in captures.items():
            onset = int(round(capture.true_onset_index_float))
            chirp = capture.trace.samples[onset : onset + spc]
            errors[label] = fb_error_hz(estimator.estimate(chirp).fb_hz, fb_hz)
        return errors

    # Each trial synthesizes the gaussian and "real" variants back to
    # back (Fig. 14's paired noise conditions share the sweep stream).
    sweep = run_sweep(
        [
            SweepPoint(
                key=snr,
                spec={"gaussian": spec(snr, None), "real": spec(snr, real_model)},
                n_trials=n_trials,
            )
            for snr in snrs_db
        ],
        measure,
        rng=np.random.default_rng(seed),
    )
    return Fig14Result(
        snrs_db=list(snrs_db),
        gaussian_errors_hz=[
            float(np.mean([t["gaussian"] for t in sweep.trials(snr)])) for snr in snrs_db
        ],
        real_errors_hz=[
            float(np.mean([t["real"] for t in sweep.trials(snr)])) for snr in snrs_db
        ],
    )
