"""Fleet scale: gateways × devices sweep over the event-driven runtime.

The paper evaluates one SoftLoRa gateway over 16 nodes; deployments run
thousands of devices heard by several gateways each.  This driver grows
the Fig. 13 fleet workload along both axes -- 1..8 gateways, 100..2000
devices -- with the devices scattered over a multi-kilometre cell so
coverage is partial and per-gateway SNRs differ.  Traffic is no longer
caller-stepped: each cell schedules periodic-with-jitter reporting on
the discrete-event :class:`~repro.sim.runtime.FleetRuntime`, so
concurrent transmissions contend (ALOHA + capture effect) at every
gateway before the surviving receptions reach the network server.  Per
(gateways, devices) cell it reports:

* **delivery / dedup / contention** -- fraction of transmitted frames
  resolved at all, mean gateway copies folded into each verdict, and
  the co-SF collision rate the ALOHA channel inflicted;
* **goodput** -- genuine deliveries per second of simulated time;
* **fused FB error vs best single gateway** -- the cross-gateway
  fingerprinting payoff: inverse-variance fusion should beat the best
  single link's estimate on average;
* **detection accuracy + latency** -- TPR/FPR of the fused replay
  verdict under the frame-delay attack against a slice of the fleet,
  and the delay from arming the attack to its first detection.

Cells are independent worlds derived from per-cell rng streams, so the
whole grid can fan out over worker processes:
``run_fleet_scale(n_workers=4)`` runs cells N-way parallel through
:class:`~repro.experiments.common.SweepExecutor` with results identical
to the serial walk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.analysis.metrics import detection_latency_s
from repro.analysis.report import format_table
from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.softlora import SoftLoRaGateway
from repro.errors import ConfigurationError
from repro.experiments.common import SweepExecutor, SweepPoint
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import FusionPolicy, NetworkServer
from repro.sim.columnar import ColumnarRuntime
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.runtime import FleetRuntime
from repro.sim.scenarios import build_fleet
from repro.sim.traffic import PeriodicTrafficModel


@dataclass(frozen=True)
class FleetScaleCell:
    """Measurements for one (gateways, devices) sweep point."""

    n_gateways: int
    n_devices: int
    uplink_attempts: int
    resolved_uplinks: int
    delivery_rate: float
    dedup_rate: float
    collision_rate: float
    goodput_fps: float
    fused_fb_mae_hz: float
    best_single_fb_mae_hz: float
    detection_tpr: float
    detection_fpr: float
    detection_latency_s: float
    wall_s: float

    @property
    def fusion_gain(self) -> float:
        """Best-single MAE over fused MAE (>1 means fusion wins)."""
        if self.fused_fb_mae_hz == 0:
            return float("inf")
        return self.best_single_fb_mae_hz / self.fused_fb_mae_hz


@dataclass(frozen=True)
class FleetScaleParams:
    """Everything one cell measurement needs, picklable for spawn workers."""

    clean_rounds: int
    attack_rounds: int
    attack_fraction: float
    attack_delay_s: float
    fusion: FusionPolicy
    spreading_factor: int
    area_radius_m: float
    gateway_ring_m: float
    pathloss_exponent: float
    seed: int
    period_s: float
    jitter_s: float
    window_s: float
    engine: str = "legacy"


@dataclass
class FleetScaleResult:
    cells: list[FleetScaleCell]
    fusion: FusionPolicy

    def cell(self, n_gateways: int, n_devices: int) -> FleetScaleCell:
        for cell in self.cells:
            if (cell.n_gateways, cell.n_devices) == (n_gateways, n_devices):
                return cell
        raise KeyError((n_gateways, n_devices))

    def format(self) -> str:
        rows = []
        for c in self.cells:
            rows.append(
                [
                    c.n_gateways,
                    c.n_devices,
                    round(c.delivery_rate, 3),
                    round(c.collision_rate, 3),
                    round(c.goodput_fps, 2),
                    round(c.dedup_rate, 2),
                    round(c.fused_fb_mae_hz, 1),
                    round(c.best_single_fb_mae_hz, 1),
                    round(c.detection_tpr, 3),
                    round(c.detection_fpr, 4),
                    round(c.detection_latency_s, 1),
                    round(c.wall_s, 2),
                ]
            )
        return format_table(
            [
                "gateways",
                "devices",
                "delivery",
                "collisions",
                "goodput (f/s)",
                "copies/uplink",
                "fused MAE (Hz)",
                "best-GW MAE (Hz)",
                "TPR",
                "FPR",
                "latency (s)",
                "wall (s)",
            ],
            rows,
            title=f"Fleet scale -- event-driven multi-gateway sweep "
            f"({self.fusion.value} fusion)",
        )


def _build_cell_world(
    n_gateways: int,
    n_devices: int,
    streams: RngStreams,
    spreading_factor: int,
    area_radius_m: float,
    gateway_ring_m: float,
    pathloss_exponent: float,
) -> LoRaWanWorld:
    """One cell: devices scattered over a disk, gateways on an inner ring."""
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=0.5e6)
    devices = build_fleet(n_devices=n_devices, streams=streams, spreading_factor=spreading_factor)
    layout = streams.stream("layout")
    for device in devices:
        radius = area_radius_m * float(np.sqrt(layout.uniform(0.0, 1.0)))
        angle = float(layout.uniform(0.0, 2 * np.pi))
        device.position = Position(
            x=radius * float(np.cos(angle)), y=radius * float(np.sin(angle)), z=1.0
        )
    link = LinkBudget(pathloss=LogDistancePathLoss(exponent=pathloss_exponent))
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(config=config, commodity=CommodityGateway()),
        gateway_position=Position(gateway_ring_m, 0.0, 15.0),
        link=link,
        rng=streams.stream("world"),
    )
    for index in range(1, n_gateways):
        angle = 2 * np.pi * index / n_gateways
        world.add_gateway(
            Position(
                x=gateway_ring_m * float(np.cos(angle)),
                y=gateway_ring_m * float(np.sin(angle)),
                z=15.0,
            )
        )
    for device in devices:
        world.add_device(device)
    return world


def _measure_cell(
    world: LoRaWanWorld,
    server: NetworkServer,
    params: FleetScaleParams,
    streams: RngStreams,
) -> dict:
    """Run the cell's clean + attack phases and pull the evidence apart."""
    devices = list(world.devices.values())
    true_fb = {f"{d.dev_addr:08x}": d.fb_hz for d in devices}
    traffic = PeriodicTrafficModel(
        period_s=params.period_s,
        jitter_s=params.jitter_s,
        rng=streams.stream("traffic"),
    )
    if params.engine == "columnar":
        # Events mode is golden-pinned bit-identical to the legacy
        # runtime, so cells measure the same numbers on either engine.
        runtime = ColumnarRuntime(world, traffic, window_s=params.window_s, mode="events")
    elif params.engine == "columnar-counters":
        runtime = ColumnarRuntime(world, traffic, window_s=params.window_s, mode="counters")
    else:
        runtime = FleetRuntime(world, traffic, window_s=params.window_s)

    t0 = time.perf_counter()
    clean_report = runtime.run(params.clean_rounds * params.period_s)

    n_attacked = max(1, int(round(params.attack_fraction * len(devices))))
    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.single_usrp(streams.stream("replayer")),
        rng=streams.stream("attack"),
    )
    # The attacker eavesdrops real traffic, so it targets devices some
    # gateway actually hears; with partial coverage the unreachable ones
    # have nothing to jam or replay.  Counters cells never populate the
    # verdict log, so they read the same heard set off the runtime's
    # per-device delivery tally instead.
    if params.engine == "columnar-counters":
        heard_names = set(runtime.heard_names())
        reachable = [d for d in devices if d.name in heard_names] or devices
    else:
        heard = {verdict.node_id for verdict in server.verdicts}
        reachable = [d for d in devices if f"{d.dev_addr:08x}" in heard] or devices
    armed_at_s = world.simulator.now_s
    world.arm_attack(
        attack,
        [d.name for d in reachable[:n_attacked]],
        delay_s=params.attack_delay_s,
    )
    attack_report = runtime.run(params.attack_rounds * params.period_s)
    wall_s = time.perf_counter() - t0

    replays = hits = clean = false_alarms = 0
    replay_keys: set[tuple[int, int]] = set()
    for event in attack_report.events:
        verdict = event.verdict
        if verdict is None:
            continue
        if event.kind is EventKind.REPLAY_DELIVERED:
            replays += 1
            hits += verdict.attack_detected
            replay_keys.add((verdict.dev_addr, verdict.fcnt))
        elif event.kind is EventKind.DELIVERED:
            clean += 1
            false_alarms += verdict.attack_detected

    # FB error statistics cover genuine transmissions only: a replay's FB
    # carries the ~543 Hz chain offset whether or not the detector caught
    # it, and would swamp the few-Hz estimation errors being measured.
    fused_errors: list[float] = []
    best_errors: list[float] = []
    for verdict in server.verdicts:
        if verdict.fused is None or (verdict.dev_addr, verdict.fcnt) in replay_keys:
            continue
        truth = true_fb.get(verdict.node_id)
        if truth is None:
            continue
        fused_errors.append(abs(verdict.fused.fb_hz - truth))
        best_row = int(np.argmax(verdict.gateway_snrs_db))
        best_errors.append(abs(verdict.gateway_fbs_hz[best_row] - truth))

    attempts = clean_report.attempts + attack_report.attempts
    contention = [clean_report.contention, attack_report.contention]
    collided = sum(c.collided for c in contention)
    delivered = sum(c.delivered for c in contention)
    duration_s = clean_report.duration_s + attack_report.duration_s
    if params.engine == "columnar-counters":
        # Counter-only capacity run: the contention split is exact
        # (pinned counter-for-counter against events mode), but no frame
        # ever reaches the server, so the estimation/detection columns
        # are not measured.  Every delivered frame (and every replayed
        # one) would have produced exactly one server verdict.
        resolved = delivered + sum(c.replays_delivered for c in contention)
        unmeasured = float("nan")
        return {
            "uplink_attempts": attempts,
            "resolved_uplinks": resolved,
            "delivery_rate": resolved / attempts if attempts else 0.0,
            "dedup_rate": unmeasured,
            "collision_rate": collided / attempts if attempts else 0.0,
            "goodput_fps": delivered / duration_s,
            "fused_fb_mae_hz": unmeasured,
            "best_single_fb_mae_hz": unmeasured,
            "detection_tpr": unmeasured,
            "detection_fpr": unmeasured,
            "detection_latency_s": unmeasured,
            "wall_s": wall_s,
        }
    resolved = len(server.verdicts)
    return {
        "uplink_attempts": attempts,
        "resolved_uplinks": resolved,
        "delivery_rate": resolved / attempts if attempts else 0.0,
        "dedup_rate": server.dedup_rate,
        "collision_rate": collided / attempts if attempts else 0.0,
        "goodput_fps": delivered / duration_s,
        "fused_fb_mae_hz": float(np.mean(fused_errors)) if fused_errors else 0.0,
        "best_single_fb_mae_hz": float(np.mean(best_errors)) if best_errors else 0.0,
        "detection_tpr": hits / replays if replays else 0.0,
        "detection_fpr": false_alarms / clean if clean else 0.0,
        "detection_latency_s": detection_latency_s(
            armed_at_s, attack_report.replay_detection_times_s
        ),
        "wall_s": wall_s,
    }


def measure_fleet_cell(point, trial, captures, prng, params: FleetScaleParams):
    """One sweep-point measurement: build the cell world, run, score.

    Module-level (and driven purely by ``point.key`` + ``params``) so
    :class:`SweepExecutor` can ship it to spawn workers.  Keys are
    ``(n_gateways, n_devices)`` or ``(n_gateways, n_devices, replicate)``
    -- the replicate salt gives benchmark grids independent copies of
    one cell.
    """
    key = tuple(point.key)
    n_gateways, n_devices = int(key[0]), int(key[1])
    replicate = int(key[2]) if len(key) > 2 else 0
    streams = RngStreams(params.seed + 7919 * n_gateways + n_devices + 104_729 * replicate)
    world = _build_cell_world(
        n_gateways,
        n_devices,
        streams,
        params.spreading_factor,
        params.area_radius_m,
        params.gateway_ring_m,
        params.pathloss_exponent,
    )
    server = world.attach_server(NetworkServer(fusion=params.fusion))
    measured = _measure_cell(world, server, params, streams)
    return FleetScaleCell(n_gateways=n_gateways, n_devices=n_devices, **measured)


def run_fleet_scale(
    gateway_counts: tuple[int, ...] = (1, 2, 4, 8),
    device_counts: tuple[int, ...] = (100, 500, 2000),
    clean_rounds: int = 3,
    attack_rounds: int = 2,
    attack_fraction: float = 0.05,
    attack_delay_s: float = 120.0,
    fusion: FusionPolicy = FusionPolicy.INVERSE_VARIANCE,
    spreading_factor: int = 7,
    area_radius_m: float = 1500.0,
    gateway_ring_m: float = 700.0,
    pathloss_exponent: float = 3.4,
    seed: int = 2020,
    period_s: float = 600.0,
    jitter_s: float = 60.0,
    window_s: float = 30.0,
    n_workers: int = 1,
    backend: str = "process",
    replicates: int = 1,
    engine: str = "legacy",
) -> FleetScaleResult:
    """Sweep gateway count × fleet size through the event-driven stack.

    Each cell is an independent world (fresh devices, layout, server,
    traffic schedule) derived from per-cell rng streams, so cells are
    comparable, the grid can grow without perturbing existing cells, and
    ``n_workers > 1`` fans whole cells out across a persistent worker
    pool (``backend="process"`` or ``"thread"``) with identical
    results.  ``replicates > 1`` appends a salt to every key,
    yielding independent copies of each cell (benchmark workloads).
    ``engine="columnar"`` drives each cell through the time-wheel
    :class:`~repro.sim.columnar.ColumnarRuntime` in its bit-identical
    events mode instead of the legacy heap runtime.
    ``engine="columnar-counters"`` runs the same cells in counters mode:
    contention columns (attempts, collisions, goodput, delivery) are
    exact, while the estimation/detection columns are reported as NaN
    because counters cells never assemble frames for the server.
    """
    if engine not in ("legacy", "columnar", "columnar-counters"):
        raise ConfigurationError(
            f"engine must be 'legacy', 'columnar', or 'columnar-counters', got {engine!r}"
        )
    params = FleetScaleParams(
        clean_rounds=clean_rounds,
        attack_rounds=attack_rounds,
        attack_fraction=attack_fraction,
        attack_delay_s=attack_delay_s,
        fusion=fusion,
        spreading_factor=spreading_factor,
        area_radius_m=area_radius_m,
        gateway_ring_m=gateway_ring_m,
        pathloss_exponent=pathloss_exponent,
        seed=seed,
        period_s=period_s,
        jitter_s=jitter_s,
        window_s=window_s,
        engine=engine,
    )
    if replicates < 1:
        raise ConfigurationError(f"need >= 1 replicate, got {replicates}")
    keys: list[tuple] = [
        (n_gateways, n_devices) if replicates == 1 else (n_gateways, n_devices, rep)
        for n_gateways in gateway_counts
        for n_devices in device_counts
        for rep in range(replicates)
    ]
    sweep = SweepExecutor(n_workers=n_workers, backend=backend).run(
        [SweepPoint(key=key) for key in keys],
        partial(measure_fleet_cell, params=params),
    )
    return FleetScaleResult(cells=[sweep.first(key) for key in sweep.keys()], fusion=fusion)
