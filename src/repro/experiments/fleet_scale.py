"""Fleet scale: gateways × devices sweep over the network-server layer.

The paper evaluates one SoftLoRa gateway over 16 nodes; deployments run
thousands of devices heard by several gateways each.  This driver grows
the Fig. 13 fleet workload along both axes -- 1..8 gateways, 100..2000
devices -- with the devices scattered over a multi-kilometre cell so
coverage is partial and per-gateway SNRs differ.  Per (gateways,
devices) cell it reports:

* **delivery / dedup** -- fraction of uplinks heard at all, and mean
  gateway copies folded into each resolved verdict;
* **fused FB error vs best single gateway** -- the cross-gateway
  fingerprinting payoff: inverse-variance fusion should beat the best
  single link's estimate on average;
* **detection accuracy** -- TPR/FPR of the fused replay verdict under
  the frame-delay attack against a slice of the fleet.

Everything runs the batched path: one :meth:`LoRaWanWorld.uplink_batch`
per round, one vectorized FB draw per step, one
:meth:`NetworkServer.process_step` resolution per step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.attack.delay_attack import FrameDelayAttack
from repro.attack.jammer import StealthyJammer
from repro.attack.replayer import Replayer
from repro.core.softlora import SoftLoRaGateway
from repro.experiments.common import SweepPoint, run_sweep
from repro.lorawan.gateway import CommodityGateway
from repro.phy.chirp import ChirpConfig
from repro.radio.channel import LinkBudget
from repro.radio.geometry import Position
from repro.radio.pathloss import LogDistancePathLoss
from repro.server import FusionPolicy, NetworkServer
from repro.sim.network import EventKind, LoRaWanWorld
from repro.sim.rng import RngStreams
from repro.sim.scenarios import build_fleet


@dataclass(frozen=True)
class FleetScaleCell:
    """Measurements for one (gateways, devices) sweep point."""

    n_gateways: int
    n_devices: int
    uplink_attempts: int
    resolved_uplinks: int
    delivery_rate: float
    dedup_rate: float
    fused_fb_mae_hz: float
    best_single_fb_mae_hz: float
    detection_tpr: float
    detection_fpr: float
    wall_s: float

    @property
    def fusion_gain(self) -> float:
        """Best-single MAE over fused MAE (>1 means fusion wins)."""
        if self.fused_fb_mae_hz == 0:
            return float("inf")
        return self.best_single_fb_mae_hz / self.fused_fb_mae_hz


@dataclass
class FleetScaleResult:
    cells: list[FleetScaleCell]
    fusion: FusionPolicy

    def cell(self, n_gateways: int, n_devices: int) -> FleetScaleCell:
        for cell in self.cells:
            if (cell.n_gateways, cell.n_devices) == (n_gateways, n_devices):
                return cell
        raise KeyError((n_gateways, n_devices))

    def format(self) -> str:
        rows = []
        for c in self.cells:
            rows.append(
                [
                    c.n_gateways,
                    c.n_devices,
                    round(c.delivery_rate, 3),
                    round(c.dedup_rate, 2),
                    round(c.fused_fb_mae_hz, 1),
                    round(c.best_single_fb_mae_hz, 1),
                    round(c.detection_tpr, 3),
                    round(c.detection_fpr, 4),
                    round(c.wall_s, 2),
                ]
            )
        return format_table(
            [
                "gateways",
                "devices",
                "delivery",
                "copies/uplink",
                "fused MAE (Hz)",
                "best-GW MAE (Hz)",
                "TPR",
                "FPR",
                "wall (s)",
            ],
            rows,
            title=f"Fleet scale -- multi-gateway sweep ({self.fusion.value} fusion)",
        )


def _build_cell_world(
    n_gateways: int,
    n_devices: int,
    streams: RngStreams,
    spreading_factor: int,
    area_radius_m: float,
    gateway_ring_m: float,
    pathloss_exponent: float,
) -> LoRaWanWorld:
    """One cell: devices scattered over a disk, gateways on an inner ring."""
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=0.5e6)
    devices = build_fleet(
        n_devices=n_devices, streams=streams, spreading_factor=spreading_factor
    )
    layout = streams.stream("layout")
    for device in devices:
        radius = area_radius_m * float(np.sqrt(layout.uniform(0.0, 1.0)))
        angle = float(layout.uniform(0.0, 2 * np.pi))
        device.position = Position(
            x=radius * float(np.cos(angle)), y=radius * float(np.sin(angle)), z=1.0
        )
    link = LinkBudget(pathloss=LogDistancePathLoss(exponent=pathloss_exponent))
    world = LoRaWanWorld(
        gateway=SoftLoRaGateway(config=config, commodity=CommodityGateway()),
        gateway_position=Position(gateway_ring_m, 0.0, 15.0),
        link=link,
        rng=streams.stream("world"),
    )
    for index in range(1, n_gateways):
        angle = 2 * np.pi * index / n_gateways
        world.add_gateway(
            Position(
                x=gateway_ring_m * float(np.cos(angle)),
                y=gateway_ring_m * float(np.sin(angle)),
                z=15.0,
            )
        )
    for device in devices:
        world.add_device(device)
    return world


def _measure_cell(
    world: LoRaWanWorld,
    server: NetworkServer,
    clean_rounds: int,
    attack_rounds: int,
    attack_fraction: float,
    attack_delay_s: float,
    streams: RngStreams,
) -> dict:
    """Run the cell's rounds and pull the per-uplink evidence apart."""
    devices = list(world.devices.values())
    true_fb = {f"{d.dev_addr:08x}": d.fb_hz for d in devices}
    period_s = 600.0
    attempts = 0
    fused_errors: list[float] = []
    best_errors: list[float] = []
    t0 = time.perf_counter()
    for round_index in range(clean_rounds):
        world.uplink_batch(request_time_s=10.0 + round_index * period_s)
        attempts += len(devices)

    n_attacked = max(1, int(round(attack_fraction * len(devices))))
    attack = FrameDelayAttack(
        jammer=StealthyJammer(),
        replayer=Replayer.single_usrp(streams.stream("replayer")),
        rng=streams.stream("attack"),
    )
    # The attacker eavesdrops real traffic, so it targets devices some
    # gateway actually hears; with partial coverage the unreachable ones
    # have nothing to jam or replay.
    heard = {verdict.node_id for verdict in server.verdicts}
    reachable = [d for d in devices if f"{d.dev_addr:08x}" in heard] or devices
    world.arm_attack(
        attack, [d.name for d in reachable[:n_attacked]], delay_s=attack_delay_s
    )
    replays = hits = clean = false_alarms = 0
    replay_keys: set[tuple[int, int]] = set()
    for round_index in range(clean_rounds, clean_rounds + attack_rounds):
        events = world.uplink_batch(request_time_s=10.0 + round_index * period_s)
        attempts += len(devices)
        for event in events:
            verdict = event.verdict
            if verdict is None:
                continue
            if event.kind is EventKind.REPLAY_DELIVERED:
                replays += 1
                hits += verdict.attack_detected
                replay_keys.add((verdict.dev_addr, verdict.fcnt))
            elif event.kind is EventKind.DELIVERED:
                clean += 1
                false_alarms += verdict.attack_detected
    wall_s = time.perf_counter() - t0

    # FB error statistics cover genuine transmissions only: a replay's FB
    # carries the ~543 Hz chain offset whether or not the detector caught
    # it, and would swamp the few-Hz estimation errors being measured.
    for verdict in server.verdicts:
        if verdict.fused is None or (verdict.dev_addr, verdict.fcnt) in replay_keys:
            continue
        truth = true_fb.get(verdict.node_id)
        if truth is None:
            continue
        fused_errors.append(abs(verdict.fused.fb_hz - truth))
        best_row = int(np.argmax(verdict.gateway_snrs_db))
        best_errors.append(abs(verdict.gateway_fbs_hz[best_row] - truth))

    resolved = len(server.verdicts)
    return {
        "uplink_attempts": attempts,
        "resolved_uplinks": resolved,
        "delivery_rate": resolved / attempts if attempts else 0.0,
        "dedup_rate": server.dedup_rate,
        "fused_fb_mae_hz": float(np.mean(fused_errors)) if fused_errors else 0.0,
        "best_single_fb_mae_hz": float(np.mean(best_errors)) if best_errors else 0.0,
        "detection_tpr": hits / replays if replays else 0.0,
        "detection_fpr": false_alarms / clean if clean else 0.0,
        "wall_s": wall_s,
    }


def run_fleet_scale(
    gateway_counts: tuple[int, ...] = (1, 2, 4, 8),
    device_counts: tuple[int, ...] = (100, 500, 2000),
    clean_rounds: int = 3,
    attack_rounds: int = 2,
    attack_fraction: float = 0.05,
    attack_delay_s: float = 120.0,
    fusion: FusionPolicy = FusionPolicy.INVERSE_VARIANCE,
    spreading_factor: int = 7,
    area_radius_m: float = 1500.0,
    gateway_ring_m: float = 700.0,
    pathloss_exponent: float = 3.4,
    seed: int = 2020,
) -> FleetScaleResult:
    """Sweep gateway count × fleet size through the network-server stack.

    Each cell is an independent world (fresh devices, layout, server)
    derived from per-cell rng streams, so cells are comparable and the
    sweep grid can grow without perturbing existing cells.
    """

    def measure(point, trial, capture, prng):
        n_gateways, n_devices = point.key
        streams = RngStreams(seed + 7919 * n_gateways + n_devices)
        world = _build_cell_world(
            n_gateways,
            n_devices,
            streams,
            spreading_factor,
            area_radius_m,
            gateway_ring_m,
            pathloss_exponent,
        )
        server = world.attach_server(NetworkServer(fusion=fusion))
        measured = _measure_cell(
            world,
            server,
            clean_rounds,
            attack_rounds,
            attack_fraction,
            attack_delay_s,
            streams,
        )
        return FleetScaleCell(n_gateways=n_gateways, n_devices=n_devices, **measured)

    sweep = run_sweep(
        [
            SweepPoint(key=(n_gateways, n_devices))
            for n_gateways in gateway_counts
            for n_devices in device_counts
        ],
        measure,
    )
    return FleetScaleResult(cells=[sweep.first(key) for key in sweep.keys()], fusion=fusion)
