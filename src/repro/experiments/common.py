"""Shared scenario machinery for the experiment drivers.

Every figure/table driver used to hand-roll its own synthesize-and-sweep
loop around :func:`synthesize_capture`.  They now share one declarative
pipeline instead:

* :class:`ScenarioSpec` -- a frozen description of one capture condition
  (chirp config, SNR, FB law, preamble length, noise model ...), with
  :meth:`ScenarioSpec.synthesize` producing a ground-truthed capture and
  :meth:`ScenarioSpec.synthesize_batch` a stacked
  :class:`repro.pipeline.CaptureBatch` for the batched engine;
* :class:`SweepPoint` -- one point of a sweep: a key (SNR value, survey
  cell, node index ...), the spec (or named spec variants) to synthesize
  there, and a trial count;
* :func:`run_sweep` -- the single loop that walks every point/trial,
  synthesizes the declared captures, and hands them to the driver's
  ``measure`` callback.

The runner preserves the classic drivers' rng call order (per trial: FB
draw, then phase draw, then onset fraction, then noise), so ported
drivers regenerate the exact numbers their hand-rolled loops produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpConfig, preamble_at_times
from repro.sdr.iq import IQTrace
from repro.sdr.noise import RealNoiseModel, complex_awgn, noise_power_for_snr


@dataclass(frozen=True)
class SynthesizedCapture:
    """A synthetic SDR capture with exact ground truth."""

    trace: IQTrace
    true_onset_time_s: float
    true_onset_index_float: float
    fb_hz: float
    snr_db: float
    noise_power: float


def synthesize_capture(
    config: ChirpConfig,
    rng: np.random.Generator,
    snr_db: float = 30.0,
    fb_hz: float = -20e3,
    phase: float | None = None,
    n_chirps: int = 8,
    pad_chirps: float = 1.5,
    fractional_onset: bool = True,
    amplitude: float = 1.0,
    noise_model: RealNoiseModel | None = None,
    start_time_s: float = 0.0,
) -> SynthesizedCapture:
    """One noise-padded preamble capture, onset between ADC samples.

    The capture contains ``pad_chirps`` chirp-times of pure noise followed
    by signal running to the end of the window: a real SoftLoRa capture
    ends while the (much longer) frame is still on the air, so the onset
    is the *only* statistical change point in the trace.  When
    ``fractional_onset`` is set the true onset is offset by a random
    sub-sample fraction -- the paper's upper-bound metric exists exactly
    because of this unobservable fraction.
    """
    if phase is None:
        phase = float(rng.uniform(0.0, 2 * np.pi))
    fs = config.sample_rate_hz
    spc = config.samples_per_chirp
    pad = int(round(pad_chirps * spc))
    total = pad + n_chirps * spc
    fraction = float(rng.uniform(0.0, 1.0)) if fractional_onset else 0.0
    onset_index_float = pad + fraction
    onset_time = onset_index_float / fs
    t = np.arange(total) / fs - onset_time
    # One extra chirp-time of signal guarantees coverage to the window end
    # despite the fractional onset shift.
    clean = preamble_at_times(
        t, config, n_chirps=n_chirps + 1, fb_hz=fb_hz, phase=phase, amplitude=amplitude
    )
    noise_power = noise_power_for_snr(amplitude**2, snr_db)
    if noise_model is None:
        noise = complex_awgn(total, noise_power, rng)
    else:
        noise = noise_model.generate(total, noise_power, rng)
    trace = IQTrace(clean + noise, fs, start_time_s=start_time_s)
    return SynthesizedCapture(
        trace=trace,
        true_onset_time_s=start_time_s + onset_time,
        true_onset_index_float=onset_index_float,
        fb_hz=fb_hz,
        snr_db=snr_db,
        noise_power=noise_power,
    )


def uniform_fb(low_hz: float = -25e3, high_hz: float = -17e3) -> Callable:
    """The drivers' stock FB law: uniform over the paper's measured band."""

    def draw(rng: np.random.Generator) -> float:
        return float(rng.uniform(low_hz, high_hz))

    return draw


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one synthesized-capture condition.

    ``fb_hz`` may be a fixed bias or a callable drawing one from the
    trial's rng (see :func:`uniform_fb`); the draw happens before capture
    synthesis, matching the classic drivers' call order.
    """

    config: ChirpConfig
    snr_db: float = 30.0
    fb_hz: Any = -20e3
    phase: float | None = None
    n_chirps: int = 8
    pad_chirps: float = 1.5
    fractional_onset: bool = True
    amplitude: float = 1.0
    noise_model: RealNoiseModel | None = None
    start_time_s: float = 0.0

    def synthesize(self, rng: np.random.Generator) -> SynthesizedCapture:
        """One ground-truthed capture of this condition."""
        fb = self.fb_hz(rng) if callable(self.fb_hz) else float(self.fb_hz)
        return synthesize_capture(
            self.config,
            rng,
            snr_db=self.snr_db,
            fb_hz=fb,
            phase=self.phase,
            n_chirps=self.n_chirps,
            pad_chirps=self.pad_chirps,
            fractional_onset=self.fractional_onset,
            amplitude=self.amplitude,
            noise_model=self.noise_model,
            start_time_s=self.start_time_s,
        )

    def synthesize_batch(self, rng: np.random.Generator, n_captures: int):
        """``n_captures`` captures stacked for the batched engine.

        Returns ``(CaptureBatch, [SynthesizedCapture, ...])`` -- the batch
        for :class:`repro.pipeline.BatchPipeline`, the per-capture ground
        truth for scoring.
        """
        from repro.pipeline.batch import CaptureBatch

        if n_captures < 0:
            raise ConfigurationError(f"batch needs >= 0 captures, got {n_captures}")
        captures = [self.synthesize(rng) for _ in range(n_captures)]
        return (
            CaptureBatch.from_traces(
                [c.trace for c in captures], sample_rate_hz=self.config.sample_rate_hz
            ),
            captures,
        )


@dataclass(frozen=True)
class SweepPoint:
    """One point of an experiment sweep.

    ``spec`` is a :class:`ScenarioSpec`, a mapping of named spec variants
    (synthesized per trial in declaration order -- e.g. Fig. 14's
    gaussian/real noise pair), or ``None`` for sweeps over non-synthetic
    quantities (e.g. Table 1's mechanistic model rows).
    """

    key: Any
    spec: Any = None
    n_trials: int = 1
    metadata: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """Measurements grouped by sweep key, in point order."""

    points: list[SweepPoint]
    measurements: dict[Any, list[Any]]

    def keys(self) -> list[Any]:
        return [point.key for point in self.points]

    def trials(self, key: Any) -> list[Any]:
        """Every trial measurement at one sweep point."""
        return self.measurements[key]

    def first(self, key: Any) -> Any:
        return self.measurements[key][0]

    def flat(self) -> list[Any]:
        """All measurements in (point, trial) order."""
        return [m for point in self.points for m in self.measurements[point.key]]


def run_sweep(
    points: Iterable[SweepPoint],
    measure: Callable[[SweepPoint, int, Any, np.random.Generator | None], Any],
    rng: np.random.Generator | None = None,
    rng_factory: Callable[[SweepPoint], np.random.Generator] | None = None,
) -> SweepResult:
    """Walk every sweep point/trial, synthesizing declared captures.

    ``measure(point, trial, captures, rng)`` receives the trial's capture
    (or dict of variant captures, or ``None`` for spec-less points) plus
    the generator in use, and returns one measurement.

    RNG policy mirrors the two idioms of the classic drivers: pass
    ``rng`` to share one stream across the whole sweep (SNR sweeps), or
    ``rng_factory`` to derive an independent stream per point (per-node /
    per-power sweeps via :class:`repro.sim.rng.RngStreams`).
    """
    if rng is not None and rng_factory is not None:
        raise ConfigurationError("pass either rng or rng_factory, not both")
    points = list(points)
    keys = [point.key for point in points]
    if len(set(keys)) != len(keys):
        raise ConfigurationError(f"sweep keys must be unique, got {keys}")
    measurements: dict[Any, list[Any]] = {}
    for point in points:
        if point.n_trials < 1:
            raise ConfigurationError(f"point {point.key!r} needs >= 1 trial")
        point_rng = rng_factory(point) if rng_factory is not None else rng
        if point.spec is not None and point_rng is None:
            raise ConfigurationError(
                f"point {point.key!r} declares captures but no rng was provided"
            )
        trials = []
        for trial in range(point.n_trials):
            if point.spec is None:
                captures = None
            elif isinstance(point.spec, ScenarioSpec):
                captures = point.spec.synthesize(point_rng)
            else:
                captures = {
                    name: spec.synthesize(point_rng) for name, spec in point.spec.items()
                }
            trials.append(measure(point, trial, captures, point_rng))
        measurements[point.key] = trials
    return SweepResult(points=points, measurements=measurements)


def sweep_means(result: SweepResult) -> dict[Any, float]:
    """Per-key means for sweeps whose measurements are scalars."""
    return {key: float(np.mean(result.trials(key))) for key in result.keys()}
