"""Shared synthesis helpers for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.chirp import ChirpConfig, preamble_at_times
from repro.sdr.iq import IQTrace
from repro.sdr.noise import RealNoiseModel, complex_awgn, noise_power_for_snr


@dataclass(frozen=True)
class SynthesizedCapture:
    """A synthetic SDR capture with exact ground truth."""

    trace: IQTrace
    true_onset_time_s: float
    true_onset_index_float: float
    fb_hz: float
    snr_db: float
    noise_power: float


def synthesize_capture(
    config: ChirpConfig,
    rng: np.random.Generator,
    snr_db: float = 30.0,
    fb_hz: float = -20e3,
    phase: float | None = None,
    n_chirps: int = 8,
    pad_chirps: float = 1.5,
    fractional_onset: bool = True,
    amplitude: float = 1.0,
    noise_model: RealNoiseModel | None = None,
    start_time_s: float = 0.0,
) -> SynthesizedCapture:
    """One noise-padded preamble capture, onset between ADC samples.

    The capture contains ``pad_chirps`` chirp-times of pure noise followed
    by signal running to the end of the window: a real SoftLoRa capture
    ends while the (much longer) frame is still on the air, so the onset
    is the *only* statistical change point in the trace.  When
    ``fractional_onset`` is set the true onset is offset by a random
    sub-sample fraction -- the paper's upper-bound metric exists exactly
    because of this unobservable fraction.
    """
    if phase is None:
        phase = float(rng.uniform(0.0, 2 * np.pi))
    fs = config.sample_rate_hz
    spc = config.samples_per_chirp
    pad = int(round(pad_chirps * spc))
    total = pad + n_chirps * spc
    fraction = float(rng.uniform(0.0, 1.0)) if fractional_onset else 0.0
    onset_index_float = pad + fraction
    onset_time = onset_index_float / fs
    t = np.arange(total) / fs - onset_time
    # One extra chirp-time of signal guarantees coverage to the window end
    # despite the fractional onset shift.
    clean = preamble_at_times(
        t, config, n_chirps=n_chirps + 1, fb_hz=fb_hz, phase=phase, amplitude=amplitude
    )
    noise_power = noise_power_for_snr(amplitude**2, snr_db)
    if noise_model is None:
        noise = complex_awgn(total, noise_power, rng)
    else:
        noise = noise_model.generate(total, noise_power, rng)
    trace = IQTrace(clean + noise, fs, start_time_s=start_time_s)
    return SynthesizedCapture(
        trace=trace,
        true_onset_time_s=start_time_s + onset_time,
        true_onset_index_float=onset_index_float,
        fb_hz=fb_hz,
        snr_db=snr_db,
        noise_power=noise_power,
    )
