"""Shared scenario machinery for the experiment drivers.

Every figure/table driver used to hand-roll its own synthesize-and-sweep
loop around :func:`synthesize_capture`.  They now share one declarative
pipeline instead:

* :class:`ScenarioSpec` -- a frozen description of one capture condition
  (chirp config, SNR, FB law, preamble length, noise model ...), with
  :meth:`ScenarioSpec.synthesize` producing a ground-truthed capture and
  :meth:`ScenarioSpec.synthesize_batch` a stacked
  :class:`repro.pipeline.CaptureBatch` for the batched engine;
* :class:`SweepPoint` -- one point of a sweep: a key (SNR value, survey
  cell, node index ...), the spec (or named spec variants) to synthesize
  there, and a trial count;
* :class:`SweepExecutor` -- the engine that walks every point/trial,
  synthesizes the declared captures, and hands them to the driver's
  ``measure`` callback -- serially, or fanned out over a persistent
  :class:`repro.parallel.WorkerPool` (``n_workers > 1``) in
  cost-balanced chunks;
* :func:`run_sweep` -- the classic serial entry, now a thin wrapper
  around ``SweepExecutor(n_workers=1)``.

The serial runner preserves the classic drivers' rng call order (per
trial: FB draw, then phase draw, then onset fraction, then noise), so
ported drivers regenerate the exact numbers their hand-rolled loops
produced.  Parallel runs ride the :mod:`repro.parallel` layer: the
default ``backend="process"`` dispatches to a warm ``spawn`` pool that
survives across ``run()`` calls, ships large payload arrays through
zero-copy shared memory, and steals work chunk by chunk
(``imap_unordered``) before reordering results into declaration order;
``backend="thread"`` runs the same chunks on threads for
numpy-dominated measures that release the GIL.  Everything that crosses
the process boundary -- points, specs, the ``measure`` callable,
per-point generators -- must pickle: module-level functions (or
:func:`functools.partial` over them) instead of closures, and
:class:`UniformFbLaw` instead of a lambda for the stock FB draw.
Per-point seeds derive deterministically through
:class:`repro.sim.rng.RngStreams`, so results are *bitwise* identical
at any worker count, backend, or chunking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel import pool as parallel_pool
from repro.parallel import schedule as parallel_schedule
from repro.parallel import shm as parallel_shm
from repro.phy.chirp import ChirpConfig, preamble_at_times
from repro.sdr.iq import IQTrace
from repro.sdr.noise import RealNoiseModel, complex_awgn, noise_power_for_snr
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class SynthesizedCapture:
    """A synthetic SDR capture with exact ground truth."""

    trace: IQTrace
    true_onset_time_s: float
    true_onset_index_float: float
    fb_hz: float
    snr_db: float
    noise_power: float


def synthesize_capture(
    config: ChirpConfig,
    rng: np.random.Generator,
    snr_db: float = 30.0,
    fb_hz: float = -20e3,
    phase: float | None = None,
    n_chirps: int = 8,
    pad_chirps: float = 1.5,
    fractional_onset: bool = True,
    amplitude: float = 1.0,
    noise_model: RealNoiseModel | None = None,
    start_time_s: float = 0.0,
) -> SynthesizedCapture:
    """One noise-padded preamble capture, onset between ADC samples.

    The capture contains ``pad_chirps`` chirp-times of pure noise followed
    by signal running to the end of the window: a real SoftLoRa capture
    ends while the (much longer) frame is still on the air, so the onset
    is the *only* statistical change point in the trace.  When
    ``fractional_onset`` is set the true onset is offset by a random
    sub-sample fraction -- the paper's upper-bound metric exists exactly
    because of this unobservable fraction.
    """
    if phase is None:
        phase = float(rng.uniform(0.0, 2 * np.pi))
    fs = config.sample_rate_hz
    spc = config.samples_per_chirp
    pad = int(round(pad_chirps * spc))
    total = pad + n_chirps * spc
    fraction = float(rng.uniform(0.0, 1.0)) if fractional_onset else 0.0
    onset_index_float = pad + fraction
    onset_time = onset_index_float / fs
    t = np.arange(total) / fs - onset_time
    # One extra chirp-time of signal guarantees coverage to the window end
    # despite the fractional onset shift.
    clean = preamble_at_times(
        t, config, n_chirps=n_chirps + 1, fb_hz=fb_hz, phase=phase, amplitude=amplitude
    )
    noise_power = noise_power_for_snr(amplitude**2, snr_db)
    if noise_model is None:
        noise = complex_awgn(total, noise_power, rng)
    else:
        noise = noise_model.generate(total, noise_power, rng)
    trace = IQTrace(clean + noise, fs, start_time_s=start_time_s)
    return SynthesizedCapture(
        trace=trace,
        true_onset_time_s=start_time_s + onset_time,
        true_onset_index_float=onset_index_float,
        fb_hz=fb_hz,
        snr_db=snr_db,
        noise_power=noise_power,
    )


@dataclass(frozen=True)
class UniformFbLaw:
    """A picklable FB law: uniform over a band, drawn per trial.

    Being a frozen dataclass (not a closure) it survives the ``spawn``
    pickling boundary, so specs carrying it can cross into
    :class:`SweepExecutor` worker processes.
    """

    low_hz: float = -25e3
    high_hz: float = -17e3

    def __call__(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_hz, self.high_hz))


def uniform_fb(low_hz: float = -25e3, high_hz: float = -17e3) -> UniformFbLaw:
    """The drivers' stock FB law: uniform over the paper's measured band."""
    return UniformFbLaw(low_hz=low_hz, high_hz=high_hz)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one synthesized-capture condition.

    ``fb_hz`` may be a fixed bias or a callable drawing one from the
    trial's rng (see :func:`uniform_fb`); the draw happens before capture
    synthesis, matching the classic drivers' call order.
    """

    config: ChirpConfig
    snr_db: float = 30.0
    fb_hz: Any = -20e3
    phase: float | None = None
    n_chirps: int = 8
    pad_chirps: float = 1.5
    fractional_onset: bool = True
    amplitude: float = 1.0
    noise_model: RealNoiseModel | None = None
    start_time_s: float = 0.0

    def synthesize(self, rng: np.random.Generator) -> SynthesizedCapture:
        """One ground-truthed capture of this condition."""
        fb = self.fb_hz(rng) if callable(self.fb_hz) else float(self.fb_hz)
        return synthesize_capture(
            self.config,
            rng,
            snr_db=self.snr_db,
            fb_hz=fb,
            phase=self.phase,
            n_chirps=self.n_chirps,
            pad_chirps=self.pad_chirps,
            fractional_onset=self.fractional_onset,
            amplitude=self.amplitude,
            noise_model=self.noise_model,
            start_time_s=self.start_time_s,
        )

    def synthesize_batch(self, rng: np.random.Generator, n_captures: int):
        """``n_captures`` captures stacked for the batched engine.

        Returns ``(CaptureBatch, [SynthesizedCapture, ...])`` -- the batch
        for :class:`repro.pipeline.BatchPipeline`, the per-capture ground
        truth for scoring.
        """
        from repro.pipeline.batch import CaptureBatch

        if n_captures < 0:
            raise ConfigurationError(f"batch needs >= 0 captures, got {n_captures}")
        captures = [self.synthesize(rng) for _ in range(n_captures)]
        return (
            CaptureBatch.from_traces(
                [c.trace for c in captures], sample_rate_hz=self.config.sample_rate_hz
            ),
            captures,
        )


@dataclass(frozen=True)
class SweepPoint:
    """One point of an experiment sweep.

    ``spec`` is a :class:`ScenarioSpec`, a mapping of named spec variants
    (synthesized per trial in declaration order -- e.g. Fig. 14's
    gaussian/real noise pair), or ``None`` for sweeps over non-synthetic
    quantities (e.g. Table 1's mechanistic model rows).
    """

    key: Any
    spec: Any = None
    n_trials: int = 1
    metadata: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TransportStats:
    """How one parallel run moved its task payloads to the workers.

    Attributes:
        backend: ``"process"`` or ``"thread"``.
        n_workers: Worker count the run dispatched to.
        n_chunks: Work-stealing chunks the grid was cut into.
        payload_pickle_bytes: Bytes of pickled task payload shipped to
            the pool (after shared-memory stripping; 0 for the thread
            backend, which never pickles).
        shm_bytes: Bytes that rode the run's shared-memory block
            instead of the pickle stream.
        pool_reused: Whether the dispatch found the pool already warm
            (no spawn/import cost paid inside this run).
    """

    backend: str
    n_workers: int
    n_chunks: int
    payload_pickle_bytes: int
    shm_bytes: int
    pool_reused: bool


@dataclass
class SweepResult:
    """Measurements grouped by sweep key, in point order.

    ``transport`` carries the parallel run's payload accounting
    (``None`` on serial runs).
    """

    points: list[SweepPoint]
    measurements: dict[Any, list[Any]]
    transport: TransportStats | None = None

    def keys(self) -> list[Any]:
        return [point.key for point in self.points]

    def trials(self, key: Any) -> list[Any]:
        """Every trial measurement at one sweep point."""
        return self.measurements[key]

    def first(self, key: Any) -> Any:
        return self.measurements[key][0]

    def flat(self) -> list[Any]:
        """All measurements in (point, trial) order."""
        return [m for point in self.points for m in self.measurements[point.key]]


def _run_point(
    point: SweepPoint, measure: Callable, point_rng: np.random.Generator | None
) -> list[Any]:
    """Run every trial of one (already validated) sweep point.

    The per-point generator rides along with its state, keeping any
    worker count, backend, or chunking bit-identical to the serial
    walk.
    """
    trials = []
    for trial in range(point.n_trials):
        if point.spec is None:
            captures = None
        elif isinstance(point.spec, ScenarioSpec):
            captures = point.spec.synthesize(point_rng)
        else:
            captures = {name: spec.synthesize(point_rng) for name, spec in point.spec.items()}
        trials.append(measure(point, trial, captures, point_rng))
    return trials


def _execute_point(
    task: tuple[SweepPoint, Callable, np.random.Generator | None],
) -> tuple[Any, list[Any]]:
    """Validate and run one sweep point (standalone compatibility entry).

    :meth:`SweepExecutor.run` validates the whole grid up front in the
    parent and dispatches through :func:`_execute_chunk`; this wrapper
    keeps the classic one-point contract (with its own validation) for
    direct callers.
    """
    point, measure, point_rng = task
    if point.n_trials < 1:
        raise ConfigurationError(f"point {point.key!r} needs >= 1 trial")
    if point.spec is not None and point_rng is None:
        raise ConfigurationError(f"point {point.key!r} declares captures but no rng was provided")
    return point.key, _run_point(point, measure, point_rng)


@dataclass(frozen=True)
class _ChunkTask:
    """One work-stealing unit: a batch of points plus transport context.

    Attributes:
        index: Chunk position in the plan (progress accounting only --
            results re-associate by point key).
        payload: ``(measure, [(point, rng), ...])``, possibly with
            large arrays stripped into shared-memory descriptors.
        shared: The run's named shared mapping (arrays or descriptors),
            installed for :func:`repro.parallel.shared_arrays`.
        blocks: Shared-memory block names this run uses; workers evict
            cached attachments outside this set.
    """

    index: int
    payload: Any
    shared: Any
    blocks: tuple[str, ...]


def _execute_chunk(task: _ChunkTask) -> tuple[int, list[tuple[Any, list[Any]]]]:
    """Run one chunk of sweep points (the pool's unit of dispatch).

    Module-level so the spawn backend can pickle it.  Resolves any
    shared-memory descriptors into zero-copy views, installs the run's
    shared mapping, and walks the chunk's points in declaration order.
    """
    parallel_shm.release_other_blocks(set(task.blocks))
    measure, items = parallel_shm.resolve_payload(task.payload)
    parallel_shm.use_shared(parallel_shm.resolve_payload(task.shared))
    return task.index, [(point.key, _run_point(point, measure, rng)) for point, rng in items]


def _point_cost(point: SweepPoint) -> float:
    """Relative cost estimate of one sweep point for chunk planning.

    ``metadata["cost_hint"]`` overrides when a driver knows better;
    otherwise the estimate is trials x synthesized samples (specs) or
    just trials (spec-less points).  Costs shape chunk boundaries only
    -- they can be arbitrarily wrong without affecting results.
    """
    hint = point.metadata.get("cost_hint") if point.metadata else None
    if hint is not None:
        return float(hint)

    def spec_samples(spec: ScenarioSpec) -> float:
        return (spec.pad_chirps + spec.n_chirps + 1) * spec.config.samples_per_chirp

    if isinstance(point.spec, ScenarioSpec):
        weight = spec_samples(point.spec)
    elif point.spec is not None:
        weight = sum(spec_samples(spec) for spec in point.spec.values())
    else:
        weight = 1.0
    return max(1, point.n_trials) * weight


@dataclass(frozen=True)
class SweepExecutor:
    """Walks sweep points serially or across a persistent worker pool.

    RNG policy (at most one of the three):

    * ``rng`` -- one shared stream threads through every point/trial in
      declaration order (the classic SNR-sweep idiom).  Serial only: a
      shared stream has an inherent order, so parallel runs reject it.
    * ``rng_factory`` -- an independent generator per point, created in
      the parent in point order (per-node / per-power sweeps).
    * ``point_seed`` -- deterministic per-point derivation: each point
      gets ``RngStreams(point_seed).fresh(f"point:{key!r}")``, so the
      grid can grow (or be re-partitioned across workers) without
      perturbing existing points.

    Parallel runs (``n_workers > 1``) dispatch to a
    :class:`repro.parallel.WorkerPool` that *persists across run()
    calls*: pass one explicitly (``pool=``, e.g. from a ``with
    WorkerPool(4) as pool:`` block), or let the executor resolve the
    module-level default pool for its ``(backend, n_workers)``
    signature -- either way the spawn/import cost is paid once, not per
    sweep.  ``backend="process"`` (default) runs spawned interpreters
    and ships large payload arrays through zero-copy shared memory
    (``shm_min_bytes`` threshold; large read-only inputs can also ride
    the run-scoped ``shared=`` mapping, reachable in workers via
    :func:`repro.parallel.shared_arrays`).  ``backend="thread"`` runs
    the same chunks on threads -- no pickling at all -- for
    numpy-dominated measures that release the GIL.

    The grid is cut into contiguous chunks sized by a per-point cost
    estimate (about four chunks per worker; an explicit ``chunksize``
    forces fixed point counts instead) and dispatched work-stealing via
    ``imap_unordered``; completed chunks re-associate by point key, so
    the result order is declaration order no matter which worker
    finished first.  Worker count, backend, chunking, and stealing
    order never change results -- only wall-clock.
    """

    n_workers: int = 1
    mp_context: str = "spawn"
    chunksize: int | None = None
    backend: str = "process"
    pool: parallel_pool.WorkerPool | None = None
    shm_min_bytes: int | None = parallel_shm.DEFAULT_MIN_SHM_BYTES

    def run(
        self,
        points: Iterable[SweepPoint],
        measure: Callable[[SweepPoint, int, Any, np.random.Generator | None], Any],
        rng: np.random.Generator | None = None,
        rng_factory: Callable[[SweepPoint], np.random.Generator] | None = None,
        point_seed: int | None = None,
        shared: Mapping[str, np.ndarray] | None = None,
    ) -> SweepResult:
        """Measure every point/trial; see the class docstring for rng policy.

        The whole grid is validated here in the parent -- trial counts,
        spec/rng pairing, key uniqueness -- so misconfigured sweeps fail
        fast with a clear error instead of a worker traceback.
        """
        if self.n_workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {self.n_workers}")
        if self.chunksize is not None and self.chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {self.chunksize}")
        if self.backend not in parallel_pool.BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {parallel_pool.BACKENDS}, got {self.backend!r}"
            )
        given = [x for x in (rng, rng_factory, point_seed) if x is not None]
        if len(given) > 1:
            raise ConfigurationError("pass at most one of rng, rng_factory, point_seed")
        points = list(points)
        keys = [point.key for point in points]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"sweep keys must be unique, got {keys}")

        def rng_for(point: SweepPoint) -> np.random.Generator | None:
            if rng_factory is not None:
                return rng_factory(point)
            if point_seed is not None:
                return RngStreams(point_seed).fresh(f"point:{point.key!r}")
            return rng

        tasks = [(point, rng_for(point)) for point in points]
        for point, point_rng in tasks:
            if point.n_trials < 1:
                raise ConfigurationError(f"point {point.key!r} needs >= 1 trial")
            if point.spec is not None and point_rng is None:
                raise ConfigurationError(
                    f"point {point.key!r} declares captures but no rng was provided"
                )
        if self.n_workers == 1:
            parallel_shm.use_shared(dict(shared) if shared else None)
            try:
                measurements = {
                    point.key: _run_point(point, measure, point_rng)
                    for point, point_rng in tasks
                }
            finally:
                parallel_shm.use_shared(None)
            return SweepResult(points=points, measurements=measurements)
        if rng is not None:
            raise ConfigurationError(
                "a shared rng stream is order-dependent and cannot fan out "
                "across workers; use rng_factory or point_seed instead"
            )
        return self._run_parallel(points, tasks, measure, shared)

    def _run_parallel(
        self,
        points: list[SweepPoint],
        tasks: list[tuple[SweepPoint, np.random.Generator | None]],
        measure: Callable,
        shared: Mapping[str, np.ndarray] | None,
    ) -> SweepResult:
        """Fan the validated grid out over the (persistent) worker pool."""
        chunks = parallel_schedule.plan_chunks(
            [_point_cost(point) for point, _ in tasks],
            self.n_workers,
            chunk_points=self.chunksize,
        )
        pool = self.pool
        if pool is None:
            pool = parallel_pool.default_pool(self.backend, self.n_workers, self.mp_context)
        pool_reused = pool.is_warm
        payloads = [(measure, [tasks[i] for i in chunk]) for chunk in chunks]
        shared_payload = dict(shared) if shared else None
        pack = None
        payload_bytes = 0
        try:
            if self.backend == "process" and self.shm_min_bytes:
                publisher = parallel_shm.PayloadPublisher(self.shm_min_bytes)
                skeletons = [publisher.strip(payload) for payload in payloads]
                shared_skeleton = (
                    publisher.strip(shared_payload) if shared_payload is not None else None
                )
                pack = publisher.seal()
                blocks = (pack.name,) if pack is not None else ()
                shared_payload = (
                    publisher.fill(shared_skeleton) if shared_skeleton is not None else None
                )
                chunk_tasks = [
                    _ChunkTask(
                        index=i, payload=publisher.fill(s), shared=shared_payload, blocks=blocks
                    )
                    for i, s in enumerate(skeletons)
                ]
            else:
                chunk_tasks = [
                    _ChunkTask(index=i, payload=payload, shared=shared_payload, blocks=())
                    for i, payload in enumerate(payloads)
                ]
            if self.backend == "process":
                payload_bytes = sum(parallel_shm.pickled_nbytes(t) for t in chunk_tasks)
            collected: dict[Any, list[Any]] = {}
            for _, pairs in pool.imap_unordered(_execute_chunk, chunk_tasks):
                for key, trials in pairs:
                    collected[key] = trials
        finally:
            if pack is not None:
                pack.close()
                pack.unlink()
        transport = TransportStats(
            backend=self.backend,
            n_workers=self.n_workers,
            n_chunks=len(chunks),
            payload_pickle_bytes=payload_bytes,
            shm_bytes=pack.nbytes if pack is not None else 0,
            pool_reused=pool_reused,
        )
        measurements = {point.key: collected[point.key] for point in points}
        return SweepResult(points=points, measurements=measurements, transport=transport)


def run_sweep(
    points: Iterable[SweepPoint],
    measure: Callable[[SweepPoint, int, Any, np.random.Generator | None], Any],
    rng: np.random.Generator | None = None,
    rng_factory: Callable[[SweepPoint], np.random.Generator] | None = None,
) -> SweepResult:
    """Walk every sweep point/trial serially, synthesizing declared captures.

    ``measure(point, trial, captures, rng)`` receives the trial's capture
    (or dict of variant captures, or ``None`` for spec-less points) plus
    the generator in use, and returns one measurement.  Equivalent to
    ``SweepExecutor(n_workers=1).run(...)``; drivers that want N-way
    parallelism construct the executor directly.
    """
    return SweepExecutor(n_workers=1).run(points, measure, rng=rng, rng_factory=rng_factory)


def sweep_means(result: SweepResult) -> dict[Any, float]:
    """Per-key means for sweeps whose measurements are scalars."""
    return {key: float(np.mean(result.trials(key))) for key in result.keys()}
