"""Shared scenario machinery for the experiment drivers.

Every figure/table driver used to hand-roll its own synthesize-and-sweep
loop around :func:`synthesize_capture`.  They now share one declarative
pipeline instead:

* :class:`ScenarioSpec` -- a frozen description of one capture condition
  (chirp config, SNR, FB law, preamble length, noise model ...), with
  :meth:`ScenarioSpec.synthesize` producing a ground-truthed capture and
  :meth:`ScenarioSpec.synthesize_batch` a stacked
  :class:`repro.pipeline.CaptureBatch` for the batched engine;
* :class:`SweepPoint` -- one point of a sweep: a key (SNR value, survey
  cell, node index ...), the spec (or named spec variants) to synthesize
  there, and a trial count;
* :class:`SweepExecutor` -- the engine that walks every point/trial,
  synthesizes the declared captures, and hands them to the driver's
  ``measure`` callback -- serially, or fanned out over worker processes
  (``n_workers > 1``) with one point per task;
* :func:`run_sweep` -- the classic serial entry, now a thin wrapper
  around ``SweepExecutor(n_workers=1)``.

The serial runner preserves the classic drivers' rng call order (per
trial: FB draw, then phase draw, then onset fraction, then noise), so
ported drivers regenerate the exact numbers their hand-rolled loops
produced.  The parallel backend uses the ``spawn`` start method, so
everything that crosses the process boundary -- points, specs, the
``measure`` callable, per-point generators -- must pickle: module-level
functions (or :func:`functools.partial` over them) instead of closures,
and :class:`UniformFbLaw` instead of a lambda for the stock FB draw.
Per-point seeds derive deterministically through
:class:`repro.sim.rng.RngStreams`, so results are identical at any
worker count.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpConfig, preamble_at_times
from repro.sdr.iq import IQTrace
from repro.sdr.noise import RealNoiseModel, complex_awgn, noise_power_for_snr
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class SynthesizedCapture:
    """A synthetic SDR capture with exact ground truth."""

    trace: IQTrace
    true_onset_time_s: float
    true_onset_index_float: float
    fb_hz: float
    snr_db: float
    noise_power: float


def synthesize_capture(
    config: ChirpConfig,
    rng: np.random.Generator,
    snr_db: float = 30.0,
    fb_hz: float = -20e3,
    phase: float | None = None,
    n_chirps: int = 8,
    pad_chirps: float = 1.5,
    fractional_onset: bool = True,
    amplitude: float = 1.0,
    noise_model: RealNoiseModel | None = None,
    start_time_s: float = 0.0,
) -> SynthesizedCapture:
    """One noise-padded preamble capture, onset between ADC samples.

    The capture contains ``pad_chirps`` chirp-times of pure noise followed
    by signal running to the end of the window: a real SoftLoRa capture
    ends while the (much longer) frame is still on the air, so the onset
    is the *only* statistical change point in the trace.  When
    ``fractional_onset`` is set the true onset is offset by a random
    sub-sample fraction -- the paper's upper-bound metric exists exactly
    because of this unobservable fraction.
    """
    if phase is None:
        phase = float(rng.uniform(0.0, 2 * np.pi))
    fs = config.sample_rate_hz
    spc = config.samples_per_chirp
    pad = int(round(pad_chirps * spc))
    total = pad + n_chirps * spc
    fraction = float(rng.uniform(0.0, 1.0)) if fractional_onset else 0.0
    onset_index_float = pad + fraction
    onset_time = onset_index_float / fs
    t = np.arange(total) / fs - onset_time
    # One extra chirp-time of signal guarantees coverage to the window end
    # despite the fractional onset shift.
    clean = preamble_at_times(
        t, config, n_chirps=n_chirps + 1, fb_hz=fb_hz, phase=phase, amplitude=amplitude
    )
    noise_power = noise_power_for_snr(amplitude**2, snr_db)
    if noise_model is None:
        noise = complex_awgn(total, noise_power, rng)
    else:
        noise = noise_model.generate(total, noise_power, rng)
    trace = IQTrace(clean + noise, fs, start_time_s=start_time_s)
    return SynthesizedCapture(
        trace=trace,
        true_onset_time_s=start_time_s + onset_time,
        true_onset_index_float=onset_index_float,
        fb_hz=fb_hz,
        snr_db=snr_db,
        noise_power=noise_power,
    )


@dataclass(frozen=True)
class UniformFbLaw:
    """A picklable FB law: uniform over a band, drawn per trial.

    Being a frozen dataclass (not a closure) it survives the ``spawn``
    pickling boundary, so specs carrying it can cross into
    :class:`SweepExecutor` worker processes.
    """

    low_hz: float = -25e3
    high_hz: float = -17e3

    def __call__(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_hz, self.high_hz))


def uniform_fb(low_hz: float = -25e3, high_hz: float = -17e3) -> UniformFbLaw:
    """The drivers' stock FB law: uniform over the paper's measured band."""
    return UniformFbLaw(low_hz=low_hz, high_hz=high_hz)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one synthesized-capture condition.

    ``fb_hz`` may be a fixed bias or a callable drawing one from the
    trial's rng (see :func:`uniform_fb`); the draw happens before capture
    synthesis, matching the classic drivers' call order.
    """

    config: ChirpConfig
    snr_db: float = 30.0
    fb_hz: Any = -20e3
    phase: float | None = None
    n_chirps: int = 8
    pad_chirps: float = 1.5
    fractional_onset: bool = True
    amplitude: float = 1.0
    noise_model: RealNoiseModel | None = None
    start_time_s: float = 0.0

    def synthesize(self, rng: np.random.Generator) -> SynthesizedCapture:
        """One ground-truthed capture of this condition."""
        fb = self.fb_hz(rng) if callable(self.fb_hz) else float(self.fb_hz)
        return synthesize_capture(
            self.config,
            rng,
            snr_db=self.snr_db,
            fb_hz=fb,
            phase=self.phase,
            n_chirps=self.n_chirps,
            pad_chirps=self.pad_chirps,
            fractional_onset=self.fractional_onset,
            amplitude=self.amplitude,
            noise_model=self.noise_model,
            start_time_s=self.start_time_s,
        )

    def synthesize_batch(self, rng: np.random.Generator, n_captures: int):
        """``n_captures`` captures stacked for the batched engine.

        Returns ``(CaptureBatch, [SynthesizedCapture, ...])`` -- the batch
        for :class:`repro.pipeline.BatchPipeline`, the per-capture ground
        truth for scoring.
        """
        from repro.pipeline.batch import CaptureBatch

        if n_captures < 0:
            raise ConfigurationError(f"batch needs >= 0 captures, got {n_captures}")
        captures = [self.synthesize(rng) for _ in range(n_captures)]
        return (
            CaptureBatch.from_traces(
                [c.trace for c in captures], sample_rate_hz=self.config.sample_rate_hz
            ),
            captures,
        )


@dataclass(frozen=True)
class SweepPoint:
    """One point of an experiment sweep.

    ``spec`` is a :class:`ScenarioSpec`, a mapping of named spec variants
    (synthesized per trial in declaration order -- e.g. Fig. 14's
    gaussian/real noise pair), or ``None`` for sweeps over non-synthetic
    quantities (e.g. Table 1's mechanistic model rows).
    """

    key: Any
    spec: Any = None
    n_trials: int = 1
    metadata: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """Measurements grouped by sweep key, in point order."""

    points: list[SweepPoint]
    measurements: dict[Any, list[Any]]

    def keys(self) -> list[Any]:
        return [point.key for point in self.points]

    def trials(self, key: Any) -> list[Any]:
        """Every trial measurement at one sweep point."""
        return self.measurements[key]

    def first(self, key: Any) -> Any:
        return self.measurements[key][0]

    def flat(self) -> list[Any]:
        """All measurements in (point, trial) order."""
        return [m for point in self.points for m in self.measurements[point.key]]


def _execute_point(
    task: tuple[SweepPoint, Callable, np.random.Generator | None],
) -> tuple[Any, list[Any]]:
    """Run every trial of one sweep point (the unit of parallel work).

    Module-level so the spawn backend can pickle it; the per-point
    generator rides along with its state, keeping any worker count
    bit-identical to the serial walk.
    """
    point, measure, point_rng = task
    if point.n_trials < 1:
        raise ConfigurationError(f"point {point.key!r} needs >= 1 trial")
    if point.spec is not None and point_rng is None:
        raise ConfigurationError(f"point {point.key!r} declares captures but no rng was provided")
    trials = []
    for trial in range(point.n_trials):
        if point.spec is None:
            captures = None
        elif isinstance(point.spec, ScenarioSpec):
            captures = point.spec.synthesize(point_rng)
        else:
            captures = {name: spec.synthesize(point_rng) for name, spec in point.spec.items()}
        trials.append(measure(point, trial, captures, point_rng))
    return point.key, trials


@dataclass(frozen=True)
class SweepExecutor:
    """Walks sweep points serially or across ``n_workers`` processes.

    RNG policy (at most one of the three):

    * ``rng`` -- one shared stream threads through every point/trial in
      declaration order (the classic SNR-sweep idiom).  Serial only: a
      shared stream has an inherent order, so parallel runs reject it.
    * ``rng_factory`` -- an independent generator per point, created in
      the parent in point order (per-node / per-power sweeps).
    * ``point_seed`` -- deterministic per-point derivation: each point
      gets ``RngStreams(point_seed).fresh(f"point:{key!r}")``, so the
      grid can grow (or be re-partitioned across workers) without
      perturbing existing points.

    Workers start via the ``spawn`` method: each task ships one point,
    the ``measure`` callable, and the point's generator, and returns the
    measured trials -- so ``n_workers`` never changes results, only
    wall-clock.  Tasks ship in batches of ``chunksize`` points per
    worker round-trip; the default splits the grid into about four
    batches per worker, amortizing pickling overhead on fine-grained
    grids while keeping the load balanced.
    """

    n_workers: int = 1
    mp_context: str = "spawn"
    chunksize: int | None = None

    def run(
        self,
        points: Iterable[SweepPoint],
        measure: Callable[[SweepPoint, int, Any, np.random.Generator | None], Any],
        rng: np.random.Generator | None = None,
        rng_factory: Callable[[SweepPoint], np.random.Generator] | None = None,
        point_seed: int | None = None,
    ) -> SweepResult:
        """Measure every point/trial; see the class docstring for rng policy."""
        if self.n_workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {self.n_workers}")
        if self.chunksize is not None and self.chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {self.chunksize}")
        given = [x for x in (rng, rng_factory, point_seed) if x is not None]
        if len(given) > 1:
            raise ConfigurationError("pass at most one of rng, rng_factory, point_seed")
        points = list(points)
        keys = [point.key for point in points]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"sweep keys must be unique, got {keys}")

        def rng_for(point: SweepPoint) -> np.random.Generator | None:
            if rng_factory is not None:
                return rng_factory(point)
            if point_seed is not None:
                return RngStreams(point_seed).fresh(f"point:{point.key!r}")
            return rng

        tasks = [(point, measure, rng_for(point)) for point in points]
        if self.n_workers == 1:
            results = [_execute_point(task) for task in tasks]
        else:
            if rng is not None:
                raise ConfigurationError(
                    "a shared rng stream is order-dependent and cannot fan out "
                    "across workers; use rng_factory or point_seed instead"
                )
            chunksize = self.chunksize
            if chunksize is None:
                chunksize = max(1, math.ceil(len(tasks) / (4 * self.n_workers)))
            ctx = multiprocessing.get_context(self.mp_context)
            with ctx.Pool(processes=self.n_workers) as pool:
                results = pool.map(_execute_point, tasks, chunksize=chunksize)
        return SweepResult(points=points, measurements={key: trials for key, trials in results})


def run_sweep(
    points: Iterable[SweepPoint],
    measure: Callable[[SweepPoint, int, Any, np.random.Generator | None], Any],
    rng: np.random.Generator | None = None,
    rng_factory: Callable[[SweepPoint], np.random.Generator] | None = None,
) -> SweepResult:
    """Walk every sweep point/trial serially, synthesizing declared captures.

    ``measure(point, trial, captures, rng)`` receives the trial's capture
    (or dict of variant captures, or ``None`` for spec-less points) plus
    the generator in use, and returns one measurement.  Equivalent to
    ``SweepExecutor(n_workers=1).run(...)``; drivers that want N-way
    parallelism construct the executor directly.
    """
    return SweepExecutor(n_workers=1).run(points, measure, rng=rng, rng_factory=rng_factory)


def sweep_means(result: SweepResult) -> dict[Any, float]:
    """Per-key means for sweeps whose measurements are scalars."""
    return {key: float(np.mean(result.trials(key))) for key in result.keys()}
