"""Waveform figures: Fig. 6 (chirp + spectrogram), Fig. 7 (phase ambiguity),
Fig. 8 (FB-shifted dip), Fig. 11 (I traces at δ = ±25 kHz).

These figures establish the signal model the estimators rely on; the
drivers regenerate the plotted arrays and extract the scalar features the
paper points at (spectrogram frame count, dip-center shift direction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.phy.chirp import ChirpConfig, upchirp
from repro.phy.spectrum import Spectrogram, spectrogram


def _dip_center_time_s(i_trace: np.ndarray, sample_rate_hz: float) -> float:
    """Time of the I-trace "dip": the slowest oscillation of the chirp.

    An up chirp's I trace oscillates slowest where the instantaneous
    baseband frequency crosses zero (mid-chirp for δ=0); a frequency bias
    δ moves that crossing by ``−δ·2^S/W²`` seconds -- the visible dip
    shift of Fig. 8.  We locate it as the midpoint of the widest gap
    between consecutive zero crossings of I(t), which is robust and
    sample-accurate.
    """
    signs = np.signbit(i_trace)
    crossings = np.nonzero(signs[1:] != signs[:-1])[0]
    if len(crossings) < 2:
        return len(i_trace) / 2 / sample_rate_hz
    gaps = np.diff(crossings)
    widest = int(np.argmax(gaps))
    center_index = (crossings[widest] + crossings[widest + 1]) / 2.0
    return float(center_index) / sample_rate_hz


@dataclass
class Fig6Result:
    """Fig. 6: I trace and spectrogram of an ideal up chirp."""

    i_trace: np.ndarray
    spec: Spectrogram
    chirp_time_s: float
    n_psd_frames: int
    time_resolution_s: float

    def format(self) -> str:
        return format_table(
            ["quantity", "paper", "measured"],
            [
                ["chirp time (ms)", 1.024, self.chirp_time_s * 1e3],
                ["spectrogram PSD frames", 20, self.n_psd_frames],
                ["STFT time resolution (µs)", "~50", self.time_resolution_s * 1e6],
            ],
            title="Fig. 6 -- ideal SF7 up chirp at 2.4 Msps",
        )


def run_fig6(sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ) -> Fig6Result:
    """Ideal SF7 up chirp, A=2, θ=0, with the paper's STFT settings."""
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=sample_rate_hz)
    chirp = upchirp(config, phase=0.0, amplitude=2.0)
    spec = spectrogram(chirp, config)
    return Fig6Result(
        i_trace=chirp.real,
        spec=spec,
        chirp_time_s=config.chirp_time_s,
        n_psd_frames=len(spec.times_s),
        time_resolution_s=spec.time_resolution_s,
    )


@dataclass
class Fig7Result:
    """Fig. 7: the I waveform depends on the unknown phase θ."""

    i_theta_zero: np.ndarray
    i_theta_pi: np.ndarray
    max_abs_difference: float
    rms_difference: float

    def format(self) -> str:
        return format_table(
            ["quantity", "value"],
            [
                ["max |I(θ=0) − I(θ=π)|", self.max_abs_difference],
                ["rms difference", self.rms_difference],
            ],
            title="Fig. 7 -- phase ambiguity defeats a fixed matched-filter template",
        )


def run_fig7(sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ) -> Fig7Result:
    """I traces of the same chirp at θ=0 and θ=π (they are negatives)."""
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=sample_rate_hz)
    i0 = upchirp(config, phase=0.0).real
    ipi = upchirp(config, phase=np.pi).real
    diff = np.abs(i0 - ipi)
    return Fig7Result(
        i_theta_zero=i0,
        i_theta_pi=ipi,
        max_abs_difference=float(diff.max()),
        rms_difference=float(np.sqrt(np.mean(diff**2))),
    )


@dataclass
class Fig8Result:
    """Fig. 8/11: frequency bias shifts the dip center of the I trace."""

    fb_hz: float
    dip_time_unbiased_s: float
    dip_time_biased_s: float
    predicted_shift_s: float

    @property
    def measured_shift_s(self) -> float:
        return self.dip_time_biased_s - self.dip_time_unbiased_s

    def format(self) -> str:
        return format_table(
            ["quantity", "value"],
            [
                ["frequency bias (kHz)", self.fb_hz / 1e3],
                ["dip center, δ=0 (ms)", self.dip_time_unbiased_s * 1e3],
                [f"dip center, δ={self.fb_hz / 1e3:.0f} kHz (ms)", self.dip_time_biased_s * 1e3],
                ["measured shift (ms)", self.measured_shift_s * 1e3],
                ["predicted shift −δ·2^S/W² (ms)", self.predicted_shift_s * 1e3],
            ],
            title="Fig. 8 -- FB shifts the I-trace dip center",
        )


def run_fig8(
    fb_hz: float = -22.8e3, sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ
) -> Fig8Result:
    """Dip-center shift of a biased chirp vs the unbiased one."""
    config = ChirpConfig(spreading_factor=7, sample_rate_hz=sample_rate_hz)
    unbiased = upchirp(config, phase=0.0).real
    biased = upchirp(config, fb_hz=fb_hz, phase=0.0).real
    rate = config.bandwidth_hz**2 / config.n_symbols
    return Fig8Result(
        fb_hz=fb_hz,
        dip_time_unbiased_s=_dip_center_time_s(unbiased, sample_rate_hz),
        dip_time_biased_s=_dip_center_time_s(biased, sample_rate_hz),
        predicted_shift_s=-fb_hz / rate,
    )


@dataclass
class Fig11Result:
    """Fig. 11: opposite biases shift the dip in opposite directions."""

    negative: Fig8Result
    positive: Fig8Result

    def format(self) -> str:
        return format_table(
            ["bias (kHz)", "dip center (ms)", "shift vs δ=0 (ms)"],
            [
                [
                    self.negative.fb_hz / 1e3,
                    self.negative.dip_time_biased_s * 1e3,
                    self.negative.measured_shift_s * 1e3,
                ],
                [
                    self.positive.fb_hz / 1e3,
                    self.positive.dip_time_biased_s * 1e3,
                    self.positive.measured_shift_s * 1e3,
                ],
            ],
            title="Fig. 11 -- I(t) dip for δ = ±25 kHz",
        )


def run_fig11(sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ) -> Fig11Result:
    """The Fig. 11 pair: δ = −25 kHz and δ = +25 kHz."""
    return Fig11Result(
        negative=run_fig8(fb_hz=-25e3, sample_rate_hz=sample_rate_hz),
        positive=run_fig8(fb_hz=+25e3, sample_rate_hz=sample_rate_hz),
    )
