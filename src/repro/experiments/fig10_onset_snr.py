"""Fig. 10: AIC signal-timestamping error versus received SNR.

The paper adds zero-mean Gaussian noise to high-SNR traces, sweeps the
SNR from −20 to +40 dB, and reports the AIC detector's timing error:
within ~20 µs for the building's SNR range (−1..13 dB) and within
~25 µs at −20 dB (the demodulation limit).

Our pipeline band-limits the capture to the LoRa channel first (the
digital analogue of the receiver's low-pass selection stage; the paper's
synthetic noise is full-band while its *real* captures pass the RTL-SDR
front end).  With that, the AIC detector reproduces the paper's numbers
through the building/campus SNR range and down to about −10 dB; below
that our fully-synthetic white-noise condition degrades faster than the
paper's measurement -- documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import timing_error_upper_bound_s
from repro.analysis.report import format_series
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.core.onset import AicDetector
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep, uniform_fb
from repro.phy.chirp import ChirpConfig
from repro.sdr.filters import bandlimit_trace


@dataclass
class Fig10Result:
    snrs_db: list[float]
    mean_errors_us: list[float]
    max_errors_us: list[float]

    def format(self) -> str:
        points = list(zip(self.snrs_db, [round(e, 2) for e in self.mean_errors_us]))
        return format_series(
            "SNR (dB)",
            "mean AIC error (µs)",
            points,
            title="Fig. 10 -- AIC timestamping error vs received SNR",
        )

    def error_at(self, snr_db: float) -> float:
        """Mean error at the sweep point closest to ``snr_db``."""
        index = int(np.argmin([abs(s - snr_db) for s in self.snrs_db]))
        return self.mean_errors_us[index]


def run_fig10(
    snrs_db: list[float] | None = None,
    n_trials: int = 10,
    spreading_factor: int = 7,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 10,
    bandlimit_cutoff_hz: float | None = 100e3,
) -> Fig10Result:
    """Sweep SNR and measure the AIC detector's error upper bound.

    ``bandlimit_cutoff_hz=None`` runs the raw-capture ablation (no
    channel-selection filter), which only holds up at higher SNRs.
    """
    if snrs_db is None:
        snrs_db = [-20.0, -15.0, -10.0, -5.0, 0.0, 5.0, 10.0, 20.0, 30.0, 40.0]
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    detector = AicDetector()

    def measure(point, trial, capture, prng):
        trace = capture.trace
        component = "i"
        if bandlimit_cutoff_hz is not None:
            trace = bandlimit_trace(trace, bandlimit_cutoff_hz)
            component = "magnitude"
        onset = detector.detect(trace, component=component)
        return (
            timing_error_upper_bound_s(
                onset.time_s, capture.true_onset_time_s, capture.trace.sample_period_s
            )
            * 1e6
        )

    sweep = run_sweep(
        [
            SweepPoint(
                key=snr,
                spec=ScenarioSpec(config, snr_db=snr, fb_hz=uniform_fb(), n_chirps=8),
                n_trials=n_trials,
            )
            for snr in snrs_db
        ],
        measure,
        rng=np.random.default_rng(seed),
    )
    return Fig10Result(
        snrs_db=list(snrs_db),
        mean_errors_us=[float(np.mean(sweep.trials(snr))) for snr in snrs_db],
        max_errors_us=[float(np.max(sweep.trials(snr))) for snr in snrs_db],
    )
