"""Table 2: onset-timing error upper bounds, envelope vs AIC detectors.

Ten independent high-SNR captures (the paper's bench condition: nodes at
~5 m) are timestamped by both detectors on both the I and Q components;
the error upper bound (Sec. 6.2 metric) is reported in microseconds.

Paper values: envelope errors ~2-10 µs; AIC errors below 2 µs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import timing_error_upper_bound_s
from repro.analysis.report import format_table
from repro.constants import RTL_SDR_SAMPLE_RATE_HZ
from repro.core.onset import AicDetector, EnvelopeDetector
from repro.experiments.common import ScenarioSpec, SweepPoint, run_sweep, uniform_fb
from repro.phy.chirp import ChirpConfig


@dataclass
class Table2Result:
    env_i_errors_us: list[float]
    env_q_errors_us: list[float]
    aic_i_errors_us: list[float]
    aic_q_errors_us: list[float]

    def format(self) -> str:
        n = len(self.env_i_errors_us)
        headers = ["detector"] + [f"run {i + 1}" for i in range(n)]
        rows = [
            ["ENV I"] + [round(e, 1) for e in self.env_i_errors_us],
            ["ENV Q"] + [round(e, 1) for e in self.env_q_errors_us],
            ["AIC I"] + [round(e, 1) for e in self.aic_i_errors_us],
            ["AIC Q"] + [round(e, 1) for e in self.aic_q_errors_us],
        ]
        return format_table(
            headers, rows, title="Table 2 -- onset error upper bound (µs), 10 runs"
        )

    def max_aic_error_us(self) -> float:
        return max(self.aic_i_errors_us + self.aic_q_errors_us)

    def max_env_error_us(self) -> float:
        return max(self.env_i_errors_us + self.env_q_errors_us)


def run_table2(
    n_runs: int = 10,
    snr_db: float = 30.0,
    spreading_factor: int = 7,
    sample_rate_hz: float = RTL_SDR_SAMPLE_RATE_HZ,
    seed: int = 2,
) -> Table2Result:
    """Reproduce Table 2's ten bench measurements."""
    config = ChirpConfig(spreading_factor=spreading_factor, sample_rate_hz=sample_rate_hz)
    env = EnvelopeDetector()
    aic = AicDetector()

    def measure(point, trial, capture, prng):
        period = capture.trace.sample_period_s
        errors = {}
        for name, detector in (("env", env), ("aic", aic)):
            for component in ("i", "q"):
                onset = detector.detect(capture.trace, component=component)
                bound = timing_error_upper_bound_s(
                    onset.time_s, capture.true_onset_time_s, period
                )
                errors[f"{name}_{component}"] = bound * 1e6
        return errors

    sweep = run_sweep(
        [
            SweepPoint(
                key="bench",
                spec=ScenarioSpec(config, snr_db=snr_db, fb_hz=uniform_fb(), n_chirps=8),
                n_trials=n_runs,
            )
        ],
        measure,
        rng=np.random.default_rng(seed),
    )
    runs = sweep.trials("bench")
    return Table2Result(
        env_i_errors_us=[run["env_i"] for run in runs],
        env_q_errors_us=[run["env_q"] for run in runs],
        aic_i_errors_us=[run["aic_i"] for run in runs],
        aic_q_errors_us=[run["aic_q"] for run in runs],
    )
