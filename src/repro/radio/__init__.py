"""Radio propagation substrate: geometry, path loss, link budget, channel.

Stands in for the paper's two physical deployments: a 190 m six-floor
concrete building (Fig. 15) and a 1.07 km campus link (Sec. 8.2).  Models
are calibrated so the surveyed SNR ranges of the paper are reproduced.
"""

from repro.radio.channel import (
    LinkBudget,
    Transmission,
    amplitude_for_snr,
    noise_floor_dbm,
    propagation_delay_s,
    resolve_collisions,
)
from repro.radio.geometry import Building, CampusLink, Position
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    IndoorMultiWallPathLoss,
    LogDistancePathLoss,
)

__all__ = [
    "Building",
    "CampusLink",
    "FreeSpacePathLoss",
    "IndoorMultiWallPathLoss",
    "LinkBudget",
    "LogDistancePathLoss",
    "Position",
    "Transmission",
    "amplitude_for_snr",
    "noise_floor_dbm",
    "propagation_delay_s",
    "resolve_collisions",
]
