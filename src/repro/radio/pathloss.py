"""Path-loss models: free space, log-distance, and indoor multi-wall.

Used to regenerate the paper's link conditions:

* the campus link (Sec. 8.2) is near line-of-sight over 1.07 km,
* the in-building survey (Fig. 15) shows SNR decaying from 13 dB near the
  fixed node to -1 dB at the far end, driven by distance plus floor slabs
  and section junction walls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import EU868_CENTER_FREQUENCY_HZ, SPEED_OF_LIGHT_M_S
from repro.errors import ConfigurationError
from repro.radio.geometry import Building, Position


@dataclass(frozen=True)
class FixedPathLoss:
    """A constant, geometry-independent loss.

    Pins a link at an exact budget -- e.g. reproducing a *measured* SNR
    (the Sec. 8.1.1 cross-building link) where the paper publishes the
    resulting signal level but not the propagation environment.
    """

    value_db: float

    def __post_init__(self) -> None:
        if self.value_db < 0:
            raise ConfigurationError(f"path loss must be >= 0 dB, got {self.value_db}")

    def loss_db(self, tx: Position, rx: Position) -> float:
        return self.value_db

    def loss_db_from_distance(self, distance_m: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`loss_db` over an array of link distances."""
        return np.full_like(np.asarray(distance_m, dtype=float), self.value_db)


@dataclass(frozen=True)
class FreeSpacePathLoss:
    """Friis free-space loss at a given carrier."""

    carrier_hz: float = EU868_CENTER_FREQUENCY_HZ

    def loss_db(self, tx: Position, rx: Position) -> float:
        distance = max(tx.distance_to(rx), 1.0)
        return 20.0 * math.log10(4.0 * math.pi * distance * self.carrier_hz / SPEED_OF_LIGHT_M_S)

    def loss_db_from_distance(self, distance_m: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`loss_db` over an array of link distances.

        Mirrors the scalar arithmetic operation for operation, so the
        only scalar/vector divergence is the ~1 ulp difference between
        ``math.log10`` and ``np.log10``.
        """
        distance = np.maximum(np.asarray(distance_m, dtype=float), 1.0)
        return 20.0 * np.log10(4.0 * math.pi * distance * self.carrier_hz / SPEED_OF_LIGHT_M_S)


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance model with optional deterministic per-link shadowing.

    ``PL(d) = PL(d0) + 10·n·log10(d/d0) + X``, where X is a shadowing term
    drawn from N(0, σ²) using a hash of the endpoint pair, so a given link
    always sees the same shadowing (links don't flicker between calls).
    """

    exponent: float = 2.8
    reference_distance_m: float = 1.0
    reference_loss_db: float | None = None
    shadowing_sigma_db: float = 0.0
    carrier_hz: float = EU868_CENTER_FREQUENCY_HZ
    seed: int = 0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError(f"path-loss exponent must be positive, got {self.exponent}")
        if self.reference_distance_m <= 0:
            raise ConfigurationError("reference distance must be positive")

    def _reference_loss(self) -> float:
        if self.reference_loss_db is not None:
            return self.reference_loss_db
        return FreeSpacePathLoss(self.carrier_hz).loss_db(
            Position(0.0), Position(self.reference_distance_m)
        )

    def _shadowing(self, tx: Position, rx: Position) -> float:
        if self.shadowing_sigma_db == 0.0:
            return 0.0
        key = hash(
            (round(tx.x, 3), round(tx.y, 3), round(tx.z, 3),
             round(rx.x, 3), round(rx.y, 3), round(rx.z, 3), self.seed)
        ) & 0xFFFFFFFF
        rng = np.random.default_rng(key)
        return float(rng.normal(0.0, self.shadowing_sigma_db))

    def loss_db(self, tx: Position, rx: Position) -> float:
        distance = max(tx.distance_to(rx), self.reference_distance_m)
        loss = self._reference_loss() + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance_m
        )
        return loss + self._shadowing(tx, rx)

    def loss_db_from_distance(self, distance_m: np.ndarray) -> np.ndarray | None:
        """Vectorized :meth:`loss_db`, or ``None`` when shadowing is on.

        The per-link shadowing term hashes endpoint *positions*, which a
        distance-only column cannot reproduce -- callers fall back to
        the scalar path when this returns ``None``.
        """
        if self.shadowing_sigma_db != 0.0:
            return None
        distance = np.maximum(np.asarray(distance_m, dtype=float), self.reference_distance_m)
        return self._reference_loss() + 10.0 * self.exponent * np.log10(
            distance / self.reference_distance_m
        )


@dataclass(frozen=True)
class IndoorMultiWallPathLoss:
    """Indoor model: log-distance plus per-floor and per-junction losses.

    ``floor_loss_db`` charges each concrete slab on the straight path;
    ``junction_loss_db`` charges each section junction crossed along the
    building's long axis (the junctions in Fig. 15 visibly knock the SNR
    down between sections).
    """

    building: Building
    base: LogDistancePathLoss = LogDistancePathLoss(exponent=2.2)
    floor_loss_db: float = 4.0
    junction_loss_db: float = 3.0

    def loss_db(
        self,
        tx: Position,
        rx: Position,
        tx_column: str | None = None,
        rx_column: str | None = None,
    ) -> float:
        loss = self.base.loss_db(tx, rx)
        loss += self.floor_loss_db * self.building.floors_between(tx, rx)
        if tx_column is not None and rx_column is not None:
            loss += self.junction_loss_db * self.building.junctions_between(tx_column, rx_column)
        return loss
