"""Link budget, propagation delay, and collision resolution.

Supports the two abstraction levels the experiments need:

* **frame level** -- receptions carry powers and times; collisions resolve
  with LoRa's capture effect (used by the discrete-event simulator and the
  jamming model),
* **waveform level** -- amplitudes are scaled so a synthesized baseband
  trace exhibits the SNR the link budget predicts (used by the signal
  processing experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.constants import (
    LORA_BANDWIDTH_HZ,
    SPEED_OF_LIGHT_M_S,
    SX1276_NOISE_FIGURE_DB,
    THERMAL_NOISE_DBM_PER_HZ,
)
from repro.errors import ConfigurationError
from repro.radio.geometry import Position

#: Minimum power advantage for the stronger of two co-SF frames to survive
#: a collision (the LoRa capture effect).
DEFAULT_CAPTURE_THRESHOLD_DB = 6.0

#: Inter-SF capture thresholds (dB) for the imperfect-orthogonality model
#: of Croce et al., "Impact of LoRa Imperfect Orthogonality" (IEEE Comm.
#: Letters 2018, Table I): entry ``[i][j]`` is the power margin an
#: SF ``7+i`` frame needs over an overlapping SF ``7+j`` interferer to
#: demodulate.  Negative entries are the quasi-orthogonality headroom: a
#: cross-SF rival only destroys the frame when it is *much* stronger.
#: The diagonal is never read -- co-SF pairs resolve through
#: :attr:`InterSfCaptureMatrix.co_sf_db` (the channel's capture
#: threshold knob); the 6.0 entries only keep the table shaped like the
#: published one.
INTER_SF_CAPTURE_DB = (
    (6.0, -8.0, -9.0, -9.0, -9.0, -9.0),
    (-11.0, 6.0, -11.0, -13.0, -13.0, -13.0),
    (-15.0, -13.0, 6.0, -13.0, -14.0, -15.0),
    (-19.0, -18.0, -17.0, 6.0, -17.0, -18.0),
    (-22.0, -22.0, -21.0, -20.0, 6.0, -20.0),
    (-25.0, -25.0, -25.0, -24.0, -23.0, 6.0),
)


@dataclass(frozen=True)
class InterSfCaptureMatrix:
    """Pairwise capture thresholds for SF-heterogeneous contention.

    LoRa spreading factors are only *quasi*-orthogonal: a same-frequency
    frame at another SF still raises the noise floor, and a strong enough
    one destroys the reception outright.  ``threshold_db(i, j)`` is the
    margin a desired SF ``i`` frame must hold over an overlapping SF
    ``j`` rival; the diagonal is the classic co-SF capture threshold.

    Attributes:
        co_sf_db: Co-SF capture threshold (dB), overriding the matrix
            diagonal so the channel's single knob keeps working.
        cross_sf_db: 6x6 threshold table indexed ``[sf_desired - 7]
            [sf_interferer - 7]``; defaults to the Croce et al. Table I
            measurements (:data:`INTER_SF_CAPTURE_DB`).
    """

    co_sf_db: float = DEFAULT_CAPTURE_THRESHOLD_DB
    cross_sf_db: tuple = INTER_SF_CAPTURE_DB

    def threshold_db(self, desired_sf: int, interferer_sf: int) -> float:
        """Margin (dB) a desired-SF frame needs over one interferer.

        Args:
            desired_sf: Spreading factor of the frame being demodulated.
            interferer_sf: Spreading factor of the overlapping rival.

        Returns:
            The capture threshold in dB (negative for cross-SF pairs).
        """
        if not (7 <= desired_sf <= 12 and 7 <= interferer_sf <= 12):
            raise ConfigurationError(
                f"capture matrix covers SF7-SF12, got desired SF{desired_sf} "
                f"vs interferer SF{interferer_sf}"
            )
        if desired_sf == interferer_sf:
            return self.co_sf_db
        return float(self.cross_sf_db[desired_sf - 7][interferer_sf - 7])

    def threshold_table(self) -> np.ndarray:
        """The full 6x6 threshold grid with the co-SF diagonal applied.

        ``table[sf_i - 7, sf_j - 7] == threshold_db(sf_i, sf_j)`` for
        every SF7..SF12 pair -- the broadcastable form the vectorized
        collision sweep indexes instead of calling :meth:`threshold_db`
        per pair.
        """
        table = np.array(self.cross_sf_db, dtype=float)
        np.fill_diagonal(table, self.co_sf_db)
        return table


def propagation_delay_s(tx: Position, rx: Position) -> float:
    """One-way signal propagation time between two positions."""
    return tx.distance_to(rx) / SPEED_OF_LIGHT_M_S


def noise_floor_dbm(
    bandwidth_hz: float = LORA_BANDWIDTH_HZ,
    noise_figure_db: float = SX1276_NOISE_FIGURE_DB,
) -> float:
    """Receiver noise floor: thermal density + bandwidth + noise figure.

    For 125 kHz and a 6 dB NF this is about -117 dBm.
    """
    if bandwidth_hz <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth_hz}")
    return THERMAL_NOISE_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


@dataclass(frozen=True)
class LinkBudget:
    """Received power and SNR for a path-loss model and antenna gains."""

    pathloss: Any
    tx_antenna_gain_db: float = 0.0
    rx_antenna_gain_db: float = 0.0
    bandwidth_hz: float = LORA_BANDWIDTH_HZ
    noise_figure_db: float = SX1276_NOISE_FIGURE_DB

    def rx_power_dbm(self, tx_power_dbm: float, tx: Position, rx: Position, **loss_kwargs) -> float:
        loss = self.pathloss.loss_db(tx, rx, **loss_kwargs)
        return tx_power_dbm + self.tx_antenna_gain_db + self.rx_antenna_gain_db - loss

    def snr_db(self, tx_power_dbm: float, tx: Position, rx: Position, **loss_kwargs) -> float:
        floor = noise_floor_dbm(self.bandwidth_hz, self.noise_figure_db)
        return self.rx_power_dbm(tx_power_dbm, tx, rx, **loss_kwargs) - floor


def amplitude_for_snr(snr_db: float, noise_power: float = 1.0) -> float:
    """Complex-envelope amplitude giving ``snr_db`` over a noise power.

    For a constant-envelope chirp of amplitude A, signal power is A², so
    ``A = sqrt(noise_power · 10^(SNR/10))``.
    """
    if noise_power <= 0:
        raise ConfigurationError(f"noise power must be positive, got {noise_power}")
    return math.sqrt(noise_power * 10.0 ** (snr_db / 10.0))


@dataclass
class Transmission:
    """A frame-level transmission visible on the air interface."""

    sender: str
    start_time_s: float
    airtime_s: float
    rx_power_dbm: float
    spreading_factor: int
    payload: bytes = b""
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def end_time_s(self) -> float:
        return self.start_time_s + self.airtime_s

    def overlaps(self, other: "Transmission") -> bool:
        return self.start_time_s < other.end_time_s and other.start_time_s < self.end_time_s


@dataclass(frozen=True)
class ReceptionOutcome:
    """Fate of one transmission after collision resolution."""

    transmission: Transmission
    delivered: bool
    reason: str


def resolve_collisions(
    transmissions: list[Transmission],
    capture_threshold_db: float = DEFAULT_CAPTURE_THRESHOLD_DB,
    min_snr_db: dict[int, float] | None = None,
    noise_floor: float | None = None,
    capture_matrix: InterSfCaptureMatrix | None = None,
) -> list[ReceptionOutcome]:
    """Resolve overlapping receptions at one gateway.

    Rules (standard LoRa capture model):

    * without a ``capture_matrix``, different spreading factors are
      perfectly orthogonal: no mutual loss; co-SF overlap is resolved by
      the capture effect -- the stronger survives iff it exceeds every
      overlapping co-SF rival by ``capture_threshold_db``;
    * with a ``capture_matrix``, *every* overlapping frame is a rival and
      a frame survives iff it clears the matrix's pairwise threshold
      against each one -- co-SF behavior is unchanged (the diagonal is
      the capture threshold) while a strong cross-SF rival can now
      destroy a weak frame (imperfect orthogonality);
    * optionally, frames below the SF's demodulation SNR floor are lost.
    """
    outcomes: list[ReceptionOutcome] = []
    floor = noise_floor_dbm() if noise_floor is None else noise_floor
    for tx in transmissions:
        if capture_matrix is None:
            rivals = [
                other
                for other in transmissions
                if other is not tx
                and other.spreading_factor == tx.spreading_factor
                and other.overlaps(tx)
            ]
        else:
            rivals = [
                other for other in transmissions if other is not tx and other.overlaps(tx)
            ]
        if min_snr_db is not None:
            required = min_snr_db.get(tx.spreading_factor)
            if required is not None and (tx.rx_power_dbm - floor) < required:
                outcomes.append(ReceptionOutcome(tx, False, "below demodulation SNR floor"))
                continue
        if not rivals:
            outcomes.append(ReceptionOutcome(tx, True, "clear channel"))
            continue
        if capture_matrix is None:
            strongest_rival = max(r.rx_power_dbm for r in rivals)
            if tx.rx_power_dbm >= strongest_rival + capture_threshold_db:
                outcomes.append(ReceptionOutcome(tx, True, "captured over weaker rivals"))
            else:
                outcomes.append(ReceptionOutcome(tx, False, "lost in co-SF collision"))
            continue
        fatal = [
            rival
            for rival in rivals
            if tx.rx_power_dbm
            < rival.rx_power_dbm
            + capture_matrix.threshold_db(tx.spreading_factor, rival.spreading_factor)
        ]
        if not fatal:
            outcomes.append(ReceptionOutcome(tx, True, "captured over weaker rivals"))
        elif any(r.spreading_factor == tx.spreading_factor for r in fatal):
            outcomes.append(ReceptionOutcome(tx, False, "lost in co-SF collision"))
        else:
            outcomes.append(ReceptionOutcome(tx, False, "lost to inter-SF interference"))
    return outcomes
